// Fig. 5 reproduction ("Comparing with SP"): how many times more invited
// nodes Shortest-Path needs to match RAF's acceptance probability.
#include "core/baselines.hpp"
#include "ratio_experiment.hpp"

int main(int argc, char** argv) {
  using namespace af;
  using namespace af::bench;

  ArgParser args("exp_fig5_vs_sp",
                 "Fig. 5: invitation-size ratio of SP vs RAF");
  add_common_flags(args, /*default_pairs=*/5);
  args.add_double("alpha", 0.3, "alpha used for the RAF reference run");
  args.add_int("max-realizations", 200'000, "cap on l per RAF run");
  if (!args.parse(argc, argv)) return 1;
  const ExperimentEnv env = read_env(args);

  RatioExperimentConfig rcfg;
  rcfg.alpha = args.get_double("alpha");
  rcfg.max_realizations =
      static_cast<std::uint64_t>(args.get_int("max-realizations"));

  Rng rng(env.seed);
  run_ratio_experiment(
      "Fig. 5: comparing with ShortestPath", "fig5",
      [](const FriendingInstance& inst) {
        return shortest_path_ranking(inst);
      },
      rcfg, env, env.full ? 500 : env.pairs, rng);
  return 0;
}
