// Fig. 4 reproduction ("Comparing with HD"): how many times more invited
// nodes High-Degree needs to match RAF's acceptance probability, binned by
// the acceptance-probability ratio f(I_HD)/f(I_RAF).
#include "core/baselines.hpp"
#include "ratio_experiment.hpp"

int main(int argc, char** argv) {
  using namespace af;
  using namespace af::bench;

  ArgParser args("exp_fig4_vs_hd",
                 "Fig. 4: invitation-size ratio of HD vs RAF");
  add_common_flags(args, /*default_pairs=*/5);
  args.add_double("alpha", 0.3, "alpha used for the RAF reference run");
  args.add_int("max-realizations", 200'000, "cap on l per RAF run");
  if (!args.parse(argc, argv)) return 1;
  const ExperimentEnv env = read_env(args);

  RatioExperimentConfig rcfg;
  rcfg.alpha = args.get_double("alpha");
  rcfg.max_realizations =
      static_cast<std::uint64_t>(args.get_int("max-realizations"));

  Rng rng(env.seed);
  run_ratio_experiment(
      "Fig. 4: comparing with HighDegree", "fig4",
      [](const FriendingInstance& inst) {
        return high_degree_ranking(inst);
      },
      rcfg, env, env.full ? 500 : env.pairs, rng);
  return 0;
}
