// Ablation (DESIGN.md §3): quality and cost of the MpU solver backing
// Alg. 3's covering step. Builds a realistic backward-path family from a
// sampled pair, then compares greedy / densest / smallest-sets (and exact,
// when the family is small enough) across coverage targets.
#include <iostream>

#include "cover/mpu.hpp"
#include "diffusion/realization.hpp"
#include "exp_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace af;
  using namespace af::bench;

  ArgParser args("exp_ablation_mpu",
                 "Ablation: MpU solver quality/cost on realization families");
  add_common_flags(args, /*default_pairs=*/3);
  args.add_int("realizations", 30'000, "realizations per family");
  args.add_string("betas", "0.1,0.3,0.5,0.7,0.9", "coverage fractions");
  args.add_string("dataset", "wiki", "dataset analog");
  if (!args.parse(argc, argv)) return 1;
  const ExperimentEnv env = read_env(args);

  Rng rng(env.seed);
  const PreparedDataset data =
      prepare_dataset(args.get_string("dataset"), env,
                      env.full ? 10 : env.pairs, rng);
  if (data.pairs.empty()) {
    std::cout << "no pairs accepted — nothing to report\n";
    return 0;
  }

  const GreedyMpuSolver greedy;
  const DensestMpuSolver densest;
  const SmallestSetsSolver smallest;
  const std::vector<const MpuSolver*> solvers{&greedy, &densest, &smallest};

  std::cout << "== Ablation: MpU solvers on t(g) path families ==\n";
  TableWriter table({"beta", "solver", "avg|I|", "avg|I|+ls", "avg-ms"});

  std::vector<double> betas;
  for (const auto& tok : split_csv_list(args.get_string("betas"))) {
    betas.push_back(std::stod(tok));
  }

  const auto reals = static_cast<std::uint64_t>(args.get_int("realizations"));
  // Pre-build one family per pair.
  std::vector<SetFamily> families;
  for (const auto& pair : data.pairs) {
    const FriendingInstance inst(data.graph, pair.s, pair.t);
    ReversePathSampler sampler(inst);
    SetFamily fam(data.graph.num_nodes());
    for (std::uint64_t i = 0; i < reals; ++i) {
      const TgSample tg = sampler.sample(rng);
      if (tg.type1) fam.add_set(tg.path);
    }
    if (fam.total_multiplicity() > 0) families.push_back(std::move(fam));
  }
  std::cerr << "[exp] built " << families.size() << " families; avg distinct "
               "paths per family varies by pair\n";

  for (const double beta : betas) {
    for (const MpuSolver* solver : solvers) {
      RunningStats size_s, refined_s, ms_s;
      for (const auto& fam : families) {
        const auto p = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   beta * static_cast<double>(fam.total_multiplicity())));
        WallTimer timer;
        const MpuResult res = solver->solve(fam, p);
        ms_s.add(timer.elapsed_ms());
        size_s.add(static_cast<double>(res.union_elements.size()));
        const MpuResult refined = refine_local_search(fam, p, res);
        refined_s.add(static_cast<double>(refined.union_elements.size()));
      }
      table.add_row({TableWriter::fmt(beta, 1), solver->name(),
                     TableWriter::fmt(size_s.mean(), 1),
                     TableWriter::fmt(refined_s.mean(), 1),
                     TableWriter::fmt(ms_s.mean(), 2)});
    }
  }
  table.print(std::cout);
  if (!env.csv.empty()) table.write_csv(env.csv + "_ablation_mpu.csv");
  return 0;
}
