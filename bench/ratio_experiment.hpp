// Shared protocol for Figs. 4 and 5: for each pair, run RAF, then price
// the baseline at every budget with the ranked-prefix evaluator
// (core/ranked_eval.hpp): one sampling pass yields the baseline's entire
// acceptance-probability curve f(I_k), from which we read off both the
// Fig. 4/5 binned points (f(I_k)/f(I_RAF) vs k/|I_RAF|) and the size
// needed for a full match.
#pragma once

#include <functional>
#include <iostream>
#include <optional>
#include <string>

#include "core/baselines.hpp"
#include "core/planner.hpp"
#include "core/ranked_eval.hpp"
#include "exp_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace af::bench {

/// Produces the baseline's full priority ranking for an instance.
using RankingFn = std::function<InvitationRanking(const FriendingInstance&)>;

struct RatioExperimentConfig {
  double alpha = 0.3;
  std::uint64_t max_realizations = 200'000;
  /// Samples behind each baseline curve.
  std::uint64_t curve_samples = 100'000;
};

inline void run_ratio_experiment(const std::string& title,
                                 const std::string& csv_tag,
                                 const RankingFn& ranking_fn,
                                 const RatioExperimentConfig& rcfg,
                                 const ExperimentEnv& env,
                                 std::size_t pairs_per_dataset, Rng& rng) {
  std::cout << "== " << title << " ==\n";
  for (const auto& name : split_csv_list(env.datasets)) {
    const PreparedDataset data =
        prepare_dataset(name, env, pairs_per_dataset, rng);
    if (data.pairs.empty()) {
      std::cout << "[" << name << "] no pairs accepted — skipped\n";
      continue;
    }

    PlannerOptions options;
    options.base_seed = env.seed;
    options.pmax_max_samples = 200'000;
    const std::unique_ptr<Planner> planner = make_planner(data, options);

    MinimizeSpec spec;
    spec.alpha = rcfg.alpha;
    spec.epsilon = rcfg.alpha / 10.0;
    spec.big_n = 1000.0;
    spec.max_realizations = rcfg.max_realizations;

    // Paper's five x-intervals over the acceptance ratio (0, 1].
    Histogram bins(0.0, 1.0, 5);
    RunningStats match_ratio;   // size ratio at the full-match point
    std::size_t unmatched = 0;  // baseline ceiling below f(I_RAF)

    for (const auto& pair : data.pairs) {
      const FriendingInstance inst(data.graph, pair.s, pair.t);
      const PlanResult res = planner->plan({pair.s, pair.t, spec});
      if (!res.ok() || res.invitation.empty()) continue;
      const auto k_raf = static_cast<double>(res.invitation.size());

      MonteCarloEvaluator mc(inst);
      const double f_raf =
          mc.estimate_f(res.invitation, env.eval_samples, rng).estimate();
      if (f_raf <= 0.0) continue;

      const InvitationRanking ranking = ranking_fn(inst);
      const RankedCurve curve =
          evaluate_ranked_prefixes(inst, ranking, rcfg.curve_samples, rng);

      // Sample the curve on a geometric budget grid for the bin plot.
      for (double k = k_raf; k <= static_cast<double>(ranking.size());
           k *= 1.3) {
        const auto kk = static_cast<std::size_t>(k);
        const double f_ratio = std::min(curve.f_at(kk) / f_raf, 1.0);
        bins.add_xy(f_ratio, static_cast<double>(kk) / k_raf);
        if (f_ratio >= 1.0) break;
      }

      if (const auto k_match = curve.size_to_reach(f_raf)) {
        match_ratio.add(static_cast<double>(*k_match) / k_raf);
      } else {
        ++unmatched;
      }
    }

    TableWriter table({"f-ratio-bin", "avg-size-ratio", "points"});
    for (std::size_t b = 0; b < bins.bins(); ++b) {
      table.add_row({TableWriter::fmt(bins.bin_center(b), 1),
                     TableWriter::fmt(bins.bin_mean(b), 2),
                     TableWriter::fmt(bins.count(b), 0)});
    }
    std::cout << "\n[" << name << "] alpha=" << rcfg.alpha << ", "
              << data.pairs.size() << " pairs";
    if (!match_ratio.empty()) {
      std::cout << "; avg size ratio at full match: "
                << TableWriter::fmt(match_ratio.mean(), 2) << " ("
                << match_ratio.count() << " matched, " << unmatched
                << " never match)";
    } else if (unmatched > 0) {
      std::cout << "; baseline never reaches f(I_RAF) on any pair";
    }
    std::cout << "\n";
    table.print(std::cout);
    if (!env.csv.empty()) {
      table.write_csv(env.csv + "_" + csv_tag + "_" + name + ".csv");
    }
  }
}

}  // namespace af::bench
