// Ablation (DESIGN.md §4.4): the ε0 policy. Compares the paper's
// ε0 = n·ε1 rule (clamped when infeasible) against the balanced fixed
// policy: the solved parameters, the theoretical budget l* each implies,
// and the realized quality at a fixed practical l.
#include <iostream>

#include "core/raf.hpp"
#include "exp_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace af;
  using namespace af::bench;

  ArgParser args("exp_ablation_params",
                 "Ablation: eps0 policy (paper Eq. 17 vs balanced)");
  add_common_flags(args, /*default_pairs=*/3);
  args.add_double("alpha", 0.2, "alpha");
  args.add_string("dataset", "wiki", "dataset analog");
  args.add_int("max-realizations", 50'000, "practical cap on l");
  if (!args.parse(argc, argv)) return 1;
  const ExperimentEnv env = read_env(args);

  Rng rng(env.seed);
  const PreparedDataset data =
      prepare_dataset(args.get_string("dataset"), env,
                      env.full ? 10 : env.pairs, rng);
  if (data.pairs.empty()) {
    std::cout << "no pairs accepted — nothing to report\n";
    return 0;
  }
  const double alpha = args.get_double("alpha");
  const double epsilon = alpha / 10.0;

  std::cout << "== Ablation: eps0 policy ==\n";

  // Part 1: solved parameters at several n scales.
  TableWriter ptab({"policy", "n", "eps0", "eps1", "beta", "clamped",
                    "l*(pmax=0.05)"});
  for (const std::uint64_t n : {std::uint64_t{100}, std::uint64_t{7000},
                                std::uint64_t{1'000'000}}) {
    for (const auto policy :
         {Eps0Policy::kBalanced, Eps0Policy::kPaperProportional}) {
      const RafParameters p = solve_equation_system(alpha, epsilon, policy, n);
      ptab.add_row(
          {policy == Eps0Policy::kBalanced ? "balanced" : "paper",
           TableWriter::fmt(std::size_t{n}), TableWriter::fmt(p.eps0, 5),
           TableWriter::fmt(p.eps1, 6), TableWriter::fmt(p.beta, 4),
           p.clamped ? "yes" : "no",
           TableWriter::fmt(required_realizations(p, n, 1e5, 0.05), 0)});
    }
  }
  ptab.print(std::cout);

  // Part 2: realized quality under both policies at the same capped l.
  TableWriter qtab({"policy", "avg-f(I)", "avg|I|", "avg-l-used"});
  for (const auto policy :
       {Eps0Policy::kBalanced, Eps0Policy::kPaperProportional}) {
    RafConfig cfg;
    cfg.alpha = alpha;
    cfg.epsilon = epsilon;
    cfg.big_n = 1000.0;
    cfg.policy = policy;
    cfg.max_realizations =
        static_cast<std::uint64_t>(args.get_int("max-realizations"));
    cfg.pmax_max_samples = 200'000;
    const RafAlgorithm raf(cfg);

    RunningStats f_s, size_s, l_s;
    for (const auto& pair : data.pairs) {
      const FriendingInstance inst(data.graph, pair.s, pair.t);
      const RafResult res = raf.run(inst, rng);
      if (res.invitation.empty()) continue;
      f_s.add(evaluate_f(inst, res.invitation, env.eval_samples, rng));
      size_s.add(static_cast<double>(res.invitation.size()));
      l_s.add(static_cast<double>(res.diag.l_used));
    }
    qtab.add_row({policy == Eps0Policy::kBalanced ? "balanced" : "paper",
                  TableWriter::fmt(f_s.mean(), 4),
                  TableWriter::fmt(size_s.mean(), 1),
                  TableWriter::fmt(l_s.mean(), 0)});
  }
  std::cout << "\nrealized quality at capped l (alpha=" << alpha << ")\n";
  qtab.print(std::cout);
  if (!env.csv.empty()) qtab.write_csv(env.csv + "_ablation_params.csv");
  return 0;
}
