// Ablation (DESIGN.md §3, §4.1): topology sensitivity of the
// Table-II quantities. Barabási–Albert analogs have minimum degree equal
// to the attachment parameter, so nearly the whole graph is one giant
// biconnected core and |V_max| ≈ n. Real SNAP graphs have a large
// degree-1/2 periphery; an erased configuration model with a power-law
// degree sequence (min degree 1) restores that periphery and pulls
// |V_max| down toward the paper's regime. This bench quantifies the gap.
#include <iostream>

#include "core/raf.hpp"
#include "core/vmax.hpp"
#include "exp_common.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace af;
  using namespace af::bench;

  ArgParser args("exp_ablation_topology",
                 "Ablation: V_max / RAF sizes on BA vs configuration-model "
                 "analogs");
  add_common_flags(args, /*default_pairs=*/5);
  args.add_int("nodes", 7'000, "analog size (wiki scale)");
  args.add_double("alpha", 0.1, "alpha for RAF (Table II uses 0.1)");
  args.add_double("exponent", 2.2, "power-law exponent for the config model");
  if (!args.parse(argc, argv)) return 1;
  const ExperimentEnv env = read_env(args);

  Rng rng(env.seed);
  const auto n = static_cast<NodeId>(args.get_int("nodes"));

  struct Analog {
    std::string name;
    Graph graph;
  };
  std::vector<Analog> analogs;
  analogs.push_back(
      {"ba(attach=15)", barabasi_albert(n, 15, rng)
                            .build(WeightScheme::inverse_degree())});
  {
    const auto degs =
        power_law_degrees(n, args.get_double("exponent"), 1, 0, rng);
    analogs.push_back(
        {"config(power-law)", configuration_model(degs, rng)
                                  .build(WeightScheme::inverse_degree())});
  }

  RafConfig cfg;
  cfg.alpha = args.get_double("alpha");
  cfg.epsilon = cfg.alpha / 10.0;
  cfg.big_n = 1000.0;
  cfg.max_realizations = 100'000;
  const RafAlgorithm raf(cfg);

  std::cout << "== Ablation: topology sensitivity of Table II ==\n";
  TableWriter table({"analog", "m", "deg1-frac", "degeneracy", "avg|Vmax|",
                     "avg|I_RAF|", "avg-ratio", "pairs"});
  for (const auto& analog : analogs) {
    const Graph& g = analog.graph;
    std::size_t deg1 = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) deg1 += g.degree(v) <= 1;

    PairSamplerConfig pcfg;
    pcfg.pmax_threshold = 0.01;
    pcfg.pmax_upper = 0.12;
    pcfg.estimate_samples = 2'000;
    const auto pairs = sample_pairs(g, env.pairs, pcfg, rng);

    RunningStats vmax_s, raf_s, ratio_s;
    for (const auto& pair : pairs) {
      const FriendingInstance inst(g, pair.s, pair.t);
      const auto vmax = compute_vmax(inst);
      if (vmax.empty()) continue;
      const RafResult res = raf.run(inst, rng);
      if (res.invitation.empty()) continue;
      vmax_s.add(static_cast<double>(vmax.size()));
      raf_s.add(static_cast<double>(res.invitation.size()));
      ratio_s.add(static_cast<double>(vmax.size()) /
                  static_cast<double>(res.invitation.size()));
    }
    table.add_row(
        {analog.name, TableWriter::fmt(std::size_t{g.num_edges()}),
         TableWriter::fmt(
             static_cast<double>(deg1) / static_cast<double>(g.num_nodes()),
             3),
         TableWriter::fmt(std::size_t{degeneracy(g)}),
         TableWriter::fmt(vmax_s.mean(), 1), TableWriter::fmt(raf_s.mean(), 1),
         TableWriter::fmt(ratio_s.mean(), 1),
         TableWriter::fmt(vmax_s.count())});
  }
  table.print(std::cout);
  if (!env.csv.empty()) table.write_csv(env.csv + "_ablation_topology.csv");
  return 0;
}
