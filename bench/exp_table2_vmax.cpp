// Table II reproduction ("Comparing with V_max"): average |V_max|,
// average |I_RAF| at α = 0.1, and their ratio — showing RAF's output is a
// small fraction of the trivially optimal-for-p_max set.
#include <iostream>

#include "core/raf.hpp"
#include "core/vmax.hpp"
#include "exp_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace af;
  using namespace af::bench;

  ArgParser args("exp_table2_vmax", "Table II: |V_max| vs |I_RAF| at α=0.1");
  add_common_flags(args, /*default_pairs=*/8);
  args.add_double("alpha", 0.1, "alpha for the RAF runs (paper: 0.1)");
  args.add_int("max-realizations", 200'000, "cap on l per RAF run");
  if (!args.parse(argc, argv)) return 1;
  const ExperimentEnv env = read_env(args);
  const std::size_t pairs = env.full ? 500 : env.pairs;

  RafConfig cfg;
  cfg.alpha = args.get_double("alpha");
  cfg.epsilon = cfg.alpha / 10.0;
  cfg.big_n = 1000.0;
  cfg.max_realizations =
      static_cast<std::uint64_t>(args.get_int("max-realizations"));
  cfg.pmax_max_samples = 200'000;
  const RafAlgorithm raf(cfg);

  Rng rng(env.seed);
  TableWriter table(
      {"dataset", "avg|Vmax|", "avg|I_RAF|", "avg(|Vmax|/|I_RAF|)", "pairs"});
  for (const auto& name : split_csv_list(env.datasets)) {
    const PreparedDataset data = prepare_dataset(name, env, pairs, rng);
    RunningStats vmax_s, raf_s, ratio_s;
    for (const auto& pair : data.pairs) {
      const FriendingInstance inst(data.graph, pair.s, pair.t);
      const auto vmax = compute_vmax(inst);
      if (vmax.empty()) continue;
      const RafResult res = raf.run(inst, rng);
      if (res.invitation.empty()) continue;
      vmax_s.add(static_cast<double>(vmax.size()));
      raf_s.add(static_cast<double>(res.invitation.size()));
      ratio_s.add(static_cast<double>(vmax.size()) /
                  static_cast<double>(res.invitation.size()));
    }
    table.add_row({name, TableWriter::fmt(vmax_s.mean(), 2),
                   TableWriter::fmt(raf_s.mean(), 2),
                   TableWriter::fmt(ratio_s.mean(), 2),
                   TableWriter::fmt(vmax_s.count())});
  }
  std::cout << "== Table II: comparing with Vmax (alpha="
            << args.get_double("alpha") << ") ==\n";
  table.print(std::cout);
  if (!env.csv.empty()) table.write_csv(env.csv + "_table2.csv");
  return 0;
}
