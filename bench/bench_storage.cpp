// Cold-start harness for the out-of-core storage subsystem (DESIGN.md
// §11). Not a Google Benchmark micro-bench: what matters is the
// end-to-end serving question — how long from "process starts" to "first
// query answered" — on each construction path:
//
//   in-RAM:  build the graph, build the alias tables, answer a query;
//   mapped:  open + validate the .af1 container (tables prebuilt
//            offline by af_index_build), answer the same query.
//
// The harness generates a Barabási–Albert analog, saves it as a weighted
// text edge list (the in-RAM path's on-disk form) and as a .af1 container
// (the offline cost, reported separately), then measures N cold starts of
// each path — text parse + graph build + index build vs container open +
// view reconstruction — and the first-query latency on top. The mapped
// open is timed twice: validated (full CRC pass) and trusted
// (validate_checksums=false, the production path once integrity has been
// checked at deploy time). The round-trip contract is asserted on the
// way: both paths must return the same invitation set.
//
// Run with --json to write BENCH_storage.json; CI runs a small smoke and
// asserts the summary fields are present.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/weights.hpp"
#include "storage/convert.hpp"
#include "storage/mapped_dataset.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace af;

double median(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_storage",
                 "Cold-start cost: in-RAM index build vs mmap-ed .af1 "
                 "container open (DESIGN.md §11)");
  args.add_int("nodes", 200'000, "graph size (Barabási–Albert analog)");
  args.add_int("attach", 8, "BA attachment (edges ≈ nodes × attach)");
  args.add_int("reps", 5, "cold opens measured per path");
  args.add_int("seed", 20190707, "generator seed");
  args.add_flag("compact", "use the 12-byte/slot CompactSamplingIndex");
  args.add_flag("json", "write BENCH_storage.json");
  args.add_string("out", "BENCH_storage.json", "json output path");
  if (!args.parse(argc, argv)) return 1;

  const auto n = static_cast<NodeId>(args.get_int("nodes"));
  const auto reps = static_cast<int>(args.get_int("reps"));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));

  WallTimer gen_timer;
  const Graph g =
      barabasi_albert(n, static_cast<std::size_t>(args.get_int("attach")),
                      rng)
          .build(WeightScheme::inverse_degree(), &rng);
  std::printf("# graph: %u nodes, %llu edges (generated in %.2fs)\n",
              g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()),
              gen_timer.elapsed_seconds());

  // Both on-disk forms: the text edge list the in-RAM path would parse,
  // and the .af1 container the mapped path opens.
  const std::string edges_path = "bench_storage_edges.txt";
  if (!save_weighted_edge_list(g, edges_path)) {
    std::fprintf(stderr, "FATAL: could not write %s\n", edges_path.c_str());
    return 1;
  }
  // The converter consumes the text form, exactly like af_index_build:
  // the loader's first-appearance id compaction relabels nodes, and both
  // serving paths must agree on that labeling for plans to compare.
  const std::string path = "bench_storage.af1";
  WallTimer convert_timer;
  const LoadedGraph base = load_weighted_edge_list_streaming(edges_path);
  const std::uint64_t bytes = storage::write_container(base.graph, path);
  const double convert_seconds = convert_timer.elapsed_seconds();
  std::printf("# container: %llu bytes written in %.2fs (offline cost)\n",
              static_cast<unsigned long long>(bytes), convert_seconds);

  PlannerOptions opt;
  opt.compact_index = args.get_flag("compact");
  opt.threads = 2;
  const QuerySpec query{0, n / 2,
                        MaximizeSpec{.budget = 5, .realizations = 2000}};

  std::vector<double> ram_build, ram_first, map_open, map_trusted,
      map_first;
  std::vector<NodeId> ram_answer, map_answer;
  for (int r = 0; r < reps; ++r) {
    {
      // In-RAM cold start: parse the text edge list, build the CSR graph
      // and build the sampling index — everything a fresh process does.
      WallTimer t;
      const LoadedGraph lg = load_weighted_edge_list_streaming(edges_path);
      Planner planner(lg.graph, opt);
      ram_build.push_back(t.elapsed_seconds());
      WallTimer q;
      const PlanResult res = planner.plan(query);
      ram_first.push_back(q.elapsed_seconds());
      ram_answer = res.invitation.members();
    }
    {
      // Mapped cold start, validated: open + full CRC pass + view
      // reconstruction. No index construction on this path at all.
      WallTimer t;
      storage::MappedDataset ds(path);
      const auto planner = Planner::from_mapped(ds, opt);
      map_open.push_back(t.elapsed_seconds());
      WallTimer q;
      const PlanResult res = planner->plan(query);
      map_first.push_back(q.elapsed_seconds());
      map_answer = res.invitation.members();
      if (map_answer != ram_answer) {
        std::fprintf(stderr, "FATAL: mapped plan diverged from in-RAM\n");
        return 1;
      }
      if (r == 0) {
        const auto stats = planner->cache_stats();
        std::printf("# mapped: replicas=%zu index_build_seconds=%g\n",
                    stats.index_replicas, stats.index_build_seconds);
      }
    }
    {
      // Mapped cold start, trusted: header-only validation (integrity
      // was verified once at deploy time).
      storage::OpenOptions trusted;
      trusted.validate_checksums = false;
      WallTimer t;
      storage::MappedDataset ds(path, trusted);
      const auto planner = Planner::from_mapped(ds, opt);
      map_trusted.push_back(t.elapsed_seconds());
      if (planner->plan(query).invitation.members() != ram_answer) {
        std::fprintf(stderr, "FATAL: trusted-open plan diverged\n");
        return 1;
      }
    }
  }

  const double ram_build_s = median(ram_build);
  const double map_open_s = median(map_open);
  const double map_trusted_s = median(map_trusted);
  std::printf(
      "in-RAM : parse+build %8.3fs  first query %7.3fs\n"
      "mapped : open (crc)  %8.3fs  first query %7.3fs  (%.1fx)\n"
      "mapped : open (trust)%8.3fs                       (%.1fx)\n",
      ram_build_s, median(ram_first), map_open_s, median(map_first),
      map_open_s > 0 ? ram_build_s / map_open_s : 0.0, map_trusted_s,
      map_trusted_s > 0 ? ram_build_s / map_trusted_s : 0.0);

  if (args.get_flag("json")) {
    std::ofstream out(args.get_string("out"));
    out << "{\n";
    out << "  \"benchmark\": \"bench_storage\",\n";
    out << "  \"nodes\": " << g.num_nodes() << ",\n";
    out << "  \"edges\": " << g.num_edges() << ",\n";
    out << "  \"container_bytes\": " << bytes << ",\n";
    out << "  \"convert_seconds\": " << convert_seconds << ",\n";
    out << "  \"ram_build_seconds\": " << ram_build_s << ",\n";
    out << "  \"ram_first_query_seconds\": " << median(ram_first) << ",\n";
    out << "  \"mapped_open_seconds\": " << map_open_s << ",\n";
    out << "  \"mapped_open_trusted_seconds\": " << map_trusted_s << ",\n";
    out << "  \"mapped_first_query_seconds\": " << median(map_first)
        << ",\n";
    out << "  \"cold_start_speedup\": "
        << (map_open_s > 0 ? ram_build_s / map_open_s : 0.0) << ",\n";
    out << "  \"cold_start_speedup_trusted\": "
        << (map_trusted_s > 0 ? ram_build_s / map_trusted_s : 0.0) << "\n";
    out << "}\n";
    std::printf("# wrote %s\n", args.get_string("out").c_str());
  }
  std::remove(path.c_str());
  std::remove(edges_path.c_str());
  return 0;
}
