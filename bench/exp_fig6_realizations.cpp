// Fig. 6 reproduction ("Further Discussion"): acceptance probability of
// Alg. 3's output as a function of the number of realizations l, with β
// fixed — showing quality saturates far below the theoretical l* (Eq. 16).
#include <iostream>

#include "core/eqsystem.hpp"
#include "core/raf.hpp"
#include "exp_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace af;
  using namespace af::bench;

  ArgParser args("exp_fig6_realizations",
                 "Fig. 6: acceptance probability vs number of realizations");
  add_common_flags(args, /*default_pairs=*/3);
  args.add_double("alpha", 0.1, "alpha fixing beta via Eq. 17");
  args.add_string("ls", "500,1000,2000,5000,10000,20000,50000,100000,200000",
                  "realization counts to sweep");
  args.add_string("dataset", "wiki", "dataset analog (Fig. 6 uses Wiki)");
  if (!args.parse(argc, argv)) return 1;
  const ExperimentEnv env = read_env(args);

  std::vector<std::uint64_t> ls;
  for (const auto& tok : split_csv_list(args.get_string("ls"))) {
    ls.push_back(std::stoull(tok));
  }

  Rng rng(env.seed);
  const PreparedDataset data = prepare_dataset(
      args.get_string("dataset"), env, env.full ? 20 : env.pairs, rng);
  if (data.pairs.empty()) {
    std::cout << "no pairs accepted — nothing to report\n";
    return 0;
  }

  const double alpha = args.get_double("alpha");
  RafConfig cfg;
  cfg.alpha = alpha;
  cfg.epsilon = alpha / 10.0;
  cfg.big_n = 1000.0;
  const RafAlgorithm raf(cfg);
  // β fixed by the equation system (the paper fixes β and varies l).
  const RafParameters params = solve_equation_system(
      alpha, cfg.epsilon, Eps0Policy::kBalanced, data.graph.num_nodes());

  std::cout << "== Fig. 6: acceptance probability vs realizations (beta="
            << TableWriter::fmt(params.beta, 4) << ") ==\n";

  TableWriter table({"l", "avg-f(I)", "avg|I|", "avg-type1"});
  for (const std::uint64_t l : ls) {
    RunningStats f_s, size_s, b1_s;
    for (const auto& pair : data.pairs) {
      const FriendingInstance inst(data.graph, pair.s, pair.t);
      const RafResult res = raf.run_framework(inst, params.beta, l, rng);
      if (res.invitation.empty()) continue;
      f_s.add(
          evaluate_f(inst, res.invitation, env.eval_samples, rng));
      size_s.add(static_cast<double>(res.invitation.size()));
      b1_s.add(static_cast<double>(res.diag.type1_count));
    }
    table.add_row({TableWriter::fmt(std::size_t{l}),
                   TableWriter::fmt(f_s.mean(), 4),
                   TableWriter::fmt(size_s.mean(), 1),
                   TableWriter::fmt(b1_s.mean(), 1)});
  }
  table.print(std::cout);

  // Context: the theoretical l* for the first pair, for scale.
  const FriendingInstance inst(data.graph, data.pairs[0].s,
                               data.pairs[0].t);
  MonteCarloEvaluator mc(inst);
  const double pmax = mc.estimate_pmax(50'000, rng).estimate();
  if (pmax > 0) {
    std::cout << "theoretical l* (Eq. 16, first pair, n=|V|): "
              << TableWriter::fmt(
                     required_realizations(params, data.graph.num_nodes(),
                                           1e5, pmax),
                     0)
              << "\n";
  }
  if (!env.csv.empty()) table.write_csv(env.csv + "_fig6.csv");
  return 0;
}
