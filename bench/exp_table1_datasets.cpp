// Table I reproduction: dataset statistics (nodes, edges, average degree)
// for the four analogs, against the paper's reference values.
#include <iostream>

#include "exp_common.hpp"
#include "graph/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace af;
  using namespace af::bench;

  ArgParser args("exp_table1_datasets",
                 "Table I: dataset statistics (synthetic analogs vs paper)");
  add_common_flags(args, /*default_pairs=*/0);
  args.add_flag("extended",
                "also report structural stats (clustering, cores, diameter)");
  if (!args.parse(argc, argv)) return 1;
  const ExperimentEnv env = read_env(args);

  Rng rng(env.seed);
  TableWriter table({"dataset", "nodes", "edges", "avg-degree",
                     "paper-nodes", "paper-edges", "paper-avg-degree"});
  TableWriter ext({"dataset", "max-deg", "median-deg", "p99-deg",
                   "avg-clustering", "degeneracy", "diameter~"});
  for (const auto& name : split_csv_list(env.datasets)) {
    const DatasetSpec spec = dataset_spec(name, env.full);
    const Graph g = make_dataset(spec, rng);
    // Table I's "Avg. Degree" column is edges/nodes (103K/7K = 14.7),
    // not 2m/n — match the paper's convention.
    table.add_row({spec.name, TableWriter::fmt(std::size_t{g.num_nodes()}),
                   TableWriter::fmt(std::size_t{g.num_edges()}),
                   TableWriter::fmt(static_cast<double>(g.num_edges()) /
                                        static_cast<double>(g.num_nodes()),
                                    2),
                   TableWriter::fmt(std::size_t{spec.paper_nodes}),
                   TableWriter::fmt(std::size_t{spec.paper_edges}),
                   TableWriter::fmt(spec.paper_avg_degree, 2)});
    if (args.get_flag("extended")) {
      const DegreeStats ds = degree_stats(g);
      ext.add_row({spec.name, TableWriter::fmt(ds.max),
                   TableWriter::fmt(ds.median, 1),
                   TableWriter::fmt(ds.p99, 1),
                   TableWriter::fmt(average_clustering(g, 2'000, rng), 4),
                   TableWriter::fmt(std::size_t{degeneracy(g)}),
                   TableWriter::fmt(std::size_t{diameter_estimate(g)})});
    }
  }
  std::cout << "== Table I: datasets ==\n";
  table.print(std::cout);
  if (args.get_flag("extended")) {
    std::cout << "\nstructural statistics (analog validation)\n";
    ext.print(std::cout);
  }
  if (!env.csv.empty()) table.write_csv(env.csv + "_table1.csv");
  return 0;
}
