// Micro-benchmarks: covering machinery — greedy MpU on realistic
// backward-path families, densest subhypergraph engines, and Dinic.
#include <benchmark/benchmark.h>

#include "cover/densest.hpp"
#include "cover/maxflow.hpp"
#include "cover/mpu.hpp"
#include "core/pair_sampler.hpp"
#include "diffusion/realization.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace {

using namespace af;

/// A realization family sampled once from a wiki-like instance.
const SetFamily& shared_family() {
  static SetFamily fam = [] {
    Rng rng(1);
    const Graph g = barabasi_albert(7'000, 15, rng)
                        .build(WeightScheme::inverse_degree());
    PairSamplerConfig cfg;
    cfg.estimate_samples = 2'000;
    const auto pair = sample_pair(g, cfg, rng);
    SetFamily out(g.num_nodes());
    if (pair) {
      const FriendingInstance inst(g, pair->s, pair->t);
      ReversePathSampler sampler(inst);
      for (int i = 0; i < 50'000; ++i) {
        const TgSample tg = sampler.sample(rng);
        if (tg.type1) out.add_set(tg.path);
      }
    }
    if (out.total_multiplicity() == 0) {
      out.add_set(std::vector<NodeId>{0});  // degenerate fallback
    }
    return out;
  }();
  return fam;
}

void BM_GreedyMpu(benchmark::State& state) {
  const SetFamily& fam = shared_family();
  const auto p = std::max<std::uint64_t>(
      1, fam.total_multiplicity() * static_cast<std::uint64_t>(state.range(0)) / 100);
  const GreedyMpuSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(fam, p).union_elements.size());
  }
}
BENCHMARK(BM_GreedyMpu)->Arg(10)->Arg(50)->Arg(90);

void BM_SmallestSets(benchmark::State& state) {
  const SetFamily& fam = shared_family();
  const auto p = std::max<std::uint64_t>(1, fam.total_multiplicity() / 2);
  const SmallestSetsSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(fam, p).union_elements.size());
  }
}
BENCHMARK(BM_SmallestSets);

void BM_LocalSearchRefine(benchmark::State& state) {
  const SetFamily& fam = shared_family();
  const auto p = std::max<std::uint64_t>(1, fam.total_multiplicity() / 2);
  const GreedyMpuSolver solver;
  const MpuResult start = solver.solve(fam, p);
  for (auto _ : state) {
    MpuResult copy = start;
    benchmark::DoNotOptimize(
        refine_local_search(fam, p, std::move(copy)).union_elements.size());
  }
}
BENCHMARK(BM_LocalSearchRefine);

void BM_DensestPeeling(benchmark::State& state) {
  const SetFamily& fam = shared_family();
  for (auto _ : state) {
    benchmark::DoNotOptimize(densest_subfamily_peeling(fam).density);
  }
}
BENCHMARK(BM_DensestPeeling);

void BM_DensestExact(benchmark::State& state) {
  // Synthetic medium family: exact flow engine scaling.
  static const SetFamily fam = [] {
    Rng rng(7);
    SetFamily out(500);
    for (int i = 0; i < 300; ++i) {
      std::vector<NodeId> s;
      const int len = 2 + static_cast<int>(rng.uniform_int(std::uint64_t{6}));
      for (int j = 0; j < len; ++j) {
        s.push_back(static_cast<NodeId>(rng.uniform_int(std::uint64_t{500})));
      }
      out.add_set(s);
    }
    return out;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(densest_subfamily_exact(fam).density);
  }
}
BENCHMARK(BM_DensestExact);

void BM_DinicBipartite(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    MaxFlow flow(static_cast<std::uint32_t>(2 * n + 2));
    const std::uint32_t src = 0;
    const auto snk = static_cast<std::uint32_t>(2 * n + 1);
    for (int i = 0; i < n; ++i) {
      flow.add_edge(src, static_cast<std::uint32_t>(1 + i), 1.0);
      flow.add_edge(static_cast<std::uint32_t>(1 + n + i), snk, 1.0);
      for (int j = 0; j < 4; ++j) {
        flow.add_edge(static_cast<std::uint32_t>(1 + i),
                      static_cast<std::uint32_t>(
                          1 + n + rng.uniform_int(static_cast<std::uint64_t>(n))),
                      1.0);
      }
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(flow.solve(src, snk));
  }
}
BENCHMARK(BM_DinicBipartite)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
