// Micro-benchmarks: graph substrate — generation, CSR build, BFS,
// block-cut tree, V_max.
#include <benchmark/benchmark.h>

#include "core/vmax.hpp"
#include "graph/algorithms.hpp"
#include "graph/blockcut.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace {

using namespace af;

void BM_BarabasiAlbertGenerate(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    Rng rng(1);
    benchmark::DoNotOptimize(
        barabasi_albert(n, 10, rng).num_edges_added());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BarabasiAlbertGenerate)->Arg(1'000)->Arg(10'000);

void BM_CsrBuild(benchmark::State& state) {
  Rng rng(2);
  const auto builder = barabasi_albert(
      static_cast<NodeId>(state.range(0)), 10, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        builder.build(WeightScheme::inverse_degree()).num_edges());
  }
}
BENCHMARK(BM_CsrBuild)->Arg(1'000)->Arg(10'000);

void BM_Bfs(benchmark::State& state) {
  Rng rng(3);
  const Graph g = barabasi_albert(static_cast<NodeId>(state.range(0)), 10,
                                  rng)
                      .build(WeightScheme::inverse_degree());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_distances(g, NodeId{0}).size());
  }
}
BENCHMARK(BM_Bfs)->Arg(10'000)->Arg(100'000);

void BM_BlockCutTree(benchmark::State& state) {
  Rng rng(4);
  const Graph g = barabasi_albert(static_cast<NodeId>(state.range(0)), 3,
                                  rng)
                      .build(WeightScheme::inverse_degree());
  for (auto _ : state) {
    const BlockCutTree bct(g);
    benchmark::DoNotOptimize(bct.num_blocks());
  }
}
BENCHMARK(BM_BlockCutTree)->Arg(10'000)->Arg(100'000);

void BM_ComputeVmax(benchmark::State& state) {
  Rng rng(5);
  const Graph g = barabasi_albert(static_cast<NodeId>(state.range(0)), 5,
                                  rng)
                      .build(WeightScheme::inverse_degree());
  // A far-ish pair: node 0 (hub-adjacent) and the last node.
  NodeId s = 0;
  NodeId t = g.num_nodes() - 1;
  if (g.has_edge(s, t)) t -= 1;
  const FriendingInstance inst(g, s, t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_vmax(inst).size());
  }
}
BENCHMARK(BM_ComputeVmax)->Arg(10'000)->Arg(100'000);

void BM_DisjointShortestPaths(benchmark::State& state) {
  Rng rng(6);
  const Graph g =
      barabasi_albert(50'000, 5, rng).build(WeightScheme::inverse_degree());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        node_disjoint_shortest_paths(g, 0, g.num_nodes() - 1, 5).size());
  }
}
BENCHMARK(BM_DisjointShortestPaths);

}  // namespace

BENCHMARK_MAIN();
