// Micro-benchmarks: diffusion primitives — reverse path sampling (the
// inner loop of RAF), forward Process-1 simulation, full realization
// materialization, and DKLR estimation.
//
// The sampling hot path carries explicit ablations (DESIGN.md §7–§8):
//   *_Scan vs *_Alias   — O(deg) cumulative scan vs O(1) alias tables,
//                         on the youtube analog at default scale (200k
//                         nodes), where backward walks keep hitting hubs;
//   *_Alias vs *_CompactAlias — 16-byte exact-threshold slots vs the
//                         12-byte float32 compact index;
//   *_VectorPaths vs *_Arena — per-path std::vector collection vs the
//                         flat PathArena;
//   BM_BulkType1Sample/T — counter-stream bulk sampling at T pool threads
//                         (bit-identical output at every T).
//
// Governance telemetry rides along as benchmark counters so the perf
// trajectory records it per run: index bytes/slot (BM_SamplingIndexBuild*),
// DKLR samples drawn vs used under the adaptive schedule (BM_DklrPmax),
// and the Planner governor's eviction/charged-byte counters
// (BM_PlannerGovernedServe).
//
// Run with --json to additionally write BENCH_sampling.json (the Google
// Benchmark JSON report); CI uploads it as the perf-trajectory artifact
// and asserts the governance counters are present.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string_view>
#include <vector>

#include "core/datasets.hpp"
#include "core/pair_sampler.hpp"
#include "core/planner.hpp"
#include "cover/setfamily.hpp"
#include "diffusion/bulk_sampler.hpp"
#include "diffusion/dklr.hpp"
#include "diffusion/forward_process.hpp"
#include "diffusion/montecarlo.hpp"
#include "diffusion/path_arena.hpp"
#include "diffusion/realization.hpp"
#include "diffusion/sampling_index.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace af;

/// Wiki-analog scale (Table I row 1): cheap enough for the evaluator and
/// forward-process benches.
struct Fixture {
  Graph graph;
  NodeId s = 0;
  NodeId t = 0;

  static const Fixture& get() {
    static Fixture fx = [] {
      Fixture f;
      Rng rng(1);
      f.graph = barabasi_albert(7'000, 15, rng)
                    .build(WeightScheme::inverse_degree());
      PairSamplerConfig cfg;
      cfg.estimate_samples = 2'000;
      const auto pair = sample_pair(f.graph, cfg, rng);
      f.s = pair ? pair->s : 0;
      f.t = pair ? pair->t : 2;
      return f;
    }();
    return fx;
  }
};

/// The youtube analog at default scale (200k nodes, BA attach 5) — the
/// ROADMAP's scale target for the sampling hot path.
struct YoutubeFixture {
  Graph graph;
  NodeId s = 0;
  NodeId t = 0;

  static const YoutubeFixture& get() {
    static YoutubeFixture fx = [] {
      YoutubeFixture f;
      Rng rng(2);
      f.graph = make_dataset(dataset_spec("youtube"), rng);
      PairSamplerConfig cfg;
      cfg.estimate_samples = 2'000;
      const auto pair = sample_pair(f.graph, cfg, rng);
      f.s = pair ? pair->s : 0;
      f.t = pair ? pair->t : 2;
      return f;
    }();
    return fx;
  }
};

// ------------------------------------------------- alias vs scan (walks)

void BM_ReversePathSample_Scan(benchmark::State& state) {
  const auto& fx = YoutubeFixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const ScanSelectionSampler scan(fx.graph);
  ReversePathSampler sampler(inst, scan);
  std::vector<NodeId> path;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_into(rng, path));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReversePathSample_Scan);

void BM_ReversePathSample_Alias(benchmark::State& state) {
  const auto& fx = YoutubeFixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  ReversePathSampler sampler(inst, index);
  std::vector<NodeId> path;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_into(rng, path));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReversePathSample_Alias);

void BM_ReversePathSample_CompactAlias(benchmark::State& state) {
  const auto& fx = YoutubeFixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const CompactSamplingIndex index(fx.graph);
  ReversePathSampler sampler(inst, index);
  std::vector<NodeId> path;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_into(rng, path));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["index_bytes_per_slot"] =
      static_cast<double>(CompactSamplingIndex::bytes_per_slot());
}
BENCHMARK(BM_ReversePathSample_CompactAlias);

void BM_SamplingIndexBuild(benchmark::State& state) {
  const auto& fx = YoutubeFixture::get();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const SamplingIndex index(fx.graph);
    benchmark::DoNotOptimize(index.num_slots());
    bytes = index.memory_bytes();
  }
  state.counters["index_total_bytes"] = static_cast<double>(bytes);
  state.counters["index_bytes_per_slot"] =
      static_cast<double>(SamplingIndex::bytes_per_slot());
}
BENCHMARK(BM_SamplingIndexBuild);

void BM_SamplingIndexBuild_Compact(benchmark::State& state) {
  const auto& fx = YoutubeFixture::get();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const CompactSamplingIndex index(fx.graph);
    benchmark::DoNotOptimize(index.num_slots());
    bytes = index.memory_bytes();
  }
  state.counters["index_total_bytes"] = static_cast<double>(bytes);
  state.counters["index_bytes_per_slot"] =
      static_cast<double>(CompactSamplingIndex::bytes_per_slot());
}
BENCHMARK(BM_SamplingIndexBuild_Compact);

// ---------------------------------------------- arena vs vector (paths)

constexpr std::uint64_t kFamilyDraws = 20'000;

void BM_Type1Paths_VectorPaths(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  ReversePathSampler sampler(inst, index);
  Rng rng(3);
  for (auto _ : state) {
    // The pre-refactor collection: one heap vector per kept path.
    std::vector<std::vector<NodeId>> paths;
    for (std::uint64_t i = 0; i < kFamilyDraws; ++i) {
      TgSample tg = sampler.sample(rng);
      if (tg.type1) paths.push_back(std::move(tg.path));
    }
    benchmark::DoNotOptimize(paths.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kFamilyDraws));
}
BENCHMARK(BM_Type1Paths_VectorPaths);

void BM_Type1Paths_Arena(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  ReversePathSampler sampler(inst, index);
  Rng rng(3);
  std::vector<NodeId> buf;
  for (auto _ : state) {
    PathArena arena;
    for (std::uint64_t i = 0; i < kFamilyDraws; ++i) {
      if (sampler.sample_into(rng, buf)) arena.push_path(buf);
    }
    benchmark::DoNotOptimize(arena.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kFamilyDraws));
}
BENCHMARK(BM_Type1Paths_Arena);

// ------------------------------------------- threaded bulk fan-out

void BM_BulkType1Sample(benchmark::State& state) {
  const auto& fx = YoutubeFixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  constexpr std::uint64_t kCount = 16'384;
  for (auto _ : state) {
    const BulkType1Paths bulk =
        sample_type1_bulk(inst, index, 0, kCount, 7, &pool);
    benchmark::DoNotOptimize(bulk.positions.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kCount));
}
BENCHMARK(BM_BulkType1Sample)->Arg(1)->Arg(2)->Arg(4);

// -------------------------------------------------- classic primitives

void BM_ForwardProcessFullInvite(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  ForwardProcess proc(inst);
  const InvitationSet full = InvitationSet::full(inst);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proc.run(full, rng).target_reached);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ForwardProcessFullInvite);

void BM_FullRealization(benchmark::State& state) {
  const auto& fx = Fixture::get();
  Rng rng(4);
  std::vector<NodeId> real;  // out-param overload: no per-draw alloc
  for (auto _ : state) {
    sample_full_realization(fx.graph, rng, real);
    benchmark::DoNotOptimize(real.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullRealization);

void BM_EstimateF_Reverse10k(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  MonteCarloEvaluator mc(inst);
  const InvitationSet full = InvitationSet::full(inst);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.estimate_f(full, 10'000, rng).successes);
  }
}
BENCHMARK(BM_EstimateF_Reverse10k);

void BM_DklrPmax(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  Rng rng(6);
  DklrConfig cfg;
  cfg.epsilon = 0.2;
  cfg.delta = 0.05;
  cfg.max_samples = 500'000;
  DklrResult last;
  for (auto _ : state) {
    last = estimate_pmax_dklr(inst, index, rng, cfg);
    benchmark::DoNotOptimize(last.estimate);
  }
  // Adaptive-schedule telemetry (DESIGN.md §8): walks generated vs the
  // stopping draw, and what the old fixed 8192-sample blocks would have
  // generated for the same stream.
  state.counters["dklr_samples_used"] =
      static_cast<double>(last.samples_used);
  state.counters["dklr_samples_drawn"] =
      static_cast<double>(last.samples_drawn);
  state.counters["dklr_fixed_block_drawn"] = static_cast<double>(
      std::min((last.samples_used + 8191) / 8192 * 8192, cfg.max_samples));
}
BENCHMARK(BM_DklrPmax);

// ------------------------------------------- governed planner serving

void BM_PlannerGovernedServe(benchmark::State& state) {
  // The memory-governor scenario: many pairs served under a byte budget
  // sized to half the ungoverned footprint, so the LRU must keep
  // evicting and re-admitting pair pools (bit-identically) while
  // serving. Counters expose the governor's accounting for the perf
  // trajectory.
  const auto& fx = Fixture::get();
  std::vector<QuerySpec> queries;
  for (NodeId u = 0; queries.size() < 6 && u < 100; ++u) {
    const NodeId v = 3000 + u;
    if (fx.graph.has_edge(u, v)) continue;
    queries.push_back(
        {u, v, MaximizeSpec{.budget = 4, .realizations = 4'000}});
  }

  PlannerOptions opts;
  opts.threads = 2;
  {
    Planner unbounded(fx.graph, opts);
    unbounded.plan_batch(queries);
    opts.cache_budget_bytes =
        unbounded.cache_stats().charged_bytes / 2;
  }

  PlannerCacheStats stats;
  for (auto _ : state) {
    Planner governed(fx.graph, opts);
    const auto results = governed.plan_batch(queries);
    benchmark::DoNotOptimize(results.size());
    stats = governed.cache_stats();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * queries.size()));
  state.counters["cache_evictions"] = static_cast<double>(stats.evictions);
  state.counters["cache_charged_bytes"] =
      static_cast<double>(stats.charged_bytes);
  state.counters["cache_budget_bytes"] =
      static_cast<double>(stats.budget_bytes);
  state.counters["cache_entries"] = static_cast<double>(stats.entries);
}
BENCHMARK(BM_PlannerGovernedServe);

}  // namespace

int main(int argc, char** argv) {
  // --json: additionally write BENCH_sampling.json (Google Benchmark's
  // JSON reporter) — the file CI uploads as the perf-trajectory artifact.
  std::vector<char*> args(argv, argv + argc);
  bool json = false;
  args.erase(std::remove_if(args.begin(), args.end(),
                            [&](char* a) {
                              if (std::string_view(a) == "--json") {
                                json = true;
                                return true;
                              }
                              return false;
                            }),
             args.end());
  std::string out_flag = "--benchmark_out=BENCH_sampling.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (json) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
