// Micro-benchmarks: diffusion primitives — reverse path sampling (the
// inner loop of RAF), forward Process-1 simulation, full realization
// materialization, and DKLR estimation.
//
// The sampling hot path carries explicit ablations (DESIGN.md §7–§8):
//   *_Scan vs *_Alias   — O(deg) cumulative scan vs O(1) alias tables,
//                         on the youtube analog at default scale (200k
//                         nodes), where backward walks keep hitting hubs;
//   *_Alias vs *_CompactAlias — 16-byte exact-threshold slots vs the
//                         12-byte float32 compact index;
//   *_VectorPaths vs *_Arena — per-path std::vector collection vs the
//                         flat PathArena;
//   BM_BulkType1Sample/T — counter-stream bulk sampling at T pool threads
//                         (bit-identical output at every T).
//
// Governance telemetry rides along as benchmark counters so the perf
// trajectory records it per run: index bytes/slot (BM_SamplingIndexBuild*),
// DKLR samples drawn vs used under the adaptive schedule (BM_DklrPmax),
// and the Planner governor's eviction/charged-byte counters
// (BM_PlannerGovernedServe).
//
// Run with --json to additionally write BENCH_sampling.json (the Google
// Benchmark JSON report); CI uploads it as the perf-trajectory artifact
// and asserts the governance counters are present.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string_view>
#include <vector>

#include "core/datasets.hpp"
#include "core/pair_sampler.hpp"
#include "core/planner.hpp"
#include "cover/setfamily.hpp"
#include "diffusion/bulk_sampler.hpp"
#include "diffusion/dklr.hpp"
#include "diffusion/index_replicas.hpp"
#include "diffusion/forward_process.hpp"
#include "diffusion/montecarlo.hpp"
#include "diffusion/path_arena.hpp"
#include "diffusion/realization.hpp"
#include "diffusion/sampling_index.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/cpu.hpp"
#include "util/numa.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace af;

/// Wiki-analog scale (Table I row 1): cheap enough for the evaluator and
/// forward-process benches.
struct Fixture {
  Graph graph;
  NodeId s = 0;
  NodeId t = 0;

  static const Fixture& get() {
    static Fixture fx = [] {
      Fixture f;
      Rng rng(1);
      f.graph = barabasi_albert(7'000, 15, rng)
                    .build(WeightScheme::inverse_degree());
      PairSamplerConfig cfg;
      cfg.estimate_samples = 2'000;
      const auto pair = sample_pair(f.graph, cfg, rng);
      f.s = pair ? pair->s : 0;
      f.t = pair ? pair->t : 2;
      return f;
    }();
    return fx;
  }
};

/// The youtube analog at default scale (200k nodes, BA attach 5) — the
/// ROADMAP's scale target for the sampling hot path.
struct YoutubeFixture {
  Graph graph;
  NodeId s = 0;
  NodeId t = 0;

  static const YoutubeFixture& get() {
    static YoutubeFixture fx = [] {
      YoutubeFixture f;
      Rng rng(2);
      f.graph = make_dataset(dataset_spec("youtube"), rng);
      PairSamplerConfig cfg;
      cfg.estimate_samples = 2'000;
      const auto pair = sample_pair(f.graph, cfg, rng);
      f.s = pair ? pair->s : 0;
      f.t = pair ? pair->t : 2;
      return f;
    }();
    return fx;
  }
};

// ------------------------------------------------- alias vs scan (walks)

void BM_ReversePathSample_Scan(benchmark::State& state) {
  const auto& fx = YoutubeFixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const ScanSelectionSampler scan(fx.graph);
  ReversePathSampler sampler(inst, scan);
  std::vector<NodeId> path;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_into(rng, path));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReversePathSample_Scan);

void BM_ReversePathSample_Alias(benchmark::State& state) {
  const auto& fx = YoutubeFixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  ReversePathSampler sampler(inst, index);
  std::vector<NodeId> path;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_into(rng, path));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReversePathSample_Alias);

void BM_ReversePathSample_CompactAlias(benchmark::State& state) {
  const auto& fx = YoutubeFixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const CompactSamplingIndex index(fx.graph);
  ReversePathSampler sampler(inst, index);
  std::vector<NodeId> path;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_into(rng, path));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["index_bytes_per_slot"] =
      static_cast<double>(CompactSamplingIndex::bytes_per_slot());
}
BENCHMARK(BM_ReversePathSample_CompactAlias);

void BM_SamplingIndexBuild(benchmark::State& state) {
  const auto& fx = YoutubeFixture::get();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const SamplingIndex index(fx.graph);
    benchmark::DoNotOptimize(index.num_slots());
    bytes = index.memory_bytes();
  }
  state.counters["index_total_bytes"] = static_cast<double>(bytes);
  state.counters["index_bytes_per_slot"] =
      static_cast<double>(SamplingIndex::bytes_per_slot());
}
BENCHMARK(BM_SamplingIndexBuild);

void BM_SamplingIndexBuild_Compact(benchmark::State& state) {
  const auto& fx = YoutubeFixture::get();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const CompactSamplingIndex index(fx.graph);
    benchmark::DoNotOptimize(index.num_slots());
    bytes = index.memory_bytes();
  }
  state.counters["index_total_bytes"] = static_cast<double>(bytes);
  state.counters["index_bytes_per_slot"] =
      static_cast<double>(CompactSamplingIndex::bytes_per_slot());
}
BENCHMARK(BM_SamplingIndexBuild_Compact);

// ---------------------------------------------- arena vs vector (paths)

constexpr std::uint64_t kFamilyDraws = 20'000;

void BM_Type1Paths_VectorPaths(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  ReversePathSampler sampler(inst, index);
  Rng rng(3);
  for (auto _ : state) {
    // The pre-refactor collection: one heap vector per kept path.
    std::vector<std::vector<NodeId>> paths;
    for (std::uint64_t i = 0; i < kFamilyDraws; ++i) {
      TgSample tg = sampler.sample(rng);
      if (tg.type1) paths.push_back(std::move(tg.path));
    }
    benchmark::DoNotOptimize(paths.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kFamilyDraws));
}
BENCHMARK(BM_Type1Paths_VectorPaths);

void BM_Type1Paths_Arena(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  ReversePathSampler sampler(inst, index);
  Rng rng(3);
  std::vector<NodeId> buf;
  for (auto _ : state) {
    PathArena arena;
    for (std::uint64_t i = 0; i < kFamilyDraws; ++i) {
      if (sampler.sample_into(rng, buf)) arena.push_path(buf);
    }
    benchmark::DoNotOptimize(arena.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kFamilyDraws));
}
BENCHMARK(BM_Type1Paths_Arena);

// ------------------------------- backward-walk kernel ns/step ablation

/// Counts selection draws while preserving the inner strategy's batch
/// kernel — used once per config to pre-measure the deterministic step
/// count of a stream window, so the timed runs can report real ns/step.
class CountingSampler final : public SelectionSampler {
 public:
  explicit CountingSampler(const SelectionSampler& inner) : inner_(&inner) {}

  NodeId sample_selection(NodeId v, Rng& rng) const override {
    ++steps_;
    return inner_->sample_selection(v, rng);
  }
  void sample_selection_batch(const NodeId* cur, Rng* rng, NodeId* out,
                              std::size_t n) const override {
    steps_ += n;
    inner_->sample_selection_batch(cur, rng, out, n);
  }
  std::uint64_t steps() const { return steps_; }

 private:
  const SelectionSampler* inner_;
  mutable std::uint64_t steps_ = 0;
};

/// The PR-4 walker, reproduced verbatim for the ablation's baseline: one
/// virtual sample_selection call per lane per step, path-scan cycle
/// detection on every step (no Bloom gate), no batching, no prefetch —
/// exactly the loop this PR's tentpole replaced. Kept here (not in the
/// library) because its only remaining job is to be measured against.
template <std::size_t kLanes>
void pr4_run_lanes_flags(const FriendingInstance& inst,
                         const SelectionSampler& sel, std::uint64_t count,
                         std::uint64_t root, std::uint8_t* out) {
  struct Lane {
    Rng rng{0};
    std::uint64_t index = 0;
    NodeId cur = 0;
    std::vector<NodeId> path;
    bool active = false;
  };
  const NodeId t = inst.target();
  std::array<Lane, kLanes> lanes;
  std::uint64_t next = 0;
  const auto launch = [&](Lane& ln) {
    if (next >= count) {
      ln.active = false;
      return;
    }
    ln.index = next++;
    ln.rng.reseed(stream_sample_seed(root, ln.index));
    ln.cur = t;
    ln.path.clear();
    ln.path.push_back(t);
    ln.active = true;
  };
  for (auto& ln : lanes) launch(ln);
  bool any = true;
  while (any) {
    any = false;
    for (auto& ln : lanes) {
      if (!ln.active) continue;
      any = true;
      const NodeId nxt = sel.sample_selection(ln.cur, ln.rng);
      const WalkStep step = classify_walk_step(inst, nxt, ln.path);
      if (step == WalkStep::kContinue) {
        ln.path.push_back(nxt);
        ln.cur = nxt;
        continue;
      }
      out[ln.index] = step == WalkStep::kReachedNs ? 1 : 0;
      launch(ln);
    }
  }
}

constexpr std::uint64_t kWalkCount = 16'384;
constexpr std::uint64_t kWalkRoot = 7;

/// Pre-measures the window's deterministic step count (same for every
/// walker — the streams fix the walks) so walk rows report ns/step.
std::uint64_t walk_window_steps(const FriendingInstance& inst,
                                const SelectionSampler& sel,
                                const BulkWalkConfig& cfg) {
  const CountingSampler counter(sel);
  std::vector<std::uint8_t> flags(kWalkCount);
  sample_type1_flags(inst, counter, 0, kWalkCount, kWalkRoot, nullptr,
                     flags.data(), cfg);
  return counter.steps();
}

/// Shared body: times sample_type1_flags over one stream window (single
/// thread — the ablation isolates the kernel, not the pool) and reports
/// steps/s so ns/step is 1e9 / items-per-second.
void run_walk_bench(benchmark::State& state, const SelectionSampler& sel,
                    const BulkWalkConfig& cfg) {
  const auto& fx = YoutubeFixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const std::uint64_t steps = walk_window_steps(inst, sel, cfg);
  std::vector<std::uint8_t> flags(kWalkCount);
  for (auto _ : state) {
    sample_type1_flags(inst, sel, 0, kWalkCount, kWalkRoot, nullptr,
                       flags.data(), cfg);
    benchmark::DoNotOptimize(flags.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * steps));
  state.counters["steps_per_walk"] =
      static_cast<double>(steps) / static_cast<double>(kWalkCount);
}

void BM_BulkWalk_Scalar(benchmark::State& state) {
  // PR-4 walker, one lane: the no-interleaving baseline (4 KiB pages,
  // virtual per-step dispatch, scan cycle detection).
  const auto& fx = YoutubeFixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph, SimdLevel::kScalar,
                            /*huge_pages=*/false);
  const std::uint64_t steps = walk_window_steps(inst, index, {});
  std::vector<std::uint8_t> flags(kWalkCount);
  for (auto _ : state) {
    pr4_run_lanes_flags<1>(inst, index, kWalkCount, kWalkRoot, flags.data());
    benchmark::DoNotOptimize(flags.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * steps));
}
BENCHMARK(BM_BulkWalk_Scalar);

void BM_BulkWalk_Interleaved(benchmark::State& state) {
  // The faithful PR-4 configuration the ISSUE-5 acceptance ratio is
  // measured against: 16 interleaved lanes, one virtual call per lane
  // per step, malloc-backed tables on 4 KiB pages, full path scan per
  // step, no prefetch.
  const auto& fx = YoutubeFixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph, SimdLevel::kScalar,
                            /*huge_pages=*/false);
  const std::uint64_t steps = walk_window_steps(inst, index, {});
  std::vector<std::uint8_t> flags(kWalkCount);
  for (auto _ : state) {
    pr4_run_lanes_flags<16>(inst, index, kWalkCount, kWalkRoot,
                            flags.data());
    benchmark::DoNotOptimize(flags.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * steps));
  state.counters["steps_per_walk"] =
      static_cast<double>(steps) / static_cast<double>(kWalkCount);
}
BENCHMARK(BM_BulkWalk_Interleaved);

/// Dispatch telemetry shared by every kernel-sensitive BM_BulkWalk row:
/// walk_simd_level is the portfolio ordinal (0 = scalar, 1 = avx2,
/// 2 = avx512, 3 = neon — util/cpu's simd_kernel_ordinal) and the row's
/// label carries the level string, so BENCH_sampling.json records the
/// dispatched kernel both machine- and human-readably.
void set_walk_dispatch_counters(benchmark::State& state,
                                const SamplingIndex& index) {
  state.counters["walk_simd_level"] =
      static_cast<double>(simd_kernel_ordinal(index.simd_level()));
  state.SetLabel(to_string(index.simd_level()));
}

void BM_BulkWalk_Simd(benchmark::State& state) {
  // 16 lanes through the forced-AVX2 batch kernel (degrades to scalar
  // on builds/CPUs without it — walk_simd_level says which ran), no
  // prefetch. Ablation row: production uses the calibrated dispatch
  // (BM_BulkWalk_Production).
  const SamplingIndex index(YoutubeFixture::get().graph, SimdLevel::kAvx2);
  run_walk_bench(state, index, {.lanes = 16, .prefetch = false});
  set_walk_dispatch_counters(state, index);
}
BENCHMARK(BM_BulkWalk_Simd);

void BM_BulkWalk_SimdPrefetch(benchmark::State& state) {
  // Forced-AVX2 + exact-slot prefetch one step ahead: the "SIMD +
  // prefetch" ablation row.
  const SamplingIndex index(YoutubeFixture::get().graph, SimdLevel::kAvx2);
  run_walk_bench(state, index, {.lanes = 16, .prefetch = true});
  set_walk_dispatch_counters(state, index);
}
BENCHMARK(BM_BulkWalk_SimdPrefetch);

void BM_BulkWalk_Avx512(benchmark::State& state) {
  // Forced-AVX-512 + prefetch: 8-lane masked gathers (degrades down the
  // x86 family — AVX2, then scalar — where unavailable; the label and
  // walk_simd_level say which leg actually ran).
  const SamplingIndex index(YoutubeFixture::get().graph,
                            SimdLevel::kAvx512);
  run_walk_bench(state, index, {.lanes = 16, .prefetch = true});
  set_walk_dispatch_counters(state, index);
}
BENCHMARK(BM_BulkWalk_Avx512);

void BM_BulkWalk_Neon(benchmark::State& state) {
  // Forced-NEON + prefetch: the AArch64 vector leg (scalar everywhere
  // else — on x86 runners this row doubles as a second scalar baseline).
  const SamplingIndex index(YoutubeFixture::get().graph, SimdLevel::kNeon);
  run_walk_bench(state, index, {.lanes = 16, .prefetch = true});
  set_walk_dispatch_counters(state, index);
}
BENCHMARK(BM_BulkWalk_Neon);

void BM_BulkWalk_Production(benchmark::State& state) {
  // What the Planner actually runs — kAuto (the measured N-way kernel
  // tournament, DESIGN.md §9), huge-page tables, Bloom-gated
  // classification, exact-slot prefetch.
  const SamplingIndex index(YoutubeFixture::get().graph);
  run_walk_bench(state, index, {.lanes = 16, .prefetch = true});
  set_walk_dispatch_counters(state, index);
  state.counters["walk_huge_pages"] = index.on_huge_pages() ? 1.0 : 0.0;
  // Tournament audit: every candidate's measured ns/step, keyed by
  // portfolio ordinal. 0 = that level was not measured (not compiled,
  // not supported by this CPU, or dispatch was forced by AF_SIMD) —
  // the counters are always present so the CI assertions hold on every
  // runner.
  double calib_ns[kSimdKernelCount] = {0.0, 0.0, 0.0, 0.0};
  if (const KernelCalibration* calib = index.calibration()) {
    for (const KernelTiming& t : calib->timings) {
      calib_ns[simd_kernel_ordinal(t.level)] = t.ns_per_step;
    }
  }
  state.counters["calib_ns_scalar"] = calib_ns[0];
  state.counters["calib_ns_avx2"] = calib_ns[1];
  state.counters["calib_ns_avx512"] = calib_ns[2];
  state.counters["calib_ns_neon"] = calib_ns[3];
}
BENCHMARK(BM_BulkWalk_Production);

void BM_BulkWalk_SpeedupVsPr4(benchmark::State& state) {
  // The ISSUE-5 acceptance ratio, measured fairly: on a noisy host,
  // benchmarks that run back-to-back land in different frequency /
  // steal phases, so a ratio of two separate rows is unreliable. This
  // row ALTERNATES the faithful PR-4 walker and the production path
  // within every iteration and reports best-of over the whole run —
  // phase noise hits both sides equally and cancels out of
  // walk_speedup_vs_pr4.
  const auto& fx = YoutubeFixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex pr4_index(fx.graph, SimdLevel::kScalar,
                                /*huge_pages=*/false);
  const SamplingIndex prod_index(fx.graph);
  const std::uint64_t steps = walk_window_steps(inst, prod_index, {});
  std::vector<std::uint8_t> flags(kWalkCount);
  double best_pr4 = 1e30;
  double best_prod = 1e30;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    pr4_run_lanes_flags<16>(inst, pr4_index, kWalkCount, kWalkRoot,
                            flags.data());
    auto t1 = std::chrono::steady_clock::now();
    sample_type1_flags(inst, prod_index, 0, kWalkCount, kWalkRoot, nullptr,
                       flags.data(), {.lanes = 16, .prefetch = true});
    auto t2 = std::chrono::steady_clock::now();
    best_pr4 =
        std::min(best_pr4, std::chrono::duration<double>(t1 - t0).count());
    best_prod =
        std::min(best_prod, std::chrono::duration<double>(t2 - t1).count());
    benchmark::DoNotOptimize(flags.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * 2 * steps));
  state.counters["pr4_ns_per_step"] =
      best_pr4 * 1e9 / static_cast<double>(steps);
  state.counters["production_ns_per_step"] =
      best_prod * 1e9 / static_cast<double>(steps);
  state.counters["walk_speedup_vs_pr4"] = best_pr4 / best_prod;
}
BENCHMARK(BM_BulkWalk_SpeedupVsPr4)->MinTime(2.0);

// ------------------------------------------- threaded bulk fan-out

void BM_BulkType1Sample(benchmark::State& state) {
  const auto& fx = YoutubeFixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  // The production sharding path: node-replicated index (one replica
  // per NUMA node; exactly one on single-node hosts) resolved per shard,
  // workers pinned round-robin when replicated.
  const IndexReplicas replicas(
      [&]() -> std::unique_ptr<const SelectionSampler> {
        return std::make_unique<const SamplingIndex>(fx.graph);
      });
  ThreadPool pool(static_cast<std::size_t>(state.range(0)),
                  ThreadPoolOptions{.pin_numa = replicas.count() > 1});
  constexpr std::uint64_t kCount = 16'384;
  for (auto _ : state) {
    const BulkType1Paths bulk =
        sample_type1_bulk(inst, replicas, 0, kCount, 7, &pool);
    benchmark::DoNotOptimize(bulk.positions.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kCount));
  // Per-shard placement telemetry (DESIGN.md §9): how many physical
  // index copies exist and how many nodes shards can land on.
  state.counters["index_replicas"] = static_cast<double>(replicas.count());
  state.counters["numa_nodes"] =
      static_cast<double>(numa_topology().num_nodes());
}
BENCHMARK(BM_BulkType1Sample)->Arg(1)->Arg(2)->Arg(4);

// -------------------------------------------------- classic primitives

void BM_ForwardProcessFullInvite(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  ForwardProcess proc(inst);
  const InvitationSet full = InvitationSet::full(inst);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proc.run(full, rng).target_reached);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ForwardProcessFullInvite);

void BM_FullRealization(benchmark::State& state) {
  const auto& fx = Fixture::get();
  Rng rng(4);
  std::vector<NodeId> real;  // out-param overload: no per-draw alloc
  for (auto _ : state) {
    sample_full_realization(fx.graph, rng, real);
    benchmark::DoNotOptimize(real.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullRealization);

void BM_EstimateF_Reverse10k(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  MonteCarloEvaluator mc(inst);
  const InvitationSet full = InvitationSet::full(inst);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.estimate_f(full, 10'000, rng).successes);
  }
}
BENCHMARK(BM_EstimateF_Reverse10k);

void BM_DklrPmax(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  Rng rng(6);
  DklrConfig cfg;
  cfg.epsilon = 0.2;
  cfg.delta = 0.05;
  cfg.max_samples = 500'000;
  DklrResult last;
  for (auto _ : state) {
    last = estimate_pmax_dklr(inst, index, rng, cfg);
    benchmark::DoNotOptimize(last.estimate);
  }
  // Adaptive-schedule telemetry (DESIGN.md §8): walks generated vs the
  // stopping draw, and what the old fixed 8192-sample blocks would have
  // generated for the same stream.
  state.counters["dklr_samples_used"] =
      static_cast<double>(last.samples_used);
  state.counters["dklr_samples_drawn"] =
      static_cast<double>(last.samples_drawn);
  state.counters["dklr_fixed_block_drawn"] = static_cast<double>(
      std::min((last.samples_used + 8191) / 8192 * 8192, cfg.max_samples));
}
BENCHMARK(BM_DklrPmax);

// ------------------------------------------- governed planner serving

void BM_PlannerGovernedServe(benchmark::State& state) {
  // The memory-governor scenario: many pairs served under a byte budget
  // sized to half the ungoverned footprint, so the LRU must keep
  // evicting and re-admitting pair pools (bit-identically) while
  // serving. Counters expose the governor's accounting for the perf
  // trajectory.
  const auto& fx = Fixture::get();
  std::vector<QuerySpec> queries;
  for (NodeId u = 0; queries.size() < 6 && u < 100; ++u) {
    const NodeId v = 3000 + u;
    if (fx.graph.has_edge(u, v)) continue;
    queries.push_back(
        {u, v, MaximizeSpec{.budget = 4, .realizations = 4'000}});
  }

  PlannerOptions opts;
  opts.threads = 2;
  {
    Planner unbounded(fx.graph, opts);
    unbounded.plan_batch(queries);
    opts.cache_budget_bytes =
        unbounded.cache_stats().charged_bytes / 2;
  }

  PlannerCacheStats stats;
  for (auto _ : state) {
    Planner governed(fx.graph, opts);
    const auto results = governed.plan_batch(queries);
    benchmark::DoNotOptimize(results.size());
    stats = governed.cache_stats();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * queries.size()));
  state.counters["cache_evictions"] = static_cast<double>(stats.evictions);
  state.counters["cache_charged_bytes"] =
      static_cast<double>(stats.charged_bytes);
  state.counters["cache_budget_bytes"] =
      static_cast<double>(stats.budget_bytes);
  state.counters["cache_entries"] = static_cast<double>(stats.entries);
}
BENCHMARK(BM_PlannerGovernedServe);

}  // namespace

int main(int argc, char** argv) {
  // --json: additionally write BENCH_sampling.json (Google Benchmark's
  // JSON reporter) — the file CI uploads as the perf-trajectory artifact.
  std::vector<char*> args(argv, argv + argc);
  bool json = false;
  args.erase(std::remove_if(args.begin(), args.end(),
                            [&](char* a) {
                              if (std::string_view(a) == "--json") {
                                json = true;
                                return true;
                              }
                              return false;
                            }),
             args.end());
  std::string out_flag = "--benchmark_out=BENCH_sampling.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (json) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
