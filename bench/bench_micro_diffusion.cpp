// Micro-benchmarks: diffusion primitives — reverse path sampling (the
// inner loop of RAF), forward Process-1 simulation, full realization
// materialization, and DKLR estimation.
#include <benchmark/benchmark.h>

#include "core/pair_sampler.hpp"
#include "diffusion/dklr.hpp"
#include "diffusion/forward_process.hpp"
#include "diffusion/montecarlo.hpp"
#include "diffusion/realization.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace {

using namespace af;

struct Fixture {
  Graph graph;
  NodeId s = 0;
  NodeId t = 0;

  static const Fixture& get() {
    static Fixture fx = [] {
      Fixture f;
      Rng rng(1);
      f.graph = barabasi_albert(7'000, 15, rng)
                    .build(WeightScheme::inverse_degree());
      PairSamplerConfig cfg;
      cfg.estimate_samples = 2'000;
      const auto pair = sample_pair(f.graph, cfg, rng);
      f.s = pair ? pair->s : 0;
      f.t = pair ? pair->t : 2;
      return f;
    }();
    return fx;
  }
};

void BM_ReversePathSample(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  ReversePathSampler sampler(inst);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng).type1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReversePathSample);

void BM_ForwardProcessFullInvite(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  ForwardProcess proc(inst);
  const InvitationSet full = InvitationSet::full(inst);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proc.run(full, rng).target_reached);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ForwardProcessFullInvite);

void BM_FullRealization(benchmark::State& state) {
  const auto& fx = Fixture::get();
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_full_realization(fx.graph, rng).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullRealization);

void BM_EstimateF_Reverse10k(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  MonteCarloEvaluator mc(inst);
  const InvitationSet full = InvitationSet::full(inst);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.estimate_f(full, 10'000, rng).successes);
  }
}
BENCHMARK(BM_EstimateF_Reverse10k);

void BM_DklrPmax(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(6);
  DklrConfig cfg;
  cfg.epsilon = 0.2;
  cfg.delta = 0.05;
  cfg.max_samples = 500'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_pmax_dklr(inst, rng, cfg).estimate);
  }
}
BENCHMARK(BM_DklrPmax);

}  // namespace

BENCHMARK_MAIN();
