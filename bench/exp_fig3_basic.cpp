// Fig. 3 reproduction ("Basic Experiment"): average acceptance probability
// of RAF vs HD vs SP at equal invitation-set size, as a function of α,
// against p_max — one series block per dataset.
//
// Protocol (Sec. IV-A): for each accepted pair, run RAF to get I_RAF, give
// HD and SP the same size budget |I_RAF|, and Monte-Carlo evaluate all
// three invitation sets plus p_max.
//
// The α-sweep on each pair goes through one af::Planner batch: the DKLR
// p*max estimate, V_max and the realization pool are computed once per
// pair and shared across every α (the Sec. III-B reuse the paper only
// hints at).
#include <iostream>
#include <vector>

#include "core/baselines.hpp"
#include "core/planner.hpp"
#include "exp_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace af;
  using namespace af::bench;

  ArgParser args("exp_fig3_basic",
                 "Fig. 3: acceptance probability vs alpha for RAF/HD/SP");
  add_common_flags(args, /*default_pairs=*/5);
  args.add_string("alphas", "0.05,0.1,0.15,0.2,0.25,0.3",
                  "comma-separated alpha values");
  args.add_int("max-realizations", 200'000, "cap on l per RAF run");
  args.add_int("threads", 0, "planner batch threads (0 = hardware)");
  if (!args.parse(argc, argv)) return 1;
  const ExperimentEnv env = read_env(args);
  const std::size_t pairs = env.full ? 500 : env.pairs;

  const std::vector<double> alphas =
      parse_double_list(args.get_string("alphas"));

  Rng rng(env.seed);
  std::cout << "== Fig. 3: basic experiment (acceptance probability vs "
               "alpha) ==\n";
  for (const auto& name : split_csv_list(env.datasets)) {
    const PreparedDataset data = prepare_dataset(name, env, pairs, rng);
    if (data.pairs.empty()) {
      std::cout << "[" << name << "] no pairs accepted — skipped\n";
      continue;
    }

    PlannerOptions options;
    options.base_seed = env.seed;
    options.threads = static_cast<std::size_t>(args.get_int("threads"));
    options.pmax_max_samples = 200'000;
    const std::unique_ptr<Planner> planner = make_planner(data, options);

    std::vector<RunningStats> pmax_s(alphas.size()), raf_s(alphas.size()),
        hd_s(alphas.size()), sp_s(alphas.size()), size_s(alphas.size());
    for (const auto& pair : data.pairs) {
      // One batch per pair: every α reuses the pair's cached state.
      std::vector<QuerySpec> queries;
      for (const double alpha : alphas) {
        MinimizeSpec spec;
        spec.alpha = alpha;
        spec.epsilon = alpha / 10.0;  // ε = 0.01 at the paper's α scale
        spec.big_n = 1000.0;
        spec.max_realizations =
            static_cast<std::uint64_t>(args.get_int("max-realizations"));
        queries.push_back({pair.s, pair.t, spec});
      }
      const std::vector<PlanResult> results = planner->plan_batch(queries);

      const FriendingInstance inst(data.graph, pair.s, pair.t);
      MonteCarloEvaluator mc(inst);
      // p_max is alpha-independent: evaluate it once per pair.
      const double pair_pmax =
          mc.estimate_pmax(env.eval_samples, rng).estimate();
      for (std::size_t a = 0; a < alphas.size(); ++a) {
        const PlanResult& res = results[a];
        if (!res.ok() || res.invitation.empty()) continue;
        const std::size_t k = res.invitation.size();
        pmax_s[a].add(pair_pmax);
        raf_s[a].add(
            mc.estimate_f(res.invitation, env.eval_samples, rng).estimate());
        hd_s[a].add(mc.estimate_f(high_degree_invitation(inst, k),
                                  env.eval_samples, rng)
                        .estimate());
        sp_s[a].add(mc.estimate_f(shortest_path_invitation(inst, k),
                                  env.eval_samples, rng)
                        .estimate());
        size_s[a].add(static_cast<double>(k));
      }
    }

    TableWriter table({"alpha", "pmax", "RAF", "HD", "SP", "|I_RAF|"});
    for (std::size_t a = 0; a < alphas.size(); ++a) {
      table.add_row({TableWriter::fmt(alphas[a], 2),
                     TableWriter::fmt(pmax_s[a].mean(), 4),
                     TableWriter::fmt(raf_s[a].mean(), 4),
                     TableWriter::fmt(hd_s[a].mean(), 4),
                     TableWriter::fmt(sp_s[a].mean(), 4),
                     TableWriter::fmt(size_s[a].mean(), 1)});
    }
    std::cout << "\n[" << name << "] avg over " << data.pairs.size()
              << " pairs\n";
    table.print(std::cout);
    if (!env.csv.empty()) table.write_csv(env.csv + "_fig3_" + name + ".csv");
  }
  return 0;
}
