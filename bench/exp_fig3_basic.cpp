// Fig. 3 reproduction ("Basic Experiment"): average acceptance probability
// of RAF vs HD vs SP at equal invitation-set size, as a function of α,
// against p_max — one series block per dataset.
//
// Protocol (Sec. IV-A): for each accepted pair, run RAF to get I_RAF, give
// HD and SP the same size budget |I_RAF|, and Monte-Carlo evaluate all
// three invitation sets plus p_max.
#include <iostream>

#include "core/baselines.hpp"
#include "core/raf.hpp"
#include "exp_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace af;
  using namespace af::bench;

  ArgParser args("exp_fig3_basic",
                 "Fig. 3: acceptance probability vs alpha for RAF/HD/SP");
  add_common_flags(args, /*default_pairs=*/5);
  args.add_string("alphas", "0.05,0.1,0.15,0.2,0.25,0.3",
                  "comma-separated alpha values");
  args.add_int("max-realizations", 200'000, "cap on l per RAF run");
  if (!args.parse(argc, argv)) return 1;
  const ExperimentEnv env = read_env(args);
  const std::size_t pairs = env.full ? 500 : env.pairs;

  std::vector<double> alphas;
  for (const auto& tok : split_csv_list(args.get_string("alphas"))) {
    alphas.push_back(std::stod(tok));
  }

  Rng rng(env.seed);
  std::cout << "== Fig. 3: basic experiment (acceptance probability vs "
               "alpha) ==\n";
  for (const auto& name : split_csv_list(env.datasets)) {
    const PreparedDataset data = prepare_dataset(name, env, pairs, rng);
    if (data.pairs.empty()) {
      std::cout << "[" << name << "] no pairs accepted — skipped\n";
      continue;
    }

    TableWriter table({"alpha", "pmax", "RAF", "HD", "SP", "|I_RAF|"});
    for (const double alpha : alphas) {
      RafConfig cfg;
      cfg.alpha = alpha;
      cfg.epsilon = alpha / 10.0;  // ε = 0.01 at the paper's α range scale
      cfg.big_n = 1000.0;
      cfg.max_realizations =
          static_cast<std::uint64_t>(args.get_int("max-realizations"));
      cfg.pmax_max_samples = 200'000;
      const RafAlgorithm raf(cfg);

      RunningStats pmax_s, raf_s, hd_s, sp_s, size_s;
      for (const auto& pair : data.pairs) {
        const FriendingInstance inst(data.graph, pair.s, pair.t);
        const RafResult res = raf.run(inst, rng);
        if (res.invitation.empty()) continue;
        const std::size_t k = res.invitation.size();

        MonteCarloEvaluator mc(inst);
        pmax_s.add(mc.estimate_pmax(env.eval_samples, rng).estimate());
        raf_s.add(
            mc.estimate_f(res.invitation, env.eval_samples, rng).estimate());
        hd_s.add(mc.estimate_f(high_degree_invitation(inst, k),
                               env.eval_samples, rng)
                     .estimate());
        sp_s.add(mc.estimate_f(shortest_path_invitation(inst, k),
                               env.eval_samples, rng)
                     .estimate());
        size_s.add(static_cast<double>(k));
      }
      table.add_row({TableWriter::fmt(alpha, 2),
                     TableWriter::fmt(pmax_s.mean(), 4),
                     TableWriter::fmt(raf_s.mean(), 4),
                     TableWriter::fmt(hd_s.mean(), 4),
                     TableWriter::fmt(sp_s.mean(), 4),
                     TableWriter::fmt(size_s.mean(), 1)});
    }
    std::cout << "\n[" << name << "] avg over " << data.pairs.size()
              << " pairs\n";
    table.print(std::cout);
    if (!env.csv.empty()) table.write_csv(env.csv + "_fig3_" + name + ".csv");
  }
  return 0;
}
