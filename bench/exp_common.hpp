// Shared plumbing for the experiment binaries: dataset iteration, pair
// preparation, and Monte-Carlo evaluation with consistent budgets.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/datasets.hpp"
#include "core/pair_sampler.hpp"
#include "diffusion/montecarlo.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace af::bench {

// The experiment flag bundle lives in util/cli (shared with the
// flag-driven examples); these aliases keep the historical bench names.
using af::ExperimentEnv;
using af::split_csv_list;

inline void add_common_flags(ArgParser& args, std::size_t default_pairs) {
  add_experiment_flags(args, default_pairs);
}

inline ExperimentEnv read_env(const ArgParser& args) {
  return read_experiment_env(args);
}

/// A generated dataset with its accepted pairs.
struct PreparedDataset {
  DatasetSpec spec;
  Graph graph;
  std::vector<SampledPair> pairs;
};

/// Generates a dataset analog and samples experiment pairs, logging
/// progress to stderr (experiments print results on stdout only).
inline PreparedDataset prepare_dataset(const std::string& name,
                                       const ExperimentEnv& env,
                                       std::size_t pair_count, Rng& rng) {
  PreparedDataset out{dataset_spec(name, env.full), Graph{}, {}};
  WallTimer timer;
  out.graph = make_dataset(out.spec, rng);
  std::cerr << "[exp] " << name << ": n=" << out.graph.num_nodes()
            << " m=" << out.graph.num_edges() << " generated in "
            << timer.elapsed_seconds() << "s\n";
  timer.reset();
  PairSamplerConfig pcfg;
  pcfg.pmax_threshold = 0.01;  // the paper's filter
  pcfg.pmax_upper = 0.12;      // match the paper's pair population (the
                               // Fig. 3 y-axes top out below ~0.12)
  pcfg.estimate_samples = 2'000;
  out.pairs = sample_pairs(out.graph, pair_count, pcfg, rng);
  std::cerr << "[exp] " << name << ": " << out.pairs.size()
            << " pairs accepted in " << timer.elapsed_seconds() << "s\n";
  return out;
}

/// f(I) estimate with the experiment's evaluation budget.
inline double evaluate_f(const FriendingInstance& inst,
                         const InvitationSet& inv, std::uint64_t samples,
                         Rng& rng) {
  MonteCarloEvaluator mc(inst);
  return mc.estimate_f(inv, samples, rng).estimate();
}

}  // namespace af::bench
