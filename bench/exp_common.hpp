// Shared plumbing for the experiment binaries: dataset iteration, pair
// preparation, and Monte-Carlo evaluation with consistent budgets.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/datasets.hpp"
#include "core/pair_sampler.hpp"
#include "diffusion/montecarlo.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace af::bench {

/// Experiment-wide knobs shared by every exp_* binary.
struct ExperimentEnv {
  bool full = false;
  std::uint64_t seed = 20190707;  // ICDCS'19 vintage
  std::size_t pairs = 0;          // per dataset; 0 = binary default
  std::uint64_t eval_samples = 20'000;
  std::string datasets = "wiki,hepth,hepph,youtube";
  std::string csv;  // optional CSV mirror path prefix
};

/// Registers the shared flags on a parser.
inline void add_common_flags(ArgParser& args, std::size_t default_pairs) {
  args.add_flag("full", "paper-scale parameters (slow)");
  args.add_int("seed", 20190707, "experiment RNG seed");
  args.add_int("pairs", static_cast<std::int64_t>(default_pairs),
               "number of (s,t) pairs per dataset (paper: 500)");
  args.add_int("eval-samples", 20'000,
               "Monte-Carlo samples per f(I) evaluation");
  args.add_string("datasets", "wiki,hepth,hepph,youtube",
                  "comma-separated dataset analogs to run");
  args.add_string("csv", "", "also write results to this CSV path prefix");
}

inline ExperimentEnv read_env(const ArgParser& args) {
  ExperimentEnv env;
  env.full = args.get_flag("full");
  env.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  env.pairs = static_cast<std::size_t>(args.get_int("pairs"));
  env.eval_samples = static_cast<std::uint64_t>(args.get_int("eval-samples"));
  env.datasets = args.get_string("datasets");
  env.csv = args.get_string("csv");
  return env;
}

inline std::vector<std::string> split_csv_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// A generated dataset with its accepted pairs.
struct PreparedDataset {
  DatasetSpec spec;
  Graph graph;
  std::vector<SampledPair> pairs;
};

/// Generates a dataset analog and samples experiment pairs, logging
/// progress to stderr (experiments print results on stdout only).
inline PreparedDataset prepare_dataset(const std::string& name,
                                       const ExperimentEnv& env,
                                       std::size_t pair_count, Rng& rng) {
  PreparedDataset out{dataset_spec(name, env.full), Graph{}, {}};
  WallTimer timer;
  out.graph = make_dataset(out.spec, rng);
  std::cerr << "[exp] " << name << ": n=" << out.graph.num_nodes()
            << " m=" << out.graph.num_edges() << " generated in "
            << timer.elapsed_seconds() << "s\n";
  timer.reset();
  PairSamplerConfig pcfg;
  pcfg.pmax_threshold = 0.01;  // the paper's filter
  pcfg.pmax_upper = 0.12;      // match the paper's pair population (the
                               // Fig. 3 y-axes top out below ~0.12)
  pcfg.estimate_samples = 2'000;
  out.pairs = sample_pairs(out.graph, pair_count, pcfg, rng);
  std::cerr << "[exp] " << name << ": " << out.pairs.size()
            << " pairs accepted in " << timer.elapsed_seconds() << "s\n";
  return out;
}

/// f(I) estimate with the experiment's evaluation budget.
inline double evaluate_f(const FriendingInstance& inst,
                         const InvitationSet& inv, std::uint64_t samples,
                         Rng& rng) {
  MonteCarloEvaluator mc(inst);
  return mc.estimate_f(inv, samples, rng).estimate();
}

}  // namespace af::bench
