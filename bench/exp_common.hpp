// Shared plumbing for the experiment binaries: dataset iteration, pair
// preparation, and Monte-Carlo evaluation with consistent budgets.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/datasets.hpp"
#include "core/pair_sampler.hpp"
#include "core/planner.hpp"
#include "diffusion/montecarlo.hpp"
#include "storage/mapped_dataset.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace af::bench {

// The experiment flag bundle lives in util/cli (shared with the
// flag-driven examples); these aliases keep the historical bench names.
using af::ExperimentEnv;
using af::split_csv_list;

inline void add_common_flags(ArgParser& args, std::size_t default_pairs) {
  add_experiment_flags(args, default_pairs);
}

inline ExperimentEnv read_env(const ArgParser& args) {
  return read_experiment_env(args);
}

/// A generated (or mmap-ed) dataset with its accepted pairs.
struct PreparedDataset {
  DatasetSpec spec;
  Graph graph;
  std::vector<SampledPair> pairs;
  /// Set when the dataset name was a `.af1` path: the container backs
  /// `graph`'s CSR arrays (and possibly prebuilt alias tables), so it
  /// must outlive every Graph/Planner derived from it. shared_ptr lets
  /// PreparedDataset stay copyable.
  std::shared_ptr<storage::MappedDataset> mapped;
};

/// Builds the planner for a prepared dataset: the mapped path adopts the
/// container's prebuilt alias tables (Planner::from_mapped, no index
/// build), the generated path builds them from `graph`.
inline std::unique_ptr<Planner> make_planner(const PreparedDataset& data,
                                             const PlannerOptions& options) {
  return data.mapped ? Planner::from_mapped(*data.mapped, options)
                     : std::make_unique<Planner>(data.graph, options);
}

/// Generates a dataset analog and samples experiment pairs, logging
/// progress to stderr (experiments print results on stdout only). A
/// name ending in `.af1` is treated as a container path and mmap-ed
/// instead of generated (tools/af_index_build produces them).
inline PreparedDataset prepare_dataset(const std::string& name,
                                       const ExperimentEnv& env,
                                       std::size_t pair_count, Rng& rng) {
  PreparedDataset out;
  WallTimer timer;
  if (name.ends_with(".af1")) {
    out.mapped = std::make_shared<storage::MappedDataset>(name);
    out.graph = out.mapped->graph();  // external view over the mapping
    out.spec = DatasetSpec{name, out.graph.num_nodes(), 0,
                           out.graph.num_nodes(), out.graph.num_edges(), 0.0};
    std::cerr << "[exp] " << name << ": n=" << out.graph.num_nodes()
              << " m=" << out.graph.num_edges() << " mapped in "
              << timer.elapsed_seconds() << "s\n";
  } else {
    out.spec = dataset_spec(name, env.full);
    out.graph = make_dataset(out.spec, rng);
    std::cerr << "[exp] " << name << ": n=" << out.graph.num_nodes()
              << " m=" << out.graph.num_edges() << " generated in "
              << timer.elapsed_seconds() << "s\n";
  }
  timer.reset();
  PairSamplerConfig pcfg;
  pcfg.pmax_threshold = 0.01;  // the paper's filter
  pcfg.pmax_upper = 0.12;      // match the paper's pair population (the
                               // Fig. 3 y-axes top out below ~0.12)
  pcfg.estimate_samples = 2'000;
  out.pairs = sample_pairs(out.graph, pair_count, pcfg, rng);
  std::cerr << "[exp] " << name << ": " << out.pairs.size()
            << " pairs accepted in " << timer.elapsed_seconds() << "s\n";
  return out;
}

/// f(I) estimate with the experiment's evaluation budget.
inline double evaluate_f(const FriendingInstance& inst,
                         const InvitationSet& inv, std::uint64_t samples,
                         Rng& rng) {
  MonteCarloEvaluator mc(inst);
  return mc.estimate_f(inv, samples, rng).estimate();
}

}  // namespace af::bench
