// Open-loop load harness for the async serving layer (DESIGN.md §10).
//
// Unlike the bench_micro_* binaries this is NOT a Google Benchmark
// micro-bench: serving latency under load is a property of the whole
// admission pipeline (queue wait + coalescing + execution), so the
// harness drives `Planner::plan_async` the way a front-end would —
// open-loop Poisson arrivals over a Zipf-skewed pair popularity
// distribution — and reports tail latency, not steady-state op cost.
//
//   1. Calibrate: measure the mean sequential service time of the
//      workload query on a few distinct pairs; capacity ≈ workers/mean.
//   2. For each offered-load multiplier m in --loads, submit at rate
//      m·capacity for --duration seconds with exponential inter-arrival
//      gaps, choosing the (s,t) pair per query by Zipf(--zipf-s) rank.
//   3. Report p50/p99/p999 of end-to-end latency (admission → future
//      fulfilment, from StageTimings.async_seconds), completed
//      throughput, and the admission counters (rejected / coalesced /
//      expired) per load point.
//
// Open-loop means arrivals do not wait for completions: past saturation
// the queue fills, kOverloaded rejections climb, and the latency of what
// *is* admitted stays bounded by queue depth — exactly the backpressure
// contract under test. A closed loop would self-throttle and hide all of
// that.
//
// Run with --json to write BENCH_serving.json; CI runs a short smoke
// (--duration 0.3) and asserts the summary fields are present.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/planner.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/weights.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace af;
using Clock = std::chrono::steady_clock;

/// Zipf-ranked pair popularity: weight of rank r is 1/(r+1)^s. Sampled
/// by inverting the precomputed CDF — the skew concentrates traffic on
/// the head pairs, which is what makes pair-affinity coalescing and the
/// pair cache matter under load.
class ZipfPairs {
 public:
  ZipfPairs(std::size_t n, double s) : cdf_(n) {
    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = acc;
    }
    for (double& c : cdf_) c /= acc;
  }

  std::size_t draw(Rng& rng) const {
    const double u = rng.uniform();
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// The first k valid (s,t) pairs — distinct, not already friends.
std::vector<std::pair<NodeId, NodeId>> valid_pairs(const Graph& g,
                                                   std::size_t k) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId s = 0; s < g.num_nodes() && pairs.size() < k; ++s) {
    const NodeId t = g.num_nodes() - 1 - s;
    if (s == t || g.has_edge(s, t)) continue;
    pairs.emplace_back(s, t);
  }
  return pairs;
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct LoadPoint {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;   // completed queries / wall time
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_overloaded = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t expired_deadline = 0;
  std::uint64_t expired_mid_flight = 0;
  std::uint64_t transient_retries = 0;
  std::uint64_t shed_retries = 0;
  std::uint64_t resource_exhausted = 0;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_serving",
                 "Open-loop Poisson/Zipf load harness for plan_async");
  args.add_int("nodes", 2'000, "BA graph size");
  args.add_int("attach", 5, "BA attachment count");
  args.add_int("pairs", 32, "distinct (s,t) pairs in the popularity table");
  args.add_double("zipf-s", 1.1, "Zipf skew exponent over pair ranks");
  args.add_int("realizations", 4'000, "realizations per maximize query");
  args.add_int("budget", 4, "invitation budget per query");
  args.add_int("workers", 2, "serving worker threads");
  args.add_int("queue-depth", 64, "admission queue capacity");
  args.add_double("duration", 2.0, "seconds of open-loop traffic per load");
  args.add_string("loads", "0.25,0.5,1.0,2.0,4.0",
                  "offered load multipliers of calibrated capacity");
  args.add_int("deadline-ms", 0,
               "default per-query deadline in ms (0 = none)");
  args.add_int("seed", 20190707, "rng seed for graph, pairs, and arrivals");
  args.add_flag("json", "write BENCH_serving.json");
  args.add_string("out", "BENCH_serving.json", "json output path");
  if (!args.parse(argc, argv)) return 1;

  Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
  const Graph graph =
      barabasi_albert(static_cast<NodeId>(args.get_int("nodes")),
                      static_cast<NodeId>(args.get_int("attach")), rng)
          .build(WeightScheme::inverse_degree());
  const auto pairs =
      valid_pairs(graph, static_cast<std::size_t>(args.get_int("pairs")));
  if (pairs.size() < 2) {
    std::fprintf(stderr, "graph yields too few valid pairs\n");
    return 1;
  }
  const ZipfPairs zipf(pairs.size(), args.get_double("zipf-s"));

  PlannerOptions opts;
  opts.threads = 2;
  opts.async_workers = static_cast<std::size_t>(args.get_int("workers"));
  opts.async_queue_depth =
      static_cast<std::size_t>(args.get_int("queue-depth"));
  if (args.get_int("deadline-ms") > 0) {
    opts.default_deadline = std::chrono::milliseconds(
        args.get_int("deadline-ms"));
  }
  const MaximizeSpec mode{
      .budget = static_cast<std::size_t>(args.get_int("budget")),
      .realizations =
          static_cast<std::uint64_t>(args.get_int("realizations"))};

  // --- Calibration: mean cold service time over a few distinct pairs.
  double capacity_qps;
  {
    Planner calib(graph, opts);
    const std::size_t n = std::min<std::size_t>(5, pairs.size());
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      (void)calib.plan({pairs[i].first, pairs[i].second, mode});
    }
    const double mean_service =
        std::chrono::duration<double>(Clock::now() - t0).count() /
        static_cast<double>(n);
    capacity_qps = static_cast<double>(opts.async_workers) /
                   std::max(mean_service, 1e-6);
  }
  std::printf("# capacity ≈ %.0f q/s (%zu workers, depth %zu)\n",
              capacity_qps, opts.async_workers, opts.async_queue_depth);

  const double duration_s = args.get_double("duration");
  std::vector<LoadPoint> points;
  for (const double mult : parse_double_list(args.get_string("loads"))) {
    const double rate = mult * capacity_qps;
    Planner planner(graph, opts);
    Rng arrivals = rng.fork();

    std::vector<std::future<PlanResult>> futures;
    futures.reserve(static_cast<std::size_t>(rate * duration_s) + 16);
    const auto start = Clock::now();
    const auto end = start + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(duration_s));
    auto next_arrival = start;
    while (next_arrival < end) {
      std::this_thread::sleep_until(next_arrival);
      const auto [s, t] = pairs[zipf.draw(arrivals)];
      futures.push_back(planner.plan_async({s, t, mode}));
      // Exponential inter-arrival gap: open-loop Poisson process.
      const double gap_s =
          -std::log(1.0 - arrivals.uniform()) / std::max(rate, 1.0);
      next_arrival += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(gap_s));
    }

    LoadPoint pt;
    pt.offered_qps = rate;
    std::vector<double> latencies_us;
    latencies_us.reserve(futures.size());
    for (auto& f : futures) {
      const PlanResult r = f.get();
      if (r.status == PlanStatus::kOverloaded ||
          r.status == PlanStatus::kDeadlineExceeded) {
        continue;
      }
      latencies_us.push_back(r.timings.async_seconds * 1e6);
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();

    const ServingStats stats = planner.serving_stats();
    std::sort(latencies_us.begin(), latencies_us.end());
    pt.submitted = stats.submitted + stats.rejected_overloaded;
    pt.completed = stats.completed + stats.coalesced;
    pt.rejected_overloaded = stats.rejected_overloaded;
    pt.coalesced = stats.coalesced;
    pt.expired_deadline = stats.expired_deadline;
    pt.expired_mid_flight = stats.expired_mid_flight;
    pt.transient_retries = stats.transient_retries;
    pt.shed_retries = stats.shed_retries;
    pt.resource_exhausted = stats.resource_exhausted;
    pt.achieved_qps = static_cast<double>(pt.completed) / wall;
    pt.p50_us = percentile(latencies_us, 0.50);
    pt.p99_us = percentile(latencies_us, 0.99);
    pt.p999_us = percentile(latencies_us, 0.999);
    points.push_back(pt);

    std::printf(
        "load %.2fx  offered %8.0f q/s  achieved %8.0f q/s  "
        "p50 %8.0f us  p99 %8.0f us  p999 %8.0f us  "
        "rej %llu  coal %llu  exp %llu\n",
        mult, pt.offered_qps, pt.achieved_qps, pt.p50_us, pt.p99_us,
        pt.p999_us,
        static_cast<unsigned long long>(pt.rejected_overloaded),
        static_cast<unsigned long long>(pt.coalesced),
        static_cast<unsigned long long>(pt.expired_deadline));
  }

  if (args.get_flag("json")) {
    // Summary fields mirror the saturated (last) load point; the sweep
    // rides along under "load_points". CI greps the summary keys.
    const LoadPoint& sat = points.back();
    std::ofstream out(args.get_string("out"));
    out << "{\n";
    out << "  \"benchmark\": \"bench_serving\",\n";
    out << "  \"capacity_qps\": " << capacity_qps << ",\n";
    out << "  \"workers\": " << opts.async_workers << ",\n";
    out << "  \"queue_depth\": " << opts.async_queue_depth << ",\n";
    out << "  \"latency_p50_us\": " << sat.p50_us << ",\n";
    out << "  \"latency_p99_us\": " << sat.p99_us << ",\n";
    out << "  \"latency_p999_us\": " << sat.p999_us << ",\n";
    out << "  \"throughput_qps\": " << sat.achieved_qps << ",\n";
    out << "  \"rejected_overloaded\": " << sat.rejected_overloaded << ",\n";
    out << "  \"coalesced\": " << sat.coalesced << ",\n";
    out << "  \"expired_deadline\": " << sat.expired_deadline << ",\n";
    out << "  \"expired_mid_flight\": " << sat.expired_mid_flight << ",\n";
    out << "  \"transient_retries\": " << sat.transient_retries << ",\n";
    out << "  \"shed_retries\": " << sat.shed_retries << ",\n";
    out << "  \"resource_exhausted\": " << sat.resource_exhausted << ",\n";
    out << "  \"load_points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const LoadPoint& p = points[i];
      out << "    {\"offered_qps\": " << p.offered_qps
          << ", \"achieved_qps\": " << p.achieved_qps
          << ", \"p50_us\": " << p.p50_us << ", \"p99_us\": " << p.p99_us
          << ", \"p999_us\": " << p.p999_us
          << ", \"submitted\": " << p.submitted
          << ", \"completed\": " << p.completed
          << ", \"rejected_overloaded\": " << p.rejected_overloaded
          << ", \"coalesced\": " << p.coalesced
          << ", \"expired_deadline\": " << p.expired_deadline
          << ", \"expired_mid_flight\": " << p.expired_mid_flight
          << ", \"transient_retries\": " << p.transient_retries
          << ", \"shed_retries\": " << p.shed_retries
          << ", \"resource_exhausted\": " << p.resource_exhausted << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    std::printf("# wrote %s\n", args.get_string("out").c_str());
  }
  return 0;
}
