// Quickstart: the library's public API end-to-end on a small network.
//
//  1. Build a social graph (Graph::Builder + a weight scheme).
//  2. Pose a friending instance (initiator s, target t).
//  3. Run RAF to get a minimal invitation list for a target share of
//     p_max.
//  4. Evaluate the result with the Monte-Carlo engine and compare
//     against what inviting everyone could achieve.
//
// Run:  ./quickstart
#include <iostream>

#include "core/raf.hpp"
#include "core/vmax.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"

int main() {
  using namespace af;

  // A small Watts–Strogatz friend circle: 60 users, each with 6 friends,
  // 10% rewired — weights follow the paper's 1/degree convention.
  Rng rng(7);
  const Graph graph = watts_strogatz(60, 6, 0.1, rng)
                          .build(WeightScheme::inverse_degree());

  // Pick an initiator and a target a few hops away.
  const NodeId s = 0;
  NodeId t = 30;
  while (graph.has_edge(s, t)) ++t;  // must not already be friends
  const FriendingInstance instance(graph, s, t);
  std::cout << "user " << s << " wants to friend user " << t << " ("
            << instance.initial_friends().size() << " current friends)\n";

  // How good could it possibly get? p_max = f(V).
  MonteCarloEvaluator mc(instance);
  const double pmax = mc.estimate_pmax(100'000, rng).estimate();
  std::cout << "p_max (inviting everyone): " << pmax << "\n";

  // The minimum set achieving exactly p_max (Lemma 7).
  const auto vmax = compute_vmax(instance);
  std::cout << "V_max (minimum set reaching p_max): " << vmax.size()
            << " users\n";

  // RAF: reach 30% of p_max with as few invitations as possible.
  RafConfig config;
  config.alpha = 0.3;
  config.epsilon = 0.03;
  config.max_realizations = 50'000;
  const RafAlgorithm raf(config);
  const RafResult result = raf.run(instance, rng);

  std::cout << "\nRAF invitation list (" << result.invitation.size()
            << " users): ";
  for (NodeId v : result.invitation.members()) std::cout << v << " ";
  std::cout << "\n";

  const double f = mc.estimate_f(result.invitation, 100'000, rng).estimate();
  std::cout << "estimated acceptance probability: " << f << " ("
            << (pmax > 0 ? f / pmax * 100.0 : 0.0) << "% of p_max, target "
            << config.alpha * 100 << "%)\n";
  std::cout << "realizations used: " << result.diag.l_used
            << " (theoretical l* = " << result.diag.l_star << ")\n";
  return 0;
}
