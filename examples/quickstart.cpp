// Quickstart: the library's public API end-to-end on a small network.
//
//  1. Build a social graph (Graph::Builder + a weight scheme).
//  2. Construct an af::Planner for the graph — the one query facade.
//  3. plan() a minimize query: the smallest invitation list reaching a
//     target share of p_max, with status + diagnostics.
//  4. plan_batch() an α-sweep on the same pair: the planner's per-pair
//     caches (p*max, V_max, realization pool) make the sweep nearly
//     free after the first query.
//  5. Evaluate the result with the Monte-Carlo engine.
//
// Run:  ./quickstart
#include <iostream>
#include <vector>

#include "core/planner.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"

int main() {
  using namespace af;

  // A small Watts–Strogatz friend circle: 60 users, each with 6 friends,
  // 10% rewired — weights follow the paper's 1/degree convention.
  Rng rng(7);
  const Graph graph = watts_strogatz(60, 6, 0.1, rng)
                          .build(WeightScheme::inverse_degree());

  // Pick an initiator and a target a few hops away.
  const NodeId s = 0;
  NodeId t = 30;
  while (graph.has_edge(s, t)) ++t;  // must not already be friends

  // One planner per graph; every (s,t) query goes through it.
  Planner planner(graph, PlannerOptions{.base_seed = 7});

  // RAF: reach 30% of p_max with as few invitations as possible.
  MinimizeSpec spec;
  spec.alpha = 0.3;
  spec.epsilon = 0.03;
  spec.max_realizations = 50'000;
  const PlanResult result = planner.plan({s, t, spec});
  if (!result.ok()) {
    std::cout << "planning failed: " << to_string(result.status) << " — "
              << result.message << "\n";
    return 0;
  }

  std::cout << "user " << s << " wants to friend user " << t << "\n";
  std::cout << "p_max ≈ " << result.diag.pmax.estimate << ", |V_max| = "
            << result.diag.vmax_size << "\n";
  std::cout << "invitation list (" << result.invitation.size()
            << " users): ";
  for (NodeId v : result.invitation.members()) std::cout << v << " ";
  std::cout << "\nrealizations used: " << result.diag.l_used
            << " (theoretical l* = " << result.diag.l_star << ")\n";

  // Check the plan against the ceiling with the Monte-Carlo engine.
  const FriendingInstance instance(graph, s, t);
  MonteCarloEvaluator mc(instance);
  const double f = mc.estimate_f(result.invitation, 100'000, rng).estimate();
  const double pmax = result.diag.pmax.estimate;
  std::cout << "estimated acceptance probability: " << f << " ("
            << (pmax > 0 ? f / pmax * 100.0 : 0.0) << "% of p_max, target "
            << spec.alpha * 100 << "%)\n";

  // An α-sweep on the same pair: one batch, shared caches. Only the
  // first query pays for p*max, V_max and the realization pool.
  std::vector<QuerySpec> sweep;
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    MinimizeSpec q = spec;
    q.alpha = alpha;
    q.epsilon = alpha / 10.0;
    sweep.push_back({s, t, q});
  }
  std::cout << "\nalpha sweep (plan_batch, cached per-pair state):\n";
  const std::vector<PlanResult> sweep_results = planner.plan_batch(sweep);
  for (std::size_t i = 0; i < sweep_results.size(); ++i) {
    const PlanResult& r = sweep_results[i];
    std::cout << "  alpha=" << std::get<MinimizeSpec>(sweep[i].mode).alpha
              << ": " << r.invitation.size() << " invitations, status "
              << to_string(r.status)
              << (r.timings.pmax_cache_hit ? " (cached p*max)" : "")
              << "\n";
  }
  return 0;
}
