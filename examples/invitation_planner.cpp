// Invitation planner: both problem modes through one af::Planner. Given
// a budget of invitations the user is willing to send, report the
// acceptance probability the budget buys — and, inversely, price a
// target probability in invitations (RAF). Each direction is a single
// plan_batch on the same (s, t) pair, so the realization pool, the
// p*max estimate and V_max are computed once and shared by every row.
//
// Run:  ./invitation_planner
#include <iostream>
#include <vector>

#include "core/planner.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace af;

  Rng rng(2024);
  const Graph graph = barabasi_albert(2'000, 5, rng)
                          .build(WeightScheme::inverse_degree());

  // A target three-ish hops out.
  const NodeId s = 100;
  NodeId t = 1'500;
  while (graph.has_edge(s, t) || t == s) ++t;
  const FriendingInstance instance(graph, s, t);

  MonteCarloEvaluator mc(instance);
  const double pmax = mc.estimate_pmax(150'000, rng).estimate();
  std::cout << "planning invitations from " << s << " to " << t
            << " (p_max=" << pmax << ")\n\n";

  Planner planner(graph, PlannerOptions{.base_seed = 2024});

  // Forward direction: budget → achievable acceptance probability.
  std::vector<QuerySpec> forward;
  for (std::size_t budget : {2u, 4u, 8u, 16u, 32u, 64u}) {
    forward.push_back(
        {s, t, MaximizeSpec{.budget = budget, .realizations = 40'000}});
  }
  std::cout << "budget → acceptance probability (greedy maximizer):\n";
  TableWriter fwd({"budget", "invited", "acceptance-prob", "% of p_max"});
  const std::vector<PlanResult> fwd_results = planner.plan_batch(forward);
  for (std::size_t i = 0; i < fwd_results.size(); ++i) {
    const PlanResult& res = fwd_results[i];
    if (!res.ok()) {
      std::cout << "budget query failed: " << to_string(res.status) << " — "
                << res.message << "\n";
      return 0;
    }
    const double f =
        res.invitation.empty()
            ? 0.0
            : mc.estimate_f(res.invitation, 60'000, rng).estimate();
    fwd.add_row({TableWriter::fmt(
                     std::get<MaximizeSpec>(forward[i].mode).budget),
                 TableWriter::fmt(res.invitation.size()),
                 TableWriter::fmt(f, 4),
                 TableWriter::fmt(pmax > 0 ? f / pmax * 100.0 : 0.0, 1)});
  }
  fwd.print(std::cout);

  // Inverse direction: target share of p_max → invitations needed (RAF).
  std::vector<QuerySpec> inverse;
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    MinimizeSpec spec;
    spec.alpha = alpha;
    spec.epsilon = alpha / 10.0;
    spec.max_realizations = 40'000;
    inverse.push_back({s, t, spec});
  }
  std::cout << "\ntarget share of p_max → invitations needed (RAF):\n";
  TableWriter inv({"alpha", "invitations", "achieved-prob", "status"});
  const std::vector<PlanResult> inv_results = planner.plan_batch(inverse);
  for (std::size_t i = 0; i < inv_results.size(); ++i) {
    const PlanResult& res = inv_results[i];
    const double f =
        res.invitation.empty()
            ? 0.0
            : mc.estimate_f(res.invitation, 60'000, rng).estimate();
    inv.add_row({TableWriter::fmt(
                     std::get<MinimizeSpec>(inverse[i].mode).alpha, 1),
                 TableWriter::fmt(res.invitation.size()),
                 TableWriter::fmt(f, 4), to_string(res.status)});
  }
  inv.print(std::cout);
  return 0;
}
