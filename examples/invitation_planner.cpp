// Invitation planner: the maximization-flavored workflow built on the
// same machinery (the paper's future-work direction). Given a budget of
// invitations the user is willing to send, report the acceptance
// probability the budget buys — and, inversely, use RAF to price a target
// probability in invitations.
//
// Run:  ./invitation_planner
#include <iostream>

#include "core/maximizer.hpp"
#include "core/raf.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace af;

  Rng rng(2024);
  const Graph graph = barabasi_albert(2'000, 5, rng)
                          .build(WeightScheme::inverse_degree());

  // A target three-ish hops out.
  const NodeId s = 100;
  NodeId t = 1'500;
  while (graph.has_edge(s, t) || t == s) ++t;
  const FriendingInstance instance(graph, s, t);

  MonteCarloEvaluator mc(instance);
  const double pmax = mc.estimate_pmax(150'000, rng).estimate();
  std::cout << "planning invitations from " << s << " to " << t
            << " (p_max=" << pmax << ")\n\n";
  if (pmax <= 0.0) {
    std::cout << "target unreachable; no invitation strategy can work\n";
    return 0;
  }

  // Forward direction: budget → achievable acceptance probability.
  std::cout << "budget → acceptance probability (greedy maximizer):\n";
  TableWriter fwd({"budget", "invited", "acceptance-prob", "% of p_max"});
  for (std::size_t budget : {2u, 4u, 8u, 16u, 32u, 64u}) {
    MaximizerConfig mcfg;
    mcfg.budget = budget;
    mcfg.realizations = 40'000;
    const MaximizerResult res = maximize_friending(instance, mcfg, rng);
    const double f =
        res.invitation.empty()
            ? 0.0
            : mc.estimate_f(res.invitation, 60'000, rng).estimate();
    fwd.add_row({TableWriter::fmt(budget),
                 TableWriter::fmt(res.invitation.size()),
                 TableWriter::fmt(f, 4),
                 TableWriter::fmt(f / pmax * 100.0, 1)});
  }
  fwd.print(std::cout);

  // Inverse direction: target share of p_max → invitations needed (RAF).
  std::cout << "\ntarget share of p_max → invitations needed (RAF):\n";
  TableWriter inv({"alpha", "invitations", "achieved-prob"});
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    RafConfig cfg;
    cfg.alpha = alpha;
    cfg.epsilon = alpha / 10.0;
    cfg.max_realizations = 40'000;
    const RafAlgorithm raf(cfg);
    const RafResult res = raf.run(instance, rng);
    const double f =
        res.invitation.empty()
            ? 0.0
            : mc.estimate_f(res.invitation, 60'000, rng).estimate();
    inv.add_row({TableWriter::fmt(alpha, 1),
                 TableWriter::fmt(res.invitation.size()),
                 TableWriter::fmt(f, 4)});
  }
  inv.print(std::cout);
  return 0;
}
