// Community bridging: initiator and target live in different communities
// connected by a few bridge users (stochastic block model). Demonstrates
// the Fig. 4/5 "breakpoint" phenomenon the paper discusses: when the
// s→t routes are few and nearly disjoint, a strategy that ignores path
// structure wastes its budget, and acceptance probability jumps only when
// a whole bridge path is finally covered.
//
// Run:  ./community_bridge
#include <iostream>

#include "core/baselines.hpp"
#include "core/planner.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/graph.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace af;

  // Two dense communities of 40 users each, joined by exactly two
  // 2-hop bridges: A: 0..39, B: 40..79; bridges 80-81 and 82-83.
  Rng rng(9);
  Graph::Builder builder(84);
  auto add_community = [&](NodeId base) {
    for (NodeId i = 0; i < 40; ++i) {
      for (NodeId j = i + 1; j < 40; ++j) {
        if (rng.bernoulli(0.25)) builder.add_edge(base + i, base + j);
      }
    }
  };
  add_community(0);
  add_community(40);
  // Bridge 1: A(0) - 80 - 81 - B(40). Bridge 2: A(1) - 82 - 83 - B(41).
  builder.add_edge(0, 80).add_edge(80, 81).add_edge(81, 40);
  builder.add_edge(1, 82).add_edge(82, 83).add_edge(83, 41);
  const Graph graph = builder.build(WeightScheme::inverse_degree());

  const NodeId s = 5;   // deep inside community A
  const NodeId t = 45;  // deep inside community B
  const FriendingInstance instance(graph, s, t);

  MonteCarloEvaluator mc(instance);
  const double pmax = mc.estimate_pmax(200'000, rng).estimate();
  std::cout << "cross-community friending: s=" << s << " (community A), t="
            << t << " (community B), p_max=" << pmax << "\n\n";

  // Sweep the invitation budget for each strategy: acceptance stays ~0
  // until a whole bridge (plus the B-side approach to t) is covered.
  Planner planner(graph, PlannerOptions{.base_seed = 9});
  MinimizeSpec spec;
  spec.alpha = 0.3;
  spec.epsilon = 0.03;
  spec.max_realizations = 60'000;
  const PlanResult res = planner.plan({s, t, spec});
  if (!res.ok()) {
    std::cout << "planning failed: " << to_string(res.status) << "\n";
    return 0;
  }

  // Head-to-head at RAF's own size.
  const std::size_t k = res.invitation.size();
  const double f_raf = mc.estimate_f(res.invitation, 200'000, rng).estimate();
  const double f_hd_k =
      mc.estimate_f(high_degree_invitation(instance, k), 200'000, rng)
          .estimate();
  const double f_sp_k =
      mc.estimate_f(shortest_path_invitation(instance, k), 200'000, rng)
          .estimate();
  std::cout << "at RAF's size (" << k << " invitations): RAF="
            << TableWriter::fmt(f_raf, 4)
            << "  SP=" << TableWriter::fmt(f_sp_k, 4)
            << "  HD=" << TableWriter::fmt(f_hd_k, 4) << "\n\n";

  // The breakpoint sweep: HD/SP as their budget grows. Acceptance stays
  // near zero until a whole bridge path is inside the set — then jumps.
  TableWriter table({"budget", "HD", "SP"});
  for (std::size_t budget : {4u, 8u, 16u, 24u, 32u, 48u, 64u}) {
    const double f_hd = mc.estimate_f(high_degree_invitation(instance, budget),
                                      60'000, rng)
                            .estimate();
    const double f_sp = mc.estimate_f(
                              shortest_path_invitation(instance, budget),
                              60'000, rng)
                            .estimate();
    table.add_row({TableWriter::fmt(budget), TableWriter::fmt(f_hd, 4),
                   TableWriter::fmt(f_sp, 4)});
  }
  table.print(std::cout);

  std::cout << "\nHD keeps inviting community hubs that share no mutual "
               "friends with the target's side, so its column stays near "
               "zero regardless of budget; SP jumps only once an entire "
               "bridge path fits — the paper's breakpoint phenomenon.\n";
  return 0;
}
