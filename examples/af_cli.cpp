// af_cli — command-line active friending planner.
//
// Loads a graph from an edge list (or generates a synthetic one), then
// plans and evaluates an invitation strategy for a given (s, t) pair:
//
//   # plan on a generated Barabási–Albert graph
//   ./af_cli --generate ba --nodes 5000 --attach 5 --s 17 --t 4242
//
//   # plan on your own edge list ("u v" per line, '#' comments)
//   ./af_cli --graph friends.txt --s 10 --t 999 --alpha 0.5
//
// Prints the RAF invitation list, its estimated acceptance probability,
// p_max, |V_max| and a comparison against the HD/SP baselines.
#include <iostream>

#include "core/baselines.hpp"
#include "core/raf.hpp"
#include "core/vmax.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/weights.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace af;

  ArgParser args("af_cli", "plan invitations for active friending");
  args.add_string("graph", "", "edge-list file to load ('u v' per line)");
  args.add_string("generate", "ba",
                  "generator when no file given: ba | gnm | ws");
  args.add_int("nodes", 2'000, "generated graph size");
  args.add_int("attach", 5, "BA attachment / WS half-degree / G(n,m) m/n");
  args.add_int("s", 0, "initiator node id");
  args.add_int("t", 1'000, "target node id");
  args.add_double("alpha", 0.3, "target share of p_max");
  args.add_double("epsilon", 0.03, "slack (guarantee is (alpha-eps)p_max)");
  args.add_int("realizations", 100'000, "cap on sampled realizations");
  args.add_int("eval-samples", 100'000, "Monte-Carlo evaluation samples");
  args.add_int("seed", 1, "RNG seed");
  if (!args.parse(argc, argv)) return 1;

  Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));

  Graph graph;
  if (!args.get_string("graph").empty()) {
    try {
      graph = load_edge_list(args.get_string("graph"),
                             WeightScheme::inverse_degree())
                  .graph;
    } catch (const std::exception& e) {
      std::cerr << "failed to load graph: " << e.what() << "\n";
      return 1;
    }
  } else {
    const auto n = static_cast<NodeId>(args.get_int("nodes"));
    const auto a = static_cast<std::size_t>(args.get_int("attach"));
    const std::string kind = args.get_string("generate");
    if (kind == "ba") {
      graph = barabasi_albert(n, a, rng).build(
          WeightScheme::inverse_degree());
    } else if (kind == "gnm") {
      graph = gnm_random(n, static_cast<std::uint64_t>(n) * a, rng)
                  .build(WeightScheme::inverse_degree());
    } else if (kind == "ws") {
      graph = watts_strogatz(n, 2 * a, 0.1, rng)
                  .build(WeightScheme::inverse_degree());
    } else {
      std::cerr << "unknown generator '" << kind << "'\n";
      return 1;
    }
  }
  std::cout << "graph: " << graph.num_nodes() << " nodes, "
            << graph.num_edges() << " edges\n";

  const auto s = static_cast<NodeId>(args.get_int("s"));
  const auto t = static_cast<NodeId>(args.get_int("t"));
  if (s >= graph.num_nodes() || t >= graph.num_nodes() || s == t ||
      graph.has_edge(s, t)) {
    std::cerr << "invalid (s,t): need distinct, non-adjacent, in-range ids\n";
    return 1;
  }
  const FriendingInstance instance(graph, s, t);

  const auto eval_samples =
      static_cast<std::uint64_t>(args.get_int("eval-samples"));
  MonteCarloEvaluator mc(instance);
  const double pmax = mc.estimate_pmax(eval_samples, rng).estimate();
  const auto vmax = compute_vmax(instance);
  std::cout << "p_max ≈ " << pmax << ", |V_max| = " << vmax.size() << "\n";
  if (vmax.empty()) {
    std::cout << "target unreachable from s's friends — no strategy can "
                 "succeed\n";
    return 0;
  }

  RafConfig cfg;
  cfg.alpha = args.get_double("alpha");
  cfg.epsilon = args.get_double("epsilon");
  cfg.max_realizations =
      static_cast<std::uint64_t>(args.get_int("realizations"));
  const RafAlgorithm raf(cfg);
  const RafResult res = raf.run(instance, rng);
  if (res.invitation.empty()) {
    std::cout << "RAF produced an empty plan (estimated p_max too small)\n";
    return 0;
  }

  std::cout << "\ninvite, in this order of priority:\n  ";
  for (NodeId v : res.invitation.members()) std::cout << v << ' ';
  std::cout << "\n\n";

  const std::size_t k = res.invitation.size();
  TableWriter table({"strategy", "size", "acceptance-prob", "% of p_max"});
  auto add = [&](const std::string& name, const InvitationSet& inv) {
    const double f = mc.estimate_f(inv, eval_samples, rng).estimate();
    table.add_row({name, TableWriter::fmt(inv.size()),
                   TableWriter::fmt(f, 4),
                   TableWriter::fmt(pmax > 0 ? f / pmax * 100 : 0.0, 1)});
  };
  add("RAF", res.invitation);
  add("HighDegree", high_degree_invitation(instance, k));
  add("ShortestPath", shortest_path_invitation(instance, k));
  table.print(std::cout);
  return 0;
}
