// af_cli — command-line active friending planner.
//
// Loads a graph from an edge list (or generates a synthetic one), then
// answers (s, t) friending queries through the af::Planner facade:
//
//   # plan on a generated Barabási–Albert graph
//   ./af_cli --generate ba --nodes 5000 --attach 5 --s 17 --t 4242
//
//   # plan on your own edge list ("u v" per line, '#' comments)
//   ./af_cli --graph friends.txt --s 10 --t 999 --alpha 0.5
//
//   # plan on a prebuilt .af1 container (tools/af_index_build): the
//   # extension is sniffed, the container is mmap-ed and the planner
//   # adopts the prebuilt alias tables — no parse, no index build
//   ./af_cli --graph friends.af1 --s 10 --t 999 --alpha 0.5
//
//   # sweep several targets at once (batched, shared per-pair caches)
//   ./af_cli --s 0 --t 1000 --alphas 0.1,0.3,0.5
//
//   # the budgeted maximization mode instead
//   ./af_cli --s 0 --t 1000 --budget 16
//
// Prints the invitation list, its estimated acceptance probability,
// p_max, |V_max| and a comparison against the HD/SP baselines.
#include <algorithm>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/planner.hpp"
#include "storage/mapped_dataset.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/weights.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace af;

  ArgParser args("af_cli", "plan invitations for active friending");
  args.add_string("graph", "", "edge-list file to load ('u v' per line)");
  args.add_string("generate", "ba",
                  "generator when no file given: ba | gnm | ws");
  args.add_int("nodes", 2'000, "generated graph size");
  args.add_int("attach", 5, "BA attachment / WS half-degree / G(n,m) m/n");
  args.add_int("s", 0, "initiator node id");
  args.add_int("t", 1'000, "target node id");
  args.add_double("alpha", 0.3, "target share of p_max");
  args.add_string("alphas", "",
                  "comma-separated alpha sweep (overrides --alpha)");
  args.add_double("epsilon", 0.0,
                  "slack; 0 = alpha/10 (guarantee is (alpha-eps)p_max)");
  args.add_int("budget", 0,
               "maximize f(I) under this invitation budget instead");
  args.add_int("realizations", 100'000, "cap on sampled realizations");
  args.add_int("threads", 0, "batch worker threads (0 = hardware)");
  add_sampling_flags(args, /*default_seed=*/1, /*default_eval_samples=*/100'000);
  if (!args.parse(argc, argv)) return 1;

  Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));

  // A `.af1` suffix selects the mmap path: the container owns the CSR
  // arrays (and possibly prebuilt alias tables), so it must outlive the
  // planner — hence the optional declared at function scope.
  std::optional<storage::MappedDataset> mapped;
  Graph graph;
  if (!args.get_string("graph").empty()) {
    const std::string& path = args.get_string("graph");
    try {
      if (path.ends_with(".af1")) {
        mapped.emplace(path);
        graph = mapped->graph();  // external view backed by the mapping
      } else {
        graph = load_edge_list(path, WeightScheme::inverse_degree()).graph;
      }
    } catch (const std::exception& e) {
      std::cerr << "failed to load graph: " << e.what() << "\n";
      return 1;
    }
  } else {
    const auto n = static_cast<NodeId>(args.get_int("nodes"));
    const auto a = static_cast<std::size_t>(args.get_int("attach"));
    const std::string kind = args.get_string("generate");
    if (kind == "ba") {
      graph = barabasi_albert(n, a, rng).build(
          WeightScheme::inverse_degree());
    } else if (kind == "gnm") {
      graph = gnm_random(n, static_cast<std::uint64_t>(n) * a, rng)
                  .build(WeightScheme::inverse_degree());
    } else if (kind == "ws") {
      graph = watts_strogatz(n, 2 * a, 0.1, rng)
                  .build(WeightScheme::inverse_degree());
    } else {
      std::cerr << "unknown generator '" << kind << "'\n";
      return 1;
    }
  }
  std::cout << "graph: " << graph.num_nodes() << " nodes, "
            << graph.num_edges() << " edges\n";

  const auto s = static_cast<NodeId>(args.get_int("s"));
  const auto t = static_cast<NodeId>(args.get_int("t"));
  const auto realizations =
      static_cast<std::uint64_t>(args.get_int("realizations"));
  const auto eval_samples =
      static_cast<std::uint64_t>(args.get_int("eval-samples"));

  PlannerOptions options;
  options.base_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  options.threads = static_cast<std::size_t>(args.get_int("threads"));
  // A mapped container can hand the planner its prebuilt alias tables
  // (Planner::from_mapped) instead of re-running the Vose build.
  std::unique_ptr<Planner> planner =
      mapped ? Planner::from_mapped(*mapped, options)
             : std::make_unique<Planner>(graph, options);

  // Assemble the query list: a budget query, one alpha, or a sweep.
  std::vector<QuerySpec> queries;
  if (args.get_int("budget") > 0) {
    MaximizeSpec spec;
    spec.budget = static_cast<std::size_t>(args.get_int("budget"));
    spec.realizations = realizations;
    queries.push_back({s, t, spec});
  } else {
    std::vector<double> alphas;
    if (!args.get_string("alphas").empty()) {
      try {
        alphas = parse_double_list(args.get_string("alphas"));
      } catch (const std::exception& e) {
        std::cerr << "bad --alphas: " << e.what() << "\n";
        return 1;
      }
    } else {
      alphas.push_back(args.get_double("alpha"));
    }
    for (double alpha : alphas) {
      MinimizeSpec spec;
      spec.alpha = alpha;
      // An explicit --epsilon passes through unchanged so a bad value
      // surfaces as the planner's kInvalidSpec instead of being patched;
      // only the 0 default means "derive from alpha".
      const double eps = args.get_double("epsilon");
      spec.epsilon = eps != 0.0 ? eps : alpha / 10.0;
      spec.max_realizations = realizations;
      queries.push_back({s, t, spec});
    }
  }

  const std::vector<PlanResult> results = planner->plan_batch(queries);

  std::optional<FriendingInstance> instance;
  std::optional<MonteCarloEvaluator> mc;
  double pmax = 0.0;  // evaluated once: every query shares one (s,t)
  bool any_ok = false;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PlanResult& res = results[i];
    std::cout << "\n== query " << i + 1 << "/" << results.size()
              << " — status: " << to_string(res.status) << " ==\n";
    if (!res.ok()) {
      std::cout << res.message << "\n";
      continue;
    }
    any_ok = true;
    if (!mc) {
      instance.emplace(graph, s, t);
      mc.emplace(*instance);
      pmax = mc->estimate_pmax(eval_samples, rng).estimate();
    }
    // Maximize-mode queries never run the DKLR stage; only report the
    // planner's p*max when it actually estimated one.
    if (res.diag.pmax.samples_used > 0) {
      std::cout << "p_max ≈ " << res.diag.pmax.estimate
                << (res.timings.pmax_cache_hit ? " (cached)" : "") << ", ";
    }
    std::cout << "|V_max| = " << res.diag.vmax_size << "\n";
    std::cout << "invite, in this order of priority:\n  ";
    for (NodeId v : res.invitation.members()) std::cout << v << ' ';
    std::cout << "\n";

    const std::size_t k = res.invitation.size();
    TableWriter table({"strategy", "size", "acceptance-prob", "% of p_max"});
    auto add = [&](const std::string& name, const InvitationSet& inv) {
      const double f = mc->estimate_f(inv, eval_samples, rng).estimate();
      table.add_row({name, TableWriter::fmt(inv.size()),
                     TableWriter::fmt(f, 4),
                     TableWriter::fmt(pmax > 0 ? f / pmax * 100 : 0.0, 1)});
    };
    add("Planner", res.invitation);
    add("HighDegree", high_degree_invitation(*instance, k));
    add("ShortestPath", shortest_path_invitation(*instance, k));
    table.print(std::cout);
  }
  // Exit non-zero only when a query was rejected as invalid input (the
  // pre-planner contract); an unreachable or undetectable target is a
  // legitimate planning outcome and keeps exit 0.
  const bool any_invalid = std::any_of(
      results.begin(), results.end(), [](const PlanResult& r) {
        return r.status == PlanStatus::kInvalidSpec ||
               r.status == PlanStatus::kInvalidPair;
      });
  return any_ok || !any_invalid ? 0 : 1;
}
