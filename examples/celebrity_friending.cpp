// Celebrity friending: the paper's motivating scenario — an ordinary user
// wants to become friends with a celebrity (a high-degree hub) in a
// scale-free network. Compares RAF against the HD and SP heuristics at
// equal invitation budgets.
//
// Run:  ./celebrity_friending
#include <algorithm>
#include <iostream>

#include "core/baselines.hpp"
#include "core/planner.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace af;

  Rng rng(42);
  const Graph graph = barabasi_albert(3'000, 4, rng)
                          .build(WeightScheme::inverse_degree());

  // The "celebrity": the highest-degree user.
  NodeId celebrity = 0;
  for (NodeId v = 1; v < graph.num_nodes(); ++v) {
    if (graph.degree(v) > graph.degree(celebrity)) celebrity = v;
  }

  // The initiator: a low-degree user not already friends with them.
  NodeId fan = kNoNode;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (v != celebrity && graph.degree(v) <= 5 &&
        !graph.has_edge(v, celebrity)) {
      fan = v;
      break;
    }
  }
  if (fan == kNoNode) {
    std::cerr << "no suitable fan found\n";
    return 1;
  }

  const FriendingInstance instance(graph, fan, celebrity);
  std::cout << "fan " << fan << " (degree " << graph.degree(fan)
            << ") wants to friend celebrity " << celebrity << " (degree "
            << graph.degree(celebrity) << ")\n";

  MonteCarloEvaluator mc(instance);
  const double pmax = mc.estimate_pmax(100'000, rng).estimate();
  std::cout << "p_max = " << pmax << "\n\n";
  if (pmax <= 0.0) {
    // The report below divides by this estimate; with p_max under the
    // Monte-Carlo detection limit there is nothing meaningful to plan.
    std::cout << "celebrity unreachable — nothing to plan\n";
    return 0;
  }

  Planner planner(graph, PlannerOptions{.base_seed = 42});
  MinimizeSpec spec;
  spec.alpha = 0.3;
  spec.epsilon = 0.03;
  spec.max_realizations = 60'000;
  const PlanResult res = planner.plan({fan, celebrity, spec});
  if (!res.ok()) {
    std::cout << "celebrity not plannable: " << to_string(res.status)
              << " — " << res.message << "\n";
    return 0;
  }
  const std::size_t budget = std::max<std::size_t>(res.invitation.size(), 1);

  TableWriter table({"strategy", "invitations", "acceptance-prob",
                     "% of p_max"});
  auto report = [&](const std::string& name, const InvitationSet& inv) {
    const double f = mc.estimate_f(inv, 100'000, rng).estimate();
    table.add_row({name, TableWriter::fmt(inv.size()),
                   TableWriter::fmt(f, 4),
                   TableWriter::fmt(f / pmax * 100.0, 1)});
  };
  report("RAF", res.invitation);
  report("HighDegree", high_degree_invitation(instance, budget));
  report("ShortestPath", shortest_path_invitation(instance, budget));
  report("Random", random_invitation(instance, budget, rng));
  table.print(std::cout);

  std::cout << "\nRAF found a " << res.invitation.size()
            << "-invitation plan; the same budget spent on popular users "
               "(HD) or a single chain of introductions (SP) does worse — "
               "mutual-friend mass, not popularity, drives acceptance.\n";
  return 0;
}
