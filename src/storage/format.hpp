// The `.af1` container format (DESIGN.md §11): one file holding a graph's
// CSR topology, its directional weights, and the PREBUILT selection-index
// tables, laid out so the whole thing can be mmap-ed read-only and served
// without a byte of copying or a microsecond of alias construction.
//
// Layout (all integers native-endian; the header carries an endianness
// tag so a foreign-endian file fails loudly instead of subtly):
//
//   offset 0    FileHeader        64 bytes  magic, version, endianness,
//                                           counts, crc32 of itself
//   offset 64   SectionRecord[16] 512 bytes fixed-capacity section table,
//                                           crc32-covered by the header
//   offset 576  section payloads            each 64-byte aligned, each
//                                           crc32-checksummed in its record
//
// Versioning policy: kFormatVersion bumps on ANY layout change — there
// are no minor versions and no in-place migration; readers reject every
// version but their own (offline containers are cheap to rebuild with
// af_index_build, and a version check that cannot lie beats a migration
// path that can). Endianness is native-on-write: the mmap path cannot
// byte-swap without copying, so cross-endian portability is explicitly
// out of scope — the tag turns it into a structured error.
//
// The discipline here (magic + version + endianness checks up front,
// checksummed payloads, fixed 64-byte alignment so mapped sections can be
// cast to element arrays) follows the Tightdb/Realm file-format exemplar
// named in ROADMAP.md.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace af::storage {

/// Structured failure opening or validating an .af1 container. The code
/// says which validation tripped; what() carries the detail (expected vs
/// found values, the offending section, byte offsets).
class Af1Error : public std::runtime_error {
 public:
  enum class Code {
    /// The file cannot be opened / read / mapped at the OS level.
    kIo,
    /// The magic bytes are wrong: not an .af1 file (or its head was
    /// overwritten).
    kBadMagic,
    /// A different format version — rebuilt containers required.
    kBadVersion,
    /// Written on a host of the other endianness.
    kBadEndianness,
    /// The header's own checksum (covering header + section table) fails.
    kBadHeader,
    /// The section table is structurally invalid (count, kinds, bounds,
    /// alignment).
    kBadSectionTable,
    /// The file is shorter than the header/table/sections claim.
    kTruncated,
    /// A section payload's crc32 does not match its record.
    kBadChecksum,
    /// Sections are individually valid but mutually inconsistent with
    /// the header's node/edge counts (or a required section is missing).
    kBadShape,
  };

  Af1Error(Code code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  Code code() const { return code_; }

 private:
  Code code_;
};

/// Short stable name ("bad-magic", …) for logs and test assertions.
const char* to_string(Af1Error::Code code);

/// File magic: "af1!" plus PNG-style bytes that detect text-mode and
/// high-bit mangling.
inline constexpr std::array<unsigned char, 8> kMagic = {
    'a', 'f', '1', '!', 0x89, '\r', '\n', 0x1a};

/// Bumped on ANY layout change; readers accept exactly this version.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Written natively; reads as 0x04030201 on the other endianness.
inline constexpr std::uint32_t kEndianTag = 0x01020304;

/// Every section payload starts on a 64-byte boundary: cache-line
/// aligned, and strictly stronger than any element type's alignment, so
/// mapped payloads cast directly to element arrays.
inline constexpr std::size_t kSectionAlign = 64;

/// Fixed capacity of the section table. Far above the 10 kinds below so
/// the format can grow sections without a version bump… of the table.
inline constexpr std::size_t kMaxSections = 16;

/// What a section holds. Values are stable on-disk identifiers.
enum class SectionKind : std::uint32_t {
  /// Graph CSR offsets: (n+1) × u64 (ArcIndex).
  kCsrOffsets = 1,
  /// Graph adjacency: 2m × u32 (NodeId), sorted per node.
  kAdjacency = 2,
  /// Incoming weights aligned with adjacency: 2m × f64.
  kInWeights = 3,
  /// Outgoing-weight mirror: 2m × f64.
  kOutWeights = 4,
  /// Per-node Σ_u w(u,v): n × f64.
  kTotalInWeight = 5,
  /// Per-node ℵ0 mass max(0, 1 − Σ w): n × f64. Derivable from
  /// kTotalInWeight; materialized so index-free consumers can stream it.
  kLeftoverMass = 6,
  /// SamplingIndex CSR offsets: (n+1) × u64.
  kIndexOffsets64 = 7,
  /// SamplingIndex fused 16-byte slots: (2m+n) × {u64 threshold, u32
  /// accept, u32 alias}.
  kIndexSlots64 = 8,
  /// CompactSamplingIndex CSR offsets: (n+1) × u32.
  kIndexOffsets32 = 9,
  /// CompactSamplingIndex 12-byte slots: (2m+n) × {f32 threshold, u32
  /// accept, u32 alias}.
  kIndexSlots32 = 10,
};

/// Short stable name ("csr-offsets", …) for logs and error messages.
const char* to_string(SectionKind kind);

/// One section-table entry. Payload byte count is count × elem_size.
struct SectionRecord {
  std::uint32_t kind = 0;       // SectionKind; 0 = empty slot
  std::uint32_t elem_size = 0;  // bytes per element
  std::uint64_t offset = 0;     // payload start, from file byte 0
  std::uint64_t count = 0;      // element count
  std::uint32_t checksum = 0;   // crc32 of the payload bytes
  std::uint32_t reserved = 0;

  std::uint64_t payload_bytes() const {
    return count * static_cast<std::uint64_t>(elem_size);
  }
};
static_assert(sizeof(SectionRecord) == 32, "on-disk record layout");

/// The 64-byte file header at offset 0.
struct FileHeader {
  unsigned char magic[8];
  std::uint32_t version = 0;
  std::uint32_t endianness = 0;
  std::uint64_t file_bytes = 0;  // total container size — truncation check
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;  // undirected edge count m
  std::uint32_t section_count = 0;
  std::uint32_t flags = 0;  // reserved for future use; written as 0
  /// crc32 over the header (this field zeroed) followed by the full
  /// 512-byte section table: one checksum guards everything that locates
  /// payloads.
  std::uint32_t header_checksum = 0;
  std::uint32_t reserved0 = 0;
  std::uint64_t reserved1 = 0;
};
static_assert(sizeof(FileHeader) == 64, "on-disk header layout");
static_assert(std::is_trivially_copyable_v<FileHeader> &&
                  std::is_trivially_copyable_v<SectionRecord>,
              "headers are read/written as raw bytes");

/// Where payloads start: header + fixed-capacity table, already a
/// multiple of kSectionAlign.
inline constexpr std::uint64_t kPayloadStart =
    sizeof(FileHeader) + kMaxSections * sizeof(SectionRecord);
static_assert(kPayloadStart % kSectionAlign == 0,
              "payload start must stay aligned");

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven. `seed`
/// chains incremental computation: crc(a+b) = crc32(b, len_b, crc32(a,
/// len_a)).
std::uint32_t crc32(const void* data, std::size_t bytes,
                    std::uint32_t seed = 0);

/// The header's checksum as defined above (header with the field zeroed,
/// then the section table).
std::uint32_t header_checksum(const FileHeader& header,
                              const SectionRecord* table);

}  // namespace af::storage
