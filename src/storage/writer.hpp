// Af1Writer — streaming producer of .af1 containers (storage/format.hpp).
//
// Sections are appended in order, each streamed through append() in
// arbitrarily small chunks so a converter never has to materialize a
// section before writing it; the crc32 is chained across chunks. The
// header and section table are back-patched by finish(), which writes the
// whole container to `path + ".tmp"` first, fsyncs it, and only then
// renames it into place (with a best-effort parent-directory fsync
// after) — a crashed or failed build can never leave a half-written or
// not-yet-durable file under the real name. Every write and the close
// are checked, so ENOSPC and short writes surface as Af1Error(kIo)
// instead of a truncated-but-published container.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>

#include "storage/format.hpp"

namespace af::storage {

/// Streams one .af1 container. Use:
///   Af1Writer w(path, n, m);
///   w.begin_section(SectionKind::kCsrOffsets, 8);
///   w.append(chunk, bytes); ...        // any chunking
///   w.end_section();
///   ... more sections ...
///   w.finish();                        // header, checksums, rename
/// All methods throw Af1Error(kIo) on I/O failure. A writer destroyed
/// before finish() removes its temporary file.
class Af1Writer {
 public:
  Af1Writer(std::string path, std::uint64_t num_nodes,
            std::uint64_t num_edges);
  ~Af1Writer();

  Af1Writer(const Af1Writer&) = delete;
  Af1Writer& operator=(const Af1Writer&) = delete;

  /// Starts the next section. Payload bytes follow via append(); their
  /// total must be a multiple of `elem_size` by end_section().
  void begin_section(SectionKind kind, std::uint32_t elem_size);
  void append(const void* data, std::size_t bytes);
  void end_section();

  /// One-shot convenience for in-RAM payloads.
  void write_section(SectionKind kind, const void* data, std::size_t bytes,
                     std::uint32_t elem_size);
  void write_section(SectionKind kind, std::span<const std::byte> bytes,
                     std::uint32_t elem_size) {
    write_section(kind, bytes.data(), bytes.size(), elem_size);
  }
  template <typename T>
  void write_elems(SectionKind kind, std::span<const T> elems) {
    write_section(kind, elems.data(), elems.size_bytes(),
                  static_cast<std::uint32_t>(sizeof(T)));
  }

  /// Seals the container: pads, back-patches header + section table with
  /// checksums, fsync-closes, renames over `path`. Returns total bytes.
  std::uint64_t finish();

 private:
  void require_open(const char* what);
  void pad_to_alignment();

  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  FileHeader header_{};
  SectionRecord table_[kMaxSections]{};
  std::uint64_t pos_ = 0;          // bytes written so far
  std::size_t open_section_ = kMaxSections;  // sentinel: none open
  std::uint64_t section_bytes_ = 0;
  std::uint32_t section_crc_ = 0;
  bool finished_ = false;
};

}  // namespace af::storage
