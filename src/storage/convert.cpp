#include "storage/convert.hpp"

#include <memory>
#include <vector>

#include "diffusion/sampling_index.hpp"
#include "storage/writer.hpp"

namespace af::storage {

namespace {

/// Streams the leftover-mass vector in bounded chunks: it is derivable
/// from kTotalInWeight, but materializing it lets index-free consumers
/// read every per-node quantity straight off the map.
void write_leftover_mass(Af1Writer& w, const Graph& g) {
  constexpr std::size_t kChunk = 1 << 16;
  std::vector<double> buf;
  buf.reserve(kChunk);
  w.begin_section(SectionKind::kLeftoverMass, sizeof(double));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    buf.push_back(g.leftover_mass(v));
    if (buf.size() == kChunk) {
      w.append(buf.data(), buf.size() * sizeof(double));
      buf.clear();
    }
  }
  w.append(buf.data(), buf.size() * sizeof(double));
  w.end_section();
}

}  // namespace

std::uint64_t write_container(const Graph& g, const std::string& path,
                              const ConvertOptions& options) {
  Af1Writer w(path, g.num_nodes(), g.num_edges());

  w.write_elems(SectionKind::kCsrOffsets, g.raw_offsets());
  w.write_elems(SectionKind::kAdjacency, g.raw_adjacency());
  w.write_elems(SectionKind::kInWeights, g.raw_in_weights());
  w.write_elems(SectionKind::kOutWeights, g.raw_out_weights());
  w.write_elems(SectionKind::kTotalInWeight, g.raw_total_in_weight());
  write_leftover_mass(w, g);

  // Build each index, stream its tables, release it before the next —
  // the containers for both layouts never coexist in RAM. Scalar build:
  // the table bytes are layout, not kernel, so SIMD never matters here;
  // huge pages are pointless for a buffer about to be written out.
  if (options.index64) {
    auto idx = std::make_unique<const SamplingIndex>(g, SimdLevel::kScalar,
                                                     /*huge_pages=*/false);
    w.write_section(SectionKind::kIndexOffsets64, idx->raw_offsets(),
                    sizeof(std::uint64_t));
    w.write_section(SectionKind::kIndexSlots64, idx->raw_slots(),
                    /*elem_size=*/16);
  }
  if (options.index32) {
    auto idx = std::make_unique<const CompactSamplingIndex>(
        g, SimdLevel::kScalar, /*huge_pages=*/false);
    w.write_section(SectionKind::kIndexOffsets32, idx->raw_offsets(),
                    sizeof(std::uint32_t));
    w.write_section(SectionKind::kIndexSlots32, idx->raw_slots(),
                    /*elem_size=*/12);
  }

  return w.finish();
}

}  // namespace af::storage
