#include "storage/format.hpp"

#include <cstring>

namespace af::storage {

const char* to_string(Af1Error::Code code) {
  switch (code) {
    case Af1Error::Code::kIo: return "io";
    case Af1Error::Code::kBadMagic: return "bad-magic";
    case Af1Error::Code::kBadVersion: return "bad-version";
    case Af1Error::Code::kBadEndianness: return "bad-endianness";
    case Af1Error::Code::kBadHeader: return "bad-header";
    case Af1Error::Code::kBadSectionTable: return "bad-section-table";
    case Af1Error::Code::kTruncated: return "truncated";
    case Af1Error::Code::kBadChecksum: return "bad-checksum";
    case Af1Error::Code::kBadShape: return "bad-shape";
  }
  return "?";
}

const char* to_string(SectionKind kind) {
  switch (kind) {
    case SectionKind::kCsrOffsets: return "csr-offsets";
    case SectionKind::kAdjacency: return "adjacency";
    case SectionKind::kInWeights: return "in-weights";
    case SectionKind::kOutWeights: return "out-weights";
    case SectionKind::kTotalInWeight: return "total-in-weight";
    case SectionKind::kLeftoverMass: return "leftover-mass";
    case SectionKind::kIndexOffsets64: return "index-offsets64";
    case SectionKind::kIndexSlots64: return "index-slots64";
    case SectionKind::kIndexOffsets32: return "index-offsets32";
    case SectionKind::kIndexSlots32: return "index-slots32";
  }
  return "?";
}

namespace {

/// The standard reflected CRC-32 table, built once.
const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed) {
  const std::uint32_t* table = crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t header_checksum(const FileHeader& header,
                              const SectionRecord* table) {
  FileHeader h = header;
  h.header_checksum = 0;
  std::uint32_t c = crc32(&h, sizeof(h));
  return crc32(table, kMaxSections * sizeof(SectionRecord), c);
}

}  // namespace af::storage
