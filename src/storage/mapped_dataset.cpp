#include "storage/mapped_dataset.hpp"

#include <csignal>
#include <cstring>
#include <fstream>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <setjmp.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define AF_STORAGE_HAVE_MMAP 1
#endif

#include "diffusion/sampling_index.hpp"
#include "graph/types.hpp"
#include "util/failpoint.hpp"
#include "util/hugepage.hpp"

namespace af::storage {

namespace {

std::string at(const std::string& path, const std::string& detail) {
  return "'" + path + "': " + detail;
}

#ifdef AF_STORAGE_HAVE_MMAP

/// SIGBUS-safe read machinery (DESIGN.md §13). Reading a mapped page
/// whose backing file shrank raises SIGBUS, which default-kills the
/// process — unacceptable for a server holding long-lived maps. The
/// guard converts the fault in the CURRENT thread's guarded region into
/// a false return; faults outside any guarded region get the default
/// disposition back (the handler re-raises after restoring it), so real
/// unexpected bus errors still crash loudly rather than loop.
thread_local sigjmp_buf* t_sigbus_jmp = nullptr;

extern "C" void af1_sigbus_handler(int sig) {
  if (t_sigbus_jmp != nullptr) {
    siglongjmp(*t_sigbus_jmp, 1);
  }
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

/// Installs the process-wide handler exactly once (idempotent,
/// thread-safe). Chained installation is deliberately not attempted:
/// the handler itself forwards non-guarded faults to the default
/// disposition.
void install_sigbus_handler() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    struct sigaction sa{};
    sa.sa_handler = af1_sigbus_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGBUS, &sa, nullptr);
  });
}

/// Runs `fn` with SIGBUS converted into a false return. `fn` must be
/// raw reads only — siglongjmp unwinds NO destructors, so nothing that
/// owns resources may be alive inside the region. Returns true when
/// `fn` completed without faulting.
template <typename Fn>
bool sigbus_guarded(Fn&& fn) {
  install_sigbus_handler();
  sigjmp_buf jmp;
  sigjmp_buf* const prev = t_sigbus_jmp;
  if (sigsetjmp(jmp, 1) != 0) {
    t_sigbus_jmp = prev;
    return false;
  }
  t_sigbus_jmp = &jmp;
  fn();
  t_sigbus_jmp = prev;
  return true;
}

#else

/// Without mmap the "map" is a private heap buffer: no fault possible.
template <typename Fn>
bool sigbus_guarded(Fn&& fn) {
  fn();
  return true;
}

#endif

/// The ten defined section kinds; anything else in a record is a table
/// corruption, not a future extension (extensions bump the version).
bool known_kind(std::uint32_t kind) {
  return kind >= static_cast<std::uint32_t>(SectionKind::kCsrOffsets) &&
         kind <= static_cast<std::uint32_t>(SectionKind::kIndexSlots32);
}

}  // namespace

MappedDataset::MappedDataset(const std::string& path, Options options)
    : path_(path) {
  open_and_map(options);
  try {
    validate(options);
  } catch (...) {
    // The destructor does not run when a constructor throws; unmap here.
    unmap();
    throw;
  }
}

MappedDataset::~MappedDataset() { unmap(); }

void MappedDataset::unmap() {
#ifdef AF_STORAGE_HAVE_MMAP
  if (map_ != nullptr && heap_ == nullptr) {
    ::munmap(map_, map_bytes_);
  }
#endif
  map_ = nullptr;
}

void MappedDataset::open_and_map(const Options& options) {
#ifdef AF_STORAGE_HAVE_MMAP
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) {
    throw Af1Error(Af1Error::Code::kIo, at(path_, "cannot open"));
  }
  if (AF_FAILPOINT_FIRED("storage.map_open")) {
    ::close(fd);
    throw Af1Error(Af1Error::Code::kIo, at(path_, "injected open failure"));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw Af1Error(Af1Error::Code::kIo, at(path_, "cannot stat"));
  }
  map_bytes_ = static_cast<std::size_t>(st.st_size);
  if (map_bytes_ < kPayloadStart) {
    ::close(fd);
    throw Af1Error(Af1Error::Code::kTruncated,
                   at(path_, "file is " + std::to_string(map_bytes_) +
                                 " bytes — smaller than the header"));
  }
  void* m = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (m == MAP_FAILED) {
    throw Af1Error(Af1Error::Code::kIo, at(path_, "mmap failed"));
  }
  map_ = static_cast<std::byte*>(m);
  if (options.huge_pages) {
    hugepage_advised_ = advise_file_hugepages(map_, map_bytes_);
  }
#else
  // No mmap on this host: read the whole container into the heap. The
  // validation and view plumbing are identical; only zero-copy is lost.
  std::ifstream f(path_, std::ios::binary | std::ios::ate);
  if (!f) {
    throw Af1Error(Af1Error::Code::kIo, at(path_, "cannot open"));
  }
  if (AF_FAILPOINT_FIRED("storage.map_open")) {
    throw Af1Error(Af1Error::Code::kIo, at(path_, "injected open failure"));
  }
  const auto size = static_cast<std::size_t>(f.tellg());
  if (size < kPayloadStart) {
    throw Af1Error(Af1Error::Code::kTruncated,
                   at(path_, "file is " + std::to_string(size) +
                                 " bytes — smaller than the header"));
  }
  heap_ = std::make_unique<std::byte[]>(size);
  f.seekg(0);
  f.read(reinterpret_cast<char*>(heap_.get()),
         static_cast<std::streamsize>(size));
  if (!f) {
    throw Af1Error(Af1Error::Code::kIo, at(path_, "short read"));
  }
  map_ = heap_.get();
  map_bytes_ = size;
  (void)options;
#endif
}

void MappedDataset::validate(const Options& options) {
  // Header first: magic → version → endianness → checksum, in that
  // order, so the error names the first thing actually wrong with the
  // file rather than a downstream symptom.
  std::memcpy(&header_, map_, sizeof(header_));
  if (std::memcmp(header_.magic, kMagic.data(), kMagic.size()) != 0) {
    throw Af1Error(Af1Error::Code::kBadMagic,
                   at(path_, "not an .af1 container (bad magic)"));
  }
  if (header_.version != kFormatVersion) {
    throw Af1Error(
        Af1Error::Code::kBadVersion,
        at(path_, "format version " + std::to_string(header_.version) +
                      ", this build reads exactly " +
                      std::to_string(kFormatVersion) +
                      " — rebuild the container with af_index_build"));
  }
  if (header_.endianness != kEndianTag) {
    throw Af1Error(Af1Error::Code::kBadEndianness,
                   at(path_, "written on a host of the other endianness"));
  }
  table_ = reinterpret_cast<const SectionRecord*>(map_ + sizeof(FileHeader));
  if (header_.header_checksum != header_checksum(header_, table_)) {
    throw Af1Error(Af1Error::Code::kBadHeader,
                   at(path_, "header/section-table checksum mismatch"));
  }
  if (header_.file_bytes > map_bytes_) {
    throw Af1Error(
        Af1Error::Code::kTruncated,
        at(path_, "header claims " + std::to_string(header_.file_bytes) +
                      " bytes, file has " + std::to_string(map_bytes_)));
  }
  if (header_.file_bytes < map_bytes_) {
    throw Af1Error(
        Af1Error::Code::kBadHeader,
        at(path_, std::to_string(map_bytes_ - header_.file_bytes) +
                      " trailing bytes beyond the declared container"));
  }

  // Section table structure. The checksum above already vouches for the
  // bytes; this vouches for their meaning.
  if (header_.section_count > kMaxSections) {
    throw Af1Error(Af1Error::Code::kBadSectionTable,
                   at(path_, "section count " +
                                 std::to_string(header_.section_count) +
                                 " exceeds table capacity"));
  }
  std::uint32_t seen_kinds = 0;  // bitmask over the 10 kinds
  for (std::uint32_t i = 0; i < header_.section_count; ++i) {
    const SectionRecord& rec = table_[i];
    const std::string where =
        "section " + std::to_string(i) + " (kind " +
        std::to_string(rec.kind) + ")";
    if (!known_kind(rec.kind) || rec.elem_size == 0) {
      throw Af1Error(Af1Error::Code::kBadSectionTable,
                     at(path_, where + ": unknown kind or zero elem_size"));
    }
    if (seen_kinds & (1u << rec.kind)) {
      throw Af1Error(Af1Error::Code::kBadSectionTable,
                     at(path_, where + ": duplicate kind"));
    }
    seen_kinds |= 1u << rec.kind;
    if (rec.offset < kPayloadStart || rec.offset % kSectionAlign != 0) {
      throw Af1Error(Af1Error::Code::kBadSectionTable,
                     at(path_, where + ": misaligned or overlapping offset"));
    }
    if (rec.offset + rec.payload_bytes() > header_.file_bytes ||
        rec.offset + rec.payload_bytes() < rec.offset) {
      throw Af1Error(Af1Error::Code::kTruncated,
                     at(path_, where + ": payload extends past end of file"));
    }
  }

  if (options.validate_checksums) {
    for (std::uint32_t i = 0; i < header_.section_count; ++i) {
      const SectionRecord& rec = table_[i];
      const auto bytes = payload(rec);
      // The crc pass reads every payload byte — exactly the reads a
      // truncation between stat and here would fault on, so it runs
      // inside the SIGBUS guard (raw reads only, per its contract).
      std::uint32_t crc = 0;
      const bool read_ok = sigbus_guarded(
          [&]() noexcept { crc = crc32(bytes.data(), bytes.size()); });
      if (!read_ok) {
        throw Af1Error(
            Af1Error::Code::kTruncated,
            at(path_, std::string("section '") +
                          to_string(static_cast<SectionKind>(rec.kind)) +
                          "' faulted (SIGBUS) — file truncated under "
                          "the map"));
      }
      if (AF_FAILPOINT_FIRED("storage.read_validate")) {
        crc ^= 0x1;  // injected bit-rot: corrupt the observed checksum
      }
      if (crc != rec.checksum) {
        throw Af1Error(
            Af1Error::Code::kBadChecksum,
            at(path_, std::string("section '") +
                          to_string(static_cast<SectionKind>(rec.kind)) +
                          "' checksum mismatch"));
      }
    }
  }

  // Shape: the graph sections must exist and agree with the header's
  // counts; then the CSR views are handed to Graph::from_external, whose
  // own monotonicity/shape contracts are rethrown as kBadShape.
  if (header_.num_nodes >= kNoNode) {
    throw Af1Error(Af1Error::Code::kBadShape,
                   at(path_, "node count exceeds NodeId range"));
  }
  const std::uint64_t n = header_.num_nodes;
  const std::uint64_t arcs = 2 * header_.num_edges;
  const struct {
    SectionKind kind;
    std::uint64_t count;
    std::uint32_t elem_size;
  } expect[] = {
      {SectionKind::kCsrOffsets, n + 1, sizeof(ArcIndex)},
      {SectionKind::kAdjacency, arcs, sizeof(NodeId)},
      {SectionKind::kInWeights, arcs, sizeof(double)},
      {SectionKind::kOutWeights, arcs, sizeof(double)},
      {SectionKind::kTotalInWeight, n, sizeof(double)},
      {SectionKind::kLeftoverMass, n, sizeof(double)},
  };
  for (const auto& e : expect) {
    const SectionRecord* rec = find(e.kind);
    if (rec == nullptr) {
      throw Af1Error(Af1Error::Code::kBadShape,
                     at(path_, std::string("required section '") +
                                   to_string(e.kind) + "' is missing"));
    }
    if (rec->count != e.count || rec->elem_size != e.elem_size) {
      throw Af1Error(
          Af1Error::Code::kBadShape,
          at(path_, std::string("section '") + to_string(e.kind) +
                        "' shape disagrees with the header counts"));
    }
  }
  // Index sections come in pairs (offsets + slots), both or neither.
  const struct {
    SectionKind offsets;
    SectionKind slots;
    std::uint32_t off_elem;
    std::uint32_t slot_elem;
  } pairs[] = {
      {SectionKind::kIndexOffsets64, SectionKind::kIndexSlots64, 8, 16},
      {SectionKind::kIndexOffsets32, SectionKind::kIndexSlots32, 4, 12},
  };
  for (const auto& p : pairs) {
    const SectionRecord* off = find(p.offsets);
    const SectionRecord* slots = find(p.slots);
    if ((off == nullptr) != (slots == nullptr)) {
      throw Af1Error(Af1Error::Code::kBadShape,
                     at(path_, std::string("index sections '") +
                                   to_string(p.offsets) + "'/'" +
                                   to_string(p.slots) +
                                   "' must both be present or both absent"));
    }
    if (off != nullptr &&
        (off->count != n + 1 || off->elem_size != p.off_elem ||
         slots->elem_size != p.slot_elem)) {
      throw Af1Error(Af1Error::Code::kBadShape,
                     at(path_, std::string("index section '") +
                                   to_string(p.offsets) +
                                   "' shape disagrees with the header"));
    }
  }

  try {
    const auto offs = payload(require(SectionKind::kCsrOffsets));
    const auto adj = payload(require(SectionKind::kAdjacency));
    const auto in_w = payload(require(SectionKind::kInWeights));
    const auto out_w = payload(require(SectionKind::kOutWeights));
    const auto tot = payload(require(SectionKind::kTotalInWeight));
    graph_ = Graph::from_external(
        {reinterpret_cast<const ArcIndex*>(offs.data()),
         static_cast<std::size_t>(n + 1)},
        {reinterpret_cast<const NodeId*>(adj.data()),
         static_cast<std::size_t>(arcs)},
        {reinterpret_cast<const double*>(in_w.data()),
         static_cast<std::size_t>(arcs)},
        {reinterpret_cast<const double*>(out_w.data()),
         static_cast<std::size_t>(arcs)},
        {reinterpret_cast<const double*>(tot.data()),
         static_cast<std::size_t>(n)});
  } catch (const Af1Error&) {
    throw;
  } catch (const std::exception& e) {
    throw Af1Error(Af1Error::Code::kBadShape, at(path_, e.what()));
  }
}

void MappedDataset::revalidate() const {
  // Header + section-table pass. No stat() pre-check on purpose: a size
  // probe would race the very truncation this defends against, while
  // the guarded reads catch it at the only place it matters — the
  // access itself. Multi-page truncation faults here or in the payload
  // pass below (kTruncated); sub-page truncation leaves the final page
  // mapped with a zeroed tail, which the checksums catch (kBadChecksum).
  FileHeader now{};
  std::uint32_t now_checksum = 0;
  const bool head_ok = sigbus_guarded([&]() noexcept {
    std::memcpy(&now, map_, sizeof(now));
    now_checksum = header_checksum(now, table_);
  });
  if (!head_ok) {
    throw Af1Error(Af1Error::Code::kTruncated,
                   at(path_, "header faulted (SIGBUS) — file truncated "
                             "under the map"));
  }
  if (std::memcmp(&now, &header_, sizeof(FileHeader)) != 0 ||
      now_checksum != header_.header_checksum) {
    throw Af1Error(Af1Error::Code::kBadHeader,
                   at(path_, "header changed under the active map"));
  }
  for (std::uint32_t i = 0; i < header_.section_count; ++i) {
    const SectionRecord& rec = table_[i];
    const auto bytes = payload(rec);
    std::uint32_t crc = 0;
    const bool read_ok = sigbus_guarded(
        [&]() noexcept { crc = crc32(bytes.data(), bytes.size()); });
    if (!read_ok) {
      throw Af1Error(
          Af1Error::Code::kTruncated,
          at(path_, std::string("section '") +
                        to_string(static_cast<SectionKind>(rec.kind)) +
                        "' faulted (SIGBUS) — file truncated under the "
                        "map"));
    }
    if (AF_FAILPOINT_FIRED("storage.read_validate")) {
      crc ^= 0x1;  // injected bit-rot
    }
    if (crc != rec.checksum) {
      throw Af1Error(
          Af1Error::Code::kBadChecksum,
          at(path_, std::string("section '") +
                        to_string(static_cast<SectionKind>(rec.kind)) +
                        "' no longer matches its checksum (bit rot or "
                        "rewrite under the active map)"));
    }
  }
}

const SectionRecord* MappedDataset::find(SectionKind kind) const {
  for (std::uint32_t i = 0; i < header_.section_count; ++i) {
    if (table_[i].kind == static_cast<std::uint32_t>(kind)) return &table_[i];
  }
  return nullptr;
}

const SectionRecord& MappedDataset::require(SectionKind kind) const {
  const SectionRecord* rec = find(kind);
  if (rec == nullptr) {
    throw Af1Error(Af1Error::Code::kBadShape,
                   at(path_, std::string("required section '") +
                                 to_string(kind) + "' is missing"));
  }
  return *rec;
}

std::span<const std::byte> MappedDataset::payload(
    const SectionRecord& rec) const {
  return {map_ + rec.offset, static_cast<std::size_t>(rec.payload_bytes())};
}

std::span<const double> MappedDataset::leftover_mass() const {
  const auto bytes = payload(require(SectionKind::kLeftoverMass));
  return {reinterpret_cast<const double*>(bytes.data()),
          bytes.size() / sizeof(double)};
}

bool MappedDataset::has_index(bool compact) const {
  return find(compact ? SectionKind::kIndexOffsets32
                      : SectionKind::kIndexOffsets64) != nullptr;
}

std::unique_ptr<const SelectionSampler> MappedDataset::make_index(
    bool compact, SimdLevel simd, bool copy, bool huge_pages) const {
  if (!has_index(compact)) {
    throw Af1Error(
        Af1Error::Code::kBadShape,
        at(path_, std::string("container has no ") +
                      (compact ? "compact (f32)" : "full (f64)") +
                      " index sections — rebuild with af_index_build"));
  }
  ExternalIndexTables tables;
  tables.copy = copy;
  tables.huge_pages = huge_pages;
  const auto num_nodes = static_cast<NodeId>(header_.num_nodes);
  try {
    if (compact) {
      tables.offsets = payload(require(SectionKind::kIndexOffsets32));
      tables.slots = payload(require(SectionKind::kIndexSlots32));
      return std::make_unique<const CompactSamplingIndex>(tables, num_nodes,
                                                          simd);
    }
    tables.offsets = payload(require(SectionKind::kIndexOffsets64));
    tables.slots = payload(require(SectionKind::kIndexSlots64));
    return std::make_unique<const SamplingIndex>(tables, num_nodes, simd);
  } catch (const Af1Error&) {
    throw;
  } catch (const std::exception& e) {
    throw Af1Error(Af1Error::Code::kBadShape, at(path_, e.what()));
  }
}

}  // namespace af::storage
