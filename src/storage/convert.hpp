// Graph → .af1 container serialization (the producer side of storage/).
//
// write_container snapshots an in-RAM Graph — CSR topology, directional
// weights, leftover-mass vector — plus freshly built SamplingIndex /
// CompactSamplingIndex tables into one .af1 file (storage/format.hpp).
// The index sections hold the EXACT bytes an in-RAM build produces
// (SamplingIndex::raw_offsets / raw_slots), which is what makes the
// mapped serving path bit-identical to the build-in-RAM path: same
// tables, same draws (the counter-stream contract never sees the
// difference).
//
// Sections are streamed through Af1Writer, so peak memory during
// conversion is the graph + one index at a time — never the output file.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace af::storage {

/// What to put in the container besides the graph itself.
struct ConvertOptions {
  /// Prebuild and embed the exact-threshold SamplingIndex tables
  /// (16-byte slots, sections kIndexOffsets64/kIndexSlots64).
  bool index64 = true;
  /// Prebuild and embed the CompactSamplingIndex tables (12-byte slots,
  /// sections kIndexOffsets32/kIndexSlots32).
  bool index32 = true;
};

/// Writes `g` (and the prebuilt index tables selected by `options`) to
/// `path` as an .af1 container, atomically (temp file + rename). Returns
/// the container's total byte size. Throws Af1Error(kIo) on I/O failure.
///
/// Index construction here uses the scalar build path — the stored table
/// bytes are independent of the SIMD level (kernel dispatch is a
/// load-time decision, never a layout one), so containers written on any
/// host serve every kernel.
std::uint64_t write_container(const Graph& g, const std::string& path,
                              const ConvertOptions& options = {});

}  // namespace af::storage
