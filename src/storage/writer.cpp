#include "storage/writer.hpp"

#include <cstdio>
#include <cstring>

#include "util/contracts.hpp"

namespace af::storage {

Af1Writer::Af1Writer(std::string path, std::uint64_t num_nodes,
                     std::uint64_t num_edges)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  std::memcpy(header_.magic, kMagic.data(), kMagic.size());
  header_.version = kFormatVersion;
  header_.endianness = kEndianTag;
  header_.num_nodes = num_nodes;
  header_.num_edges = num_edges;

  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw Af1Error(Af1Error::Code::kIo,
                   "cannot create '" + tmp_path_ + "' for writing");
  }
  // Reserve the header + section table region; finish() back-patches it.
  char zeros[kPayloadStart] = {};
  out_.write(zeros, sizeof(zeros));
  pos_ = kPayloadStart;
  require_open("reserving the header");
}

Af1Writer::~Af1Writer() {
  if (!finished_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void Af1Writer::require_open(const char* what) {
  if (!out_) {
    throw Af1Error(Af1Error::Code::kIo,
                   std::string("write failed while ") + what + " ('" +
                       tmp_path_ + "')");
  }
}

void Af1Writer::pad_to_alignment() {
  static const char zeros[kSectionAlign] = {};
  const std::uint64_t misalign = pos_ % kSectionAlign;
  if (misalign != 0) {
    const std::uint64_t pad = kSectionAlign - misalign;
    out_.write(zeros, static_cast<std::streamsize>(pad));
    pos_ += pad;
  }
}

void Af1Writer::begin_section(SectionKind kind, std::uint32_t elem_size) {
  AF_EXPECTS(!finished_, "writer already finished");
  AF_EXPECTS(open_section_ == kMaxSections,
             "begin_section with a section still open");
  AF_EXPECTS(elem_size > 0, "section elements must have positive size");
  AF_EXPECTS(header_.section_count < kMaxSections,
             "section table capacity exceeded");
  pad_to_alignment();
  require_open("aligning a section");
  open_section_ = header_.section_count;
  SectionRecord& rec = table_[open_section_];
  rec.kind = static_cast<std::uint32_t>(kind);
  rec.elem_size = elem_size;
  rec.offset = pos_;
  section_bytes_ = 0;
  section_crc_ = 0;
}

void Af1Writer::append(const void* data, std::size_t bytes) {
  AF_EXPECTS(open_section_ != kMaxSections, "append outside a section");
  if (bytes == 0) return;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  require_open("streaming a section payload");
  section_crc_ = crc32(data, bytes, section_crc_);
  section_bytes_ += bytes;
  pos_ += bytes;
}

void Af1Writer::end_section() {
  AF_EXPECTS(open_section_ != kMaxSections, "end_section without begin");
  SectionRecord& rec = table_[open_section_];
  AF_EXPECTS(section_bytes_ % rec.elem_size == 0,
             "section payload is not a whole number of elements");
  rec.count = section_bytes_ / rec.elem_size;
  rec.checksum = section_crc_;
  ++header_.section_count;
  open_section_ = kMaxSections;
}

void Af1Writer::write_section(SectionKind kind, const void* data,
                              std::size_t bytes, std::uint32_t elem_size) {
  begin_section(kind, elem_size);
  append(data, bytes);
  end_section();
}

std::uint64_t Af1Writer::finish() {
  AF_EXPECTS(!finished_, "finish called twice");
  AF_EXPECTS(open_section_ == kMaxSections,
             "finish with a section still open");
  header_.file_bytes = pos_;
  header_.header_checksum = header_checksum(header_, table_);

  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&header_), sizeof(header_));
  out_.write(reinterpret_cast<const char*>(table_), sizeof(table_));
  require_open("back-patching the header");
  out_.flush();
  out_.close();
  if (out_.fail()) {
    throw Af1Error(Af1Error::Code::kIo,
                   "closing '" + tmp_path_ + "' failed");
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    throw Af1Error(Af1Error::Code::kIo,
                   "renaming '" + tmp_path_ + "' to '" + path_ + "' failed");
  }
  finished_ = true;
  return header_.file_bytes;
}

}  // namespace af::storage
