#include "storage/writer.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define AF_STORAGE_HAVE_FSYNC 1
#endif

#include "util/contracts.hpp"
#include "util/failpoint.hpp"

namespace af::storage {

namespace {

/// fsync by path (the ofstream API exposes no descriptor). Returns false
/// on any failure; the caller decides whether that is fatal (the data
/// file: yes) or advisory (the parent directory: no).
bool fsync_path(const std::string& path, bool directory) {
#ifdef AF_STORAGE_HAVE_FSYNC
  const int fd = ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY
                                                : O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  (void)directory;
  return true;  // no fsync on this host; stream flush is all there is
#endif
}

/// The directory whose entry list the rename mutates.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Af1Writer::Af1Writer(std::string path, std::uint64_t num_nodes,
                     std::uint64_t num_edges)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  std::memcpy(header_.magic, kMagic.data(), kMagic.size());
  header_.version = kFormatVersion;
  header_.endianness = kEndianTag;
  header_.num_nodes = num_nodes;
  header_.num_edges = num_edges;

  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw Af1Error(Af1Error::Code::kIo,
                   "cannot create '" + tmp_path_ + "' for writing");
  }
  // Reserve the header + section table region; finish() back-patches it.
  char zeros[kPayloadStart] = {};
  out_.write(zeros, sizeof(zeros));
  pos_ = kPayloadStart;
  require_open("reserving the header");
}

Af1Writer::~Af1Writer() {
  if (!finished_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void Af1Writer::require_open(const char* what) {
  if (!out_) {
    throw Af1Error(Af1Error::Code::kIo,
                   std::string("write failed while ") + what + " ('" +
                       tmp_path_ + "')");
  }
}

void Af1Writer::pad_to_alignment() {
  static const char zeros[kSectionAlign] = {};
  const std::uint64_t misalign = pos_ % kSectionAlign;
  if (misalign != 0) {
    const std::uint64_t pad = kSectionAlign - misalign;
    out_.write(zeros, static_cast<std::streamsize>(pad));
    pos_ += pad;
  }
}

void Af1Writer::begin_section(SectionKind kind, std::uint32_t elem_size) {
  AF_EXPECTS(!finished_, "writer already finished");
  AF_EXPECTS(open_section_ == kMaxSections,
             "begin_section with a section still open");
  AF_EXPECTS(elem_size > 0, "section elements must have positive size");
  AF_EXPECTS(header_.section_count < kMaxSections,
             "section table capacity exceeded");
  pad_to_alignment();
  require_open("aligning a section");
  open_section_ = header_.section_count;
  SectionRecord& rec = table_[open_section_];
  rec.kind = static_cast<std::uint32_t>(kind);
  rec.elem_size = elem_size;
  rec.offset = pos_;
  section_bytes_ = 0;
  section_crc_ = 0;
}

void Af1Writer::append(const void* data, std::size_t bytes) {
  AF_EXPECTS(open_section_ != kMaxSections, "append outside a section");
  if (bytes == 0) return;
  if (AF_FAILPOINT_FIRED("storage.writer_write")) {
    // Injected ENOSPC/short write: poison the stream so this surfaces
    // through the same badbit → Af1Error path a real device error takes.
    out_.setstate(std::ios::badbit);
  }
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  require_open("streaming a section payload");
  section_crc_ = crc32(data, bytes, section_crc_);
  section_bytes_ += bytes;
  pos_ += bytes;
}

void Af1Writer::end_section() {
  AF_EXPECTS(open_section_ != kMaxSections, "end_section without begin");
  SectionRecord& rec = table_[open_section_];
  AF_EXPECTS(section_bytes_ % rec.elem_size == 0,
             "section payload is not a whole number of elements");
  rec.count = section_bytes_ / rec.elem_size;
  rec.checksum = section_crc_;
  ++header_.section_count;
  open_section_ = kMaxSections;
}

void Af1Writer::write_section(SectionKind kind, const void* data,
                              std::size_t bytes, std::uint32_t elem_size) {
  begin_section(kind, elem_size);
  append(data, bytes);
  end_section();
}

std::uint64_t Af1Writer::finish() {
  AF_EXPECTS(!finished_, "finish called twice");
  AF_EXPECTS(open_section_ == kMaxSections,
             "finish with a section still open");
  header_.file_bytes = pos_;
  header_.header_checksum = header_checksum(header_, table_);

  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&header_), sizeof(header_));
  out_.write(reinterpret_cast<const char*>(table_), sizeof(table_));
  require_open("back-patching the header");
  out_.flush();
  out_.close();
  if (out_.fail()) {
    throw Af1Error(Af1Error::Code::kIo,
                   "closing '" + tmp_path_ + "' failed");
  }
  // Durability before visibility: the payload must be on stable storage
  // BEFORE the rename publishes the name, or a crash between the two
  // could leave a complete-looking .af1 whose tail the page cache never
  // wrote back. A failed data fsync is fatal (the bytes' fate is
  // unknown); the destructor removes the tmp file.
  if (AF_FAILPOINT_FIRED("storage.writer_finish") ||
      !fsync_path(tmp_path_, /*directory=*/false)) {
    throw Af1Error(Af1Error::Code::kIo,
                   "fsync of '" + tmp_path_ + "' failed — not publishing "
                   "a container of unknown durability");
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    throw Af1Error(Af1Error::Code::kIo,
                   "renaming '" + tmp_path_ + "' to '" + path_ + "' failed");
  }
  // Best-effort: persist the directory entry too. Failure is not fatal —
  // the container itself is durable and correctly named; a crash could
  // at worst roll the *name* back to absent, never to a torn file.
  (void)fsync_path(parent_dir(path_), /*directory=*/true);
  finished_ = true;
  return header_.file_bytes;
}

}  // namespace af::storage
