// MappedDataset — the consumer side of storage/: opens an .af1 container
// read-only, validates it (magic, version, endianness, header checksum,
// section table structure, payload checksums, shape), and serves the
// graph and the prebuilt index tables as zero-copy views over the map.
//
// Opening costs O(validation): with checksum validation on (the default)
// that is one streaming pass over the file's bytes; with it off, only the
// 576-byte header region is touched and the OS pages everything else on
// demand — the instant-cold-start path for containers on fast storage
// whose integrity is ensured elsewhere (e.g. a checksummed filesystem).
// Either way, NO alias-table construction happens: the index sections ARE
// the tables.
//
// Every validation failure throws storage::Af1Error with a structured
// code — a corrupt, truncated, foreign-endian or stale-version file is a
// catchable error, never UB (tests/storage_format_test.cpp pins this over
// a corruption matrix).
//
// NUMA interaction (DESIGN.md §11): make_index(copy=false) hands the
// samplers views into the map — one physical copy, paged by the OS,
// possibly remote for some sockets. make_index(copy=true) materializes
// the tables into fresh (huge-page-preferring) RAM, first-touched by the
// calling thread — run it on threads pinned per node (IndexReplicas'
// factory does exactly this) to get node-local replicas, paying the copy
// cost for the steady-state latency win. Planner::from_mapped picks
// between the two automatically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "diffusion/realization.hpp"
#include "graph/graph.hpp"
#include "storage/format.hpp"
#include "util/cpu.hpp"

namespace af::storage {

/// A validated, read-only mapping of one .af1 container. Immutable and
/// thread-safe after construction. The dataset must outlive the Graph
/// reference, every view-mode index built from it, and every Planner
/// constructed over those.
/// Knobs for opening a container.
struct OpenOptions {
  /// Verify every section payload's crc32 at open (one streaming read
  /// of the file). Off = trust the file and touch only the header.
  bool validate_checksums = true;
  /// Advise the kernel to back the mapping with huge pages
  /// (util/hugepage::advise_file_hugepages — best-effort, warn-once).
  bool huge_pages = true;
};

class MappedDataset {
 public:
  using Options = OpenOptions;

  /// Opens and validates `path`. Throws Af1Error (structured code +
  /// detail) on any I/O or validation failure.
  explicit MappedDataset(const std::string& path, Options options = {});
  ~MappedDataset();

  MappedDataset(const MappedDataset&) = delete;
  MappedDataset& operator=(const MappedDataset&) = delete;

  /// The container's graph: CSR views straight into the map (zero-copy;
  /// Graph::is_external() is true).
  const Graph& graph() const { return graph_; }

  const FileHeader& header() const { return header_; }
  std::uint64_t num_nodes() const { return header_.num_nodes; }
  std::uint64_t num_edges() const { return header_.num_edges; }
  std::uint64_t file_bytes() const { return map_bytes_; }
  const std::string& path() const { return path_; }

  /// The materialized per-node ℵ0 mass section (kLeftoverMass).
  std::span<const double> leftover_mass() const;

  /// Whether the container carries prebuilt tables for the given index
  /// flavor (af_index_build --skip-index64/--skip-index32 omit them).
  bool has_index(bool compact) const;

  /// Reconstructs a ready-to-sample SelectionSampler from the mapped
  /// tables — no alias construction, just validation + kernel dispatch.
  /// copy=false: the sampler views the map (this dataset must outlive
  /// it). copy=true: the tables are copied into fresh RAM, first-touched
  /// by the calling thread (the NUMA replication path), `huge_pages`
  /// backing the copy where available. Throws Af1Error(kBadShape) when
  /// the container lacks that index flavor or its tables are mutually
  /// inconsistent.
  std::unique_ptr<const SelectionSampler> make_index(
      bool compact, SimdLevel simd = SimdLevel::kAuto, bool copy = false,
      bool huge_pages = true) const;

  /// True when the mapping was (successfully) advised onto huge pages.
  bool hugepage_advised() const { return hugepage_advised_; }

  /// Re-runs the header and payload-checksum passes over the LIVE map —
  /// the defense against a container changing under an active mapping
  /// (DESIGN.md §13). Reads run inside a SIGBUS guard: a file truncated
  /// under the map faults on its vanished pages, and the guard converts
  /// the fault into Af1Error(kTruncated) instead of a process kill;
  /// bit-rot that leaves the mapping intact surfaces as kBadChecksum.
  /// Throws Af1Error on any mismatch; returns normally when the
  /// container still matches what was validated at open.
  void revalidate() const;

 private:
  void open_and_map(const Options& options);
  void validate(const Options& options);
  void unmap();
  const SectionRecord* find(SectionKind kind) const;
  const SectionRecord& require(SectionKind kind) const;
  std::span<const std::byte> payload(const SectionRecord& rec) const;

  std::string path_;
  std::byte* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  /// Fallback for hosts without mmap: the file is read into this heap
  /// buffer and map_ points at it (loses zero-copy, keeps the API).
  std::unique_ptr<std::byte[]> heap_;
  FileHeader header_{};
  const SectionRecord* table_ = nullptr;  // the 16 records, in the map
  Graph graph_;
  bool hugepage_advised_ = false;
};

}  // namespace af::storage
