// Classic graph algorithms used by the baselines, the pair sampler and
// the V_max computation: BFS (single- and multi-source), connected
// components, Dijkstra, and iterative node-disjoint shortest paths.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace af {

/// Distance value for unreachable nodes.
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;

/// BFS hop distances from `source` to every node.
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// BFS hop distances from a set of sources (distance 0 for each source).
std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                         const std::vector<NodeId>& sources);

/// Hop distance between two nodes, or kUnreachable.
std::uint32_t bfs_distance(const Graph& g, NodeId from, NodeId to);

/// Connected component labels in [0, #components).
std::vector<std::uint32_t> connected_components(const Graph& g);

/// Nodes of the component containing `v`.
std::vector<NodeId> component_of(const Graph& g, NodeId v);

/// Dijkstra from `source` with arc length = `1 - log(w)`-style costs are a
/// caller concern; this routine takes the per-target incoming weight as
/// given and interprets cost(u→v) = cost_fn applied by the caller through
/// the `use_weights` flag: when false, every arc costs 1 (hop metric);
/// when true, arc u→v costs -log(w(u,v)) so that shortest paths maximize
/// the product of familiarity weights along the path.
std::vector<double> dijkstra(const Graph& g, NodeId source, bool use_weights);

/// One shortest path (hop metric) from `from` to `to`, inclusive of both
/// endpoints; nodes in `blocked` (bitmask by node id) may not be used as
/// intermediate nodes. Returns nullopt when no path exists.
std::optional<std::vector<NodeId>> shortest_path_avoiding(
    const Graph& g, NodeId from, NodeId to, const std::vector<char>& blocked);

/// Result of induced_subgraph: the new graph plus the id mappings.
struct InducedSubgraph {
  Graph graph;
  /// original id -> new dense id (kNoNode for nodes outside the subset)
  std::vector<NodeId> to_sub;
  /// new dense id -> original id
  std::vector<NodeId> to_original;
};

/// The subgraph induced by `nodes` (need not be sorted; duplicates are
/// collapsed). Edge weights are copied per direction, NOT re-normalized:
/// the familiarity a friend contributes does not change because other
/// friendships fall outside the analysis window. Per-node incoming
/// totals can only shrink, so the model invariant Σ ≤ 1 is preserved.
InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<NodeId>& nodes);

/// Iteratively extracts up to `max_paths` shortest paths from `from` to
/// `to` whose *intermediate* nodes are pairwise disjoint (the paper's SP
/// baseline: "the next shortest path disjoint from those that have been
/// selected"). Paths include both endpoints. Stops early when `to`
/// becomes unreachable.
std::vector<std::vector<NodeId>> node_disjoint_shortest_paths(
    const Graph& g, NodeId from, NodeId to, std::size_t max_paths);

}  // namespace af
