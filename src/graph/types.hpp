// Fundamental identifier types shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace af {

/// Node identifier. 32 bits comfortably covers the paper's largest dataset
/// (1.1M nodes) while halving the memory footprint of adjacency arrays.
using NodeId = std::uint32_t;

/// Index into flattened arc arrays (up to 2*m entries).
using ArcIndex = std::uint64_t;

/// Sentinel for "no node". Also used to represent the artificial user
/// ℵ0 of Definition 1 (a node that is nobody's friend).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

}  // namespace af
