// Influence-weight schemes.
//
// The paper's experiments use the "weighted cascade"-style convention
// w(u,v) = 1/|N_v| (Sec. IV, "Friending Model", following Kempe et al.).
// The other schemes are standard alternatives from the linear-threshold
// literature; all of them respect the model requirement Σ_u w(u,v) ≤ 1.
#pragma once

#include <cstddef>
#include <span>

#include "graph/types.hpp"

namespace af {

class Rng;

/// Value-type description of a weight scheme, applied per node over the
/// node's incoming arcs at Graph build time.
struct WeightScheme {
  enum class Kind {
    /// w(u,v) = 1/|N_v| — the paper's setting; sums to exactly 1.
    kInverseDegree,
    /// w(u,v) = min(c, 1/|N_v|) for a constant c = param.
    kConstantClamped,
    /// Weights drawn U(0,1) then normalized so Σ_u w(u,v) = param (≤ 1).
    kRandomNormalized,
    /// Weights drawn from {0.1, 0.01, 0.001} (trivalency model), rescaled
    /// only when the sum would exceed 1.
    kTrivalency,
  };

  Kind kind = Kind::kInverseDegree;
  double param = 1.0;

  static WeightScheme inverse_degree() {
    return {Kind::kInverseDegree, 1.0};
  }
  static WeightScheme constant_clamped(double c) {
    return {Kind::kConstantClamped, c};
  }
  static WeightScheme random_normalized(double total = 1.0) {
    return {Kind::kRandomNormalized, total};
  }
  static WeightScheme trivalency() { return {Kind::kTrivalency, 0.0}; }

  /// True iff the scheme consumes randomness (build() then requires a Rng).
  bool is_random() const {
    return kind == Kind::kRandomNormalized || kind == Kind::kTrivalency;
  }

  /// Fills `weights` (the incoming-weight slots of node v, one per
  /// neighbor) according to the scheme. `rng` may be nullptr for
  /// deterministic schemes.
  void assign(NodeId v, std::span<double> weights, Rng* rng) const;
};

}  // namespace af
