#include "graph/algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/contracts.hpp"

namespace af {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  return bfs_distances(g, std::vector<NodeId>{source});
}

std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                         const std::vector<NodeId>& sources) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier;
  for (NodeId s : sources) {
    AF_EXPECTS(s < g.num_nodes(), "BFS source out of range");
    if (dist[s] != 0) {
      dist[s] = 0;
      frontier.push_back(s);
    }
  }
  std::vector<NodeId> next;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (NodeId v : frontier) {
      for (NodeId u : g.neighbors(v)) {
        if (dist[u] == kUnreachable) {
          dist[u] = level;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::uint32_t bfs_distance(const Graph& g, NodeId from, NodeId to) {
  AF_EXPECTS(from < g.num_nodes() && to < g.num_nodes(),
             "BFS endpoint out of range");
  if (from == to) return 0;
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  dist[from] = 0;
  std::vector<NodeId> frontier{from};
  std::vector<NodeId> next;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (NodeId v : frontier) {
      for (NodeId u : g.neighbors(v)) {
        if (dist[u] == kUnreachable) {
          if (u == to) return level;
          dist[u] = level;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
  }
  return kUnreachable;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> comp(n, kUnreachable);
  std::uint32_t next_label = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != kUnreachable) continue;
    comp[s] = next_label;
    stack.push_back(s);
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      for (NodeId u : g.neighbors(v)) {
        if (comp[u] == kUnreachable) {
          comp[u] = next_label;
          stack.push_back(u);
        }
      }
    }
    ++next_label;
  }
  return comp;
}

std::vector<NodeId> component_of(const Graph& g, NodeId v) {
  AF_EXPECTS(v < g.num_nodes(), "node out of range");
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> out;
  std::vector<NodeId> stack{v};
  seen[v] = 1;
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    out.push_back(x);
    for (NodeId u : g.neighbors(x)) {
      if (!seen[u]) {
        seen[u] = 1;
        stack.push_back(u);
      }
    }
  }
  return out;
}

std::vector<double> dijkstra(const Graph& g, NodeId source, bool use_weights) {
  AF_EXPECTS(source < g.num_nodes(), "Dijkstra source out of range");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_nodes(), kInf);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId u = nbrs[i];
      // Arc v→u: the familiarity weight that v contributes toward u is
      // w(v,u), stored in u's incoming list; look it up symmetrically
      // from v's list via the graph accessor when weighted.
      const double cost =
          use_weights ? -std::log(g.weight(v, u)) : 1.0;
      const double nd = d + cost;
      if (nd < dist[u]) {
        dist[u] = nd;
        pq.emplace(nd, u);
      }
    }
  }
  return dist;
}

std::optional<std::vector<NodeId>> shortest_path_avoiding(
    const Graph& g, NodeId from, NodeId to, const std::vector<char>& blocked) {
  AF_EXPECTS(from < g.num_nodes() && to < g.num_nodes(),
             "endpoint out of range");
  AF_EXPECTS(blocked.size() == g.num_nodes(), "blocked mask size mismatch");
  if (from == to) return std::vector<NodeId>{from};

  std::vector<NodeId> parent(g.num_nodes(), kNoNode);
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> frontier{from};
  seen[from] = 1;
  std::vector<NodeId> next;
  bool found = false;
  while (!frontier.empty() && !found) {
    next.clear();
    for (NodeId v : frontier) {
      for (NodeId u : g.neighbors(v)) {
        if (seen[u]) continue;
        // Intermediate nodes must be unblocked; the terminals are exempt.
        if (blocked[u] && u != to) continue;
        seen[u] = 1;
        parent[u] = v;
        if (u == to) {
          found = true;
          break;
        }
        next.push_back(u);
      }
      if (found) break;
    }
    frontier.swap(next);
  }
  if (!found) return std::nullopt;

  std::vector<NodeId> path;
  for (NodeId v = to; v != kNoNode; v = parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  AF_ENSURES(path.front() == from && path.back() == to,
             "path reconstruction failed");
  return path;
}

InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<NodeId>& nodes) {
  InducedSubgraph out;
  out.to_sub.assign(g.num_nodes(), kNoNode);
  for (NodeId v : nodes) {
    AF_EXPECTS(v < g.num_nodes(), "subgraph node out of range");
    if (out.to_sub[v] != kNoNode) continue;  // collapse duplicates
    out.to_sub[v] = static_cast<NodeId>(out.to_original.size());
    out.to_original.push_back(v);
  }

  Graph::Builder b(static_cast<NodeId>(out.to_original.size()));
  for (NodeId sv = 0; sv < static_cast<NodeId>(out.to_original.size());
       ++sv) {
    const NodeId v = out.to_original[sv];
    auto nbrs = g.neighbors(v);
    for (NodeId u : nbrs) {
      const NodeId su = out.to_sub[u];
      if (su == kNoNode || su <= sv) continue;  // outside or already added
      // Copy both directional weights verbatim.
      b.add_edge(sv, su, g.weight(v, u), g.weight(u, v));
    }
  }
  out.graph = b.build_with_explicit_weights();
  return out;
}

std::vector<std::vector<NodeId>> node_disjoint_shortest_paths(
    const Graph& g, NodeId from, NodeId to, std::size_t max_paths) {
  std::vector<std::vector<NodeId>> paths;
  std::vector<char> blocked(g.num_nodes(), 0);
  while (paths.size() < max_paths) {
    auto p = shortest_path_avoiding(g, from, to, blocked);
    if (!p) break;
    for (NodeId v : *p) {
      if (v != from && v != to) blocked[v] = 1;
    }
    paths.push_back(std::move(*p));
    // A direct edge from→to yields a path with no intermediates; it can
    // be found only once meaningfully, so stop to avoid an infinite loop.
    if (paths.back().size() <= 2) break;
  }
  return paths;
}

}  // namespace af
