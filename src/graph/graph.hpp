// The social-network substrate: an immutable undirected graph in CSR form
// with per-direction influence weights.
//
// Terminology follows the paper (Sec. II-A): for friends u and v, the
// weight w(u,v) ∈ (0,1] is "v's familiarity with u" — the amount u
// contributes toward v's acceptance threshold. Weights are directional
// (w(u,v) need not equal w(v,u)) and normalized per node:
// Σ_u w(u,v) ≤ 1.
//
// Storage: for every node v we store its sorted neighbor list N_v together
// with the *incoming* weights aligned to it, i.e. in_weight(v)[i] is
// w(N_v[i], v). Both the forward friending process (summing mutual-friend
// weight toward v) and realization sampling (v selects a friend u with
// probability w(u,v)) consume exactly this layout.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "util/contracts.hpp"
#include "util/flat_array.hpp"

namespace af {

class Rng;
struct WeightScheme;

/// Immutable undirected social graph with directional weights.
///
/// Construct via Graph::Builder. All accessors are O(1) except
/// has_edge/weight which binary-search the sorted adjacency (O(log deg)).
class Graph {
 public:
  class Builder;

  Graph() = default;

  /// Wraps externally owned CSR arrays (typically sections of an mmap-ed
  /// .af1 container, storage/mapped_dataset) as a Graph without copying.
  /// The spans' memory must outlive the Graph and every copy of it.
  /// Validates the arrays' shape and offset monotonicity (O(n)) and
  /// throws precondition_error on violation; the full invariant sweep
  /// (check_invariants, O(m log deg)) is the caller's opt-in.
  static Graph from_external(std::span<const ArcIndex> offsets,
                             std::span<const NodeId> adjacency,
                             std::span<const double> in_weights,
                             std::span<const double> out_weights,
                             std::span<const double> total_in_weight);

  /// True when the CSR arrays view external memory (a mapped container)
  /// rather than owning their elements.
  bool is_external() const { return offsets_.is_view(); }

  /// Number of users n = |V|.
  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.size() - 1); }

  /// Number of undirected friendships m = |E|.
  std::uint64_t num_edges() const { return adjacency_.size() / 2; }

  /// Degree |N_v|.
  std::size_t degree(NodeId v) const {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbor list N_v.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// Incoming weights aligned with neighbors(v): entry i is w(N_v[i], v).
  std::span<const double> in_weights(NodeId v) const {
    return {in_weights_.data() + offsets_[v],
            in_weights_.data() + offsets_[v + 1]};
  }

  /// Outgoing weights aligned with neighbors(v): entry i is w(v, N_v[i]) —
  /// v's contribution toward N_v[i]. Mirrors in_weights; materialized so
  /// the forward friending process can push influence without per-arc
  /// binary searches.
  std::span<const double> out_weights(NodeId v) const {
    return {out_weights_.data() + offsets_[v],
            out_weights_.data() + offsets_[v + 1]};
  }

  /// Σ_u w(u,v); always ≤ 1. The complement 1 − total_in_weight(v) is the
  /// probability that v selects nobody in a realization (Def. 1).
  double total_in_weight(NodeId v) const { return total_in_weight_[v]; }

  /// 1 − Σ_u w(u,v), clamped at 0: the probability mass of the artificial
  /// user ℵ0 ("v selects nobody") in a realization. The alias-table build
  /// (diffusion/sampling_index) treats this as one more outcome of v's
  /// selection distribution.
  double leftover_mass(NodeId v) const {
    const double rest = 1.0 - total_in_weight_[v];
    return rest < 0.0 ? 0.0 : rest;
  }

  /// True iff (u,v) ∈ E. O(log deg(v)).
  bool has_edge(NodeId u, NodeId v) const;

  /// w(u,v) — v's familiarity with u; 0 if u and v are not friends
  /// (matching the paper's convention for non-friends).
  double weight(NodeId u, NodeId v) const;

  /// Average degree 2m/n (the statistic reported in Table I).
  double average_degree() const {
    return num_nodes() == 0
               ? 0.0
               : 2.0 * static_cast<double>(num_edges()) / num_nodes();
  }

  /// Sum of a node's incoming weight restricted to a friend subset; used
  /// by the forward process tests. O(deg(v)).
  template <typename Pred>
  double in_weight_from(NodeId v, Pred&& in_set) const {
    double s = 0.0;
    auto nbrs = neighbors(v);
    auto ws = in_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (in_set(nbrs[i])) s += ws[i];
    }
    return s;
  }

  /// Whole-array CSR views for container serialization (storage/): the
  /// exact arrays, no copies. from_external on these spans reproduces
  /// this graph bit for bit.
  std::span<const ArcIndex> raw_offsets() const {
    return {offsets_.data(), offsets_.size()};
  }
  std::span<const NodeId> raw_adjacency() const {
    return {adjacency_.data(), adjacency_.size()};
  }
  std::span<const double> raw_in_weights() const {
    return {in_weights_.data(), in_weights_.size()};
  }
  std::span<const double> raw_out_weights() const {
    return {out_weights_.data(), out_weights_.size()};
  }
  std::span<const double> raw_total_in_weight() const {
    return {total_in_weight_.data(), total_in_weight_.size()};
  }

  /// Validates all class invariants (sorted adjacency, symmetric edge set,
  /// weights in (0,1], per-node normalization). Called by the builder;
  /// exposed for tests. Throws postcondition_error on violation.
  void check_invariants() const;

 private:
  friend class Builder;

  // Owning (built) or viewing (mapped) storage — util/flat_array.hpp.
  FlatArray<ArcIndex> offsets_ =
      FlatArray<ArcIndex>::owned({ArcIndex{0}});  // size n+1
  FlatArray<NodeId> adjacency_;        // size 2m, sorted per node
  FlatArray<double> in_weights_;       // aligned with adjacency_
  FlatArray<double> out_weights_;      // aligned with adjacency_
  FlatArray<double> total_in_weight_;  // size n
};

/// Mutable edge accumulator producing an immutable Graph.
///
/// Edges may be added with or without explicit weights:
///  - add_edge(u, v): weights assigned later by the WeightScheme passed
///    to build().
///  - add_edge(u, v, w_uv, w_vu): explicit directional weights, kept by
///    build_with_explicit_weights(). w_uv is w(u,v) (u's contribution
///    toward v); w_vu is w(v,u).
/// Duplicate edges and self-loops are rejected at build time.
class Graph::Builder {
 public:
  explicit Builder(NodeId num_nodes);

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_edges_added() const { return edges_.size(); }

  /// Adds an undirected edge; weights to be assigned by a scheme.
  Builder& add_edge(NodeId u, NodeId v);

  /// Adds an undirected edge with explicit directional weights.
  Builder& add_edge(NodeId u, NodeId v, double w_uv, double w_vu);

  /// True if the edge was already added (linear scan of u's smaller list —
  /// intended for generators that need dedup-during-construction).
  bool has_edge(NodeId u, NodeId v) const;

  /// Builds with weights computed by `scheme`. Schemes that randomize
  /// require `rng`; deterministic schemes accept nullptr.
  Graph build(const WeightScheme& scheme, Rng* rng = nullptr) const;

  /// Builds keeping the explicit per-edge weights; every edge must have
  /// been added with the weighted overload.
  Graph build_with_explicit_weights() const;

 private:
  struct EdgeRec {
    NodeId u;
    NodeId v;
    double w_uv;  // w(u,v); negative = "assign by scheme"
    double w_vu;  // w(v,u)
  };

  // Shared assembly: builds the CSR, placing explicit weights if
  // use_explicit, otherwise invoking the scheme per node.
  Graph assemble(bool use_explicit, const WeightScheme* scheme,
                 Rng* rng) const;

  NodeId num_nodes_;
  std::vector<EdgeRec> edges_;
  // Per-node neighbor lists for has_edge dedup checks.
  mutable std::vector<std::vector<NodeId>> adj_check_;
};

}  // namespace af
