// Structural statistics for characterizing datasets (and validating the
// synthetic analogs against the originals they stand in for): degree
// distribution summaries, clustering coefficients, k-core decomposition
// and a BFS-based diameter estimate.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace af {

class Rng;

/// Summary of a graph's degree distribution.
struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  double median = 0.0;
  /// Degree at the 99th percentile — heavy-tail indicator.
  double p99 = 0.0;
};

DegreeStats degree_stats(const Graph& g);

/// Exact local clustering coefficient of one node: triangles through v
/// divided by deg(v)·(deg(v)−1)/2. O(deg² log deg).
double local_clustering(const Graph& g, NodeId v);

/// Average local clustering coefficient over `sample_size` uniformly
/// random nodes (0 = all nodes; beware hubs on large graphs).
double average_clustering(const Graph& g, std::size_t sample_size, Rng& rng);

/// K-core decomposition: out[v] = core number of v (largest k such that
/// v belongs to a subgraph of minimum degree k). Linear-time bucket
/// peeling (Batagelj–Zaveršnik).
std::vector<std::uint32_t> core_numbers(const Graph& g);

/// Degeneracy = max core number.
std::uint32_t degeneracy(const Graph& g);

/// Lower-bound diameter estimate by double BFS sweep (exact on trees,
/// a good heuristic elsewhere). Returns 0 for edgeless graphs; operates
/// on the component of the first non-isolated node.
std::uint32_t diameter_estimate(const Graph& g);

}  // namespace af
