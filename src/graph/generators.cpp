#include "graph/generators.hpp"

#include <cmath>
#include <algorithm>
#include <unordered_set>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {

namespace {

/// Packs an unordered node pair into a 64-bit key for dedup sets.
std::uint64_t pair_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

Graph::Builder gnm_random(NodeId n, std::uint64_t m, Rng& rng) {
  AF_EXPECTS(n >= 2, "G(n,m) needs at least two nodes");
  const auto max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  AF_EXPECTS(m <= max_edges, "G(n,m): too many edges requested");

  Graph::Builder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  while (seen.size() < m) {
    const auto u = static_cast<NodeId>(rng.uniform_int(std::uint64_t{n}));
    const auto v = static_cast<NodeId>(rng.uniform_int(std::uint64_t{n}));
    if (u == v) continue;
    if (seen.insert(pair_key(u, v)).second) b.add_edge(u, v);
  }
  return b;
}

Graph::Builder barabasi_albert(NodeId n, std::size_t attach, Rng& rng) {
  AF_EXPECTS(attach >= 1, "BA attachment must be >= 1");
  AF_EXPECTS(n > attach + 1, "BA needs n > attach + 1");

  Graph::Builder b(n);
  // Repeated-endpoint list: sampling uniformly from it is sampling
  // proportionally to degree (the standard BA implementation trick).
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * attach * 2);

  // Seed clique on attach+1 nodes.
  const auto seed = static_cast<NodeId>(attach + 1);
  for (NodeId u = 0; u < seed; ++u) {
    for (NodeId v = u + 1; v < seed; ++v) {
      b.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  // Insertion-order dedup (af_lint: this used to iterate an
  // unordered_set, so edge order — and, through the endpoints list,
  // every later degree-proportional draw — depended on the standard
  // library's hash order. A vector keeps the generated graph a pure
  // function of (n, attach, seed) on every platform; attach is small,
  // so the linear membership scan is noise.
  std::vector<NodeId> targets;
  targets.reserve(attach);
  for (NodeId v = seed; v < n; ++v) {
    targets.clear();
    while (targets.size() < attach) {
      const NodeId u = endpoints[rng.uniform_int(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), u) == targets.end()) {
        targets.push_back(u);
      }
    }
    for (NodeId u : targets) {
      b.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return b;
}

Graph::Builder watts_strogatz(NodeId n, std::size_t k, double beta, Rng& rng) {
  AF_EXPECTS(k >= 2 && k % 2 == 0, "WS requires even k >= 2");
  AF_EXPECTS(n > k, "WS requires n > k");
  AF_EXPECTS(beta >= 0.0 && beta <= 1.0, "WS rewire prob in [0,1]");

  // Start with the ring lattice edge set, then rewire.
  std::unordered_set<std::uint64_t> present;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      const auto v = static_cast<NodeId>((u + j) % n);
      edges.emplace_back(u, v);
      present.insert(pair_key(u, v));
    }
  }
  for (auto& [u, v] : edges) {
    if (!rng.bernoulli(beta)) continue;
    // Rewire the far endpoint to a uniformly random non-neighbor.
    for (int tries = 0; tries < 64; ++tries) {
      const auto w = static_cast<NodeId>(rng.uniform_int(std::uint64_t{n}));
      if (w == u || w == v) continue;
      if (present.count(pair_key(u, w))) continue;
      present.erase(pair_key(u, v));
      present.insert(pair_key(u, w));
      v = w;
      break;
    }
  }

  Graph::Builder b(n);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return b;
}

Graph::Builder stochastic_block(NodeId n, std::size_t blocks, double p_in,
                                double p_out, Rng& rng) {
  AF_EXPECTS(blocks >= 1 && n >= blocks, "SBM: invalid block count");
  AF_EXPECTS(p_in >= 0 && p_in <= 1 && p_out >= 0 && p_out <= 1,
             "SBM: probabilities in [0,1]");
  Graph::Builder b(n);
  auto block_of = [&](NodeId v) { return static_cast<std::size_t>(v) % blocks; };
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double p = block_of(u) == block_of(v) ? p_in : p_out;
      if (rng.bernoulli(p)) b.add_edge(u, v);
    }
  }
  return b;
}

Graph::Builder configuration_model(const std::vector<std::size_t>& degrees,
                                   Rng& rng) {
  const auto n = static_cast<NodeId>(degrees.size());
  AF_EXPECTS(n >= 2, "configuration model needs at least two nodes");

  // Stub list: node v appears deg(v) times.
  std::vector<NodeId> stubs;
  std::size_t total = 0;
  for (NodeId v = 0; v < n; ++v) {
    AF_EXPECTS(degrees[v] < n, "degree must be below n");
    total += degrees[v];
  }
  stubs.reserve(total + 1);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < degrees[v]; ++i) stubs.push_back(v);
  }
  // Odd stub counts cannot pair; drop one stub from a max-degree node.
  if (stubs.size() % 2 == 1) stubs.pop_back();

  rng.shuffle(stubs);

  Graph::Builder b(n);
  std::unordered_set<std::uint64_t> present;
  present.reserve(stubs.size());
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const NodeId u = stubs[i];
    const NodeId v = stubs[i + 1];
    if (u == v) continue;                          // erased self-loop
    if (!present.insert(pair_key(u, v)).second) {  // erased multi-edge
      continue;
    }
    b.add_edge(u, v);
  }
  return b;
}

std::vector<std::size_t> power_law_degrees(NodeId n, double exponent,
                                           std::size_t min_degree,
                                           std::size_t max_degree, Rng& rng) {
  AF_EXPECTS(n >= 2, "need at least two nodes");
  AF_EXPECTS(exponent > 1.0, "power-law exponent must exceed 1");
  AF_EXPECTS(min_degree >= 1, "minimum degree must be positive");
  if (max_degree == 0) {
    // Natural cutoff keeping the erased configuration model honest.
    max_degree = static_cast<std::size_t>(
        std::sqrt(static_cast<double>(n)) * 4.0);
  }
  AF_EXPECTS(max_degree >= min_degree, "max_degree below min_degree");

  std::vector<std::size_t> degs(n);
  const double a = 1.0 / (exponent - 1.0);
  for (NodeId v = 0; v < n; ++v) {
    // Inverse-CDF sampling of a discrete Pareto: d = ⌊min·u^(−a)⌋.
    const double u = 1.0 - rng.uniform();  // (0, 1]
    const double d = static_cast<double>(min_degree) * std::pow(u, -a);
    degs[v] = std::min<std::size_t>(
        max_degree,
        std::max<std::size_t>(min_degree, static_cast<std::size_t>(d)));
  }
  return degs;
}

Graph::Builder path_graph(NodeId n) {
  AF_EXPECTS(n >= 2, "path needs >= 2 nodes");
  Graph::Builder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b;
}

Graph::Builder cycle_graph(NodeId n) {
  AF_EXPECTS(n >= 3, "cycle needs >= 3 nodes");
  Graph::Builder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return b;
}

Graph::Builder star_graph(NodeId n) {
  AF_EXPECTS(n >= 2, "star needs >= 2 nodes");
  Graph::Builder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(0, v);
  return b;
}

Graph::Builder complete_graph(NodeId n) {
  AF_EXPECTS(n >= 2, "complete graph needs >= 2 nodes");
  Graph::Builder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b;
}

Graph::Builder grid_graph(NodeId rows, NodeId cols) {
  AF_EXPECTS(rows >= 1 && cols >= 1 && static_cast<std::uint64_t>(rows) * cols >= 2,
             "grid needs >= 2 nodes");
  Graph::Builder b(rows * cols);
  auto id = [&](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b;
}

Graph::Builder parallel_paths(std::size_t count, std::size_t len) {
  AF_EXPECTS(count >= 1, "need at least one path");
  AF_EXPECTS(len >= 1, "paths need at least one intermediate node");
  const auto n = static_cast<NodeId>(2 + count * len);
  Graph::Builder b(n);
  NodeId next = 2;
  for (std::size_t p = 0; p < count; ++p) {
    NodeId prev = 0;  // s-side terminal
    for (std::size_t i = 0; i < len; ++i) {
      b.add_edge(prev, next);
      prev = next++;
    }
    b.add_edge(prev, 1);  // t-side terminal
  }
  return b;
}

}  // namespace af
