#include "graph/blockcut.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace af {

namespace {
constexpr std::uint32_t kNone = 0xffffffffu;
}

BlockCutTree::BlockCutTree(const Graph& g) : g_(g) {
  const NodeId n = g.num_nodes();
  is_cut_.assign(n, 0);
  blocks_of_.assign(n, {});
  cut_index_.assign(n, kNone);

  std::vector<std::uint32_t> disc(n, 0);
  std::vector<std::uint32_t> low(n, 0);
  std::uint32_t timer = 1;

  struct Frame {
    NodeId v;
    NodeId parent;
    std::size_t next;  // next neighbor index to visit
  };
  std::vector<Frame> frames;
  std::vector<std::pair<NodeId, NodeId>> estack;

  // Scratch stamp for per-block vertex dedup.
  std::vector<std::uint32_t> stamp(n, 0);
  std::uint32_t cur_stamp = 0;

  auto emit_block = [&](NodeId pv, NodeId child) {
    // Pop edges up to and including (pv, child); their endpoints form one
    // biconnected component.
    ++cur_stamp;
    std::vector<NodeId> verts;
    while (true) {
      AF_ENSURES(!estack.empty(), "edge stack underflow in Tarjan BCC");
      auto [x, y] = estack.back();
      estack.pop_back();
      for (NodeId z : {x, y}) {
        if (stamp[z] != cur_stamp) {
          stamp[z] = cur_stamp;
          verts.push_back(z);
        }
      }
      if (x == pv && y == child) break;
    }
    const auto bid = static_cast<std::uint32_t>(block_vertices_.size());
    for (NodeId z : verts) blocks_of_[z].push_back(bid);
    block_vertices_.push_back(std::move(verts));
  };

  for (NodeId s = 0; s < n; ++s) {
    if (disc[s] != 0) continue;
    disc[s] = low[s] = timer++;
    frames.push_back(Frame{s, kNoNode, 0});
    std::uint32_t root_children = 0;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const NodeId v = f.v;
      auto nbrs = g.neighbors(v);
      if (f.next < nbrs.size()) {
        const NodeId u = nbrs[f.next++];
        if (u == f.parent) continue;  // simple graph: single parent edge
        if (disc[u] == 0) {
          estack.emplace_back(v, u);
          disc[u] = low[u] = timer++;
          if (v == s) ++root_children;
          frames.push_back(Frame{u, v, 0});
        } else if (disc[u] < disc[v]) {
          // Back edge to an ancestor.
          estack.emplace_back(v, u);
          low[v] = std::min(low[v], disc[u]);
        }
        continue;
      }

      // All neighbors of v processed: return to parent.
      frames.pop_back();
      if (frames.empty()) break;
      Frame& pf = frames.back();
      const NodeId pv = pf.v;
      low[pv] = std::min(low[pv], low[v]);
      if (low[v] >= disc[pv]) {
        // pv separates v's subtree: close a block.
        if (pv != s) is_cut_[pv] = 1;
        emit_block(pv, v);
      }
    }
    if (root_children >= 2) is_cut_[s] = 1;
  }

  // Assign cut-vertex tree ids and build the block-cut tree.
  std::uint32_t num_cuts = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (is_cut_[v]) cut_index_[v] = num_cuts++;
  }
  const auto num_tree_nodes =
      static_cast<std::uint32_t>(block_vertices_.size()) + num_cuts;
  tree_adj_.assign(num_tree_nodes, {});
  for (std::uint32_t b = 0; b < block_vertices_.size(); ++b) {
    for (NodeId v : block_vertices_[b]) {
      if (!is_cut_[v]) continue;
      const std::uint32_t cnode =
          static_cast<std::uint32_t>(block_vertices_.size()) + cut_index_[v];
      tree_adj_[b].push_back(cnode);
      tree_adj_[cnode].push_back(b);
    }
  }
}

std::uint32_t BlockCutTree::tree_node_of_cut(NodeId v) const {
  AF_EXPECTS(is_cut_[v], "node is not a cut vertex");
  return static_cast<std::uint32_t>(block_vertices_.size()) + cut_index_[v];
}

std::vector<NodeId> BlockCutTree::vertices_on_simple_paths(NodeId a,
                                                           NodeId t) const {
  AF_EXPECTS(a < g_.num_nodes() && t < g_.num_nodes(),
             "terminal out of range");
  if (a == t) return {a};
  if (blocks_of_[a].empty() || blocks_of_[t].empty()) return {};

  const std::uint32_t start =
      is_cut_[a] ? tree_node_of_cut(a) : blocks_of_[a][0];
  const std::uint32_t goal =
      is_cut_[t] ? tree_node_of_cut(t) : blocks_of_[t][0];

  // BFS over the block-cut tree.
  std::vector<std::uint32_t> parent(tree_adj_.size(), kNone);
  std::vector<char> seen(tree_adj_.size(), 0);
  std::vector<std::uint32_t> frontier{start};
  seen[start] = 1;
  bool found = (start == goal);
  while (!frontier.empty() && !found) {
    std::vector<std::uint32_t> next;
    for (std::uint32_t x : frontier) {
      for (std::uint32_t y : tree_adj_[x]) {
        if (seen[y]) continue;
        seen[y] = 1;
        parent[y] = x;
        if (y == goal) {
          found = true;
          break;
        }
        next.push_back(y);
      }
      if (found) break;
    }
    frontier.swap(next);
  }
  if (!found) return {};

  std::vector<NodeId> out;
  std::vector<char> taken(g_.num_nodes(), 0);
  for (std::uint32_t x = goal;; x = parent[x]) {
    if (x < block_vertices_.size()) {
      for (NodeId v : block_vertices_[x]) {
        if (!taken[v]) {
          taken[v] = 1;
          out.push_back(v);
        }
      }
    }
    if (x == start) break;
    AF_ENSURES(parent[x] != kNone, "broken tree path");
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace af
