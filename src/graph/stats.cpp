#include "graph/stats.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats out;
  const NodeId n = g.num_nodes();
  if (n == 0) return out;
  std::vector<std::size_t> degs(n);
  for (NodeId v = 0; v < n; ++v) degs[v] = g.degree(v);
  std::sort(degs.begin(), degs.end());
  out.min = degs.front();
  out.max = degs.back();
  out.mean = g.average_degree();
  out.median = n % 2 ? static_cast<double>(degs[n / 2])
                     : 0.5 * static_cast<double>(degs[n / 2 - 1] +
                                                 degs[n / 2]);
  out.p99 = static_cast<double>(
      degs[std::min<std::size_t>(n - 1, static_cast<std::size_t>(
                                            0.99 * static_cast<double>(n)))]);
  return out;
}

double local_clustering(const Graph& g, NodeId v) {
  AF_EXPECTS(v < g.num_nodes(), "node out of range");
  const auto deg = g.degree(v);
  if (deg < 2) return 0.0;
  auto nbrs = g.neighbors(v);
  std::uint64_t links = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      if (g.has_edge(nbrs[i], nbrs[j])) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(deg) * static_cast<double>(deg - 1));
}

double average_clustering(const Graph& g, std::size_t sample_size, Rng& rng) {
  const NodeId n = g.num_nodes();
  if (n == 0) return 0.0;
  double sum = 0.0;
  std::size_t count = 0;
  if (sample_size == 0 || sample_size >= n) {
    for (NodeId v = 0; v < n; ++v) {
      sum += local_clustering(g, v);
      ++count;
    }
  } else {
    for (auto idx : rng.sample_without_replacement(n, sample_size)) {
      sum += local_clustering(g, static_cast<NodeId>(idx));
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::vector<std::uint32_t> core_numbers(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = static_cast<std::uint32_t>(g.degree(v));
    max_deg = std::max(max_deg, deg[v]);
  }

  // Bucket sort nodes by degree (Batagelj–Zaveršnik peeling).
  std::vector<std::uint32_t> bin(max_deg + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bin[deg[v]];
  std::uint32_t start = 0;
  for (std::uint32_t d = 0; d <= max_deg; ++d) {
    const std::uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<NodeId> order(n);
  std::vector<std::uint32_t> pos(n);
  {
    std::vector<std::uint32_t> cursor(bin.begin(), bin.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      pos[v] = cursor[deg[v]]++;
      order[pos[v]] = v;
    }
  }

  std::vector<std::uint32_t> core(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId v = order[i];
    core[v] = deg[v];
    for (NodeId u : g.neighbors(v)) {
      if (deg[u] <= deg[v]) continue;
      // Move u one bucket down: swap it with the first node of its
      // current bucket, then shrink the bucket boundary.
      const std::uint32_t du = deg[u];
      const std::uint32_t pu = pos[u];
      const std::uint32_t pw = bin[du];
      const NodeId w = order[pw];
      if (u != w) {
        std::swap(order[pu], order[pw]);
        pos[u] = pw;
        pos[w] = pu;
      }
      ++bin[du];
      --deg[u];
    }
  }
  return core;
}

std::uint32_t degeneracy(const Graph& g) {
  std::uint32_t best = 0;
  for (std::uint32_t c : core_numbers(g)) best = std::max(best, c);
  return best;
}

std::uint32_t diameter_estimate(const Graph& g) {
  const NodeId n = g.num_nodes();
  NodeId start = kNoNode;
  for (NodeId v = 0; v < n; ++v) {
    if (g.degree(v) > 0) {
      start = v;
      break;
    }
  }
  if (start == kNoNode) return 0;

  auto farthest = [&](NodeId from) {
    const auto dist = bfs_distances(g, from);
    NodeId arg = from;
    std::uint32_t best = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] != kUnreachable && dist[v] > best) {
        best = dist[v];
        arg = v;
      }
    }
    return std::pair<NodeId, std::uint32_t>{arg, best};
  };
  const auto [far1, d1] = farthest(start);
  const auto [far2, d2] = farthest(far1);
  (void)far2;
  return std::max(d1, d2);
}

}  // namespace af
