#include "graph/io.hpp"

#include <array>
#include <charconv>
#include <fstream>
#include <stdexcept>
#include <string_view>

#include "util/contracts.hpp"

namespace af {

namespace {

/// Parses whitespace-separated tokens from a line; returns the number of
/// tokens written into out (up to max_tokens).
std::size_t split_tokens(std::string_view line, std::string_view* out,
                         std::size_t max_tokens) {
  std::size_t count = 0;
  std::size_t i = 0;
  while (i < line.size() && count < max_tokens) {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
    if (i >= line.size()) break;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r') {
      ++i;
    }
    out[count++] = line.substr(start, i - start);
  }
  return count;
}

std::uint64_t parse_u64(std::string_view tok, const std::string& path,
                        std::size_t line_no) {
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    throw std::runtime_error(path + ":" + std::to_string(line_no) +
                             ": expected integer, got '" + std::string(tok) +
                             "'");
  }
  return v;
}

double parse_double(std::string_view tok, const std::string& path,
                    std::size_t line_no) {
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    throw std::runtime_error(path + ":" + std::to_string(line_no) +
                             ": expected number, got '" + std::string(tok) +
                             "'");
  }
  return v;
}

struct RawEdges {
  std::vector<std::array<std::uint64_t, 2>> endpoints;
  std::vector<std::array<double, 2>> weights;  // empty for plain format
  std::unordered_map<std::uint64_t, NodeId> id_map;
};

RawEdges read_file(const std::string& path, bool weighted) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "'");

  RawEdges raw;
  std::string line;
  std::size_t line_no = 0;
  std::string_view toks[4];
  while (std::getline(f, line)) {
    ++line_no;
    std::string_view sv(line);
    if (sv.empty() || sv[0] == '#' || sv[0] == '%') continue;
    const std::size_t want = weighted ? 4 : 2;
    const std::size_t got = split_tokens(sv, toks, 4);
    if (got == 0) continue;  // blank line
    if (got < want) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": expected " + std::to_string(want) +
                               " fields");
    }
    const std::uint64_t a = parse_u64(toks[0], path, line_no);
    const std::uint64_t b = parse_u64(toks[1], path, line_no);
    raw.endpoints.push_back({a, b});
    if (weighted) {
      raw.weights.push_back({parse_double(toks[2], path, line_no),
                             parse_double(toks[3], path, line_no)});
    }
  }

  // Compact ids in first-appearance order for determinism.
  for (const auto& e : raw.endpoints) {
    for (std::uint64_t x : e) {
      if (!raw.id_map.count(x)) {
        raw.id_map.emplace(x, static_cast<NodeId>(raw.id_map.size()));
      }
    }
  }
  return raw;
}

}  // namespace

LoadedGraph load_edge_list(const std::string& path, const WeightScheme& scheme,
                           Rng* rng) {
  RawEdges raw = read_file(path, /*weighted=*/false);
  const auto n = static_cast<NodeId>(raw.id_map.size());
  Graph::Builder b(n);
  for (const auto& e : raw.endpoints) {
    const NodeId u = raw.id_map.at(e[0]);
    const NodeId v = raw.id_map.at(e[1]);
    if (u == v) continue;           // skip self-loops
    if (b.has_edge(u, v)) continue; // skip duplicates / reversed repeats
    b.add_edge(u, v);
  }
  return LoadedGraph{b.build(scheme, rng), std::move(raw.id_map)};
}

LoadedGraph load_weighted_edge_list(const std::string& path) {
  RawEdges raw = read_file(path, /*weighted=*/true);
  const auto n = static_cast<NodeId>(raw.id_map.size());
  Graph::Builder b(n);
  for (std::size_t i = 0; i < raw.endpoints.size(); ++i) {
    const NodeId u = raw.id_map.at(raw.endpoints[i][0]);
    const NodeId v = raw.id_map.at(raw.endpoints[i][1]);
    if (u == v || b.has_edge(u, v)) continue;
    b.add_edge(u, v, raw.weights[i][0], raw.weights[i][1]);
  }
  return LoadedGraph{b.build_with_explicit_weights(), std::move(raw.id_map)};
}

bool save_weighted_edge_list(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << "# u v w(u,v) w(v,u)\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId u = nbrs[i];
      if (u < v) continue;  // emit each undirected edge once, as (v,u)
      f << v << ' ' << u << ' ' << g.weight(v, u) << ' ' << g.weight(u, v)
        << '\n';
    }
  }
  return static_cast<bool>(f);
}

bool save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << "# u v\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (u > v) f << v << ' ' << u << '\n';
    }
  }
  return static_cast<bool>(f);
}

}  // namespace af
