#include "graph/io.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string_view>

#include "util/contracts.hpp"

namespace af {

namespace {

/// Parses whitespace-separated tokens from a line; returns the number of
/// tokens written into out (up to max_tokens).
std::size_t split_tokens(std::string_view line, std::string_view* out,
                         std::size_t max_tokens) {
  std::size_t count = 0;
  std::size_t i = 0;
  while (i < line.size() && count < max_tokens) {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
    if (i >= line.size()) break;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r') {
      ++i;
    }
    out[count++] = line.substr(start, i - start);
  }
  return count;
}

std::uint64_t parse_u64(std::string_view tok, const std::string& path,
                        std::size_t line_no) {
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    throw std::runtime_error(path + ":" + std::to_string(line_no) +
                             ": expected integer, got '" + std::string(tok) +
                             "'");
  }
  return v;
}

double parse_double(std::string_view tok, const std::string& path,
                    std::size_t line_no) {
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    throw std::runtime_error(path + ":" + std::to_string(line_no) +
                             ": expected number, got '" + std::string(tok) +
                             "'");
  }
  return v;
}

/// Validates an explicit edge weight at parse time, with the offending
/// line in the message. Every downstream consumer (Graph invariants, the
/// alias-table build) requires w ∈ (0,1]; rejecting NaN/∞/non-positive/
/// out-of-range values here turns what used to be a deep contract
/// failure into a structured "file:line" error the converter tools can
/// surface (DESIGN.md §11).
double parse_weight(std::string_view tok, const std::string& path,
                    std::size_t line_no) {
  const double w = parse_double(tok, path, line_no);
  if (std::isnan(w)) {
    throw std::runtime_error(path + ":" + std::to_string(line_no) +
                             ": weight is NaN");
  }
  if (!std::isfinite(w)) {
    throw std::runtime_error(path + ":" + std::to_string(line_no) +
                             ": weight is not finite");
  }
  if (w <= 0.0) {
    throw std::runtime_error(path + ":" + std::to_string(line_no) +
                             ": weight must be positive, got '" +
                             std::string(tok) + "'");
  }
  if (w > 1.0) {
    throw std::runtime_error(path + ":" + std::to_string(line_no) +
                             ": weight must be <= 1, got '" +
                             std::string(tok) + "'");
  }
  return w;
}

struct RawEdges {
  std::vector<std::array<std::uint64_t, 2>> endpoints;
  std::vector<std::array<double, 2>> weights;  // empty for plain format
  std::unordered_map<std::uint64_t, NodeId> id_map;
};

RawEdges read_file(const std::string& path, bool weighted) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "'");

  RawEdges raw;
  std::string line;
  std::size_t line_no = 0;
  std::string_view toks[4];
  while (std::getline(f, line)) {
    ++line_no;
    std::string_view sv(line);
    if (sv.empty() || sv[0] == '#' || sv[0] == '%') continue;
    const std::size_t want = weighted ? 4 : 2;
    const std::size_t got = split_tokens(sv, toks, 4);
    if (got == 0) continue;  // blank line
    if (got < want) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": expected " + std::to_string(want) +
                               " fields");
    }
    const std::uint64_t a = parse_u64(toks[0], path, line_no);
    const std::uint64_t b = parse_u64(toks[1], path, line_no);
    raw.endpoints.push_back({a, b});
    if (weighted) {
      raw.weights.push_back({parse_weight(toks[2], path, line_no),
                             parse_weight(toks[3], path, line_no)});
    }
  }

  // Compact ids in first-appearance order for determinism.
  for (const auto& e : raw.endpoints) {
    for (std::uint64_t x : e) {
      if (!raw.id_map.count(x)) {
        raw.id_map.emplace(x, static_cast<NodeId>(raw.id_map.size()));
      }
    }
  }
  return raw;
}

/// Drives one pass over an edge-list file, invoking `sink(u, v, w_uv,
/// w_vu, line_no)` per edge line (original file ids; weights only for the
/// weighted format). Shares the exact tokenization, comment handling and
/// validation of read_file, so the streaming loaders below parse — and
/// fail — identically to the one-shot ones.
template <typename Sink>
void for_each_edge_line(const std::string& path, bool weighted, Sink&& sink) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "'");
  std::string line;
  std::size_t line_no = 0;
  std::string_view toks[4];
  while (std::getline(f, line)) {
    ++line_no;
    std::string_view sv(line);
    if (sv.empty() || sv[0] == '#' || sv[0] == '%') continue;
    const std::size_t want = weighted ? 4 : 2;
    const std::size_t got = split_tokens(sv, toks, 4);
    if (got == 0) continue;  // blank line
    if (got < want) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": expected " + std::to_string(want) +
                               " fields");
    }
    const std::uint64_t a = parse_u64(toks[0], path, line_no);
    const std::uint64_t b = parse_u64(toks[1], path, line_no);
    double w_uv = -1.0, w_vu = -1.0;
    if (weighted) {
      w_uv = parse_weight(toks[2], path, line_no);
      w_vu = parse_weight(toks[3], path, line_no);
    }
    sink(a, b, w_uv, w_vu, line_no);
  }
}

/// The shared two-pass streaming load: pass 1 compacts ids in
/// first-appearance order (over ALL endpoints, self-loops and duplicate
/// lines included — exactly read_file's order); pass 2 replays the file
/// into the builder with the one-shot loaders' skip rules. Only the id
/// map and the builder are ever resident.
LoadedGraph load_streaming(const std::string& path, bool weighted,
                           const WeightScheme* scheme, Rng* rng) {
  std::unordered_map<std::uint64_t, NodeId> id_map;
  for_each_edge_line(path, weighted,
                     [&](std::uint64_t a, std::uint64_t b, double, double,
                         std::size_t) {
                       for (std::uint64_t x : {a, b}) {
                         if (!id_map.count(x)) {
                           id_map.emplace(
                               x, static_cast<NodeId>(id_map.size()));
                         }
                       }
                     });
  Graph::Builder b(static_cast<NodeId>(id_map.size()));
  for_each_edge_line(
      path, weighted,
      [&](std::uint64_t fa, std::uint64_t fb, double w_uv, double w_vu,
          std::size_t) {
        const NodeId u = id_map.at(fa);
        const NodeId v = id_map.at(fb);
        if (u == v || b.has_edge(u, v)) return;
        if (weighted) {
          b.add_edge(u, v, w_uv, w_vu);
        } else {
          b.add_edge(u, v);
        }
      });
  Graph g = weighted ? b.build_with_explicit_weights() : b.build(*scheme, rng);
  return LoadedGraph{std::move(g), std::move(id_map)};
}

}  // namespace

LoadedGraph load_edge_list(const std::string& path, const WeightScheme& scheme,
                           Rng* rng) {
  RawEdges raw = read_file(path, /*weighted=*/false);
  const auto n = static_cast<NodeId>(raw.id_map.size());
  Graph::Builder b(n);
  for (const auto& e : raw.endpoints) {
    const NodeId u = raw.id_map.at(e[0]);
    const NodeId v = raw.id_map.at(e[1]);
    if (u == v) continue;           // skip self-loops
    if (b.has_edge(u, v)) continue; // skip duplicates / reversed repeats
    b.add_edge(u, v);
  }
  return LoadedGraph{b.build(scheme, rng), std::move(raw.id_map)};
}

LoadedGraph load_weighted_edge_list(const std::string& path) {
  RawEdges raw = read_file(path, /*weighted=*/true);
  const auto n = static_cast<NodeId>(raw.id_map.size());
  Graph::Builder b(n);
  for (std::size_t i = 0; i < raw.endpoints.size(); ++i) {
    const NodeId u = raw.id_map.at(raw.endpoints[i][0]);
    const NodeId v = raw.id_map.at(raw.endpoints[i][1]);
    if (u == v || b.has_edge(u, v)) continue;
    b.add_edge(u, v, raw.weights[i][0], raw.weights[i][1]);
  }
  return LoadedGraph{b.build_with_explicit_weights(), std::move(raw.id_map)};
}

LoadedGraph load_edge_list_streaming(const std::string& path,
                                     const WeightScheme& scheme, Rng* rng) {
  return load_streaming(path, /*weighted=*/false, &scheme, rng);
}

LoadedGraph load_weighted_edge_list_streaming(const std::string& path) {
  return load_streaming(path, /*weighted=*/true, nullptr, nullptr);
}

bool save_weighted_edge_list(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  // max_digits10 makes the decimal text parse back to the exact same
  // doubles — without it, 6-digit rounding can push a node's incoming
  // weight sum past 1 and the reloaded graph fails normalization.
  f.precision(std::numeric_limits<double>::max_digits10);
  f << "# u v w(u,v) w(v,u)\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId u = nbrs[i];
      if (u < v) continue;  // emit each undirected edge once, as (v,u)
      f << v << ' ' << u << ' ' << g.weight(v, u) << ' ' << g.weight(u, v)
        << '\n';
    }
  }
  // close() before checking: a buffered ENOSPC only surfaces when the
  // tail is actually flushed to the device.
  f.close();
  return !f.fail();
}

bool save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << "# u v\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (u > v) f << v << ' ' << u << '\n';
    }
  }
  f.close();
  return !f.fail();
}

}  // namespace af
