#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace af {

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u == v) return false;
  // Search in the smaller adjacency list.
  if (degree(u) < degree(v)) std::swap(u, v);
  auto nbrs = neighbors(v);
  return std::binary_search(nbrs.begin(), nbrs.end(), u);
}

double Graph::weight(NodeId u, NodeId v) const {
  auto nbrs = neighbors(v);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u);
  if (it == nbrs.end() || *it != u) return 0.0;
  return in_weights(v)[static_cast<std::size_t>(it - nbrs.begin())];
}

void Graph::check_invariants() const {
  constexpr double kTol = 1e-9;
  const NodeId n = num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    auto nbrs = neighbors(v);
    auto ws = in_weights(v);
    double sum = 0.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      AF_ENSURES(nbrs[i] < n, "neighbor id out of range");
      AF_ENSURES(nbrs[i] != v, "self-loop present");
      if (i > 0) {
        AF_ENSURES(nbrs[i - 1] < nbrs[i],
                   "adjacency not strictly sorted (duplicate edge?)");
      }
      AF_ENSURES(ws[i] > 0.0 && ws[i] <= 1.0, "weight outside (0,1]");
      // Symmetry of the edge set (weights may differ per direction).
      AF_ENSURES(has_edge(v, nbrs[i]), "edge set not symmetric");
      sum += ws[i];
    }
    AF_ENSURES(sum <= 1.0 + kTol, "incoming weights exceed 1 after norm");
    AF_ENSURES(std::abs(sum - total_in_weight_[v]) <= kTol,
               "cached total in-weight is stale");
    auto ows = out_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      AF_ENSURES(std::abs(ows[i] - weight(v, nbrs[i])) <= kTol,
                 "out-weight mirror is inconsistent");
    }
  }
}

Graph::Builder::Builder(NodeId num_nodes) : num_nodes_(num_nodes) {
  adj_check_.resize(num_nodes);
}

Graph::Builder& Graph::Builder::add_edge(NodeId u, NodeId v) {
  return add_edge(u, v, -1.0, -1.0);
}

Graph::Builder& Graph::Builder::add_edge(NodeId u, NodeId v, double w_uv,
                                         double w_vu) {
  AF_EXPECTS(u < num_nodes_ && v < num_nodes_, "edge endpoint out of range");
  AF_EXPECTS(u != v, "self-loops are not allowed");
  edges_.push_back(EdgeRec{u, v, w_uv, w_vu});
  adj_check_[u].push_back(v);
  adj_check_[v].push_back(u);
  return *this;
}

bool Graph::Builder::has_edge(NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  const auto& smaller = adj_check_[u].size() <= adj_check_[v].size()
                            ? adj_check_[u]
                            : adj_check_[v];
  const NodeId needle =
      adj_check_[u].size() <= adj_check_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), needle) != smaller.end();
}

Graph Graph::Builder::build(const WeightScheme& scheme, Rng* rng) const {
  AF_EXPECTS(!scheme.is_random() || rng != nullptr,
             "randomized weight scheme requires an Rng");
  return assemble(/*use_explicit=*/false, &scheme, rng);
}

Graph Graph::Builder::build_with_explicit_weights() const {
  for (const auto& e : edges_) {
    AF_EXPECTS(e.w_uv > 0.0 && e.w_vu > 0.0,
               "build_with_explicit_weights: every edge needs weights");
  }
  return assemble(/*use_explicit=*/true, nullptr, nullptr);
}

Graph Graph::Builder::assemble(bool use_explicit, const WeightScheme* scheme,
                               Rng* rng) const {
  Graph g;
  const NodeId n = num_nodes_;
  g.offsets_.assign(n + 1, 0);

  // Degree counting pass.
  for (const auto& e : edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  const ArcIndex arcs = g.offsets_[n];
  g.adjacency_.resize(arcs);
  g.in_weights_.assign(arcs, 0.0);

  // Scatter pass. The arc stored in v's slice for neighbor u carries
  // w(u,v): u's contribution toward v.
  std::vector<ArcIndex> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : edges_) {
    const ArcIndex pu = cursor[e.u]++;  // slot in u's list -> neighbor v
    const ArcIndex pv = cursor[e.v]++;  // slot in v's list -> neighbor u
    g.adjacency_[pu] = e.v;
    g.adjacency_[pv] = e.u;
    if (use_explicit) {
      g.in_weights_[pu] = e.w_vu;  // weight toward u is w(v,u)
      g.in_weights_[pv] = e.w_uv;  // weight toward v is w(u,v)
    }
  }

  // Sort each node's slice by neighbor id, co-moving weights.
  std::vector<std::pair<NodeId, double>> scratch;
  for (NodeId v = 0; v < n; ++v) {
    const ArcIndex lo = g.offsets_[v];
    const ArcIndex hi = g.offsets_[v + 1];
    scratch.clear();
    scratch.reserve(static_cast<std::size_t>(hi - lo));
    for (ArcIndex i = lo; i < hi; ++i) {
      scratch.emplace_back(g.adjacency_[i], g.in_weights_[i]);
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (ArcIndex i = lo; i < hi; ++i) {
      const auto& [nbr, w] = scratch[static_cast<std::size_t>(i - lo)];
      g.adjacency_[i] = nbr;
      g.in_weights_[i] = w;
    }
    for (ArcIndex i = lo + 1; i < hi; ++i) {
      AF_EXPECTS(g.adjacency_[i - 1] != g.adjacency_[i],
                 "duplicate edge detected during build");
    }
    if (!use_explicit) {
      scheme->assign(
          v,
          std::span<double>(g.in_weights_.data() + lo,
                            static_cast<std::size_t>(hi - lo)),
          rng);
    }
  }

  // Cache per-node totals.
  g.total_in_weight_.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    double s = 0.0;
    for (double w : g.in_weights(v)) s += w;
    g.total_in_weight_[v] = s;
  }

  // Mirror the weights into outgoing layout: out_weights(v)[i] = w(v, u)
  // where u = N_v[i], i.e. the entry for v in u's incoming list.
  g.out_weights_.assign(arcs, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      g.out_weights_[g.offsets_[v] + i] = g.weight(v, nbrs[i]);
    }
  }

  g.check_invariants();
  return g;
}

}  // namespace af
