#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace af {

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u == v) return false;
  // Search in the smaller adjacency list.
  if (degree(u) < degree(v)) std::swap(u, v);
  auto nbrs = neighbors(v);
  return std::binary_search(nbrs.begin(), nbrs.end(), u);
}

double Graph::weight(NodeId u, NodeId v) const {
  auto nbrs = neighbors(v);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u);
  if (it == nbrs.end() || *it != u) return 0.0;
  return in_weights(v)[static_cast<std::size_t>(it - nbrs.begin())];
}

void Graph::check_invariants() const {
  constexpr double kTol = 1e-9;
  const NodeId n = num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    auto nbrs = neighbors(v);
    auto ws = in_weights(v);
    double sum = 0.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      AF_ENSURES(nbrs[i] < n, "neighbor id out of range");
      AF_ENSURES(nbrs[i] != v, "self-loop present");
      if (i > 0) {
        AF_ENSURES(nbrs[i - 1] < nbrs[i],
                   "adjacency not strictly sorted (duplicate edge?)");
      }
      AF_ENSURES(ws[i] > 0.0 && ws[i] <= 1.0, "weight outside (0,1]");
      // Symmetry of the edge set (weights may differ per direction).
      AF_ENSURES(has_edge(v, nbrs[i]), "edge set not symmetric");
      sum += ws[i];
    }
    AF_ENSURES(sum <= 1.0 + kTol, "incoming weights exceed 1 after norm");
    AF_ENSURES(std::abs(sum - total_in_weight_[v]) <= kTol,
               "cached total in-weight is stale");
    auto ows = out_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      AF_ENSURES(std::abs(ows[i] - weight(v, nbrs[i])) <= kTol,
                 "out-weight mirror is inconsistent");
    }
  }
}

Graph::Builder::Builder(NodeId num_nodes) : num_nodes_(num_nodes) {
  adj_check_.resize(num_nodes);
}

Graph::Builder& Graph::Builder::add_edge(NodeId u, NodeId v) {
  return add_edge(u, v, -1.0, -1.0);
}

Graph::Builder& Graph::Builder::add_edge(NodeId u, NodeId v, double w_uv,
                                         double w_vu) {
  AF_EXPECTS(u < num_nodes_ && v < num_nodes_, "edge endpoint out of range");
  AF_EXPECTS(u != v, "self-loops are not allowed");
  edges_.push_back(EdgeRec{u, v, w_uv, w_vu});
  adj_check_[u].push_back(v);
  adj_check_[v].push_back(u);
  return *this;
}

bool Graph::Builder::has_edge(NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  const auto& smaller = adj_check_[u].size() <= adj_check_[v].size()
                            ? adj_check_[u]
                            : adj_check_[v];
  const NodeId needle =
      adj_check_[u].size() <= adj_check_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), needle) != smaller.end();
}

Graph Graph::Builder::build(const WeightScheme& scheme, Rng* rng) const {
  AF_EXPECTS(!scheme.is_random() || rng != nullptr,
             "randomized weight scheme requires an Rng");
  return assemble(/*use_explicit=*/false, &scheme, rng);
}

Graph Graph::Builder::build_with_explicit_weights() const {
  for (const auto& e : edges_) {
    AF_EXPECTS(e.w_uv > 0.0 && e.w_vu > 0.0,
               "build_with_explicit_weights: every edge needs weights");
  }
  return assemble(/*use_explicit=*/true, nullptr, nullptr);
}

Graph Graph::Builder::assemble(bool use_explicit, const WeightScheme* scheme,
                               Rng* rng) const {
  const NodeId n = num_nodes_;
  std::vector<ArcIndex> offsets(n + 1, 0);

  // Degree counting pass.
  for (const auto& e : edges_) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());

  const ArcIndex arcs = offsets[n];
  std::vector<NodeId> adjacency(arcs);
  std::vector<double> in_weights(arcs, 0.0);

  // Scatter pass. The arc stored in v's slice for neighbor u carries
  // w(u,v): u's contribution toward v.
  std::vector<ArcIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& e : edges_) {
    const ArcIndex pu = cursor[e.u]++;  // slot in u's list -> neighbor v
    const ArcIndex pv = cursor[e.v]++;  // slot in v's list -> neighbor u
    adjacency[pu] = e.v;
    adjacency[pv] = e.u;
    if (use_explicit) {
      in_weights[pu] = e.w_vu;  // weight toward u is w(v,u)
      in_weights[pv] = e.w_uv;  // weight toward v is w(u,v)
    }
  }

  // Sort each node's slice by neighbor id, co-moving weights.
  std::vector<std::pair<NodeId, double>> scratch;
  for (NodeId v = 0; v < n; ++v) {
    const ArcIndex lo = offsets[v];
    const ArcIndex hi = offsets[v + 1];
    scratch.clear();
    scratch.reserve(static_cast<std::size_t>(hi - lo));
    for (ArcIndex i = lo; i < hi; ++i) {
      scratch.emplace_back(adjacency[i], in_weights[i]);
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (ArcIndex i = lo; i < hi; ++i) {
      const auto& [nbr, w] = scratch[static_cast<std::size_t>(i - lo)];
      adjacency[i] = nbr;
      in_weights[i] = w;
    }
    for (ArcIndex i = lo + 1; i < hi; ++i) {
      AF_EXPECTS(adjacency[i - 1] != adjacency[i],
                 "duplicate edge detected during build");
    }
    if (!use_explicit) {
      scheme->assign(
          v,
          std::span<double>(in_weights.data() + lo,
                            static_cast<std::size_t>(hi - lo)),
          rng);
    }
  }

  Graph g;
  g.offsets_ = FlatArray<ArcIndex>::owned(std::move(offsets));
  g.adjacency_ = FlatArray<NodeId>::owned(std::move(adjacency));
  g.in_weights_ = FlatArray<double>::owned(std::move(in_weights));

  // Cache per-node totals.
  std::vector<double> total(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    double s = 0.0;
    for (double w : g.in_weights(v)) s += w;
    total[v] = s;
  }
  g.total_in_weight_ = FlatArray<double>::owned(std::move(total));

  // Mirror the weights into outgoing layout: out_weights(v)[i] = w(v, u)
  // where u = N_v[i], i.e. the entry for v in u's incoming list.
  std::vector<double> out_weights(arcs, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      out_weights[g.offsets_[v] + i] = g.weight(v, nbrs[i]);
    }
  }
  g.out_weights_ = FlatArray<double>::owned(std::move(out_weights));

  g.check_invariants();
  return g;
}

Graph Graph::from_external(std::span<const ArcIndex> offsets,
                           std::span<const NodeId> adjacency,
                           std::span<const double> in_weights,
                           std::span<const double> out_weights,
                           std::span<const double> total_in_weight) {
  AF_EXPECTS(!offsets.empty(), "external CSR needs n+1 offsets");
  AF_EXPECTS(offsets.front() == 0, "external CSR offsets must start at 0");
  AF_EXPECTS(offsets.back() == adjacency.size(),
             "external CSR offsets do not cover the adjacency array");
  AF_EXPECTS(in_weights.size() == adjacency.size(),
             "external in-weights not aligned with adjacency");
  AF_EXPECTS(out_weights.size() == adjacency.size(),
             "external out-weights not aligned with adjacency");
  AF_EXPECTS(total_in_weight.size() + 1 == offsets.size(),
             "external total-in-weight vector needs one entry per node");
  // Monotone offsets are what keep every accessor in bounds; O(n) is
  // cheap insurance against a corrupt container read with checksum
  // validation disabled.
  for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
    AF_EXPECTS(offsets[v] <= offsets[v + 1],
               "external CSR offsets are not monotone");
  }
  Graph g;
  g.offsets_ = FlatArray<ArcIndex>::view(offsets.data(), offsets.size());
  g.adjacency_ = FlatArray<NodeId>::view(adjacency.data(), adjacency.size());
  g.in_weights_ =
      FlatArray<double>::view(in_weights.data(), in_weights.size());
  g.out_weights_ =
      FlatArray<double>::view(out_weights.data(), out_weights.size());
  g.total_in_weight_ =
      FlatArray<double>::view(total_in_weight.data(), total_in_weight.size());
  return g;
}

}  // namespace af
