// Biconnected components, articulation points and the block-cut tree.
//
// Used for the exact V_max computation (Lemma 7): a node u lies on some
// *simple* path between two terminals a and t iff u belongs to a
// biconnected component whose block-cut-tree node lies on the unique tree
// path between a's node and t's node. (Alg. 1's backward walk traces a
// simple path, so "appears in t(g) for some type-1 realization" is exactly
// simple-path membership.)
//
// The DFS is iterative with an explicit stack so graphs with millions of
// nodes and long paths do not overflow the call stack.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace af {

/// Biconnected decomposition of an undirected graph.
///
/// Blocks are maximal biconnected subgraphs; a bridge forms a 2-node
/// block. Isolated vertices belong to no block.
class BlockCutTree {
 public:
  explicit BlockCutTree(const Graph& g);

  std::size_t num_blocks() const { return block_vertices_.size(); }

  /// Vertices of block b (each listed once).
  const std::vector<NodeId>& block_vertices(std::size_t b) const {
    return block_vertices_[b];
  }

  /// True iff v is an articulation point.
  bool is_cut_vertex(NodeId v) const { return is_cut_[v]; }

  /// Blocks containing v (one block for non-cut vertices in some block,
  /// several for cut vertices, empty for isolated vertices).
  const std::vector<std::uint32_t>& blocks_of(NodeId v) const {
    return blocks_of_[v];
  }

  /// All vertices lying on at least one simple path from `a` to `t`
  /// (inclusive of the endpoints). Empty when a and t are disconnected.
  /// For a == t, returns {a}.
  std::vector<NodeId> vertices_on_simple_paths(NodeId a, NodeId t) const;

 private:
  // Block-cut tree node ids: blocks are [0, B), cut vertices are
  // B + index_in_cut_list.
  std::uint32_t tree_node_of_block(std::uint32_t b) const { return b; }
  std::uint32_t tree_node_of_cut(NodeId v) const;

  const Graph& g_;
  std::vector<std::vector<NodeId>> block_vertices_;
  std::vector<char> is_cut_;
  std::vector<std::vector<std::uint32_t>> blocks_of_;

  // Block-cut tree adjacency (tree over blocks + cut vertices).
  std::vector<std::vector<std::uint32_t>> tree_adj_;
  std::vector<std::uint32_t> cut_index_;  // node -> index into cut list, or ~0
};

}  // namespace af
