#include "graph/weights.hpp"

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {

void WeightScheme::assign(NodeId /*v*/, std::span<double> weights,
                          Rng* rng) const {
  const std::size_t deg = weights.size();
  if (deg == 0) return;
  switch (kind) {
    case Kind::kInverseDegree: {
      const double w = 1.0 / static_cast<double>(deg);
      for (auto& x : weights) x = w;
      break;
    }
    case Kind::kConstantClamped: {
      AF_EXPECTS(param > 0.0 && param <= 1.0,
                 "constant weight must lie in (0,1]");
      const double w =
          std::min(param, 1.0 / static_cast<double>(deg));
      for (auto& x : weights) x = w;
      break;
    }
    case Kind::kRandomNormalized: {
      AF_EXPECTS(rng != nullptr, "random scheme needs an Rng");
      AF_EXPECTS(param > 0.0 && param <= 1.0,
                 "normalized total must lie in (0,1]");
      double sum = 0.0;
      for (auto& x : weights) {
        // Strictly positive draw so weights stay in (0,1].
        x = 1e-9 + rng->uniform();
        sum += x;
      }
      const double scale = param / sum;
      for (auto& x : weights) x *= scale;
      break;
    }
    case Kind::kTrivalency: {
      AF_EXPECTS(rng != nullptr, "trivalency scheme needs an Rng");
      static constexpr double kLevels[3] = {0.1, 0.01, 0.001};
      double sum = 0.0;
      for (auto& x : weights) {
        x = kLevels[rng->uniform_int(std::uint64_t{3})];
        sum += x;
      }
      if (sum > 1.0) {
        const double scale = 1.0 / sum;
        for (auto& x : weights) x *= scale;
      }
      break;
    }
  }
}

}  // namespace af
