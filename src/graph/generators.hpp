// Synthetic graph generators.
//
// The paper evaluates on four SNAP datasets (Table I) which are not
// available in this offline environment; DESIGN.md §4 documents the
// substitution. These generators produce graphs with matched size and
// degree character:
//   - Barabási–Albert: heavy-tailed degree distribution (social/citation)
//   - Erdős–Rényi G(n,m): homogeneous baseline
//   - Watts–Strogatz: high clustering, short paths
//   - Stochastic block model: community structure (bridge scenarios)
//   - Deterministic builders (path/cycle/star/complete/grid/ladder) for
//     tests and analytically solvable instances.
//
// All generators return simple undirected topologies (no self-loops or
// multi-edges) in a Graph::Builder so callers choose the weight scheme.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace af {

class Rng;

/// Erdős–Rényi G(n, m): exactly m distinct edges chosen uniformly.
/// Requires m <= n(n-1)/2.
Graph::Builder gnm_random(NodeId n, std::uint64_t m, Rng& rng);

/// Barabási–Albert preferential attachment: starts from a clique on
/// `attach` + 1 nodes, then each new node attaches to `attach` distinct
/// existing nodes with probability proportional to degree.
/// Produces ~ (n - attach - 1) * attach + C(attach+1, 2) edges.
Graph::Builder barabasi_albert(NodeId n, std::size_t attach, Rng& rng);

/// Watts–Strogatz small world: ring lattice with k nearest neighbors per
/// side... k must be even; each edge rewired with probability beta.
Graph::Builder watts_strogatz(NodeId n, std::size_t k, double beta, Rng& rng);

/// Stochastic block model with equally sized blocks. p_in / p_out are the
/// within/between block edge probabilities.
Graph::Builder stochastic_block(NodeId n, std::size_t blocks, double p_in,
                                double p_out, Rng& rng);

/// Erased configuration model: wires a graph whose degrees approximate
/// the given sequence. Stubs are shuffled and paired; self-loops and
/// multi-edges are dropped ("erased"), so realized degrees can fall
/// slightly below the requested ones (mostly at hubs).
Graph::Builder configuration_model(const std::vector<std::size_t>& degrees,
                                   Rng& rng);

/// Power-law degree sequence: P(deg ≥ d) ∝ d^(1−exponent), discretized,
/// clamped to [min_degree, max_degree] (0 = √(n·mean) cap). Real social
/// and citation graphs are dominated by low-degree nodes — unlike
/// Barabási–Albert, whose minimum degree equals its attachment
/// parameter — so pair this with configuration_model for analogs whose
/// periphery (degree-1 fringe, small biconnected blocks) matters.
std::vector<std::size_t> power_law_degrees(NodeId n, double exponent,
                                           std::size_t min_degree,
                                           std::size_t max_degree, Rng& rng);

/// Path 0-1-2-...-(n-1).
Graph::Builder path_graph(NodeId n);

/// Cycle 0-1-...-(n-1)-0.
Graph::Builder cycle_graph(NodeId n);

/// Star with center 0 and n-1 leaves.
Graph::Builder star_graph(NodeId n);

/// Complete graph K_n.
Graph::Builder complete_graph(NodeId n);

/// rows x cols grid, node (r,c) = r*cols + c.
Graph::Builder grid_graph(NodeId rows, NodeId cols);

/// `count` node-disjoint parallel paths of `len` intermediate nodes each,
/// between node 0 (s-side) and node 1 (t-side). Used heavily by tests:
/// the acceptance probability through each path is analytically known.
/// Node layout: 0, 1, then paths of `len` nodes each in order.
Graph::Builder parallel_paths(std::size_t count, std::size_t len);

}  // namespace af
