// Edge-list file I/O.
//
// Two text formats are supported, both line-oriented with '#' comments:
//   plain:    "u v"            (weights assigned by a WeightScheme on load)
//   weighted: "u v w_uv w_vu"  (explicit directional weights)
// Node ids in files may be arbitrary non-negative integers; they are
// compacted to dense [0,n) ids on load (the mapping is returned on demand).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "graph/weights.hpp"

namespace af {

/// Result of loading an edge list: the graph plus the id compaction map.
struct LoadedGraph {
  Graph graph;
  /// original file id -> dense NodeId
  std::unordered_map<std::uint64_t, NodeId> id_map;
};

/// Loads a plain edge list and assigns weights with `scheme`.
/// Duplicate lines and self-loops are skipped (SNAP files contain both);
/// the file is treated as undirected.
/// Throws std::runtime_error on I/O or parse failure.
LoadedGraph load_edge_list(const std::string& path, const WeightScheme& scheme,
                           Rng* rng = nullptr);

/// Loads a weighted edge list ("u v w_uv w_vu" per line).
LoadedGraph load_weighted_edge_list(const std::string& path);

/// Streaming two-pass variant of load_edge_list: bit-identical result
/// (same id compaction, dedup and scheme-rng order), but the file is
/// scanned twice and resident memory is the compacted graph (id map +
/// CSR builder) — never the raw line set. The converter path
/// (tools/af_index_build) for edge lists larger than RAM, where comment
/// and duplicate lines would otherwise accumulate.
LoadedGraph load_edge_list_streaming(const std::string& path,
                                     const WeightScheme& scheme,
                                     Rng* rng = nullptr);

/// Streaming two-pass variant of load_weighted_edge_list.
LoadedGraph load_weighted_edge_list_streaming(const std::string& path);

/// Writes "u v w_uv w_vu" lines (dense ids). Returns false on I/O failure.
bool save_weighted_edge_list(const Graph& g, const std::string& path);

/// Writes a plain "u v" edge list. Returns false on I/O failure.
bool save_edge_list(const Graph& g, const std::string& path);

}  // namespace af
