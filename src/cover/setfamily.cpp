#include "cover/setfamily.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace af {

namespace {

/// FNV-1a over the sorted element array.
std::uint64_t hash_elements(const std::vector<NodeId>& xs) {
  std::uint64_t h = 1469598103934665603ULL;
  for (NodeId x : xs) {
    h ^= x;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::uint32_t SetFamily::add_set(std::span<const NodeId> elements) {
  AF_EXPECTS(!elements.empty(), "empty sets are not allowed");
  std::vector<NodeId> sorted(elements.begin(), elements.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (NodeId v : sorted) {
    AF_EXPECTS(v < universe_, "set element outside the universe");
  }

  const std::uint64_t h = hash_elements(sorted);
  auto& bucket = hash_buckets_[h];
  for (std::uint32_t idx : bucket) {
    if (sets_[idx] == sorted) {
      ++mult_[idx];
      ++total_mult_;
      return idx;
    }
  }

  const auto idx = static_cast<std::uint32_t>(sets_.size());
  for (NodeId v : sorted) inverted_[v].push_back(idx);
  total_elements_ += sorted.size();
  sets_.push_back(std::move(sorted));
  mult_.push_back(1);
  ++total_mult_;
  bucket.push_back(idx);
  return idx;
}

}  // namespace af
