// Solvers for Minimum p-Union (Problem 2) and the Minimum Subset Cover
// reduction (Problem 3 / Remark 2).
//
// Task: choose stored sets with total multiplicity ≥ p while minimizing
// the size of their element union. (With all multiplicities 1 this is the
// literal MpU: choose p sets.) The paper plugs the Chlamtáč et al.
// (2√|U|)-approximation in as a black box; DESIGN.md §4.2 documents the
// solvers implemented here:
//
//  - GreedyMpuSolver       lazy min-marginal/multiplicity greedy (default)
//  - DensestMpuSolver      Chlamtáč-style: repeatedly extract the densest
//                          subfamily w.r.t. not-yet-paid elements
//  - SmallestSetsSolver    sort-by-size baseline
//  - ExactMpuSolver        branch-and-bound oracle for small instances
//  - refine_local_search   post-pass: swap chosen sets to shrink the union
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cover/setfamily.hpp"

namespace af {

/// Solution of an MpU/MSC run.
struct MpuResult {
  std::vector<std::uint32_t> chosen_sets;  // indices into the family
  std::vector<NodeId> union_elements;      // sorted union of chosen sets
  std::uint64_t covered = 0;               // Σ multiplicities of chosen
};

/// Interface shared by all MpU solvers. `p` is the coverage target
/// (number of input sets, counting multiplicity, that must be covered).
/// Preconditions: 1 ≤ p ≤ family.total_multiplicity().
class MpuSolver {
 public:
  virtual ~MpuSolver() = default;
  virtual MpuResult solve(const SetFamily& family, std::uint64_t p) const = 0;
  virtual std::string name() const = 0;
};

/// Greedy: repeatedly add the set minimizing (new elements)/(multiplicity),
/// with incremental marginal maintenance via the inverted index — total
/// work O(Σ|set| + S log S).
class GreedyMpuSolver final : public MpuSolver {
 public:
  MpuResult solve(const SetFamily& family, std::uint64_t p) const override;
  std::string name() const override { return "greedy"; }
};

/// Chlamtáč-style: repeatedly extract the densest subfamily (sets per new
/// element), add it wholesale (clipped greedily when it overshoots p).
class DensestMpuSolver final : public MpuSolver {
 public:
  /// use_exact: flow-based exact densest (small/medium instances) vs
  /// peeling (large). kAuto switches on instance size.
  enum class Engine { kExact, kPeeling, kAuto };

  explicit DensestMpuSolver(Engine engine = Engine::kAuto)
      : engine_(engine) {}

  MpuResult solve(const SetFamily& family, std::uint64_t p) const override;
  std::string name() const override { return "densest"; }

 private:
  Engine engine_;
};

/// Baseline: take sets in increasing |set|/multiplicity order.
class SmallestSetsSolver final : public MpuSolver {
 public:
  MpuResult solve(const SetFamily& family, std::uint64_t p) const override;
  std::string name() const override { return "smallest-sets"; }
};

/// Exact branch-and-bound over set subsets. Exponential; guarded by
/// preconditions (≤ 30 distinct sets, ≤ 512 universe). Test oracle.
class ExactMpuSolver final : public MpuSolver {
 public:
  MpuResult solve(const SetFamily& family, std::uint64_t p) const override;
  std::string name() const override { return "exact"; }
};

/// Local-search refinement: repeatedly swap one chosen set for one
/// unchosen set when the swap keeps coverage ≥ p and strictly shrinks the
/// union. Returns the refined result (at most `max_rounds` sweeps).
MpuResult refine_local_search(const SetFamily& family, std::uint64_t p,
                              MpuResult start, int max_rounds = 8);

/// Remark 2: Minimum Subset Cover solved through an MpU solver. Thin
/// wrapper that exists to keep call sites aligned with the paper's text.
MpuResult solve_msc(const SetFamily& family, std::uint64_t p,
                    const MpuSolver& solver);

}  // namespace af
