// Densest subhypergraph: given a family of weighted sets over elements,
// find a subfamily S' maximizing  density(S') = weight(S') / |∪ S'|.
//
// This is the core relaxation behind the Chlamtáč et al. approximation
// for Minimum p-Union (Problem 2): repeatedly extracting dense subfamilies
// yields unions that grow as slowly as possible.
//
// Two engines:
//  - exact: Goldberg's reduction — binary search the density λ and decide
//    "∃ S' with weight(S') − λ·|∪S'| > 0" with a min-cut on the bipartite
//    closure network (source→set cap w_i, set→its elements cap ∞,
//    element→sink cap λ). Densities are ratios of integers bounded by the
//    instance size, so the search terminates at machine precision.
//  - peeling: iteratively remove the element whose removal destroys the
//    least set weight, tracking the best density along the way. Linear
//    memory, near-linear time; the classic approximation fallback for
//    large instances.
#pragma once

#include <cstdint>
#include <vector>

#include "cover/setfamily.hpp"

namespace af {

/// A subfamily together with its union and density.
struct DensestResult {
  std::vector<std::uint32_t> sets;     // indices into the family
  std::vector<NodeId> union_elements;  // sorted
  double weight = 0.0;                 // Σ multiplicities of chosen sets
  double density = 0.0;                // weight / |union|
};

/// Options shared by both engines.
struct DensestOptions {
  /// Elements marked "free" cost nothing (they are already in the union
  /// being built by an MpU solver). Empty = no free elements.
  std::vector<char> free_elements;
  /// Sets excluded from consideration (already chosen). Empty = none.
  std::vector<char> excluded_sets;
};

/// Exact maximum-density subfamily via flow (empty result if the family
/// has no eligible sets). Runtime ~ O(binary-search · Dinic) — intended
/// for families up to ~10^5 total elements.
DensestResult densest_subfamily_exact(const SetFamily& family,
                                      const DensestOptions& opts = {});

/// Greedy peeling approximation (guaranteed within max-set-size factor).
DensestResult densest_subfamily_peeling(const SetFamily& family,
                                        const DensestOptions& opts = {});

}  // namespace af
