// Dinic's maximum-flow algorithm.
//
// Substrate for the exact densest-subhypergraph computation (Goldberg's
// binary-search reduction), which in turn powers the Chlamtáč-style MpU
// solver. Capacities are doubles because the density parameter λ enters
// the sink capacities; a small epsilon guards saturation tests.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace af {

/// Residual-graph max-flow (Dinic: BFS level graph + blocking DFS).
class MaxFlow {
 public:
  explicit MaxFlow(std::uint32_t num_nodes);

  static constexpr double kInfCapacity =
      std::numeric_limits<double>::infinity();

  /// Adds a directed edge with the given capacity (reverse capacity 0).
  /// Returns the edge id (its residual partner is id ^ 1).
  std::uint32_t add_edge(std::uint32_t from, std::uint32_t to,
                         double capacity);

  /// Computes the max flow from s to t. May be called once per instance.
  double solve(std::uint32_t s, std::uint32_t t);

  /// After solve(): nodes reachable from s in the residual graph — the
  /// source side of a minimum cut.
  std::vector<char> min_cut_source_side(std::uint32_t s) const;

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(head_.size());
  }

 private:
  struct Edge {
    std::uint32_t to;
    std::uint32_t next;  // next edge id in the from-node's list
    double cap;
  };

  bool build_levels(std::uint32_t s, std::uint32_t t);
  double push_flow(std::uint32_t v, std::uint32_t t, double limit);

  static constexpr double kEps = 1e-11;
  static constexpr std::uint32_t kNil = 0xffffffffu;

  std::vector<Edge> edges_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> iter_;
};

}  // namespace af
