#include "cover/densest.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "cover/maxflow.hpp"
#include "util/contracts.hpp"

namespace af {

namespace {

/// Instance view after applying the options: which sets are eligible and,
/// per set, how many non-free elements it has.
struct View {
  std::vector<std::uint32_t> sets;         // eligible set indices
  std::vector<NodeId> elements;            // non-free elements in use
  std::vector<std::uint32_t> elem_index;   // element -> dense idx (or ~0)
};

constexpr std::uint32_t kNone = 0xffffffffu;

View make_view(const SetFamily& family, const DensestOptions& opts) {
  View view;
  view.elem_index.assign(family.universe_size(), kNone);
  auto is_free = [&](NodeId v) {
    return !opts.free_elements.empty() && opts.free_elements[v];
  };
  auto is_excluded = [&](std::uint32_t i) {
    return !opts.excluded_sets.empty() && opts.excluded_sets[i];
  };
  for (std::uint32_t i = 0; i < family.num_sets(); ++i) {
    if (is_excluded(i)) continue;
    view.sets.push_back(i);
    for (NodeId v : family.elements(i)) {
      if (is_free(v) || view.elem_index[v] != kNone) continue;
      view.elem_index[v] = static_cast<std::uint32_t>(view.elements.size());
      view.elements.push_back(v);
    }
  }
  return view;
}

/// Finalizes a result from chosen set indices.
DensestResult finish(const SetFamily& family, const DensestOptions& opts,
                     std::vector<std::uint32_t> sets) {
  DensestResult out;
  out.sets = std::move(sets);
  std::vector<char> in_union(family.universe_size(), 0);
  auto is_free = [&](NodeId v) {
    return !opts.free_elements.empty() && opts.free_elements[v];
  };
  for (std::uint32_t i : out.sets) {
    out.weight += static_cast<double>(family.multiplicity(i));
    for (NodeId v : family.elements(i)) {
      if (!is_free(v) && !in_union[v]) {
        in_union[v] = 1;
        out.union_elements.push_back(v);
      }
    }
  }
  std::sort(out.union_elements.begin(), out.union_elements.end());
  out.density = out.union_elements.empty()
                    ? (out.sets.empty()
                           ? 0.0
                           : std::numeric_limits<double>::infinity())
                    : out.weight / static_cast<double>(
                                       out.union_elements.size());
  return out;
}

/// Collects all zero-cost sets (every element free). If any exist they
/// dominate everything (infinite density).
std::vector<std::uint32_t> zero_cost_sets(const SetFamily& family,
                                          const DensestOptions& opts,
                                          const View& view) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i : view.sets) {
    bool all_free = true;
    for (NodeId v : family.elements(i)) {
      if (view.elem_index[v] != kNone) {
        all_free = false;
        break;
      }
    }
    (void)opts;
    if (all_free) out.push_back(i);
  }
  return out;
}

}  // namespace

DensestResult densest_subfamily_exact(const SetFamily& family,
                                      const DensestOptions& opts) {
  const View view = make_view(family, opts);
  if (view.sets.empty()) return {};

  if (auto zero = zero_cost_sets(family, opts, view); !zero.empty()) {
    return finish(family, opts, std::move(zero));
  }

  const auto ns = static_cast<std::uint32_t>(view.sets.size());
  const auto ne = static_cast<std::uint32_t>(view.elements.size());

  std::uint64_t total_weight = 0;
  for (std::uint32_t i : view.sets) total_weight += family.multiplicity(i);

  // Dinkelbach / Goldberg iteration: start from the best single set and
  // repeatedly ask for a subfamily strictly denser than the incumbent.
  // λ is the exact rational weight/size of the incumbent; capacities are
  // scaled by its denominator so the network is integral.
  std::vector<std::uint32_t> best;  // indices into view.sets? store family ids
  {
    double best_d = -1.0;
    std::uint32_t best_set = view.sets[0];
    for (std::uint32_t i : view.sets) {
      std::size_t cost = 0;
      for (NodeId v : family.elements(i)) {
        if (view.elem_index[v] != kNone) ++cost;
      }
      const double d = static_cast<double>(family.multiplicity(i)) /
                       static_cast<double>(cost);
      if (d > best_d) {
        best_d = d;
        best_set = i;
      }
    }
    best = {best_set};
  }

  auto weight_and_cost = [&](const std::vector<std::uint32_t>& sets)
      -> std::pair<std::uint64_t, std::uint64_t> {
    std::uint64_t w = 0;
    std::vector<char> seen(ne, 0);
    std::uint64_t c = 0;
    for (std::uint32_t i : sets) {
      w += family.multiplicity(i);
      for (NodeId v : family.elements(i)) {
        const std::uint32_t e = view.elem_index[v];
        if (e != kNone && !seen[e]) {
          seen[e] = 1;
          ++c;
        }
      }
    }
    return {w, c};
  };

  for (int iter = 0; iter < 64; ++iter) {
    const auto [num, den] = weight_and_cost(best);
    AF_ENSURES(den > 0, "zero-cost incumbent should have been handled");

    // Network: source=0, sets=[1, ns], elements=[ns+1, ns+ne], sink=last.
    MaxFlow flow(ns + ne + 2);
    const std::uint32_t src = 0;
    const std::uint32_t snk = ns + ne + 1;
    for (std::uint32_t k = 0; k < ns; ++k) {
      const std::uint32_t i = view.sets[k];
      flow.add_edge(src, 1 + k,
                    static_cast<double>(family.multiplicity(i)) *
                        static_cast<double>(den));
      for (NodeId v : family.elements(i)) {
        const std::uint32_t e = view.elem_index[v];
        if (e != kNone) {
          flow.add_edge(1 + k, 1 + ns + e, MaxFlow::kInfCapacity);
        }
      }
    }
    for (std::uint32_t e = 0; e < ne; ++e) {
      flow.add_edge(1 + ns + e, snk, static_cast<double>(num));
    }

    const double max_flow = flow.solve(src, snk);
    const double scaled_total =
        static_cast<double>(total_weight) * static_cast<double>(den);
    // Surplus > 0 ⟺ some subfamily has density strictly above num/den.
    if (max_flow >= scaled_total - 0.5) break;  // incumbent is optimal

    const std::vector<char> side = flow.min_cut_source_side(src);
    std::vector<std::uint32_t> cand;
    for (std::uint32_t k = 0; k < ns; ++k) {
      if (side[1 + k]) cand.push_back(view.sets[k]);
    }
    AF_ENSURES(!cand.empty(), "positive surplus but empty closure");
    // Strict progress check against pathological fp behavior.
    const auto [cw, cc] = weight_and_cost(cand);
    AF_ENSURES(cc == 0 || cw * den > num * cc,
               "densest iteration failed to improve");
    best = std::move(cand);
    if (cc == 0) break;
  }
  return finish(family, opts, std::move(best));
}

DensestResult densest_subfamily_peeling(const SetFamily& family,
                                        const DensestOptions& opts) {
  const View view = make_view(family, opts);
  if (view.sets.empty()) return {};

  if (auto zero = zero_cost_sets(family, opts, view); !zero.empty()) {
    return finish(family, opts, std::move(zero));
  }

  const auto ns = static_cast<std::uint32_t>(view.sets.size());
  const auto ne = static_cast<std::uint32_t>(view.elements.size());

  // Per eligible set: its dense element list; per element: incident sets.
  std::vector<std::vector<std::uint32_t>> set_elems(ns);
  std::vector<std::vector<std::uint32_t>> elem_sets(ne);
  for (std::uint32_t k = 0; k < ns; ++k) {
    for (NodeId v : family.elements(view.sets[k])) {
      const std::uint32_t e = view.elem_index[v];
      if (e == kNone) continue;
      set_elems[k].push_back(e);
      elem_sets[e].push_back(k);
    }
  }

  std::vector<char> set_alive(ns, 1);
  std::vector<char> elem_alive(ne, 1);
  // kill_weight[e] = Σ multiplicity of alive sets containing e.
  std::vector<double> kill_weight(ne, 0.0);
  double alive_weight = 0.0;
  for (std::uint32_t k = 0; k < ns; ++k) {
    const double w = static_cast<double>(family.multiplicity(view.sets[k]));
    alive_weight += w;
    for (std::uint32_t e : set_elems[k]) kill_weight[e] += w;
  }
  // cover_count[e] = # alive sets containing e (union membership test).
  std::vector<std::uint32_t> cover_count(ne, 0);
  std::uint64_t union_size = 0;
  for (std::uint32_t e = 0; e < ne; ++e) {
    cover_count[e] = static_cast<std::uint32_t>(elem_sets[e].size());
    if (cover_count[e] > 0) ++union_size;
  }

  using HeapEntry = std::pair<double, std::uint32_t>;  // (kill_weight, elem)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (std::uint32_t e = 0; e < ne; ++e) heap.emplace(kill_weight[e], e);

  // Peel everything, remembering the best prefix.
  std::vector<std::uint32_t> death_time(ns, kNone);
  double best_density = union_size == 0
                            ? 0.0
                            : alive_weight / static_cast<double>(union_size);
  std::uint32_t best_tau = 0;
  std::uint32_t tau = 0;

  while (!heap.empty()) {
    auto [kw, e] = heap.top();
    heap.pop();
    if (!elem_alive[e] || kw != kill_weight[e]) continue;  // stale entry
    elem_alive[e] = 0;
    ++tau;
    if (cover_count[e] > 0) --union_size;
    for (std::uint32_t k : elem_sets[e]) {
      if (!set_alive[k]) continue;
      set_alive[k] = 0;
      death_time[k] = tau;
      const double w = static_cast<double>(family.multiplicity(view.sets[k]));
      alive_weight -= w;
      for (std::uint32_t f : set_elems[k]) {
        if (!elem_alive[f]) continue;
        kill_weight[f] -= w;
        if (--cover_count[f] == 0) {
          // f is no longer in any alive set: it leaves the union for free.
          --union_size;
        }
        heap.emplace(kill_weight[f], f);
      }
    }
    if (union_size > 0) {
      const double d = alive_weight / static_cast<double>(union_size);
      if (d > best_density) {
        best_density = d;
        best_tau = tau;
      }
    }
  }

  // Reconstruct the subfamily alive after best_tau removals. A set is
  // alive iff it never died or died strictly later. Sets whose union
  // membership became redundant remain included (they cost nothing).
  std::vector<std::uint32_t> chosen;
  for (std::uint32_t k = 0; k < ns; ++k) {
    if (death_time[k] == kNone || death_time[k] > best_tau) {
      chosen.push_back(view.sets[k]);
    }
  }
  return finish(family, opts, std::move(chosen));
}

}  // namespace af
