// The set-family (hypergraph) input of the Minimum Subset Cover / Minimum
// p-Union problems (Problems 2–4).
//
// In RAF the sets are the backward paths t(g_1), …, t(g_b) of the sampled
// type-1 realizations. Identical paths occur frequently (short paths have
// high probability), so the family deduplicates identical sets and tracks
// a multiplicity: covering a stored set covers `multiplicity` realizations
// at once. All solvers account for multiplicities.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"

namespace af {

/// A family of subsets of a universe [0, universe_size), deduplicated,
/// with multiplicities and an element→sets inverted index.
class SetFamily {
 public:
  explicit SetFamily(NodeId universe_size)
      : universe_(universe_size), inverted_(universe_size) {}

  /// Adds one set (the elements need not be sorted; duplicates within the
  /// input are collapsed). Identical sets accumulate multiplicity.
  /// Returns the set's index. Empty sets are rejected: an empty t(g)
  /// cannot occur (t itself is always in t(g)).
  std::uint32_t add_set(std::span<const NodeId> elements);

  NodeId universe_size() const { return universe_; }
  std::size_t num_sets() const { return sets_.size(); }

  /// Sorted elements of set i.
  const std::vector<NodeId>& elements(std::uint32_t i) const {
    return sets_[i];
  }

  /// Number of identical input sets collapsed into set i.
  std::uint64_t multiplicity(std::uint32_t i) const { return mult_[i]; }

  /// Σ multiplicities — the number of input sets (|B_l^1| in the paper).
  std::uint64_t total_multiplicity() const { return total_mult_; }

  /// Sets containing element v (indices into the deduplicated family).
  const std::vector<std::uint32_t>& sets_containing(NodeId v) const {
    return inverted_[v];
  }

  /// Σ |set| over distinct sets (input size measure for solvers).
  std::uint64_t total_elements() const { return total_elements_; }

 private:
  NodeId universe_;
  std::vector<std::vector<NodeId>> sets_;
  std::vector<std::uint64_t> mult_;
  std::vector<std::vector<std::uint32_t>> inverted_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> hash_buckets_;
  std::uint64_t total_mult_ = 0;
  std::uint64_t total_elements_ = 0;
};

}  // namespace af
