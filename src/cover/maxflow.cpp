#include "cover/maxflow.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace af {

MaxFlow::MaxFlow(std::uint32_t num_nodes)
    : head_(num_nodes, kNil), level_(num_nodes, 0), iter_(num_nodes, kNil) {}

std::uint32_t MaxFlow::add_edge(std::uint32_t from, std::uint32_t to,
                                double capacity) {
  AF_EXPECTS(from < head_.size() && to < head_.size(),
             "flow edge endpoint out of range");
  AF_EXPECTS(capacity >= 0.0, "negative capacity");
  const auto id = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(Edge{to, head_[from], capacity});
  head_[from] = id;
  edges_.push_back(Edge{from, head_[to], 0.0});
  head_[to] = id + 1;
  return id;
}

bool MaxFlow::build_levels(std::uint32_t s, std::uint32_t t) {
  std::fill(level_.begin(), level_.end(), kNil);
  level_[s] = 0;
  std::vector<std::uint32_t> frontier{s};
  std::vector<std::uint32_t> next;
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (std::uint32_t v : frontier) {
      for (std::uint32_t e = head_[v]; e != kNil; e = edges_[e].next) {
        if (edges_[e].cap <= kEps) continue;
        const std::uint32_t u = edges_[e].to;
        if (level_[u] != kNil) continue;
        level_[u] = depth;
        next.push_back(u);
      }
    }
    frontier.swap(next);
  }
  return level_[t] != kNil;
}

double MaxFlow::push_flow(std::uint32_t v, std::uint32_t t, double limit) {
  if (v == t) return limit;
  for (std::uint32_t& e = iter_[v]; e != kNil; e = edges_[e].next) {
    Edge& fwd = edges_[e];
    if (fwd.cap <= kEps) continue;
    const std::uint32_t u = fwd.to;
    if (level_[u] != level_[v] + 1) continue;
    const double pushed = push_flow(u, t, std::min(limit, fwd.cap));
    if (pushed > 0.0) {
      fwd.cap -= pushed;
      edges_[e ^ 1].cap += pushed;
      return pushed;
    }
  }
  return 0.0;
}

double MaxFlow::solve(std::uint32_t s, std::uint32_t t) {
  AF_EXPECTS(s < head_.size() && t < head_.size() && s != t,
             "invalid flow terminals");
  double total = 0.0;
  while (build_levels(s, t)) {
    iter_ = head_;
    while (true) {
      const double pushed = push_flow(s, t, kInfCapacity);
      if (pushed <= 0.0) break;
      total += pushed;
    }
  }
  return total;
}

std::vector<char> MaxFlow::min_cut_source_side(std::uint32_t s) const {
  std::vector<char> side(head_.size(), 0);
  std::vector<std::uint32_t> stack{s};
  side[s] = 1;
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    for (std::uint32_t e = head_[v]; e != kNil; e = edges_[e].next) {
      if (edges_[e].cap <= kEps) continue;
      const std::uint32_t u = edges_[e].to;
      if (!side[u]) {
        side[u] = 1;
        stack.push_back(u);
      }
    }
  }
  return side;
}

}  // namespace af
