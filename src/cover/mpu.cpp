#include "cover/mpu.hpp"

#include <algorithm>
#include <queue>

#include "cover/densest.hpp"
#include "util/contracts.hpp"

namespace af {

namespace {

void check_inputs(const SetFamily& family, std::uint64_t p) {
  AF_EXPECTS(p >= 1, "coverage target must be positive");
  AF_EXPECTS(p <= family.total_multiplicity(),
             "coverage target exceeds the number of input sets");
}

MpuResult finish_result(const SetFamily& family,
                        std::vector<std::uint32_t> chosen) {
  MpuResult out;
  out.chosen_sets = std::move(chosen);
  std::vector<char> in_union(family.universe_size(), 0);
  for (std::uint32_t i : out.chosen_sets) {
    out.covered += family.multiplicity(i);
    for (NodeId v : family.elements(i)) {
      if (!in_union[v]) {
        in_union[v] = 1;
        out.union_elements.push_back(v);
      }
    }
  }
  std::sort(out.union_elements.begin(), out.union_elements.end());
  return out;
}

}  // namespace

MpuResult GreedyMpuSolver::solve(const SetFamily& family,
                                 std::uint64_t p) const {
  check_inputs(family, p);
  const auto ns = static_cast<std::uint32_t>(family.num_sets());

  std::vector<std::uint32_t> marginal(ns);
  for (std::uint32_t i = 0; i < ns; ++i) {
    marginal[i] = static_cast<std::uint32_t>(family.elements(i).size());
  }
  std::vector<char> chosen(ns, 0);
  std::vector<char> in_union(family.universe_size(), 0);

  // Lazy min-heap keyed by marginal-per-covered-realization. Keys only
  // decrease; whenever a key changes we push the fresh value, so stale
  // entries can simply be skipped on pop.
  struct Entry {
    double key;
    std::uint32_t marginal_at_push;
    std::uint32_t set;
    bool operator>(const Entry& o) const {
      if (key != o.key) return key > o.key;
      return set > o.set;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  auto key_of = [&](std::uint32_t i) {
    return static_cast<double>(marginal[i]) /
           static_cast<double>(family.multiplicity(i));
  };
  for (std::uint32_t i = 0; i < ns; ++i) {
    heap.push(Entry{key_of(i), marginal[i], i});
  }

  std::vector<std::uint32_t> picked;
  std::uint64_t covered = 0;
  while (covered < p) {
    AF_ENSURES(!heap.empty(), "greedy ran out of sets before reaching p");
    const Entry e = heap.top();
    heap.pop();
    if (chosen[e.set] || e.marginal_at_push != marginal[e.set]) continue;

    chosen[e.set] = 1;
    picked.push_back(e.set);
    covered += family.multiplicity(e.set);
    for (NodeId v : family.elements(e.set)) {
      if (in_union[v]) continue;
      in_union[v] = 1;
      for (std::uint32_t j : family.sets_containing(v)) {
        if (chosen[j]) continue;
        --marginal[j];
        heap.push(Entry{key_of(j), marginal[j], j});
      }
    }
  }
  return finish_result(family, std::move(picked));
}

MpuResult SmallestSetsSolver::solve(const SetFamily& family,
                                    std::uint64_t p) const {
  check_inputs(family, p);
  const auto ns = static_cast<std::uint32_t>(family.num_sets());
  std::vector<std::uint32_t> order(ns);
  for (std::uint32_t i = 0; i < ns; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double ka = static_cast<double>(family.elements(a).size()) /
                      static_cast<double>(family.multiplicity(a));
    const double kb = static_cast<double>(family.elements(b).size()) /
                      static_cast<double>(family.multiplicity(b));
    if (ka != kb) return ka < kb;
    return a < b;
  });
  std::vector<std::uint32_t> picked;
  std::uint64_t covered = 0;
  for (std::uint32_t i : order) {
    if (covered >= p) break;
    picked.push_back(i);
    covered += family.multiplicity(i);
  }
  return finish_result(family, std::move(picked));
}

MpuResult ExactMpuSolver::solve(const SetFamily& family,
                                std::uint64_t p) const {
  check_inputs(family, p);
  const auto ns = static_cast<std::uint32_t>(family.num_sets());
  AF_EXPECTS(ns <= 30, "exact solver limited to 30 distinct sets");
  AF_EXPECTS(family.universe_size() <= 512,
             "exact solver limited to universe 512");

  const std::size_t words = (family.universe_size() + 63) / 64;

  // Order sets by size so cheap sets are branched on first.
  std::vector<std::uint32_t> order(ns);
  for (std::uint32_t i = 0; i < ns; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (family.elements(a).size() != family.elements(b).size()) {
      return family.elements(a).size() < family.elements(b).size();
    }
    return a < b;
  });

  std::vector<std::vector<std::uint64_t>> bits(ns,
                                               std::vector<std::uint64_t>(words, 0));
  for (std::uint32_t k = 0; k < ns; ++k) {
    for (NodeId v : family.elements(order[k])) {
      bits[k][v / 64] |= (1ULL << (v % 64));
    }
  }
  std::vector<std::uint64_t> suffix_mult(ns + 1, 0);
  for (std::uint32_t k = ns; k-- > 0;) {
    suffix_mult[k] = suffix_mult[k + 1] + family.multiplicity(order[k]);
  }

  std::size_t best_size = family.universe_size() + 1;
  std::vector<std::uint32_t> best_sets;

  std::vector<std::uint64_t> cur(words, 0);
  std::vector<std::uint32_t> cur_sets;

  auto popcount_of = [&](const std::vector<std::uint64_t>& x) {
    std::size_t c = 0;
    for (std::uint64_t w : x) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  };

  // Depth-first branch and bound over include/exclude decisions.
  auto dfs = [&](auto&& self, std::uint32_t k, std::uint64_t covered,
                 std::size_t cur_size) -> void {
    if (covered >= p) {
      if (cur_size < best_size) {
        best_size = cur_size;
        best_sets.clear();
        for (std::uint32_t j : cur_sets) best_sets.push_back(order[j]);
      }
      return;  // adding more sets can only grow the union
    }
    if (k == ns) return;
    if (covered + suffix_mult[k] < p) return;   // cannot reach target
    if (cur_size >= best_size) return;          // cannot improve

    // Branch 1: include set k.
    std::vector<std::uint64_t> saved = cur;
    std::size_t new_size = cur_size;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t add = bits[k][w] & ~cur[w];
      new_size += static_cast<std::size_t>(__builtin_popcountll(add));
      cur[w] |= bits[k][w];
    }
    cur_sets.push_back(k);
    self(self, k + 1, covered + family.multiplicity(order[k]), new_size);
    cur_sets.pop_back();
    cur = std::move(saved);

    // Branch 2: exclude set k.
    self(self, k + 1, covered, cur_size);
  };
  dfs(dfs, 0, 0, popcount_of(cur));

  AF_ENSURES(!best_sets.empty() || p == 0, "exact solver found no solution");
  return finish_result(family, std::move(best_sets));
}

MpuResult DensestMpuSolver::solve(const SetFamily& family,
                                  std::uint64_t p) const {
  check_inputs(family, p);
  const auto ns = static_cast<std::uint32_t>(family.num_sets());

  const bool use_exact =
      engine_ == Engine::kExact ||
      (engine_ == Engine::kAuto &&
       family.total_elements() <= 20'000 && ns <= 4'000);

  DensestOptions opts;
  opts.free_elements.assign(family.universe_size(), 0);
  opts.excluded_sets.assign(ns, 0);

  std::vector<std::uint32_t> picked;
  std::uint64_t covered = 0;
  while (covered < p) {
    const DensestResult dense =
        use_exact ? densest_subfamily_exact(family, opts)
                  : densest_subfamily_peeling(family, opts);
    AF_ENSURES(!dense.sets.empty(),
               "densest extraction returned nothing before reaching p");

    std::uint64_t block_mult = 0;
    for (std::uint32_t i : dense.sets) block_mult += family.multiplicity(i);

    if (covered + block_mult <= p) {
      // Take the whole dense block.
      for (std::uint32_t i : dense.sets) {
        picked.push_back(i);
        opts.excluded_sets[i] = 1;
        covered += family.multiplicity(i);
        for (NodeId v : family.elements(i)) opts.free_elements[v] = 1;
      }
      continue;
    }

    // The block overshoots: clip it greedily by min marginal.
    std::vector<std::uint32_t> block(dense.sets);
    std::vector<char> taken(block.size(), 0);
    while (covered < p) {
      double best_key = 0.0;
      std::size_t best_idx = block.size();
      for (std::size_t bi = 0; bi < block.size(); ++bi) {
        if (taken[bi]) continue;
        const std::uint32_t i = block[bi];
        std::size_t marg = 0;
        for (NodeId v : family.elements(i)) {
          if (!opts.free_elements[v]) ++marg;
        }
        const double key = static_cast<double>(marg) /
                           static_cast<double>(family.multiplicity(i));
        if (best_idx == block.size() || key < best_key) {
          best_key = key;
          best_idx = bi;
        }
      }
      AF_ENSURES(best_idx < block.size(), "clipping ran out of block sets");
      taken[best_idx] = 1;
      const std::uint32_t i = block[best_idx];
      picked.push_back(i);
      opts.excluded_sets[i] = 1;
      covered += family.multiplicity(i);
      for (NodeId v : family.elements(i)) opts.free_elements[v] = 1;
    }
  }
  return finish_result(family, std::move(picked));
}

MpuResult refine_local_search(const SetFamily& family, std::uint64_t p,
                              MpuResult start, int max_rounds) {
  const auto ns = static_cast<std::uint32_t>(family.num_sets());
  if (ns > 20'000) return start;  // refinement disabled on huge families

  std::vector<char> chosen(ns, 0);
  for (std::uint32_t i : start.chosen_sets) chosen[i] = 1;
  std::uint64_t covered = start.covered;

  // cnt[v] = number of chosen sets containing v.
  std::vector<std::uint32_t> cnt(family.universe_size(), 0);
  for (std::uint32_t i = 0; i < ns; ++i) {
    if (!chosen[i]) continue;
    for (NodeId v : family.elements(i)) ++cnt[v];
  }

  auto sole_elements = [&](std::uint32_t i) {
    // Elements that leave the union if set i is dropped.
    std::size_t a = 0;
    for (NodeId v : family.elements(i)) {
      if (cnt[v] == 1) ++a;
    }
    return a;
  };

  // Scratch marker: in_i[v] = 1 iff v belongs to the set currently being
  // considered for removal.
  std::vector<char> in_i(family.universe_size(), 0);

  bool improved = true;
  for (int round = 0; round < max_rounds && improved; ++round) {
    improved = false;
    for (std::uint32_t i = 0; i < ns; ++i) {
      if (!chosen[i]) continue;

      // Pure removal when coverage stays feasible.
      if (covered - family.multiplicity(i) >= p) {
        chosen[i] = 0;
        covered -= family.multiplicity(i);
        for (NodeId v : family.elements(i)) --cnt[v];
        improved = true;
        continue;
      }

      const std::size_t freed = sole_elements(i);
      if (freed == 0) continue;  // no swap can shrink the union

      for (NodeId v : family.elements(i)) in_i[v] = 1;

      // Try swapping i for the best replacement j: after removing i, an
      // element v remains in the union iff cnt[v] − [v ∈ i] > 0.
      const std::uint64_t need = p - (covered - family.multiplicity(i));
      std::uint32_t best_j = ns;
      std::size_t best_added = freed;  // must strictly beat `freed`
      for (std::uint32_t j = 0; j < ns; ++j) {
        if (chosen[j] || j == i) continue;
        if (family.multiplicity(j) < need) continue;
        std::size_t added = 0;
        for (NodeId v : family.elements(j)) {
          if (cnt[v] - (in_i[v] ? 1u : 0u) == 0) ++added;
          if (added >= best_added) break;  // cannot win anymore
        }
        if (added < best_added) {
          best_added = added;
          best_j = j;
        }
      }

      for (NodeId v : family.elements(i)) in_i[v] = 0;

      if (best_j < ns) {
        // Apply the swap i → best_j.
        chosen[i] = 0;
        covered -= family.multiplicity(i);
        for (NodeId v : family.elements(i)) --cnt[v];
        chosen[best_j] = 1;
        covered += family.multiplicity(best_j);
        for (NodeId v : family.elements(best_j)) ++cnt[v];
        improved = true;
      }
    }
  }
  // Rebuild the result from the chosen mask.
  std::vector<std::uint32_t> sets;
  for (std::uint32_t i = 0; i < ns; ++i) {
    if (chosen[i]) sets.push_back(i);
  }
  return finish_result(family, std::move(sets));
}

MpuResult solve_msc(const SetFamily& family, std::uint64_t p,
                    const MpuSolver& solver) {
  check_inputs(family, p);
  return solver.solve(family, p);
}

}  // namespace af
