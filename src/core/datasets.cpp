#include "core/datasets.hpp"

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {

std::vector<DatasetSpec> paper_dataset_specs(bool full_scale) {
  // Table I: Wiki 7K/103K (avg 14.7), HepTh 28K/353K (12.6),
  // HepPh 35K/421K (12.0), Youtube 1.1M/6.0M (5.54).
  // BA with attachment a yields m ≈ a·n, i.e. the paper's m/n column.
  std::vector<DatasetSpec> specs = {
      {"wiki", 7'000, 15, 7'000, 103'000, 14.7},
      {"hepth", 28'000, 13, 28'000, 353'000, 12.6},
      {"hepph", 35'000, 12, 35'000, 421'000, 12.0},
      {"youtube", full_scale ? NodeId{1'100'000} : NodeId{200'000}, 5,
       1'100'000, 6'000'000, 5.54},
  };
  return specs;
}

DatasetSpec dataset_spec(const std::string& name, bool full_scale) {
  for (const auto& spec : paper_dataset_specs(full_scale)) {
    if (spec.name == name) return spec;
  }
  AF_EXPECTS(false, "unknown dataset: " + name);
  return {};
}

Graph make_dataset(const DatasetSpec& spec, Rng& rng) {
  return barabasi_albert(spec.nodes, spec.attach, rng)
      .build(WeightScheme::inverse_degree());
}

}  // namespace af
