// Synthetic analogs of the paper's four datasets (Table I).
//
// The SNAP originals are unavailable offline (DESIGN.md §4.1); each
// analog matches the original's node count, edge count and degree
// character via Barabási–Albert preferential attachment, with the
// paper's weight convention w(u,v) = 1/|N_v|. The "youtube" analog is
// scaled down by default (full_scale regenerates the 1.1M-node version).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace af {

class Rng;

/// One dataset descriptor.
struct DatasetSpec {
  std::string name;       // wiki | hepth | hepph | youtube
  NodeId nodes;           // analog size
  std::size_t attach;     // BA attachment parameter
  NodeId paper_nodes;     // Table I reference values
  std::uint64_t paper_edges;
  double paper_avg_degree;
};

/// The four Table-I specs. `full_scale` switches the youtube analog from
/// the default 200k-node version to the paper's 1.1M nodes.
std::vector<DatasetSpec> paper_dataset_specs(bool full_scale = false);

/// Looks up one spec by name; throws precondition_error on unknown names.
DatasetSpec dataset_spec(const std::string& name, bool full_scale = false);

/// Generates the analog graph for a spec (weights: inverse degree).
Graph make_dataset(const DatasetSpec& spec, Rng& rng);

}  // namespace af
