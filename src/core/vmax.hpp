// V_max (Lemma 7): the unique minimum invitation set achieving p_max.
//
// A node u ∉ {s} ∪ N_s belongs to V_max iff it lies on some path from a
// node of {s} ∪ N_s to t. Because Alg. 1's backward walk traces *simple*
// paths whose internal nodes avoid N_s (the walk stops at the first N_s
// node), the precise criterion is: u lies on a simple path from a
// supersource a — adjacent to every surviving neighbor of N_s — to t in
// the graph induced on V ∖ ({s} ∪ N_s). Simple-path membership is decided
// exactly with the block-cut tree (see graph/blockcut.hpp).
//
// The naive "reachable from both sides" intersection is also provided:
// it is a superset of V_max in general (it admits nodes that only occur
// on walks revisiting N_s) and is used for comparison/ablation.
#pragma once

#include <vector>

#include "diffusion/instance.hpp"
#include "graph/types.hpp"

namespace af {

/// Exact V_max, sorted ascending. Always contains t when V_max ≠ ∅;
/// returns {} iff t is unreachable from N_s (p_max = 0).
std::vector<NodeId> compute_vmax(const FriendingInstance& inst);

/// Reachability overapproximation: nodes of the connected component of t
/// in G[V ∖ ({s} ∪ N_s)] whose component touches N_s. Superset of V_max.
std::vector<NodeId> compute_vmax_reachability(const FriendingInstance& inst);

}  // namespace af
