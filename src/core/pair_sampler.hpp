// (s, t) pair sampling following the paper's experimental protocol:
// "randomly select 500 pairs of s and t with p_max no less than 0.01"
// (Sec. IV, Problem Setting).
//
// Implementation: draw a random initiator s with at least one friend,
// draw t uniformly from the BFS ball of radius [2, max_distance] around
// s (t ∉ {s} ∪ N_s by construction), estimate p_max with a quick
// reverse-sampling Monte-Carlo pass, and accept if the estimate clears
// the threshold. Uniform t on a large sparse graph almost always gives
// p_max ≈ 0; restricting to a modest radius matches both the paper's
// accepted population (pairs that pass the same filter) and the active
// friending use case (targets a couple of hops away).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "diffusion/instance.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace af {

/// Sampler configuration.
struct PairSamplerConfig {
  /// Accept a pair when the estimated p_max reaches this (paper: 0.01).
  double pmax_threshold = 0.01;
  /// Reject pairs whose estimated p_max exceeds this. The paper samples
  /// uniformly over all pairs passing the 0.01 filter; that population is
  /// dominated by hard pairs (p_max of a few percent — see the Fig. 3
  /// y-axes). A BFS-ball sampler without an upper bound instead
  /// over-represents easy distance-2 pairs, so experiments cap it.
  double pmax_upper = 1.0;
  /// Monte-Carlo samples per candidate estimate.
  std::uint64_t estimate_samples = 3'000;
  /// Candidate targets are drawn from hop distance [2, max_distance].
  std::uint32_t max_distance = 4;
  /// Give up after this many rejected candidates.
  std::uint64_t max_attempts = 20'000;
};

/// A sampled pair with its estimated p_max.
struct SampledPair {
  NodeId s = 0;
  NodeId t = 0;
  double pmax_estimate = 0.0;
};

/// Draws up to `count` accepted pairs (fewer if max_attempts exhausts).
std::vector<SampledPair> sample_pairs(const Graph& g, std::size_t count,
                                      const PairSamplerConfig& cfg, Rng& rng);

/// Draws a single accepted pair, if any.
std::optional<SampledPair> sample_pair(const Graph& g,
                                       const PairSamplerConfig& cfg, Rng& rng);

}  // namespace af
