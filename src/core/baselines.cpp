#include "core/baselines.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/contracts.hpp"

namespace af {

namespace {

/// Appends `v` to the ranking if invitable and not yet present.
struct RankingBuilder {
  explicit RankingBuilder(const FriendingInstance& inst)
      : inst_(inst), seen_(inst.graph().num_nodes(), 0) {
    push(inst.target());
  }

  void push(NodeId v) {
    if (!inst_.invitable(v) || seen_[v]) return;
    seen_[v] = 1;
    ranking_.push_back(v);
  }

  InvitationRanking take() { return std::move(ranking_); }

  const FriendingInstance& inst_;
  std::vector<char> seen_;
  InvitationRanking ranking_;
};

}  // namespace

InvitationRanking high_degree_ranking(const FriendingInstance& inst) {
  const Graph& g = inst.graph();
  RankingBuilder rb(inst);

  std::vector<NodeId> candidates;
  candidates.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (inst.invitable(v) && v != inst.target()) candidates.push_back(v);
  }
  std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  for (NodeId v : candidates) rb.push(v);
  return rb.take();
}

InvitationRanking shortest_path_ranking(const FriendingInstance& inst) {
  const Graph& g = inst.graph();
  RankingBuilder rb(inst);

  // Successive node-disjoint shortest paths (the paper's SP policy).
  // 64 disjoint paths is beyond any realistic budget; the distance
  // filler takes over from there.
  const auto paths = node_disjoint_shortest_paths(
      g, inst.initiator(), inst.target(), /*max_paths=*/64);
  for (const auto& path : paths) {
    for (NodeId v : path) rb.push(v);
  }

  // Filler: remaining invitable nodes by BFS distance from N_s.
  const auto dist = bfs_distances(g, inst.initial_friends());
  std::vector<NodeId> rest;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (inst.invitable(v) && dist[v] != kUnreachable) rest.push_back(v);
  }
  std::sort(rest.begin(), rest.end(), [&](NodeId a, NodeId b) {
    if (dist[a] != dist[b]) return dist[a] < dist[b];
    return a < b;
  });
  for (NodeId v : rest) rb.push(v);
  return rb.take();
}

InvitationRanking random_ranking(const FriendingInstance& inst, Rng& rng) {
  const Graph& g = inst.graph();
  RankingBuilder rb(inst);
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (inst.invitable(v) && v != inst.target()) candidates.push_back(v);
  }
  rng.shuffle(candidates);
  for (NodeId v : candidates) rb.push(v);
  return rb.take();
}

InvitationSet ranking_prefix(const FriendingInstance& inst,
                             const InvitationRanking& ranking,
                             std::size_t k) {
  AF_EXPECTS(k >= 1, "invitation budget must be positive");
  InvitationSet inv(inst.graph().num_nodes());
  for (std::size_t i = 0; i < ranking.size() && i < k; ++i) {
    inv.add(ranking[i]);
  }
  return inv;
}

InvitationSet high_degree_invitation(const FriendingInstance& inst,
                                     std::size_t k) {
  return ranking_prefix(inst, high_degree_ranking(inst), k);
}

InvitationSet shortest_path_invitation(const FriendingInstance& inst,
                                       std::size_t k) {
  return ranking_prefix(inst, shortest_path_ranking(inst), k);
}

InvitationSet random_invitation(const FriendingInstance& inst, std::size_t k,
                                Rng& rng) {
  return ranking_prefix(inst, random_ranking(inst, rng), k);
}

}  // namespace af
