// Budgeted maximum active friending (extension).
//
// The paper solves the *minimization* version; its related work
// (Yang et al., Yuan et al.) targets the maximization version: maximize
// f(I) subject to |I| ≤ k. This module implements a realization-based
// greedy for that problem on top of the same sampling machinery:
// repeatedly complete the cheapest remaining backward path (fewest
// not-yet-invited nodes) while the budget allows. Covering a path is an
// all-or-nothing gain — f is supermodular under the LT model (Yuan et
// al.) — so cheapest-completion is the natural greedy; it also exactly
// matches the structure the MSC step exploits.
#pragma once

#include <cstdint>

#include "cover/setfamily.hpp"
#include "diffusion/instance.hpp"
#include "diffusion/invitation.hpp"
#include "util/rng.hpp"

namespace af {

/// Configuration of the maximization greedy.
struct MaximizerConfig {
  /// Invitation budget k (must include room for t itself).
  std::size_t budget = 10;
  /// Realizations sampled to build the path family.
  std::uint64_t realizations = 50'000;
};

/// Result: the invitation set plus the in-sample coverage achieved.
struct MaximizerResult {
  InvitationSet invitation;
  /// Realizations covered / realizations sampled — an (optimistic,
  /// in-sample) estimate of f(I); evaluate out-of-sample for reporting.
  double sample_coverage = 0.0;
  std::uint64_t type1_count = 0;
};

/// Greedy cheapest-path-completion maximizer.
MaximizerResult maximize_friending(const FriendingInstance& inst,
                                   const MaximizerConfig& cfg, Rng& rng);

/// The greedy on a pre-sampled family of type-1 backward paths (the
/// Planner's pooled path). `realizations` is the number of realizations
/// the family was drawn from — the denominator of sample_coverage.
MaximizerResult maximize_with_family(const FriendingInstance& inst,
                                     const SetFamily& family,
                                     std::uint64_t realizations,
                                     std::size_t budget);

}  // namespace af
