#include "core/ranked_eval.hpp"

#include <algorithm>
#include <optional>

#include "diffusion/realization.hpp"
#include "util/contracts.hpp"

namespace af {

RankedCurve evaluate_ranked_prefixes(const FriendingInstance& inst,
                                     const InvitationRanking& ranking,
                                     std::uint64_t samples, Rng& rng) {
  AF_EXPECTS(samples > 0, "need at least one sample");
  AF_EXPECTS(!ranking.empty(), "empty ranking");

  const NodeId n = inst.graph().num_nodes();
  constexpr std::size_t kOutside = static_cast<std::size_t>(-1);
  std::vector<std::size_t> rank_of(n, kOutside);
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    AF_EXPECTS(ranking[i] < n, "ranking node out of range");
    AF_EXPECTS(rank_of[ranking[i]] == kOutside, "duplicate node in ranking");
    rank_of[ranking[i]] = i;
  }

  // One pass: minimal covering prefix size per sampled type-1 path. The
  // alias-backed sampler makes each walk step O(1); the reused path
  // buffer keeps the loop allocation-free.
  std::vector<std::size_t> needs;
  needs.reserve(static_cast<std::size_t>(samples) / 8);
  ReversePathSampler sampler(inst);
  std::vector<NodeId> path;
  for (std::uint64_t i = 0; i < samples; ++i) {
    if (!sampler.sample_into(rng, path)) continue;
    std::size_t need = 0;
    bool coverable = true;
    for (NodeId v : path) {
      const std::size_t r = rank_of[v];
      if (r == kOutside) {
        coverable = false;
        break;
      }
      need = std::max(need, r + 1);
    }
    if (coverable) needs.push_back(need);
  }
  std::sort(needs.begin(), needs.end());

  RankedCurve curve;
  curve.samples_ = samples;
  for (std::size_t i = 0; i < needs.size(); ++i) {
    if (curve.needs_.empty() || curve.needs_.back() != needs[i]) {
      curve.needs_.push_back(needs[i]);
      curve.cum_.push_back(i + 1);
    } else {
      curve.cum_.back() = i + 1;
    }
  }
  return curve;
}

double RankedCurve::f_at(std::size_t k) const {
  if (samples_ == 0 || needs_.empty()) return 0.0;
  // Largest stored need ≤ k.
  const auto it = std::upper_bound(needs_.begin(), needs_.end(), k);
  if (it == needs_.begin()) return 0.0;
  const auto idx = static_cast<std::size_t>(it - needs_.begin()) - 1;
  return static_cast<double>(cum_[idx]) / static_cast<double>(samples_);
}

std::optional<std::size_t> RankedCurve::size_to_reach(double target) const {
  if (target <= 0.0) return std::size_t{0};
  const auto want = static_cast<double>(samples_) * target;
  for (std::size_t i = 0; i < needs_.size(); ++i) {
    if (static_cast<double>(cum_[i]) >= want) return needs_[i];
  }
  return std::nullopt;
}

double RankedCurve::ceiling() const {
  if (samples_ == 0 || cum_.empty()) return 0.0;
  return static_cast<double>(cum_.back()) / static_cast<double>(samples_);
}

}  // namespace af
