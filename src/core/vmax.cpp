#include "core/vmax.hpp"

#include <algorithm>

#include "graph/blockcut.hpp"
#include "graph/weights.hpp"
#include "util/contracts.hpp"

namespace af {

std::vector<NodeId> compute_vmax(const FriendingInstance& inst) {
  const Graph& g = inst.graph();
  const NodeId n = g.num_nodes();
  const NodeId s = inst.initiator();

  // Dense remap of V' = V ∖ ({s} ∪ N_s); id 0 is the supersource a.
  std::vector<NodeId> remap(n, kNoNode);
  NodeId next = 1;
  for (NodeId v = 0; v < n; ++v) {
    if (v == s || inst.is_initial_friend(v)) continue;
    remap[v] = next++;
  }

  Graph::Builder builder(next);
  std::vector<char> attached_to_a(next, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (remap[v] == kNoNode) continue;
    bool touches_ns = false;
    for (NodeId u : g.neighbors(v)) {
      if (inst.is_initial_friend(u)) {
        touches_ns = true;
        continue;
      }
      if (remap[u] == kNoNode) continue;  // u == s (s's nbrs are all N_s)
      if (u > v) builder.add_edge(remap[v], remap[u]);
    }
    if (touches_ns && !attached_to_a[remap[v]]) {
      attached_to_a[remap[v]] = 1;
      builder.add_edge(0, remap[v]);
    }
  }
  if (builder.num_edges_added() == 0) return {};

  const Graph h = builder.build(WeightScheme::inverse_degree());
  const BlockCutTree bct(h);
  const std::vector<NodeId> on_paths =
      bct.vertices_on_simple_paths(0, remap[inst.target()]);

  // Map back, dropping the supersource.
  std::vector<NodeId> inverse(next, kNoNode);
  for (NodeId v = 0; v < n; ++v) {
    if (remap[v] != kNoNode) inverse[remap[v]] = v;
  }
  std::vector<NodeId> out;
  out.reserve(on_paths.size());
  for (NodeId x : on_paths) {
    if (x != 0) out.push_back(inverse[x]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> compute_vmax_reachability(const FriendingInstance& inst) {
  const Graph& g = inst.graph();
  const NodeId n = g.num_nodes();
  const NodeId s = inst.initiator();

  auto excluded = [&](NodeId v) {
    return v == s || inst.is_initial_friend(v);
  };

  // Flood fill from t inside G[V'].
  std::vector<char> seen(n, 0);
  std::vector<NodeId> comp;
  std::vector<NodeId> stack{inst.target()};
  seen[inst.target()] = 1;
  bool touches_ns = false;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    comp.push_back(v);
    for (NodeId u : g.neighbors(v)) {
      if (excluded(u)) {
        if (inst.is_initial_friend(u)) touches_ns = true;
        continue;
      }
      if (!seen[u]) {
        seen[u] = 1;
        stack.push_back(u);
      }
    }
  }
  if (!touches_ns) return {};
  std::sort(comp.begin(), comp.end());
  return comp;
}

}  // namespace af
