// Baseline invitation strategies (Sec. IV, "Baseline Algorithms").
//
// HD (High Degree): fills the invitation set with the highest-degree
// invitable users. SP (Shortest Path): fills it with the nodes of
// successive node-disjoint shortest paths from s to t. Both always invite
// t itself first — without t in I the process cannot succeed (only
// invited users become friends), and the paper's HD/SP results are
// plainly nonzero.
//
// Every strategy returns a normalized invitation set (no s, no N_s
// members) of size ≤ k, padding with a documented deterministic filler
// when its primary source of nodes runs dry.
#pragma once

#include <vector>

#include "diffusion/instance.hpp"
#include "diffusion/invitation.hpp"
#include "util/rng.hpp"

namespace af {

/// A full priority order over invitable nodes: element 0 is always t;
/// the baseline's budget-k invitation set is the first min(k, size)
/// entries. Rankings expose the entire strategy at once, which lets the
/// ranked-prefix evaluator (core/ranked_eval.hpp) price every budget in
/// a single sampling pass.
using InvitationRanking = std::vector<NodeId>;

/// HD ranking: t, then invitable nodes by decreasing degree (ties by id).
InvitationRanking high_degree_ranking(const FriendingInstance& inst);

/// SP ranking: t, then the nodes of successive node-disjoint shortest
/// s→t paths (closest-to-s first within a path), then remaining
/// invitable nodes by BFS distance from N_s.
InvitationRanking shortest_path_ranking(const FriendingInstance& inst);

/// Random ranking: t, then a uniform shuffle of the invitable nodes.
InvitationRanking random_ranking(const FriendingInstance& inst, Rng& rng);

/// First min(k, |ranking|) entries as an InvitationSet.
InvitationSet ranking_prefix(const FriendingInstance& inst,
                             const InvitationRanking& ranking, std::size_t k);

/// HD: {t} ∪ (k−1 highest-degree invitable nodes). Ties break by node id.
InvitationSet high_degree_invitation(const FriendingInstance& inst,
                                     std::size_t k);

/// SP: {t} ∪ nodes of successive node-disjoint shortest s→t paths
/// (paper: "SP will select the next shortest path disjoint from those
/// that have been selected"). If the budget outlasts the disjoint paths,
/// the remainder is filled with invitable nodes by increasing BFS
/// distance from N_s (closest-first, deterministic).
InvitationSet shortest_path_invitation(const FriendingInstance& inst,
                                       std::size_t k);

/// Random: {t} ∪ (k−1 uniformly random invitable nodes).
InvitationSet random_invitation(const FriendingInstance& inst, std::size_t k,
                                Rng& rng);

}  // namespace af
