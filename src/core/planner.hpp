// af::Planner — the unified query facade over one social graph.
//
// The paper's pipeline answers a single (s,t) query; a serving system
// answers many against the same graph. The Planner is constructed once
// per Graph and exposes one entry point for both problem modes:
//
//   Planner planner(graph);
//   PlanResult r = planner.plan({s, t, MinimizeSpec{.alpha = 0.3}});
//   std::vector<PlanResult> rs = planner.plan_batch(queries);
//   std::future<PlanResult> f = planner.plan_async({s, t, spec});
//
// plan() and plan_batch() are the experiment surface (synchronous,
// barrier-style); plan_async() is the serving surface (DESIGN.md §10): a
// bounded admission queue with structured backpressure (kOverloaded),
// deadline/priority-aware dequeue ordering with expired-query
// short-circuiting (kDeadlineExceeded), duplicate-pair coalescing, and
// drain-safe shutdown (outstanding futures resolve with kShutdown).
// All three produce bit-identical answers for the same spec.
//
// A QuerySpec is (s, t, mode) where mode is either a MinimizeSpec
// (Problem 1 / RAF: smallest set reaching α·p_max) or a MaximizeSpec
// (budgeted extension: best set of ≤ k invitations). Results carry a
// structured Status instead of the engines' bool flags, plus per-stage
// timings and cache diagnostics.
//
// Shared per-pair caches (DESIGN.md §6):
//  - |V_max| / reachability certificate (block-cut analysis), computed
//    once per (s,t);
//  - the DKLR p*max estimate, computed once per (s,t) at the planner's
//    tolerance (PlannerOptions::pmax_epsilon/pmax_delta) — set it at or
//    below the smallest ε0 your queries will solve for if you want
//    Theorem 1 to carry over verbatim;
//  - a realization pool: backward-path samples kept in a flat PathArena
//    and shared by every query on the pair. A query needing l
//    realizations reads the pool's first l samples, growing it on demand
//    — an α-sweep pays the sampling cost once.
//
// One selection index (per-node alias tables, DESIGN.md §7) is built per
// planner and shared by all pairs: every walk step is O(1) instead of an
// O(deg) scan. PlannerOptions::compact_index picks the 12-byte/slot
// float32 CompactSamplingIndex over the 16-byte exact-threshold
// SamplingIndex (DESIGN.md §8) — same distribution, ~25% smaller tables,
// different (equally valid) sampled bits.
//
// Memory governance (DESIGN.md §8): per-pair caches are charged against
// PlannerOptions::cache_budget_bytes in a size-aware LRU (util/lru.hpp).
// After every query the pair's charge is settled from its actual
// retained bytes (instance mask + certificate + pooled paths) and the
// coldest pairs are evicted — their pooled state is released via the
// swap idiom so capacity really returns to the allocator. Re-planning an
// evicted pair rebuilds bit-identical state from the counter-derived
// streams, so eviction is purely a memory/latency trade, never a
// correctness one.
//
// Determinism: all randomness derives from PlannerOptions::base_seed via
// per-(s,t) seed derivation (derive_pool_seed / derive_pmax_seed);
// sample #i of a pair's pool (and of its DKLR estimate) draws from its
// own counter-derived stream (util/rng.hpp: stream_sample_seed), so pool
// growth continues the stream exactly and bulk sampling is bit-identical
// at every thread count. Hence results depend only on (graph, options,
// query) — never on query order, interleaving, or thread count — and
// plan_batch is bit-identical to sequential plan calls. plan_batch fans
// queries across a fixed-size util::ThreadPool; queries on the same pair
// serialize on the pair cache, while their bulk sampling fans out over a
// second, dedicated pool.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/maximizer.hpp"
#include "core/raf.hpp"
#include "diffusion/index_replicas.hpp"
#include "diffusion/invitation.hpp"
#include "diffusion/sampling_index.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "util/deadline.hpp"
#include "util/lru.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace af {

namespace storage {
class MappedDataset;
}

/// Problem 1 (RAF): the smallest invitation set reaching α·p_max.
/// A trimmed RafConfig: p*max estimation and V_max are planner-level
/// (cached per pair), so their knobs live in PlannerOptions.
struct MinimizeSpec {
  /// Quality target α ∈ (0,1].
  double alpha = 0.1;
  /// Slack ε ∈ (0, α): the guarantee becomes f(I*) ≥ (α−ε)·p_max.
  double epsilon = 0.005;
  /// Confidence parameter N > 2: success probability ≥ 1 − 2/N.
  double big_n = 100'000.0;
  /// ε0/ε1 coupling policy (DESIGN.md §4.4).
  Eps0Policy policy = Eps0Policy::kBalanced;
  /// Hard cap on l (0 = no cap — will faithfully attempt l*).
  std::uint64_t max_realizations = 200'000;
  /// MpU solver for the covering step.
  CoverSolverKind solver = CoverSolverKind::kGreedy;
  /// Run the local-search shrink pass after the solver.
  bool local_search = true;

  /// Memberwise equality — the coalescing key for plan_async (two queued
  /// queries on the same pair with equal modes share one execution).
  friend bool operator==(const MinimizeSpec&, const MinimizeSpec&) = default;
};

/// Budgeted extension: maximize f(I) subject to |I| ≤ budget.
struct MaximizeSpec {
  /// Invitation budget k ≥ 1 (must include room for t itself).
  std::size_t budget = 10;
  /// Realizations read from the pair's pool to build the path family.
  std::uint64_t realizations = 50'000;

  /// Memberwise equality — the coalescing key for plan_async.
  friend bool operator==(const MaximizeSpec&, const MaximizeSpec&) = default;
};

/// One query: the (s,t) pair plus the problem mode, and — for the serving
/// path — scheduling metadata. Scheduling fields never influence the
/// *answer* (that is a pure function of graph/options/s/t/mode under the
/// counter-stream contract); they only decide whether and when the query
/// runs.
struct QuerySpec {
  NodeId s = 0;
  NodeId t = 0;
  std::variant<MinimizeSpec, MaximizeSpec> mode = MinimizeSpec{};

  /// Absolute completion deadline. A query whose deadline has passed
  /// short-circuits to kDeadlineExceeded before any engine or sampler
  /// work (and before a pair cache is even created). max() = none.
  /// plan_async additionally applies PlannerOptions::default_deadline at
  /// admission when this is left at max().
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  /// Dequeue priority for plan_async: higher runs sooner; ties dequeue by
  /// earlier deadline, then admission order. Ignored by plan/plan_batch.
  std::int32_t priority = 0;
};

/// Structured outcome classification; kOk is the only success.
enum class PlanStatus {
  /// The query produced an invitation set meeting its contract.
  kOk,
  /// The spec's parameters are out of range (message says which).
  kInvalidSpec,
  /// The (s,t) pair is out of range, s = t, or already friends.
  kInvalidPair,
  /// V_max is empty: p_max = 0, certified — no strategy can succeed.
  kTargetUnreachable,
  /// p_max is positive (or unknown) but below the sampling caps; the
  /// empty result is a capped best effort, not a certificate.
  kPmaxBelowDetection,
  /// An engine violated a contract; message carries the exception text.
  kInternalError,
  /// Allocation failed and the shed-and-retry-once ladder (DESIGN.md
  /// §13) could not recover: the pair caches were dropped and the query
  /// re-run, and the retry failed too. Also used for injected transient
  /// execution faults; the async layer retries these with capped
  /// backoff (PlannerOptions::async_transient_retries) before a caller
  /// ever sees one.
  kResourceExhausted,
  /// plan_async only: the admission queue was full — structured
  /// backpressure, returned immediately (the submission never blocks and
  /// no work was done). Resubmit later or shed load upstream.
  kOverloaded,
  /// The query's deadline passed before it ran; it was short-circuited
  /// without touching the samplers or creating a pair cache.
  kDeadlineExceeded,
  /// plan_async only: the planner was destroyed before this query ran.
  /// Every outstanding future resolves with this — none dangle.
  kShutdown,
};

/// Short stable name ("ok", "invalid-spec", …) for logs and tables.
const char* to_string(PlanStatus status);

/// Per-stage wall-clock and cache diagnostics for one query.
struct StageTimings {
  double vmax_seconds = 0.0;
  double pmax_seconds = 0.0;
  /// Growing the realization pool (0 when fully served from cache).
  double sample_seconds = 0.0;
  /// The covering / greedy-selection stage.
  double solve_seconds = 0.0;
  /// True when the stage was served from the pair cache.
  bool vmax_cache_hit = false;
  bool pmax_cache_hit = false;
  /// Pool samples reused vs newly drawn for this query.
  std::uint64_t pool_reused = 0;
  std::uint64_t pool_sampled = 0;
  /// plan_async only: admission → dequeue wait in the admission queue.
  double queue_seconds = 0.0;
  /// plan_async only: admission → promise fulfilment, i.e. the end-to-end
  /// latency the submitter observes (stamped by the serving worker, so
  /// load harnesses need no completion-side clock of their own).
  double async_seconds = 0.0;
};

/// Result of one query: status + invitation set + diagnostics.
struct PlanResult {
  PlanStatus status = PlanStatus::kInternalError;
  /// Human-readable detail for non-kOk statuses.
  std::string message;
  InvitationSet invitation{0};
  /// Pipeline diagnostics (minimize mode fills all fields; maximize mode
  /// fills vmax_size, l_used and type1_count).
  RafDiagnostics diag;
  /// Maximize mode: in-sample coverage estimate of f(I).
  double sample_coverage = 0.0;
  StageTimings timings;

  bool ok() const { return status == PlanStatus::kOk; }
};

/// Planner-wide knobs, fixed at construction.
struct PlannerOptions {
  /// Root of every derived per-pair stream; same base seed ⟹ bit-identical
  /// results for the same (graph, query), in any order, on any thread.
  std::uint64_t base_seed = 20190707;
  /// Worker threads for plan_batch (0 = hardware concurrency).
  std::size_t threads = 0;
  /// DKLR tolerance for the cached per-pair p*max estimate.
  double pmax_epsilon = 0.05;
  /// DKLR failure probability δ for the cached estimate.
  double pmax_delta = 1e-5;
  /// Hard cap on DKLR draws per pair.
  std::uint64_t pmax_max_samples = 2'000'000;
  /// Byte budget for the per-pair cache pool (0 = unbounded). When set,
  /// the coldest pairs are evicted after each query until the accounted
  /// footprint (Σ charged bytes over retained pairs) fits the budget;
  /// re-planning an evicted pair is bit-identical, it just pays its
  /// sampling cost again (DESIGN.md §8).
  std::uint64_t cache_budget_bytes = 0;
  /// Use the float32 CompactSamplingIndex (12 bytes/slot) instead of the
  /// exact-threshold SamplingIndex (16 bytes/slot). Same distribution —
  /// the chi-square gate passes for both — but the two indices consume
  /// rng words differently, so results are deterministic per option set,
  /// not across it.
  bool compact_index = false;
  /// Batched-selection kernel level for the index (DESIGN.md §9).
  /// kAuto resolves once at construction by a measured tournament over
  /// every compiled-and-supported kernel in the portfolio (scalar, AVX2,
  /// AVX-512, NEON); a concrete value (kScalar/kAvx2/kAvx512/kNeon)
  /// forces that leg, degrading down its ISA family if unavailable.
  /// Every level is bit-identical, so this knob trades only throughput.
  SimdLevel simd = SimdLevel::kAuto;
  /// Replicate the selection index once per NUMA node (first-touch on a
  /// pinned builder thread) and pin sampling workers across nodes so
  /// every shard walks node-local tables. A no-op — exactly one replica,
  /// no pinning — on single-node hosts, when topology discovery fails,
  /// or under AF_NUMA=off; bit-identical everywhere (the counter-stream
  /// contract makes placement invisible to results).
  bool numa_replicate = true;
  /// Serving workers draining the plan_async admission queue (0 = the
  /// resolved `threads` count). Started lazily on the first plan_async.
  std::size_t async_workers = 0;
  /// Capacity of the plan_async admission queue. When it is full,
  /// plan_async resolves immediately with kOverloaded — admission never
  /// blocks, so the queue bound IS the overload policy (DESIGN.md §10).
  std::size_t async_queue_depth = 1024;
  /// Deadline applied at admission to plan_async queries that carry none
  /// of their own (QuerySpec::deadline == max()). Zero = no default:
  /// deadline-less queries never expire.
  std::chrono::nanoseconds default_deadline{0};
  /// Serving-worker retries for a query that comes back
  /// kResourceExhausted (a transient fault): the worker re-runs it up to
  /// this many extra times with capped exponential backoff (1ms, 2ms, …
  /// ≤ 8ms), respecting the query's deadline, before fulfilling the
  /// future with the failure. Retries never change answer bits — a
  /// re-run draws from the same counter-derived streams. 0 disables.
  std::size_t async_transient_retries = 2;
};

/// Telemetry snapshot of the planner's memory governor (DESIGN.md §8).
struct PlannerCacheStats {
  /// Pairs currently retained.
  std::size_t entries = 0;
  /// Accounted footprint: Σ charged bytes over retained pairs.
  std::uint64_t charged_bytes = 0;
  /// The configured budget (0 = unbounded).
  std::uint64_t budget_bytes = 0;
  /// Pairs evicted by the governor since construction.
  std::uint64_t evictions = 0;
  /// Resident size of the shared selection index.
  std::uint64_t index_bytes = 0;
  /// Alias slots in the shared selection index.
  std::uint64_t index_slots = 0;
  /// Per-slot struct footprint (12 for the compact index, 16 otherwise;
  /// CSR offsets are counted in index_bytes, not here) — the figure the
  /// perf trajectory records against the ROADMAP ≤ 12 target.
  double index_bytes_per_slot = 0.0;
  /// Physical copies of the index (= replicated NUMA nodes; 1 on
  /// single-node hosts or with numa_replicate off). index_bytes counts
  /// ONE copy; total resident index memory is index_bytes × replicas.
  std::size_t index_replicas = 0;
  /// The batched-kernel level the index dispatches to — a concrete
  /// portfolio level (kScalar, kAvx2, kAvx512 or kNeon, DESIGN.md §9):
  /// the kAuto tournament's winner, or the forced leg after family
  /// degradation.
  SimdLevel index_simd = SimdLevel::kScalar;
  /// True when this planner serves prebuilt tables from an mmap-ed .af1
  /// container (Planner::from_mapped) instead of building them.
  bool mapped = false;
  /// Wall-clock spent constructing the selection index replicas at
  /// planner construction. Exactly 0 on the mapped path — the acceptance
  /// check that no alias-table construction happens before the first
  /// query (DESIGN.md §11).
  double index_build_seconds = 0.0;
  /// True when an alias-table build failed at construction and the
  /// planner degraded to the O(deg)-per-step ScanSelectionSampler
  /// (DESIGN.md §13). Answers remain correct but consume rng words
  /// differently from the alias index — a degraded planner is
  /// deterministic against a degraded oracle, not an alias-index one.
  bool degraded_scan_index = false;
  /// NUMA replica builds that failed at construction; each failed node
  /// shares the first healthy replica instead (replica→shared rung of
  /// the degradation ladder) — bit-identical, remote-access latency.
  std::size_t replica_build_failures = 0;
};

/// Telemetry snapshot of the async serving layer (DESIGN.md §10). All
/// counters are cumulative since construction; every submitted query is
/// accounted exactly once as completed, rejected_overloaded,
/// expired_deadline, resolved_shutdown, or coalesced (or is still queued
/// / in flight).
struct ServingStats {
  /// plan_async calls accepted into the admission queue.
  std::uint64_t submitted = 0;
  /// Queries that ran to a PlanResult (any status plan() can produce).
  std::uint64_t completed = 0;
  /// Admissions refused because the queue was at capacity (kOverloaded).
  std::uint64_t rejected_overloaded = 0;
  /// Queries whose deadline passed before they ran (kDeadlineExceeded).
  std::uint64_t expired_deadline = 0;
  /// Queued duplicates served from another query's execution: same
  /// (s,t) pair, equal mode — each saved a full pipeline run.
  std::uint64_t coalesced = 0;
  /// Futures resolved with kShutdown at destruction.
  std::uint64_t resolved_shutdown = 0;
  /// Serving-worker re-runs of queries that came back kResourceExhausted
  /// (transient faults absorbed by the capped-backoff retry ladder,
  /// PlannerOptions::async_transient_retries).
  std::uint64_t transient_retries = 0;
  /// Shed-and-retry-once events: an allocation failed mid-query, the
  /// pair caches were dropped, and the query was re-run (DESIGN.md §13).
  /// Counts plan()/plan_batch() queries too, not just serving traffic.
  std::uint64_t shed_retries = 0;
  /// Queries that returned kResourceExhausted — the shed retry (and, on
  /// the serving path, the worker retries) failed to recover.
  std::uint64_t resource_exhausted = 0;
  /// Queries cancelled cooperatively mid-flight: the deadline passed
  /// between sampling blocks and the query yielded kDeadlineExceeded
  /// instead of running to a useless completion. Disjoint from
  /// expired_deadline (which counts queries that never started).
  std::uint64_t expired_mid_flight = 0;
  /// Tasks admitted but not yet dequeued, at snapshot time.
  std::size_t queued = 0;
  /// Serving workers (0 until the first plan_async starts them).
  std::size_t workers = 0;
  /// The configured admission-queue capacity.
  std::size_t queue_depth = 0;
};

/// The facade. Thread-safe: plan() may be called concurrently (that is
/// exactly what plan_batch does). Holds a reference to the graph; the
/// graph must outlive the planner and stay unmodified.
///
/// Memory: with cache_budget_bytes == 0 each queried (s,t) pair retains
/// its cache entry — including the pooled type-1 backward paths — for
/// the planner's lifetime, so a long-lived planner serving many distinct
/// pairs grows without bound unless clear_caches() is called at the
/// caller's eviction policy. Set cache_budget_bytes to make the planner
/// govern itself: the size-aware LRU keeps the accounted footprint
/// (cache_stats().charged_bytes) at or below the budget after every
/// query.
class Planner {
 public:
  explicit Planner(const Graph& graph, PlannerOptions options = {});

  /// The cold-start path (DESIGN.md §11): serves an mmap-ed .af1
  /// container's graph and PREBUILT index tables — no alias-table
  /// construction happens (cache_stats().index_build_seconds == 0).
  /// With numa_replicate on a multi-node host, each node gets a
  /// first-touch COPY of the mapped tables (paying a read-once copy for
  /// node-local steady-state latency); otherwise sampling reads the map
  /// directly, zero-copy, and the OS pages the cold tail. Answers are
  /// bit-identical to a Planner built over the equivalent in-RAM graph:
  /// the container stores the exact table bytes an in-RAM build
  /// produces, and the counter-stream contract does the rest. Throws
  /// storage::Af1Error when the container lacks the index flavor
  /// `options.compact_index` selects. `mapped` must outlive the planner.
  Planner(const storage::MappedDataset& mapped, PlannerOptions options = {});

  /// Convenience factory for the mapped path (Planner is neither movable
  /// nor copyable).
  static std::unique_ptr<Planner> from_mapped(
      const storage::MappedDataset& mapped, PlannerOptions options = {});

  ~Planner();

  Planner(const Planner&) = delete;
  Planner& operator=(const Planner&) = delete;

  const Graph& graph() const { return *graph_; }
  const PlannerOptions& options() const { return options_; }

  /// Answers one query. Never throws for bad input — returns kInvalidSpec
  /// / kInvalidPair with a message instead.
  PlanResult plan(const QuerySpec& query) AF_EXCLUDES(mu_);

  /// Answers independent queries concurrently on the planner's thread
  /// pool; results are positionally aligned with `queries` and
  /// bit-identical to sequential plan() calls.
  std::vector<PlanResult> plan_batch(std::span<const QuerySpec> queries)
      AF_EXCLUDES(mu_);

  /// The serving path (DESIGN.md §10): submits `query` to the bounded
  /// admission queue and returns a future for its result. Never blocks:
  /// a full queue resolves the future immediately with kOverloaded.
  /// Serving workers dequeue by (priority desc, deadline asc, admission
  /// order), short-circuit expired queries to kDeadlineExceeded without
  /// touching the samplers, and coalesce queued duplicates (same pair,
  /// equal mode) into one execution. Answers are bit-identical to
  /// sequential plan() calls for the same spec — arrival order,
  /// interleaving, coalescing and worker count are invisible to results.
  /// Every returned future resolves, even if the planner is destroyed
  /// first (then with kShutdown).
  std::future<PlanResult> plan_async(QuerySpec query) AF_EXCLUDES(mu_);

  /// Cumulative serving-layer counters (admissions, rejections, expiries,
  /// coalesced executions) and the current queue/worker configuration.
  ServingStats serving_stats() const AF_EXCLUDES(mu_);

  /// Drops every per-pair cache entry, releasing its memory. Safe to
  /// call concurrently with plan(): in-flight queries keep their entry
  /// alive (shared ownership), but the entry's pooled storage is
  /// released via the swap idiom under the pair lock, so capacity
  /// returns to the allocator even while holders remain — a holder that
  /// finishes later just finds an empty pool. Later queries rebuild from
  /// the same derived seeds, so results are unchanged — only the cached
  /// work is paid again.
  void clear_caches() AF_EXCLUDES(mu_);

  /// Snapshot of the memory governor's accounting (entries, charged
  /// bytes, evictions) and the shared index footprint.
  PlannerCacheStats cache_stats() const AF_EXCLUDES(mu_);

  /// Spec-only validation (the API-boundary check): the message that a
  /// plan() on this spec would return with kInvalidSpec, if any.
  static std::optional<std::string> validate(const QuerySpec& query);

  /// The derived seeds behind a pair's realization pool / p*max estimate
  /// (the seeding contract, exposed for tests and reproducibility).
  static std::uint64_t derive_pool_seed(std::uint64_t base_seed, NodeId s,
                                        NodeId t);
  static std::uint64_t derive_pmax_seed(std::uint64_t base_seed, NodeId s,
                                        NodeId t);

 private:
  struct PairCache;
  struct AsyncServer;

  /// Packs (s,t) into the 64-bit pair key. NodeId must fit 32 bits.
  static std::uint64_t pair_key(NodeId s, NodeId t);

  /// Shared constructor tail: snapshots the primary replica's footprint
  /// and kernel level into the cache_stats fields.
  void finish_index_stats();

  /// Lazily starts the admission queue + serving workers (first
  /// plan_async) and returns the server. Workers call plan(), so the
  /// server must stop before any other member is torn down.
  AsyncServer& server() AF_EXCLUDES(mu_);
  /// Serving-worker body: pop → expiry check → coalesce → plan → fulfil.
  void serve_loop() AF_EXCLUDES(mu_);

  std::shared_ptr<PairCache> cache_for(NodeId s, NodeId t) AF_EXCLUDES(mu_);
  /// Re-states the pair's charge from its actual retained bytes and
  /// evicts the coldest pairs until the accounted total fits the budget.
  /// Called after every query that touched a pair cache.
  void settle_cache_charge(std::uint64_t key,
                           const std::shared_ptr<PairCache>& cache)
      AF_EXCLUDES(mu_);
  /// Releases a pair's pooled storage (swap idiom) and resets its
  /// memoized stages under the pair lock. The immutable instance is left
  /// intact: in-flight holders may still read it.
  static void release_pair_storage(PairCache& cache);
  /// One execution of a validated query against its pair cache: mode
  /// dispatch plus the structured-error mapping (DeadlineExceededError →
  /// kDeadlineExceeded, any other engine exception → kInternalError).
  /// std::bad_alloc escapes — plan()'s shed-and-retry ladder owns it.
  PlanResult plan_attempt(const QuerySpec& query, PairCache& cache);
  PlanResult plan_minimize(PairCache& cache, const MinimizeSpec& spec,
                           Deadline deadline);
  PlanResult plan_maximize(PairCache& cache, const MaximizeSpec& spec,
                           Deadline deadline);
  /// Stages shared by both modes, run under the pair lock: V_max
  /// certificate and (minimize only) the cached p*max. Returns a non-ok
  /// result to propagate, or nullopt to continue.
  std::optional<PlanResult> ensure_vmax(PairCache& cache, PlanResult& out);
  void ensure_pmax(PairCache& cache, PlanResult& out, Deadline deadline);
  /// Grows the pair's pool to ≥ l samples and builds the family of
  /// type-1 paths among the first l. Growth is chunked with a
  /// cooperative deadline check between chunks (bit-identical to one
  /// bulk call — each sample's stream depends only on its index).
  SetFamily pooled_family(PairCache& cache, std::uint64_t l,
                          PlanResult& out, Deadline deadline);

  /// The worker pool that bulk sampling (pool growth, the DKLR loop)
  /// fans out over. Distinct from the query pool `pool_`: query workers
  /// block on sampling futures, so serving both job kinds from one pool
  /// could deadlock with every worker waiting on a queued shard.
  ThreadPool* sample_pool() AF_EXCLUDES(mu_);

  const Graph* graph_;
  PlannerOptions options_;
  /// Per-node alias tables (DESIGN.md §7) — SamplingIndex or, with
  /// options_.compact_index, CompactSamplingIndex — replicated once per
  /// NUMA node when options_.numa_replicate finds more than one
  /// (DESIGN.md §9). The tables depend only on the graph's in-weights,
  /// so any replica serves every pair cache and worker thread;
  /// immutable after construction, shared without locks. Bulk sampling
  /// resolves a node-local replica per shard; sequential paths read
  /// replicas_->primary().
  std::unique_ptr<const IndexReplicas> replicas_;
  std::uint64_t index_bytes_ = 0;
  std::uint64_t index_slots_ = 0;
  double index_bytes_per_slot_ = 0.0;
  SimdLevel index_simd_ = SimdLevel::kScalar;
  /// True on the from_mapped path: the index tables came prebuilt from
  /// an .af1 container (cache_stats().mapped).
  bool mapped_ = false;
  /// Construction-time cost of building the index replicas (0 when
  /// mapped — the tables were adopted, not built).
  double index_build_seconds_ = 0.0;
  /// Set by the construction-time factory when an alias-table build
  /// failed and the planner fell back to the ScanSelectionSampler
  /// (atomic: replica factories run concurrently across NUMA nodes).
  std::atomic<bool> degraded_scan_index_{false};
  // Failure-path telemetry behind serving_stats() (relaxed atomics —
  // counters, ordered by nothing). Planner-level, not AsyncServer-level:
  // shed retries and mid-flight expiries happen inside plan(), which
  // plan_batch and bare plan() calls reach without a server.
  std::atomic<std::uint64_t> shed_retries_{0};
  std::atomic<std::uint64_t> resource_exhausted_{0};
  std::atomic<std::uint64_t> expired_mid_flight_{0};
  /// Guards the pair-cache LRU and the lazily created pools/server.
  /// Lock order (DESIGN.md §12): a PairCache::mu may be held when
  /// acquiring mu_ (pooled_family → sample_pool()); the reverse —
  /// taking a pair lock while holding mu_ — is forbidden, except for a
  /// freshly constructed, not-yet-published PairCache (provably
  /// uncontended, cache_for documents the one site).
  mutable Mutex mu_;
  /// Size-aware LRU over the pair caches (DESIGN.md §8). Values are
  /// shared_ptrs: eviction unlinks an entry, but in-flight queries keep
  /// the PairCache object alive until they finish; release_pair_storage
  /// frees the expensive pooled state immediately regardless.
  SizedLru<std::uint64_t, std::shared_ptr<PairCache>> cache_
      AF_GUARDED_BY(mu_);
  std::unique_ptr<ThreadPool> pool_ AF_GUARDED_BY(mu_);
  std::unique_ptr<ThreadPool> sample_pool_ AF_GUARDED_BY(mu_);
  /// The plan_async admission queue + serving workers (created lazily
  /// under mu_; the AsyncServer object itself is internally synchronized
  /// — locked queue, atomic counters). Declared last and additionally
  /// shut down explicitly at the top of ~Planner: its workers run
  /// plan(), which reaches every member above — they must be joined
  /// while those members are alive.
  std::unique_ptr<AsyncServer> server_ AF_GUARDED_BY(mu_);
};

}  // namespace af
