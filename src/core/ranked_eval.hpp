// Ranked-prefix acceptance curves.
//
// The Fig. 4/5 protocol ("run HD and continuously increase the size of
// the invitation set until the acceptance probability reaches f(I_RAF)")
// asks for f(I_k) over the nested family I_1 ⊂ I_2 ⊂ … induced by a
// strategy's ranking. Evaluating each budget with an independent
// Monte-Carlo run costs samples × budgets; this module computes the
// whole curve from ONE sampling pass:
//
//   For each sampled type-1 backward path t(ĝ), the smallest prefix that
//   covers it is k(ĝ) = 1 + max over v ∈ t(ĝ) of rank(v) (∞ when some
//   node is outside the ranking). Then
//     f(I_k) = Pr[ĝ type-1 ∧ k(ĝ) ≤ k],
//   a cumulative histogram over the sampled k(ĝ) values — every budget
//   answered from the same samples, exactly and consistently (the curve
//   is monotone by construction, which per-budget MC runs cannot
//   guarantee).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/baselines.hpp"
#include "diffusion/instance.hpp"
#include "util/rng.hpp"

namespace af {

/// A monotone acceptance-probability curve over ranking prefixes.
class RankedCurve {
 public:
  /// f(I_k): acceptance probability of the first-k prefix. Monotone
  /// non-decreasing in k; k ≥ ranking size gives the ranking's ceiling.
  double f_at(std::size_t k) const;

  /// Smallest k with f(I_k) ≥ target, or nullopt if the whole ranking
  /// stays below it.
  std::optional<std::size_t> size_to_reach(double target) const;

  /// The probability ceiling: f at the full ranking.
  double ceiling() const;

  /// Number of Monte-Carlo samples behind the curve.
  std::uint64_t samples() const { return samples_; }

 private:
  friend RankedCurve evaluate_ranked_prefixes(const FriendingInstance&,
                                              const InvitationRanking&,
                                              std::uint64_t, Rng&);

  // cum_[i] = number of sampled paths with k(ĝ) ≤ needs_[i] — compressed
  // cumulative histogram over distinct need values, ascending.
  std::vector<std::size_t> needs_;
  std::vector<std::uint64_t> cum_;
  std::uint64_t samples_ = 0;
};

/// Builds the curve with `samples` reverse-sampling draws.
RankedCurve evaluate_ranked_prefixes(const FriendingInstance& inst,
                                     const InvitationRanking& ranking,
                                     std::uint64_t samples, Rng& rng);

}  // namespace af
