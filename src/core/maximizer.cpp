#include "core/maximizer.hpp"

#include <queue>

#include "core/raf.hpp"
#include "cover/setfamily.hpp"
#include "util/contracts.hpp"

namespace af {

MaximizerResult maximize_friending(const FriendingInstance& inst,
                                   const MaximizerConfig& cfg, Rng& rng) {
  AF_EXPECTS(cfg.budget >= 1, "budget must be positive");
  AF_EXPECTS(cfg.realizations >= 1, "need at least one realization");

  return maximize_with_family(inst,
                              sample_type1_family(inst, cfg.realizations, rng),
                              cfg.realizations, cfg.budget);
}

MaximizerResult maximize_with_family(const FriendingInstance& inst,
                                     const SetFamily& family,
                                     std::uint64_t realizations,
                                     std::size_t budget) {
  AF_EXPECTS(budget >= 1, "budget must be positive");
  AF_EXPECTS(realizations >= 1, "need at least one realization");

  MaximizerResult out{InvitationSet(inst.graph().num_nodes()), 0.0, 0};
  out.type1_count = family.total_multiplicity();
  if (out.type1_count == 0) return out;

  const auto ns = static_cast<std::uint32_t>(family.num_sets());
  std::vector<std::uint32_t> marginal(ns);
  for (std::uint32_t i = 0; i < ns; ++i) {
    marginal[i] = static_cast<std::uint32_t>(family.elements(i).size());
  }

  struct Entry {
    double key;  // marginal / multiplicity — cheapest completion first
    std::uint32_t marginal_at_push;
    std::uint32_t set;
    bool operator>(const Entry& o) const {
      if (key != o.key) return key > o.key;
      return set > o.set;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  auto key_of = [&](std::uint32_t i) {
    return static_cast<double>(marginal[i]) /
           static_cast<double>(family.multiplicity(i));
  };
  for (std::uint32_t i = 0; i < ns; ++i) {
    heap.push(Entry{key_of(i), marginal[i], i});
  }

  std::uint64_t covered_mult = 0;
  std::size_t budget_left = budget;
  while (!heap.empty() && budget_left > 0) {
    const Entry e = heap.top();
    heap.pop();
    if (e.marginal_at_push != marginal[e.set]) continue;  // stale
    if (marginal[e.set] == 0) continue;  // covered already (for free)
    if (marginal[e.set] > budget_left) continue;  // unaffordable now;
    // affordable again only if its marginal shrinks, which re-pushes it.

    for (NodeId v : family.elements(e.set)) {
      if (out.invitation.contains(v)) continue;
      out.invitation.add(v);
      AF_ENSURES(budget_left > 0, "budget accounting broke");
      --budget_left;
      for (std::uint32_t j : family.sets_containing(v)) {
        if (marginal[j] == 0) continue;
        if (--marginal[j] == 0) {
          covered_mult += family.multiplicity(j);
        } else {
          heap.push(Entry{key_of(j), marginal[j], j});
        }
      }
    }
  }

  out.sample_coverage = static_cast<double>(covered_mult) /
                        static_cast<double>(realizations);
  return out;
}

}  // namespace af
