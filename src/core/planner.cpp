#include "core/planner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>
#include <type_traits>
#include <utility>

#include "core/vmax.hpp"
#include "diffusion/bulk_sampler.hpp"
#include "diffusion/dklr.hpp"
#include "diffusion/instance.hpp"
#include "diffusion/path_arena.hpp"
#include "diffusion/realization.hpp"
#include "storage/mapped_dataset.hpp"
#include "util/deadline.hpp"
#include "util/failpoint.hpp"
#include "util/mpmc_queue.hpp"
#include "util/numa.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace af {

namespace {

std::uint64_t mix64(std::uint64_t x) { return SplitMix64(x).next(); }

/// One-way combine of (base, s, t, stream) into a seed. Stream constants
/// keep the pool and the p*max estimator on independent streams.
std::uint64_t derive_seed(std::uint64_t base, NodeId s, NodeId t,
                          std::uint64_t stream) {
  std::uint64_t h = mix64(base ^ 0x6a09e667f3bcc909ULL);
  h = mix64(h ^ (static_cast<std::uint64_t>(s) + 0x9e3779b97f4a7c15ULL));
  h = mix64(h ^ (static_cast<std::uint64_t>(t) + 0xbf58476d1ce4e5b9ULL));
  return mix64(h ^ stream);
}

constexpr std::uint64_t kPoolStream = 0x706f6f6cULL;  // "pool"
constexpr std::uint64_t kPmaxStream = 0x706d6178ULL;  // "pmax"

}  // namespace

const char* to_string(PlanStatus status) {
  switch (status) {
    case PlanStatus::kOk: return "ok";
    case PlanStatus::kInvalidSpec: return "invalid-spec";
    case PlanStatus::kInvalidPair: return "invalid-pair";
    case PlanStatus::kTargetUnreachable: return "target-unreachable";
    case PlanStatus::kPmaxBelowDetection: return "pmax-below-detection";
    case PlanStatus::kInternalError: return "internal-error";
    case PlanStatus::kResourceExhausted: return "resource-exhausted";
    case PlanStatus::kOverloaded: return "overloaded";
    case PlanStatus::kDeadlineExceeded: return "deadline-exceeded";
    case PlanStatus::kShutdown: return "shutdown";
  }
  return "?";
}

/// Everything the planner remembers about one (s,t) pair. All fields are
/// guarded by `mu`; the instance itself is immutable after construction.
struct Planner::PairCache {
  PairCache(const Graph& g, NodeId s, NodeId t, std::uint64_t pool_seed)
      : inst(g, s, t), stream_root(Rng(pool_seed).next_u64()) {}

  FriendingInstance inst;
  Mutex mu;

  /// V_max (empty = target unreachable, certified). nullopt = not yet run.
  std::optional<std::vector<NodeId>> vmax AF_GUARDED_BY(mu);
  /// Cached DKLR estimate at the planner's tolerance.
  std::optional<DklrResult> pmax AF_GUARDED_BY(mu);

  /// Realization pool: the pair's deterministic sample stream. Sample #i
  /// draws from its own counter-derived Rng (stream_sample_seed(
  /// stream_root, i)), so it is the same no matter which query, thread,
  /// or growth step produced it — and matches the engine-level
  /// sample_type1_family seeded from Rng(pool_seed) exactly. Only type-1
  /// backward paths are materialized, packed into a flat arena;
  /// type1_pos[k] is the stream index of arena path k.
  const std::uint64_t stream_root;
  std::uint64_t pool_drawn AF_GUARDED_BY(mu) = 0;
  std::vector<std::uint64_t> type1_pos AF_GUARDED_BY(mu);
  PathArena type1_paths AF_GUARDED_BY(mu);

  /// The governor's cost functional (DESIGN.md §8): bytes this entry
  /// actually retains — the instance's n-sized N_s mask, the V_max
  /// certificate, the pooled arena (capacity, not payload) and the
  /// struct itself plus a small allowance for the memoized DKLR record
  /// and heap block headers. Caller holds `mu`.
  std::size_t charged_bytes() const AF_REQUIRES(mu) {
    constexpr std::size_t kFixedOverhead = 256;
    return sizeof(PairCache) + kFixedOverhead + inst.memory_bytes() +
           (vmax ? vmax->capacity() * sizeof(NodeId) : 0) +
           type1_pos.capacity() * sizeof(std::uint64_t) +
           type1_paths.memory_bytes();
  }
};

/// The plan_async serving layer (DESIGN.md §10): a bounded,
/// priority/deadline-ordered admission queue drained by dedicated worker
/// threads. Workers run Planner::plan(), so the whole struct is torn down
/// (queue drained, workers joined) at the *top* of ~Planner, while every
/// other member is still alive.
struct Planner::AsyncServer {
  using Clock = std::chrono::steady_clock;

  /// One admitted query: the spec, its promise, and the scheduling
  /// metadata the queue orders by. The effective deadline is resolved at
  /// admission (spec deadline, else options.default_deadline, else none)
  /// so dequeue ordering needs no clock or options access.
  struct Task {
    QuerySpec spec;
    std::promise<PlanResult> promise;
    Clock::time_point submitted{};
    Clock::time_point deadline = Clock::time_point::max();
    std::uint64_t seq = 0;
  };
  using TaskPtr = std::unique_ptr<Task>;

  /// Dequeue order: higher priority first, then earlier deadline, then
  /// admission order. The seq tiebreak makes the order total, so two
  /// runs that admit the same set of tasks dequeue them identically.
  struct Order {
    bool operator()(const TaskPtr& a, const TaskPtr& b) const {
      if (a->spec.priority != b->spec.priority) {
        return a->spec.priority > b->spec.priority;
      }
      if (a->deadline != b->deadline) return a->deadline < b->deadline;
      return a->seq < b->seq;
    }
  };

  explicit AsyncServer(std::size_t depth) : queue(depth) {}

  MpmcQueue<TaskPtr, Order> queue;
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> next_seq{0};

  // Cumulative counters behind serving_stats(). Relaxed atomics: they
  // are telemetry, ordered by nothing.
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> rejected_overloaded{0};
  std::atomic<std::uint64_t> expired_deadline{0};
  std::atomic<std::uint64_t> coalesced{0};
  std::atomic<std::uint64_t> resolved_shutdown{0};
  std::atomic<std::uint64_t> transient_retries{0};

  /// Stamps the async timing fields and fulfils one task's promise.
  static void fulfil(Task& task, PlanResult result,
                     Clock::time_point dequeued) {
    const Clock::time_point now = Clock::now();
    result.timings.queue_seconds =
        std::chrono::duration<double>(dequeued - task.submitted).count();
    result.timings.async_seconds =
        std::chrono::duration<double>(now - task.submitted).count();
    task.promise.set_value(std::move(result));
  }
};

Planner::Planner(const Graph& graph, PlannerOptions options)
    : graph_(&graph),
      options_(options),
      cache_(options.cache_budget_bytes) {
  // One index build per replicated NUMA node, each first-touched on a
  // pinned builder thread (diffusion/index_replicas). The factory runs
  // concurrently across nodes; it only reads the const graph.
  WallTimer timer;
  const IndexReplicas::Factory factory =
      [this]() -> std::unique_ptr<const SelectionSampler> {
    try {
      if (options_.compact_index) {
        return std::make_unique<const CompactSamplingIndex>(*graph_,
                                                            options_.simd);
      }
      return std::make_unique<const SamplingIndex>(*graph_, options_.simd);
    } catch (const std::bad_alloc&) {
      // alias→scan rung of the degradation ladder (DESIGN.md §13): the
      // alias tables would not fit, so serve O(deg)-per-step scans over
      // the CSR the graph already holds. Correct answers, different rng
      // consumption — cache_stats().degraded_scan_index tells oracles
      // which stream family to compare against.
      degraded_scan_index_.store(true, std::memory_order_relaxed);
      return std::make_unique<const ScanSelectionSampler>(*graph_);
    }
  };
  if (options_.numa_replicate) {
    replicas_ = std::make_unique<const IndexReplicas>(factory);
  } else {
    replicas_ = std::make_unique<const IndexReplicas>(factory());
  }
  index_build_seconds_ = timer.elapsed_seconds();
  finish_index_stats();
}

Planner::Planner(const storage::MappedDataset& mapped, PlannerOptions options)
    : graph_(&mapped.graph()),
      options_(options),
      mapped_(true),
      cache_(options.cache_budget_bytes) {
  // Adopt the container's prebuilt tables — no alias construction on
  // this path, by contract (index_build_seconds_ stays 0). On a
  // replicated multi-node host each pinned factory call COPIES the
  // mapped tables (first touch places the copy node-locally); otherwise
  // one zero-copy view over the map serves everyone and the OS pages the
  // cold tail on demand.
  if (options_.numa_replicate && numa_available()) {
    const IndexReplicas::Factory factory =
        [this, &mapped]() -> std::unique_ptr<const SelectionSampler> {
      return mapped.make_index(options_.compact_index, options_.simd,
                               /*copy=*/true);
    };
    replicas_ = std::make_unique<const IndexReplicas>(factory);
  } else {
    replicas_ = std::make_unique<const IndexReplicas>(
        mapped.make_index(options_.compact_index, options_.simd,
                          /*copy=*/false));
  }
  finish_index_stats();
}

std::unique_ptr<Planner> Planner::from_mapped(
    const storage::MappedDataset& mapped, PlannerOptions options) {
  return std::make_unique<Planner>(mapped, options);
}

void Planner::finish_index_stats() {
  const SelectionSampler& primary = replicas_->primary();
  index_bytes_ = primary.memory_bytes();
  index_slots_ = primary.num_slots();
  index_bytes_per_slot_ =
      degraded_scan_index_.load(std::memory_order_relaxed)
          ? 0.0  // no alias tables exist on the scan-fallback path
          : (options_.compact_index ? CompactSamplingIndex::bytes_per_slot()
                                    : SamplingIndex::bytes_per_slot());
  index_simd_ = replicas_->simd_level();
}

Planner::~Planner() {
  // Serving shutdown, before any member dies (workers run plan(), which
  // reaches the caches, the index replicas and the lazy pools):
  //  1. drain the admission queue — closes it and removes every task not
  //     yet dequeued, so workers finish only what they already hold;
  //  2. resolve the drained tasks with kShutdown (no future ever
  //     dangles);
  //  3. join the workers — in-flight queries run to completion and
  //     fulfil their futures normally.
  // Snapshot under mu_ (uncontended by contract: the caller owns the
  // planner, so no plan_async can race the destructor) — keeps every
  // server_ access inside the annotated discipline instead of relying on
  // an unguarded read plus a prose happens-before argument.
  AsyncServer* srv = nullptr;
  {
    MutexLock lock(mu_);
    srv = server_.get();
  }
  if (srv != nullptr) {
    std::vector<AsyncServer::TaskPtr> undequeued;
    srv->queue.drain(undequeued);
    const auto now = AsyncServer::Clock::now();
    for (AsyncServer::TaskPtr& task : undequeued) {
      PlanResult r;
      r.status = PlanStatus::kShutdown;
      r.message = "planner destroyed before the query ran";
      AsyncServer::fulfil(*task, std::move(r), now);
    }
    srv->resolved_shutdown.fetch_add(undequeued.size(),
                                     std::memory_order_relaxed);
    // Joining outside mu_ is essential: the workers run plan(), which
    // takes mu_ for cache and pool access.
    for (std::thread& w : srv->workers) w.join();
  }
}

Planner::AsyncServer& Planner::server() {
  MutexLock lock(mu_);
  if (!server_) {
    server_ = std::make_unique<AsyncServer>(options_.async_queue_depth);
    std::size_t workers = options_.async_workers;
    if (workers == 0) workers = options_.threads;
    if (workers == 0) {
      workers = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
    }
    server_->workers.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      // server_ is fully constructed before the first spawn, and thread
      // creation happens-before the worker body: serve_loop may read
      // server_ without mu_.
      server_->workers.emplace_back([this] { serve_loop(); });
    }
  }
  return *server_;
}

std::future<PlanResult> Planner::plan_async(QuerySpec query) {
  AsyncServer& srv = server();
  const auto now = AsyncServer::Clock::now();
  auto task = std::make_unique<AsyncServer::Task>();
  task->spec = std::move(query);
  task->submitted = now;
  task->deadline = task->spec.deadline;
  if (task->deadline == AsyncServer::Clock::time_point::max() &&
      options_.default_deadline.count() > 0) {
    task->deadline = now + options_.default_deadline;
  }
  task->seq = srv.next_seq.fetch_add(1, std::memory_order_relaxed);
  std::future<PlanResult> future = task->promise.get_future();
  if (srv.queue.try_push(std::move(task))) {
    srv.submitted.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Structured backpressure: the queue bound was hit (or the planner is
    // shutting down and the queue is closed). try_push left the task with
    // us, so resolve its future right here — admission never blocks and
    // never loses a future.
    srv.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
    PlanResult r;
    r.status = PlanStatus::kOverloaded;
    r.message = "admission queue full (depth " +
                std::to_string(srv.queue.capacity()) +
                "): resubmit later or shed load";
    AsyncServer::fulfil(*task, std::move(r), now);
  }
  return future;
}

void Planner::serve_loop() {
  AsyncServer* srv_ptr = nullptr;
  {
    // Always populated: server() assigns server_ and spawns this worker
    // in the same mu_ critical section, so the lookup cannot miss. The
    // brief lock (once per worker lifetime) keeps the access guarded.
    MutexLock lock(mu_);
    srv_ptr = server_.get();
  }
  AsyncServer& srv = *srv_ptr;
  AsyncServer::TaskPtr task;
  std::vector<AsyncServer::TaskPtr> duplicates;
  while (srv.queue.pop(task)) {
    const auto dequeued = AsyncServer::Clock::now();
    if (dequeued >= task->deadline) {
      // Expired while queued: short-circuit before any engine or sampler
      // work — and before a pair cache exists for the pair (plan() is
      // never entered, cache_stats().entries does not grow).
      srv.expired_deadline.fetch_add(1, std::memory_order_relaxed);
      PlanResult r;
      r.status = PlanStatus::kDeadlineExceeded;
      r.message = "deadline passed while queued";
      AsyncServer::fulfil(*task, std::move(r), dequeued);
      continue;
    }
    // Pair-affinity coalescing: claim every queued duplicate — same
    // (s,t), equal mode — and serve them all from this one execution.
    // Scheduling metadata may differ (a duplicate only gets its answer
    // sooner than its own slot would have given it); the answer itself is
    // spec-determined, so one result fits all.
    duplicates.clear();
    srv.queue.extract_if(
        [&](const AsyncServer::TaskPtr& other) {
          return other->spec.s == task->spec.s &&
                 other->spec.t == task->spec.t &&
                 other->spec.mode == task->spec.mode;
        },
        duplicates);
    // Transient-fault retry with capped backoff (DESIGN.md §13): a query
    // that comes back kResourceExhausted — a worker-level injected fault
    // or an allocation failure the shed ladder could not absorb — is
    // re-run up to async_transient_retries times before its future sees
    // the failure. Safe to repeat: a re-run reads the same counter-
    // derived streams, so a retry that succeeds is bit-identical to a
    // first try that succeeded.
    PlanResult result;
    for (std::size_t attempt = 0;; ++attempt) {
      if (AF_FAILPOINT_FIRED("server.worker_exec")) {
        result = PlanResult{};
        result.status = PlanStatus::kResourceExhausted;
        result.message = "injected transient worker fault";
      } else {
        result = plan(task->spec);
      }
      if (result.status != PlanStatus::kResourceExhausted ||
          attempt >= options_.async_transient_retries) {
        break;
      }
      if (deadline_passed(task->deadline)) {
        result = PlanResult{};
        result.status = PlanStatus::kDeadlineExceeded;
        result.message = "deadline passed during transient-fault retry";
        break;
      }
      srv.transient_retries.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<std::int64_t>(std::int64_t{1} << attempt, 8)));
    }
    srv.completed.fetch_add(1, std::memory_order_relaxed);
    srv.coalesced.fetch_add(duplicates.size(), std::memory_order_relaxed);
    for (AsyncServer::TaskPtr& dup : duplicates) {
      AsyncServer::fulfil(*dup, result, dequeued);
    }
    AsyncServer::fulfil(*task, std::move(result), dequeued);
  }
}

ServingStats Planner::serving_stats() const {
  ServingStats out;
  out.queue_depth = options_.async_queue_depth;
  // Planner-level failure counters first: they advance via bare plan()
  // and plan_batch() too, so they are reported even before (or without)
  // a server existing.
  out.shed_retries = shed_retries_.load(std::memory_order_relaxed);
  out.resource_exhausted =
      resource_exhausted_.load(std::memory_order_relaxed);
  out.expired_mid_flight =
      expired_mid_flight_.load(std::memory_order_relaxed);
  MutexLock lock(mu_);
  if (!server_) return out;
  out.submitted = server_->submitted.load(std::memory_order_relaxed);
  out.completed = server_->completed.load(std::memory_order_relaxed);
  out.rejected_overloaded =
      server_->rejected_overloaded.load(std::memory_order_relaxed);
  out.expired_deadline =
      server_->expired_deadline.load(std::memory_order_relaxed);
  out.coalesced = server_->coalesced.load(std::memory_order_relaxed);
  out.resolved_shutdown =
      server_->resolved_shutdown.load(std::memory_order_relaxed);
  out.transient_retries =
      server_->transient_retries.load(std::memory_order_relaxed);
  out.queued = server_->queue.size();
  out.workers = server_->workers.size();
  return out;
}

std::uint64_t Planner::derive_pool_seed(std::uint64_t base_seed, NodeId s,
                                        NodeId t) {
  return derive_seed(base_seed, s, t, kPoolStream);
}

std::uint64_t Planner::derive_pmax_seed(std::uint64_t base_seed, NodeId s,
                                        NodeId t) {
  return derive_seed(base_seed, s, t, kPmaxStream);
}

std::optional<std::string> Planner::validate(const QuerySpec& query) {
  if (const auto* min = std::get_if<MinimizeSpec>(&query.mode)) {
    if (!(min->alpha > 0.0 && min->alpha <= 1.0)) {
      return "alpha must lie in (0,1]";
    }
    if (!(min->epsilon > 0.0 && min->epsilon < min->alpha)) {
      return "epsilon must lie in (0, alpha)";
    }
    if (!(min->big_n > 2.0)) {
      return "N must exceed 2 (success probability is 1 - 2/N)";
    }
    return std::nullopt;
  }
  const auto& max = std::get<MaximizeSpec>(query.mode);
  if (max.budget == 0) return "budget must be positive";
  if (max.realizations == 0) return "realizations must be positive";
  return std::nullopt;
}

void Planner::release_pair_storage(PairCache& cache)
    AF_EXCLUDES(cache.mu) {
  MutexLock lock(cache.mu);
  cache.vmax.reset();
  cache.pmax.reset();
  cache.pool_drawn = 0;
  // Swap idiom, not clear(): clear() keeps vector capacity, which is
  // exactly the memory an eviction must give back.
  cache.type1_paths.release();
  std::vector<std::uint64_t>().swap(cache.type1_pos);
}

void Planner::clear_caches() {
  // Ownership rule: the map holds one shared_ptr per pair; every
  // in-flight query holds another. Dropping the map entries alone would
  // leave in-flight holders keeping fully-grown arenas alive (with their
  // capacity) until they finish, so the pooled storage is additionally
  // released via swap under each pair's lock. Unlink under mu_, release
  // outside it: taking a pair lock while holding mu_ could deadlock
  // against a query that holds its pair lock and asks mu_ for the
  // sample pool.
  std::vector<std::shared_ptr<PairCache>> dropped;
  {
    MutexLock lock(mu_);
    cache_.take_all(dropped);
  }
  for (const auto& cache : dropped) release_pair_storage(*cache);
}

PlannerCacheStats Planner::cache_stats() const {
  PlannerCacheStats out;
  {
    MutexLock lock(mu_);
    out.entries = cache_.size();
    out.charged_bytes = cache_.charged();
    out.budget_bytes = cache_.budget();
    out.evictions = cache_.evictions();
  }
  out.index_bytes = index_bytes_;
  out.index_slots = index_slots_;
  out.index_bytes_per_slot = index_bytes_per_slot_;
  out.index_replicas = replicas_->count();
  out.index_simd = index_simd_;
  out.mapped = mapped_;
  out.index_build_seconds = index_build_seconds_;
  out.degraded_scan_index =
      degraded_scan_index_.load(std::memory_order_relaxed);
  out.replica_build_failures = replicas_->build_failures();
  return out;
}

std::uint64_t Planner::pair_key(NodeId s, NodeId t) {
  // The key packs (s, t) into one 64-bit word. If NodeId ever widens
  // past 32 bits this must become a proper hash or a wider key — fail
  // the build rather than silently colliding distinct pairs.
  static_assert(sizeof(NodeId) <= 4,
                "pair_key packs two NodeIds into 64 bits");
  return (static_cast<std::uint64_t>(s) << 32) |
         (static_cast<std::uint64_t>(t) & 0xffffffffULL);
}

std::shared_ptr<Planner::PairCache> Planner::cache_for(NodeId s, NodeId t) {
  const std::uint64_t key = pair_key(s, t);
  std::shared_ptr<PairCache> out;
  std::vector<std::shared_ptr<PairCache>> victims;
  {
    MutexLock lock(mu_);
    if (auto* hit = cache_.find(key)) {
      out = *hit;
    } else {
      AF_FAILPOINT_ALLOC("planner.pair_alloc");
      out = std::make_shared<PairCache>(
          *graph_, s, t, derive_pool_seed(options_.base_seed, s, t));
      // Escape hatch (DESIGN.md §12, unpublished-object pattern): the
      // fresh pair is not yet visible to any other thread, so reading
      // its charge needs no pair lock — and taking one here would
      // invert the pair.mu → mu_ order (plan_minimize holds pair.mu
      // when ensure_pmax calls sample_pool(), which takes mu_), which
      // TSan rightly reports as a potential-deadlock cycle.
      const std::size_t initial_charge =
          [&]() AF_NO_THREAD_SAFETY_ANALYSIS {
            return out->charged_bytes();
          }();
      cache_.insert(key, out, initial_charge);
      cache_.evict_over_budget(victims);
    }
  }
  for (const auto& victim : victims) {
    if (victim != out) release_pair_storage(*victim);
  }
  return out;
}

void Planner::settle_cache_charge(std::uint64_t key,
                                  const std::shared_ptr<PairCache>& cache) {
  std::size_t bytes = 0;
  {
    MutexLock lock(cache->mu);
    bytes = cache->charged_bytes();
  }
  std::vector<std::shared_ptr<PairCache>> victims;
  {
    MutexLock lock(mu_);
    // The pair may have been evicted while this query was in flight —
    // and possibly re-created by a concurrent query. Only settle the
    // entry this query actually used: an evicted pair's state dies with
    // its last holder, never re-admitted here (the next cache_for()
    // rebuilds it deterministically), and a re-created entry settles
    // itself after its own query.
    const auto* current = cache_.find(key);
    if (current == nullptr || *current != cache) return;
    cache_.charge(key, bytes);
    cache_.evict_over_budget(victims);
  }
  for (const auto& victim : victims) {
    // The query's own pair can be the victim (a budget smaller than one
    // pair's pool): it was already unlinked above, so releasing its
    // storage now is safe — the caller is done with it.
    release_pair_storage(*victim);
  }
}

PlanResult Planner::plan(const QuerySpec& query) {
  PlanResult out;
  if (query.deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= query.deadline) {
    // Same semantics on every entry point: an expired query is refused
    // before any validation, engine, or sampler work — and before a pair
    // cache is created. (plan_async additionally catches expiry at
    // dequeue, so a queued-past-its-deadline query never reaches here.)
    out.status = PlanStatus::kDeadlineExceeded;
    out.message = "deadline already passed";
    return out;
  }
  if (auto error = validate(query)) {
    out.status = PlanStatus::kInvalidSpec;
    out.message = *error;
    return out;
  }
  if (query.s >= graph_->num_nodes() || query.t >= graph_->num_nodes()) {
    out.status = PlanStatus::kInvalidPair;
    out.message = "node id out of range";
    return out;
  }
  if (query.s == query.t) {
    out.status = PlanStatus::kInvalidPair;
    out.message = "initiator and target must differ";
    return out;
  }
  if (graph_->has_edge(query.s, query.t)) {
    out.status = PlanStatus::kInvalidPair;
    out.message = "target is already a friend of the initiator";
    return out;
  }

  // Shed-and-retry-once ladder (DESIGN.md §13): an allocation failure —
  // real OOM or an armed planner.pair_alloc / planner.pool_grow /
  // index failpoint — sheds every pair cache (the biggest reclaimable
  // footprint the planner owns) and re-runs the query once. The re-run
  // rebuilds from the same counter-derived streams, so a recovered
  // retry is bit-identical to an untroubled run. A second failure is
  // surfaced as structured kResourceExhausted, never an escaped throw.
  for (int attempt = 0;; ++attempt) {
    try {
      const std::shared_ptr<PairCache> cache = cache_for(query.s, query.t);
      out = plan_attempt(query, *cache);
      // Settle the pair's charge from what it retains now (the pool may
      // have grown) and let the governor evict the coldest pairs.
      settle_cache_charge(pair_key(query.s, query.t), cache);
      return out;
    } catch (const std::bad_alloc&) {
      if (attempt == 0) {
        shed_retries_.fetch_add(1, std::memory_order_relaxed);
        clear_caches();
        continue;
      }
      resource_exhausted_.fetch_add(1, std::memory_order_relaxed);
      out = PlanResult{};
      out.status = PlanStatus::kResourceExhausted;
      out.message = "allocation failed; shedding the pair caches and "
                    "retrying once did not recover";
      return out;
    }
  }
}

PlanResult Planner::plan_attempt(const QuerySpec& query, PairCache& cache) {
  PlanResult out;
  if (AF_FAILPOINT_FIRED("planner.exec_transient")) {
    // Models a transient execution fault (the kind the serving layer's
    // capped-backoff retry absorbs) without involving the allocator.
    out.status = PlanStatus::kResourceExhausted;
    out.message = "injected transient execution fault";
    return out;
  }
  try {
    if (const auto* min = std::get_if<MinimizeSpec>(&query.mode)) {
      out = plan_minimize(cache, *min, query.deadline);
    } else {
      out = plan_maximize(cache, std::get<MaximizeSpec>(query.mode),
                          query.deadline);
    }
  } catch (const DeadlineExceededError&) {
    // Cooperative mid-flight cancellation: a sampling stage noticed the
    // deadline between blocks and unwound. The pair keeps whatever pool
    // it had grown (the partial stream is a valid prefix).
    expired_mid_flight_.fetch_add(1, std::memory_order_relaxed);
    out = PlanResult{};
    out.status = PlanStatus::kDeadlineExceeded;
    out.message = "deadline passed mid-flight (cancelled between "
                  "sampling blocks)";
  } catch (const std::bad_alloc&) {
    throw;  // plan()'s shed-and-retry ladder owns allocation failures
  } catch (const std::exception& e) {
    out = PlanResult{};
    out.status = PlanStatus::kInternalError;
    out.message = e.what();
  }
  return out;
}

std::vector<PlanResult> Planner::plan_batch(
    std::span<const QuerySpec> queries) {
  std::vector<PlanResult> results;
  results.reserve(queries.size());
  if (queries.size() <= 1) {
    for (const QuerySpec& q : queries) results.push_back(plan(q));
    return results;
  }
  ThreadPool* pool = nullptr;
  {
    MutexLock lock(mu_);
    if (!pool_) pool_ = std::make_unique<ThreadPool>(options_.threads);
    // Snapshot the pointer under the lock; the pool object itself is
    // internally synchronized and lives until ~Planner.
    pool = pool_.get();
  }
  std::vector<std::future<PlanResult>> futures;
  futures.reserve(queries.size());
  for (const QuerySpec& q : queries) {
    const QuerySpec* query = &q;  // span outlives the batch
    futures.push_back(pool->submit([this, query] { return plan(*query); }));
  }
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

std::optional<PlanResult> Planner::ensure_vmax(PairCache& cache,
                                               PlanResult& out)
    AF_REQUIRES(cache.mu) {
  if (cache.vmax) {
    out.timings.vmax_cache_hit = true;
  } else {
    WallTimer timer;
    cache.vmax = compute_vmax(cache.inst);
    out.timings.vmax_seconds = timer.elapsed_seconds();
  }
  out.diag.vmax_size = cache.vmax->size();
  if (cache.vmax->empty()) {
    out.status = PlanStatus::kTargetUnreachable;
    out.message = "V_max is empty: the target is unreachable from the "
                  "initiator's friends (p_max = 0)";
    out.diag.target_unreachable = true;
    return out;
  }
  return std::nullopt;
}

ThreadPool* Planner::sample_pool() {
  MutexLock lock(mu_);
  if (!sample_pool_) {
    // With replicated indexes, pin sampling workers round-robin across
    // nodes so every shard's local() resolution stays local for the
    // shard's whole run (DESIGN.md §9).
    sample_pool_ = std::make_unique<ThreadPool>(
        options_.threads, ThreadPoolOptions{.pin_numa = replicas_->count() > 1});
  }
  return sample_pool_.get();
}

void Planner::ensure_pmax(PairCache& cache, PlanResult& out,
                          Deadline deadline) AF_REQUIRES(cache.mu) {
  if (cache.pmax) {
    out.timings.pmax_cache_hit = true;
  } else {
    WallTimer timer;
    DklrConfig cfg;
    cfg.epsilon = options_.pmax_epsilon;
    cfg.delta = options_.pmax_delta;
    cfg.max_samples = options_.pmax_max_samples;
    cfg.deadline = deadline;
    Rng rng(derive_pmax_seed(options_.base_seed, cache.inst.initiator(),
                             cache.inst.target()));
    cache.pmax = estimate_pmax_dklr(cache.inst, *replicas_, rng, cfg,
                                    sample_pool());
    out.timings.pmax_seconds = timer.elapsed_seconds();
  }
  out.diag.pmax = *cache.pmax;
}

SetFamily Planner::pooled_family(PairCache& cache, std::uint64_t l,
                                 PlanResult& out, Deadline deadline)
    AF_REQUIRES(cache.mu) {
  if (cache.pool_drawn < l) {
    WallTimer timer;
    out.timings.pool_reused = cache.pool_drawn;
    out.timings.pool_sampled = l - cache.pool_drawn;
    // Chunked growth with a cooperative deadline check between chunks,
    // so an expired query stops within one chunk's work instead of
    // completing a multi-second bulk draw nobody waits for. Chunking is
    // invisible to results: sample #i draws from stream_sample_seed(
    // stream_root, i) whether it arrives in one call or many, and an
    // abandoned partial pool is a valid stream prefix the next query
    // extends. 64Ki samples keeps per-chunk fan-out wide enough that
    // the sample pool's shards stay saturated.
    constexpr std::uint64_t kGrowthChunk = 64 * 1024;
    while (cache.pool_drawn < l) {
      check_deadline(deadline);
      AF_FAILPOINT_ALLOC("planner.pool_grow");
      const std::uint64_t want =
          std::min<std::uint64_t>(kGrowthChunk, l - cache.pool_drawn);
      const BulkType1Paths grown =
          sample_type1_bulk(cache.inst, *replicas_, cache.pool_drawn, want,
                            cache.stream_root, sample_pool());
      cache.type1_paths.append(grown.paths);
      cache.type1_pos.insert(cache.type1_pos.end(), grown.positions.begin(),
                             grown.positions.end());
      cache.pool_drawn += want;
    }
    out.timings.sample_seconds = timer.elapsed_seconds();
  } else {
    out.timings.pool_reused = l;
  }

  SetFamily family(graph_->num_nodes());
  for (std::size_t k = 0;
       k < cache.type1_pos.size() && cache.type1_pos[k] < l; ++k) {
    family.add_set(cache.type1_paths[k]);
  }
  return family;
}

PlanResult Planner::plan_minimize(PairCache& cache, const MinimizeSpec& spec,
                                  Deadline deadline) {
  PlanResult out;
  ReleasableMutexLock lock(cache.mu);
  if (auto terminal = ensure_vmax(cache, out)) return *terminal;
  ensure_pmax(cache, out, deadline);
  if (out.diag.pmax.estimate <= 0.0) {
    // Reachability was certified by V_max above, so a zero estimate only
    // means p_max sits below the planner's sampling caps.
    out.status = PlanStatus::kPmaxBelowDetection;
    out.message = "p*max estimate is 0 within the sampling caps";
    out.diag.pmax_below_detection = true;
    return out;
  }

  RafConfig cfg;
  cfg.alpha = spec.alpha;
  cfg.epsilon = spec.epsilon;
  cfg.big_n = spec.big_n;
  cfg.policy = spec.policy;
  cfg.max_realizations = spec.max_realizations;
  cfg.pmax_max_samples = options_.pmax_max_samples;
  cfg.solver = spec.solver;
  cfg.local_search = spec.local_search;
  cfg.use_vmax_in_l = true;  // the planner always certifies via V_max
  const RafAlgorithm engine(cfg);

  // The engine owns the parameter/budget derivation; the pool supplies
  // the family (and drops the pair lock once it has been read, so the
  // covering step runs outside it).
  WallTimer timer;
  RafResult res = engine.run_with_pmax_source(
      cache.inst, out.diag.pmax.estimate, cache.vmax->size(),
      // Escape hatch (DESIGN.md §12): the engine invokes this callback
      // exactly once, synchronously, while plan_minimize still holds
      // cache.mu — so pooled_family's REQUIRES holds and the early
      // unlock() hands the covering step its lock-free run. The
      // intraprocedural analysis cannot see a capability held across a
      // lambda boundary, hence the waiver.
      [&](std::uint64_t l) AF_NO_THREAD_SAFETY_ANALYSIS {
        SetFamily family = pooled_family(cache, l, out, deadline);
        lock.unlock();
        return family;
      });
  out.timings.solve_seconds =
      timer.elapsed_seconds() - out.timings.sample_seconds;

  const StageTimings timings = out.timings;
  const DklrResult pmax = out.diag.pmax;
  out.invitation = std::move(res.invitation);
  out.diag = res.diag;
  out.diag.pmax = pmax;  // keep the full cached DKLR record
  out.timings = timings;

  if (out.diag.type1_count == 0) {
    out.status = PlanStatus::kPmaxBelowDetection;
    out.message = "no type-1 realization among the pooled samples";
    out.diag.pmax_below_detection = true;
    return out;
  }
  out.status = PlanStatus::kOk;
  return out;
}

PlanResult Planner::plan_maximize(PairCache& cache, const MaximizeSpec& spec,
                                  Deadline deadline) {
  PlanResult out;
  ReleasableMutexLock lock(cache.mu);
  if (auto terminal = ensure_vmax(cache, out)) return *terminal;
  const SetFamily family =
      pooled_family(cache, spec.realizations, out, deadline);
  lock.unlock();

  WallTimer timer;
  MaximizerResult res =
      maximize_with_family(cache.inst, family, spec.realizations,
                           spec.budget);
  out.timings.solve_seconds = timer.elapsed_seconds();

  out.invitation = std::move(res.invitation);
  out.sample_coverage = res.sample_coverage;
  out.diag.type1_count = res.type1_count;
  out.diag.l_used = spec.realizations;
  if (out.diag.type1_count == 0) {
    out.status = PlanStatus::kPmaxBelowDetection;
    out.message = "no type-1 realization among the pooled samples";
    out.diag.pmax_below_detection = true;
    return out;
  }
  out.status = PlanStatus::kOk;
  return out;
}

}  // namespace af
