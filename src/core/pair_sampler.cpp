#include "core/pair_sampler.hpp"

#include "diffusion/montecarlo.hpp"
#include "diffusion/sampling_index.hpp"
#include "util/contracts.hpp"

namespace af {

namespace {

/// Collects nodes at BFS hop distance in [2, max_dist] from s.
std::vector<NodeId> candidate_targets(const Graph& g, NodeId s,
                                      std::uint32_t max_dist) {
  std::vector<std::uint32_t> dist(g.num_nodes(), 0xffffffffu);
  std::vector<NodeId> frontier{s};
  dist[s] = 0;
  std::vector<NodeId> out;
  std::uint32_t level = 0;
  std::vector<NodeId> next;
  while (!frontier.empty() && level < max_dist) {
    ++level;
    next.clear();
    for (NodeId v : frontier) {
      for (NodeId u : g.neighbors(v)) {
        if (dist[u] != 0xffffffffu) continue;
        dist[u] = level;
        next.push_back(u);
        if (level >= 2) out.push_back(u);
      }
    }
    frontier.swap(next);
  }
  return out;
}

/// One acceptance attempt loop over a prebuilt alias index: the index is
/// graph-wide (O(n + m) to build), so sharing it across the attempt loop
/// — and across every pair of a sample_pairs batch — keeps an attempt's
/// cost at its `estimate_samples` short walks.
std::optional<SampledPair> sample_pair_indexed(const Graph& g,
                                               const SamplingIndex& index,
                                               const PairSamplerConfig& cfg,
                                               Rng& rng) {
  for (std::uint64_t attempt = 0; attempt < cfg.max_attempts; ++attempt) {
    const auto s =
        static_cast<NodeId>(rng.uniform_int(std::uint64_t{g.num_nodes()}));
    if (g.degree(s) == 0) continue;
    const auto targets = candidate_targets(g, s, cfg.max_distance);
    if (targets.empty()) continue;
    const NodeId t = targets[rng.uniform_int(targets.size())];

    const FriendingInstance inst(g, s, t);
    MonteCarloEvaluator mc(inst, index);
    const Proportion est = mc.estimate_pmax(cfg.estimate_samples, rng);
    if (est.estimate() >= cfg.pmax_threshold &&
        est.estimate() <= cfg.pmax_upper) {
      return SampledPair{s, t, est.estimate()};
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<SampledPair> sample_pair(const Graph& g,
                                       const PairSamplerConfig& cfg,
                                       Rng& rng) {
  AF_EXPECTS(g.num_nodes() >= 3, "graph too small for pair sampling");
  const SamplingIndex index(g);
  return sample_pair_indexed(g, index, cfg, rng);
}

std::vector<SampledPair> sample_pairs(const Graph& g, std::size_t count,
                                      const PairSamplerConfig& cfg,
                                      Rng& rng) {
  AF_EXPECTS(g.num_nodes() >= 3, "graph too small for pair sampling");
  const SamplingIndex index(g);
  std::vector<SampledPair> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto pair = sample_pair_indexed(g, index, cfg, rng);
    if (!pair) break;
    out.push_back(*pair);
  }
  return out;
}

}  // namespace af
