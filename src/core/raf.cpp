#include "core/raf.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/vmax.hpp"
#include "cover/setfamily.hpp"
#include "diffusion/bulk_sampler.hpp"
#include "diffusion/sampling_index.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

namespace af {

RafAlgorithm::RafAlgorithm(RafConfig cfg) : cfg_(cfg) {
  AF_EXPECTS(cfg_.alpha > 0.0 && cfg_.alpha <= 1.0, "α must lie in (0,1]");
  AF_EXPECTS(cfg_.epsilon > 0.0 && cfg_.epsilon < cfg_.alpha,
             "ε must lie in (0,α)");
  // N ≤ 2 makes the success probability 1 − 2/N vacuous.
  AF_EXPECTS(cfg_.big_n > 2.0, "N must exceed 2");
}

std::uint64_t RafAlgorithm::capped_realizations(double l_star) const {
  const auto l_theory =
      static_cast<std::uint64_t>(std::min(l_star, 9.0e18));
  const std::uint64_t l = cfg_.max_realizations == 0
                              ? l_theory
                              : std::min(cfg_.max_realizations, l_theory);
  return std::max<std::uint64_t>(l, 1);
}

const MpuSolver& RafAlgorithm::solver() const {
  switch (cfg_.solver) {
    case CoverSolverKind::kGreedy: return greedy_;
    case CoverSolverKind::kDensest: return densest_;
    case CoverSolverKind::kSmallestSets: return smallest_;
    case CoverSolverKind::kExact: return exact_;
  }
  return greedy_;
}

namespace {

/// Transient-pool threshold for the engine-level entry points (which own
/// no pool): spawning hardware threads costs milliseconds, so only fan
/// out when the sampling window dwarfs that. Distinct from
/// bulk_sampler's kMinParallelSamples, which gates sharding on an
/// already-running pool; mid-sized windows below this still get the
/// alias + interleaved-lane speedups, just single-threaded.
constexpr std::uint64_t kTransientPoolSamples = 32'768;

/// sample_type1_family over a shared index, with the transient-pool
/// policy applied. The per-sample streams make the result identical at
/// any pool size.
SetFamily engine_family(const FriendingInstance& inst,
                        const SamplingIndex& index, std::uint64_t l,
                        Rng& rng) {
  std::unique_ptr<ThreadPool> pool;
  if (l >= kTransientPoolSamples) pool = std::make_unique<ThreadPool>();
  return sample_type1_family(inst, index, l, rng, pool.get());
}

}  // namespace

SetFamily sample_type1_family(const FriendingInstance& inst,
                              const SelectionSampler& sel, std::uint64_t l,
                              Rng& rng, ThreadPool* pool) {
  const BulkType1Paths bulk =
      sample_type1_bulk(inst, sel, 0, l, rng.next_u64(), pool);
  SetFamily family(inst.graph().num_nodes());
  for (std::size_t k = 0; k < bulk.paths.size(); ++k) {
    family.add_set(bulk.paths[k]);
  }
  return family;
}

SetFamily sample_type1_family(const FriendingInstance& inst, std::uint64_t l,
                              Rng& rng) {
  const SamplingIndex index(inst.graph());
  return engine_family(inst, index, l, rng);
}

RafResult RafAlgorithm::run_framework(const FriendingInstance& inst,
                                      double beta, std::uint64_t l,
                                      Rng& rng) const {
  AF_EXPECTS(beta > 0.0 && beta <= 1.0, "β must lie in (0,1]");
  AF_EXPECTS(l >= 1, "need at least one realization");

  // Alg. 3 line 2: draw l realizations, keep the type-1 backward paths.
  return run_covering(inst, sample_type1_family(inst, l, rng), beta, l);
}

RafResult RafAlgorithm::run_covering(const FriendingInstance& inst,
                                     const SetFamily& family, double beta,
                                     std::uint64_t l_used) const {
  AF_EXPECTS(beta > 0.0 && beta <= 1.0, "β must lie in (0,1]");
  AF_EXPECTS(l_used >= 1, "need at least one realization");

  RafResult out{InvitationSet(inst.graph().num_nodes()), {}};
  out.diag.l_used = l_used;
  out.diag.type1_count = family.total_multiplicity();
  if (out.diag.type1_count == 0) {
    // No covered realization exists in the sample; the empty set already
    // attains F(B_l, ∅) = 0 ≥ β·0.
    return out;
  }

  // Alg. 3 line 3: MSC with target ⌈β·|B_l^1|⌉.
  const auto target = static_cast<std::uint64_t>(std::min<double>(
      static_cast<double>(out.diag.type1_count),
      std::ceil(beta * static_cast<double>(out.diag.type1_count))));
  out.diag.coverage_target = std::max<std::uint64_t>(target, 1);

  MpuResult cover = solve_msc(family, out.diag.coverage_target, solver());
  if (cfg_.local_search) {
    cover = refine_local_search(family, out.diag.coverage_target,
                                std::move(cover));
  }
  out.diag.covered = cover.covered;
  for (NodeId v : cover.union_elements) out.invitation.add(v);
  AF_ENSURES(out.invitation.contains(inst.target()),
             "t must be in every covering invitation set");
  return out;
}

RafResult RafAlgorithm::run_with_pmax_source(const FriendingInstance& inst,
                                             double pmax_estimate,
                                             std::size_t vmax_size,
                                             const FamilySource& source) const {
  AF_EXPECTS(pmax_estimate > 0.0 && pmax_estimate <= 1.0,
             "p*max estimate must lie in (0,1]");

  RafResult out{InvitationSet(inst.graph().num_nodes()), {}};
  out.diag.vmax_size = vmax_size;
  const std::uint64_t n_eff =
      (cfg_.use_vmax_in_l && vmax_size > 0)
          ? vmax_size
          : inst.graph().num_nodes();

  out.diag.params =
      solve_equation_system(cfg_.alpha, cfg_.epsilon, cfg_.policy, n_eff);
  out.diag.pmax.estimate = pmax_estimate;
  out.diag.pmax.converged = true;  // caller-supplied; trusted

  out.diag.l_star = required_realizations(out.diag.params, n_eff, cfg_.big_n,
                                          pmax_estimate);
  const std::uint64_t l = capped_realizations(out.diag.l_star);
  if (static_cast<double>(l) < out.diag.l_star) {
    log_debug() << "RAF: capping l* = " << out.diag.l_star << " to " << l;
  }

  const SetFamily family = source(l);
  RafResult framework = run_covering(inst, family, out.diag.params.beta, l);
  framework.diag.params = out.diag.params;
  framework.diag.pmax = out.diag.pmax;
  framework.diag.l_star = out.diag.l_star;
  framework.diag.vmax_size = vmax_size;
  return framework;
}

RafResult RafAlgorithm::run_with_pmax(const FriendingInstance& inst,
                                      double pmax_estimate,
                                      std::size_t vmax_size,
                                      Rng& rng) const {
  const SamplingIndex index(inst.graph());
  return run_with_pmax_source(inst, pmax_estimate, vmax_size,
                              [&](std::uint64_t l) {
                                return engine_family(inst, index, l, rng);
                              });
}

RafResult RafAlgorithm::run(const FriendingInstance& inst, Rng& rng) const {
  RafResult out{InvitationSet(inst.graph().num_nodes()), {}};

  // Sec. III-C: |V_max| both bounds the universe in Eq. (16) and gives a
  // certificate for p_max = 0 (empty V_max ⟺ t unreachable from N_s).
  std::vector<NodeId> vmax;
  if (cfg_.use_vmax_in_l) {
    vmax = compute_vmax(inst);
    out.diag.vmax_size = vmax.size();
    if (vmax.empty()) {
      out.diag.target_unreachable = true;
      return out;
    }
  }
  const std::uint64_t n_eff =
      cfg_.use_vmax_in_l ? vmax.size() : inst.graph().num_nodes();

  // Step 1: parameters (Eq. 17 / Equation System 1).
  out.diag.params =
      solve_equation_system(cfg_.alpha, cfg_.epsilon, cfg_.policy, n_eff);

  // One alias index serves both sampling stages of this run.
  const SamplingIndex index(inst.graph());

  // Step 2: p*max by the stopping rule with ε0 and δ = 1/N (Lemma 3).
  DklrConfig dklr;
  dklr.epsilon = out.diag.params.eps0;
  dklr.delta = 1.0 / cfg_.big_n;
  dklr.max_samples = cfg_.pmax_max_samples;
  out.diag.pmax = estimate_pmax_dklr(inst, index, rng, dklr);
  if (out.diag.pmax.estimate <= 0.0) {
    // Reachability was certified by V_max (when enabled), so a zero
    // estimate only means p_max sits below the sampling caps.
    // Unreachability is only ever claimed from the V_max certificate
    // above; an undetectably small p_max is not the same thing.
    out.diag.pmax_below_detection = true;
    return out;
  }

  // Steps 3–4: budget derivation + the covering framework (Alg. 3),
  // shared with the other entry points via run_with_pmax_source.
  RafResult framework = run_with_pmax_source(
      inst, out.diag.pmax.estimate, cfg_.use_vmax_in_l ? vmax.size() : 0,
      [&](std::uint64_t l) { return engine_family(inst, index, l, rng); });
  framework.diag.pmax = out.diag.pmax;  // keep the full DKLR record
  return framework;
}

}  // namespace af
