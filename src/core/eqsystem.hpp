// Equation System 1 (Eqs. 10–13) and the parameter policy of Eq. (17).
//
// Given the quality target α and slack ε, RAF needs three coupled
// parameters:
//   ε0 — relative error of the p_max estimate (Eq. 10, via DKLR)
//   ε1 — uniform relative deviation of F(B_l, I)/l from f(I) (Eq. 11)
//   β  — the coverage fraction handed to the MSC step (Eq. 12)
// subject to the closing constraint (13):
//   β·(1 − ε1(1+ε0)) − ε1(1+ε0) = α − ε.
//
// With ε0 fixed, writing τ = ε1(1+ε0) and β(τ) = (α − τ)/(1 + τ), the
// residual h(τ) = β(τ)(1−τ) − τ − (α−ε) is strictly decreasing with
// h(0) = ε > 0 and h(α) < 0, so the system has a unique solution found by
// bisection.
//
// The paper's policy ε0 = n·ε1 (Eq. 17) balances the asymptotic cost of
// steps 2 and 3 but, solved literally, yields ε0 > 1 for realistic n —
// which both Lemma 3 (needs ε ≤ 1) and Eq. 16's (1−ε0)² forbid. We
// implement it with a documented clamp ε0 ≤ kEps0Max and provide a
// balanced fixed policy (default). See DESIGN.md §4.4.
#pragma once

#include <cstdint>
#include <string>

namespace af {

/// How ε0 is tied to ε1.
enum class Eps0Policy {
  /// ε0 = ε/2, then solve (13) for ε1. Default.
  kBalanced,
  /// The paper's ε0 = n·ε1, clamped to ε0 ≤ kEps0Max when infeasible.
  kPaperProportional,
};

/// Solved parameter bundle.
struct RafParameters {
  double alpha = 0.0;
  double epsilon = 0.0;
  double eps0 = 0.0;
  double eps1 = 0.0;
  double beta = 0.0;
  Eps0Policy policy = Eps0Policy::kBalanced;
  /// True iff the paper policy hit the ε0 clamp.
  bool clamped = false;

  /// Residual of Eq. (13); |residual| ≤ 1e-12 after solving.
  double residual() const;
  /// Verifies Eqs. (12)–(13) hold (β > 0, residual ~ 0) and the ranges
  /// 0 < ε1, 0 < ε0 < 1. Throws postcondition_error otherwise.
  void check() const;

  std::string describe() const;
};

inline constexpr double kEps0Max = 0.9;

/// Solves Equation System 1 for the given policy.
/// Preconditions: 0 < α ≤ 1, 0 < ε < α, n ≥ 1.
RafParameters solve_equation_system(double alpha, double epsilon,
                                    Eps0Policy policy, std::uint64_t n);

/// Eq. (16): the realization budget
///   l* = (ln 2 + ln N + n·ln 2)·(2 + ε1(1−ε0)) / (ε1²(1−ε0)²·p*max).
/// `n` may be |V_max| instead of |V| (Sec. III-C). Returns a double —
/// the value routinely exceeds any practical budget; callers cap it.
double required_realizations(const RafParameters& p, std::uint64_t n,
                             double big_n, double pmax_estimate);

}  // namespace af
