#include "core/eqsystem.hpp"

#include <cmath>
#include <sstream>

#include "util/contracts.hpp"

namespace af {

namespace {

/// β(τ) per Eq. (12) with τ = ε1(1+ε0).
double beta_of_tau(double alpha, double tau) {
  return (alpha - tau) / (1.0 + tau);
}

/// Residual of Eq. (13) as a function of τ.
double residual_of_tau(double alpha, double epsilon, double tau) {
  return beta_of_tau(alpha, tau) * (1.0 - tau) - tau - (alpha - epsilon);
}

/// Solves h(τ) = 0 on (0, α) by bisection (h strictly decreasing).
double solve_tau(double alpha, double epsilon) {
  double lo = 0.0;                    // h(lo) = ε > 0
  double hi = std::min(alpha, 1.0);   // h(hi) < 0
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (residual_of_tau(alpha, epsilon, mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double RafParameters::residual() const {
  const double tau = eps1 * (1.0 + eps0);
  return beta * (1.0 - tau) - tau - (alpha - epsilon);
}

void RafParameters::check() const {
  AF_ENSURES(eps0 > 0.0 && eps0 < 1.0, "ε0 must lie in (0,1)");
  AF_ENSURES(eps1 > 0.0 && eps1 < 1.0, "ε1 must lie in (0,1)");
  AF_ENSURES(beta > 0.0, "Eq. (12) requires β > 0");
  const double tau = eps1 * (1.0 + eps0);
  const double expected_beta = (alpha - tau) / (1.0 + tau);
  AF_ENSURES(std::abs(beta - expected_beta) <= 1e-9,
             "β inconsistent with Eq. (12)");
  AF_ENSURES(std::abs(residual()) <= 1e-9, "Eq. (13) violated");
}

std::string RafParameters::describe() const {
  std::ostringstream os;
  os << "alpha=" << alpha << " eps=" << epsilon << " eps0=" << eps0
     << " eps1=" << eps1 << " beta=" << beta
     << (policy == Eps0Policy::kBalanced ? " [balanced]" : " [paper]")
     << (clamped ? " (clamped)" : "");
  return os.str();
}

RafParameters solve_equation_system(double alpha, double epsilon,
                                    Eps0Policy policy, std::uint64_t n) {
  AF_EXPECTS(alpha > 0.0 && alpha <= 1.0, "α must lie in (0,1]");
  AF_EXPECTS(epsilon > 0.0 && epsilon < alpha, "ε must lie in (0,α)");
  AF_EXPECTS(n >= 1, "n must be positive");

  RafParameters out;
  out.alpha = alpha;
  out.epsilon = epsilon;
  out.policy = policy;

  if (policy == Eps0Policy::kBalanced) {
    out.eps0 = epsilon / 2.0;
    const double tau = solve_tau(alpha, epsilon);
    out.eps1 = tau / (1.0 + out.eps0);
    out.beta = beta_of_tau(alpha, tau);
    out.check();
    return out;
  }

  // Paper policy ε0 = n·ε1: substitute τ(ε1) = ε1(1 + n·ε1), which is
  // strictly increasing, so h(τ(ε1)) is strictly decreasing in ε1 —
  // bisection again. The unclamped solution typically produces ε0 > 1
  // for real n; detect and clamp (DESIGN.md §4.4).
  const double nd = static_cast<double>(n);
  double lo = 0.0;
  double hi = 1.0;
  // Ensure h(τ(hi)) < 0: τ(1) = 1 + n ≥ α always, residual negative.
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double tau = mid * (1.0 + nd * mid);
    const double r = tau >= std::min(alpha, 1.0)
                         ? -1.0
                         : residual_of_tau(alpha, epsilon, tau);
    if (r > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double eps1 = 0.5 * (lo + hi);
  const double eps0 = nd * eps1;
  if (eps0 >= kEps0Max) {
    out.clamped = true;
    out.eps0 = kEps0Max;
    const double tau = solve_tau(alpha, epsilon);
    out.eps1 = tau / (1.0 + out.eps0);
    out.beta = beta_of_tau(alpha, tau);
  } else {
    out.eps0 = eps0;
    out.eps1 = eps1;
    out.beta = beta_of_tau(alpha, eps1 * (1.0 + eps0));
  }
  out.check();
  return out;
}

double required_realizations(const RafParameters& p, std::uint64_t n,
                             double big_n, double pmax_estimate) {
  AF_EXPECTS(pmax_estimate > 0.0, "l* undefined for p*max = 0");
  AF_EXPECTS(big_n > 1.0, "N must exceed 1");
  const double nd = static_cast<double>(n);
  const double ln2 = std::log(2.0);
  const double numer = (ln2 + std::log(big_n) + nd * ln2) *
                       (2.0 + p.eps1 * (1.0 - p.eps0));
  const double denom =
      p.eps1 * p.eps1 * (1.0 - p.eps0) * (1.0 - p.eps0) * pmax_estimate;
  return numer / denom;
}

}  // namespace af
