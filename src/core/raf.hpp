// The Realization-based Active Friending algorithm (RAF, Alg. 4).
//
// Pipeline (Sec. III-B):
//   1. Solve Equation System 1 for (ε0, ε1, β)      — core/eqsystem
//   2. Estimate p*max with the DKLR stopping rule    — diffusion/dklr
//   3. Compute the realization budget l* (Eq. 16)    — core/eqsystem
//   4. Alg. 3: sample l realizations, keep the type-1 backward paths,
//      and solve Minimum Subset Cover for the target ⌈β·|B_l^1|⌉
//      via an MpU solver                             — cover/mpu
//
// Theorem 1: with probability ≥ 1 − 2/N the output satisfies
// f(I*) ≥ (α−ε)·p_max with |I*|/|I_α| = O(√n).
//
// Practicality: l* is astronomically large on real inputs (it carries an
// n·ln2 factor from the union bound over 2^n subsets); the paper's own
// Sec. IV-E shows the output quality saturates orders of magnitude below
// l*. The config therefore carries an explicit realization cap, and the
// diagnostics record both l* and the l actually used. Sec. III-C's
// refinement (replace n by |V_max| in Eq. 16) is implemented and on by
// default.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/eqsystem.hpp"
#include "cover/mpu.hpp"
#include "diffusion/dklr.hpp"
#include "diffusion/instance.hpp"
#include "diffusion/invitation.hpp"
#include "diffusion/realization.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace af {

/// Which MpU solver backs the MSC step.
enum class CoverSolverKind { kGreedy, kDensest, kSmallestSets, kExact };

/// RAF configuration. Defaults mirror the paper's experiments
/// (ε = 0.01, N = 100000) with practical sampling caps.
struct RafConfig {
  /// Quality target α ∈ (0,1] of Problem 1.
  double alpha = 0.1;
  /// Slack ε ∈ (0, α): the guarantee becomes f(I*) ≥ (α−ε)·p_max.
  double epsilon = 0.005;
  /// Confidence parameter N: success probability ≥ 1 − 2/N.
  double big_n = 100'000.0;
  /// ε0/ε1 coupling policy (Eq. 17 vs balanced; DESIGN.md §4.4).
  Eps0Policy policy = Eps0Policy::kBalanced;
  /// Hard cap on l (0 = no cap — will faithfully attempt l*).
  std::uint64_t max_realizations = 200'000;
  /// Sample cap for the DKLR p*max estimation.
  std::uint64_t pmax_max_samples = 2'000'000;
  /// MpU solver for the covering step.
  CoverSolverKind solver = CoverSolverKind::kGreedy;
  /// Run the local-search shrink pass after the solver.
  bool local_search = true;
  /// Sec. III-C: use |V_max| instead of n inside Eq. (16).
  bool use_vmax_in_l = true;
};

/// Everything the algorithm knows about its own run.
struct RafDiagnostics {
  RafParameters params;
  DklrResult pmax;
  /// Theoretical budget l* from Eq. (16) (0 when p*max estimate is 0).
  double l_star = 0.0;
  /// Realizations actually generated.
  std::uint64_t l_used = 0;
  /// |B_l^1| — type-1 realizations among them.
  std::uint64_t type1_count = 0;
  /// ⌈β·|B_l^1|⌉ — the MSC coverage target.
  std::uint64_t coverage_target = 0;
  /// Realizations covered by the output set.
  std::uint64_t covered = 0;
  /// |V_max| (0 when not computed).
  std::size_t vmax_size = 0;
  /// True when t is unreachable from N_s (p_max = 0): the empty result
  /// is exact, not a failure. Certified via V_max when
  /// cfg.use_vmax_in_l is on.
  bool target_unreachable = false;
  /// True when p_max is positive (or unknown) but no type-1 realization
  /// appeared within the sampling caps — p_max is below the detection
  /// limit and the empty result is a capped best effort.
  bool pmax_below_detection = false;
};

/// RAF output: the invitation set I* plus diagnostics.
struct RafResult {
  InvitationSet invitation;
  RafDiagnostics diag;
};

/// Alg. 3 line 2: draw l realizations and collect the type-1 backward
/// paths into a family. The one sampling loop shared by the RAF engine,
/// run_with_pmax's fallback source, and the maximizer.
///
/// Draws through `sel` (alias index or scan oracle) with per-sample
/// counter streams rooted at one draw from `rng`, fanned out over `pool`
/// when given — bit-identical at every pool size (diffusion/bulk_sampler).
SetFamily sample_type1_family(const FriendingInstance& inst,
                              const SelectionSampler& sel, std::uint64_t l,
                              Rng& rng, ThreadPool* pool = nullptr);

/// Convenience overload: builds a private alias index, and for large l
/// fans out over a transient hardware-sized pool.
SetFamily sample_type1_family(const FriendingInstance& inst, std::uint64_t l,
                              Rng& rng);

/// The RAF algorithm (Alg. 4). Stateless apart from configuration;
/// every run draws its randomness from the caller-supplied Rng.
class RafAlgorithm {
 public:
  explicit RafAlgorithm(RafConfig cfg = {});

  const RafConfig& config() const { return cfg_; }

  /// Full pipeline (Alg. 4).
  RafResult run(const FriendingInstance& inst, Rng& rng) const;

  /// Alg. 4 with steps shared across repeated runs on the same instance
  /// supplied by the caller: a p*max estimate (skips the DKLR stage) and
  /// optionally |V_max| (skips the block-cut computation; pass 0 to use
  /// n, or when cfg.use_vmax_in_l is false). The supplied estimate must
  /// satisfy Eq. (10) for the theoretical guarantee to carry over —
  /// callers sweeping α on one instance typically reuse the DKLR result
  /// of the first run (its diag.pmax).
  ///
  /// Builds a fresh alias index per call (amortized over the run's l
  /// walks). Callers sweeping many runs on one graph who want to share
  /// one SamplingIndex should use run_with_pmax_source with a family
  /// source built on the SelectionSampler overload of
  /// sample_type1_family — that is exactly how the Planner serves its
  /// cached queries.
  RafResult run_with_pmax(const FriendingInstance& inst, double pmax_estimate,
                          std::size_t vmax_size, Rng& rng) const;

  /// Produces the type-1 path family for a realization budget l. The
  /// planner plugs its shared realization pool in here; run_with_pmax
  /// wraps fresh Rng-driven sampling.
  using FamilySource = std::function<SetFamily(std::uint64_t l)>;

  /// run_with_pmax with the sampling stage abstracted: solves the
  /// equation system, derives l* (Eq. 16) and the capped l, asks
  /// `source` for the family of the first l realizations, and covers
  /// it. Single home of the parameter/budget derivation shared by
  /// run(), run_with_pmax() and the Planner.
  RafResult run_with_pmax_source(const FriendingInstance& inst,
                                 double pmax_estimate, std::size_t vmax_size,
                                 const FamilySource& source) const;

  /// Alg. 3 alone with explicit β and l — the knob Sec. IV-E (Fig. 6)
  /// turns. Shared by run() internally.
  RafResult run_framework(const FriendingInstance& inst, double beta,
                          std::uint64_t l, Rng& rng) const;

  /// Alg. 3 line 3 on a pre-sampled family: solves MSC for
  /// ⌈β·total_multiplicity⌉ (plus the configured local search) over the
  /// type-1 backward paths in `family`, which were kept from `l_used`
  /// sampled realizations. This is the covering engine the Planner's
  /// realization pool feeds; run_framework() is sample-then-cover.
  RafResult run_covering(const FriendingInstance& inst,
                         const SetFamily& family, double beta,
                         std::uint64_t l_used) const;

  /// Applies cfg.max_realizations to the theoretical budget l* (Eq. 16):
  /// the l actually sampled, always ≥ 1.
  std::uint64_t capped_realizations(double l_star) const;

 private:
  const MpuSolver& solver() const;

  RafConfig cfg_;
  GreedyMpuSolver greedy_;
  DensestMpuSolver densest_;
  SmallestSetsSolver smallest_;
  ExactMpuSolver exact_;
};

}  // namespace af
