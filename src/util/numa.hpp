// NUMA topology discovery and thread placement (util layer).
//
// Multi-socket hosts pay a remote-memory penalty on every backward-walk
// step when the shared SamplingIndex lives on one node's memory. The
// fix (DESIGN.md §9) is replication: one index copy per node, built on a
// thread pinned to that node so first-touch places its pages locally.
// The counter-stream contract makes any placement bit-identical, so
// replication is purely a latency trade.
//
// This header is deliberately dependency-free: the container images this
// library builds in do not ship libnuma, so topology comes from sysfs
// (/sys/devices/system/node) on Linux and degrades to a single node
// covering every CPU anywhere else — or when the AF_NUMA environment
// variable is set to "off"/"0" (the switch that turns replication and
// pinning into no-ops for A/B runs). Pinning uses sched_setaffinity and
// reports failure instead of throwing: every caller has a correct
// unpinned fallback.
#pragma once

#include <vector>

namespace af {

/// The host's NUMA layout: which CPUs belong to which node.
struct NumaTopology {
  /// node_cpus[n] = CPU ids of node n. Always at least one node; the
  /// single-node fallback puts every CPU in node 0.
  std::vector<std::vector<int>> node_cpus;

  int num_nodes() const { return static_cast<int>(node_cpus.size()); }

  /// Node owning `cpu`, or 0 when unknown.
  int node_of_cpu(int cpu) const;
};

/// The detected topology, discovered once per process and cached.
/// Sysfs-backed on Linux; single-node fallback elsewhere, on sysfs parse
/// failure, or when AF_NUMA=off.
const NumaTopology& numa_topology();

/// True iff the cached topology has more than one node (replication and
/// pinning have something to do).
bool numa_available();

/// NUMA node of the CPU the calling thread is running on right now
/// (sched_getcpu); 0 where unsupported. Cheap enough to call per shard.
int current_numa_node();

/// Restricts the calling thread to `cpus` (sched_setaffinity). Returns
/// false — with no side effects — on non-Linux hosts, an empty list, or
/// kernel refusal; callers must treat pinning as best-effort.
bool pin_thread_to_cpus(const std::vector<int>& cpus);

/// Pins the calling thread to `node`'s CPUs (best-effort, see above).
bool pin_thread_to_node(int node);

}  // namespace af
