// Contract-checking macros in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations throw rather than abort so that
// library users (and tests) can observe and recover from misuse.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace af {

/// Thrown when a precondition (Expects) is violated.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a postcondition or internal invariant (Ensures) is violated.
class postcondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void contract_fail_pre(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw precondition_error(os.str());
}

[[noreturn]] inline void contract_fail_post(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "postcondition failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw postcondition_error(os.str());
}

}  // namespace detail
}  // namespace af

/// Precondition check. Usage: AF_EXPECTS(k > 0, "k must be positive").
#define AF_EXPECTS(cond, msg)                                        \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::af::detail::contract_fail_pre(#cond, __FILE__, __LINE__,     \
                                      std::string(msg));             \
    }                                                                \
  } while (false)

/// Postcondition / invariant check.
#define AF_ENSURES(cond, msg)                                        \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::af::detail::contract_fail_post(#cond, __FILE__, __LINE__,    \
                                       std::string(msg));            \
    }                                                                \
  } while (false)
