// Deterministic, fast random number generation.
//
// The whole library threads explicit `Rng&` handles instead of global
// state so that every sampling-based component (realization sampler,
// Monte-Carlo estimators, graph generators) is reproducible from a seed.
//
// The core engine is xoshiro256++ (Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend. Both are implemented here from
// scratch — the library has no external dependencies.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/contracts.hpp"

namespace af {

/// SplitMix64: tiny 64-bit generator used to expand a single seed into
/// the xoshiro256++ state. Also usable standalone for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Seed of sample #index in a counter-derived stream rooted at `root`.
///
/// Bulk samplers give every sample its own Rng seeded by this function, so
/// sample #i's outcome depends only on (root, i) — never on which thread
/// drew it or how a batch was sharded. This is the per-sample determinism
/// contract behind diffusion/bulk_sampler (DESIGN.md §7): threaded bulk
/// sampling is bit-identical to sequential at every thread count.
inline std::uint64_t stream_sample_seed(std::uint64_t root,
                                        std::uint64_t index) {
  // root + golden·(index+1) is a bijection per root; SplitMix64 then mixes
  // all 64 bits, so nearby indices map to unrelated seeds.
  return SplitMix64(root + 0x9e3779b97f4a7c15ULL * (index + 1)).next();
}

/// xoshiro256++ engine with convenience distributions.
///
/// Satisfies the essential parts of UniformRandomBitGenerator so it can be
/// plugged into <random> facilities when needed, but the built-in helpers
/// (uniform(), bernoulli(), uniform_int()) avoid libstdc++'s distribution
/// objects for speed and cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
    // An all-zero state is a fixed point for xoshiro; SplitMix64 cannot
    // produce four consecutive zeros from any seed, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
      state_[0] = 0x9e3779b97f4a7c15ULL;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next_u64(); }

  /// The value the next next_u64() will return, without advancing: the
  /// xoshiro256++ output function reads only the current state, so the
  /// peek is free. This is what lets the bulk walker's software prefetch
  /// compute the *exact* alias slot its next draw will probe one step
  /// ahead (diffusion/sampling_index, DESIGN.md §9).
  std::uint64_t peek_u64() const {
    return rotl(state_[0] + state_[3], 23) + state_[0];
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    AF_EXPECTS(lo <= hi, "uniform(lo,hi) requires lo <= hi");
    return lo + (hi - lo) * uniform();
  }

  /// true with probability p (p clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t uniform_int(std::uint64_t bound) {
    AF_EXPECTS(bound > 0, "uniform_int bound must be positive");
    // Rejection-free fast path is fine for our uses; use 128-bit multiply
    // with rejection to remove modulo bias exactly.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    AF_EXPECTS(lo <= hi, "uniform_int(lo,hi) requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_int(span));
  }

  /// Derives an independent child generator; useful for giving each
  /// experiment repetition its own deterministic stream.
  Rng fork() { return Rng(next_u64()); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_int(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace af
