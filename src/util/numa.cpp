#include "util/numa.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace af {

namespace {

/// Parses a sysfs cpulist ("0-3,8,10-11") into CPU ids. Returns an empty
/// vector on ANY malformed input — including overlong numbers, which
/// must not throw: the caller runs inside a static initializer and
/// treats an empty result as "fall back to one node".
std::vector<int> parse_cpu_list(const std::string& text) {
  // Reads one bounded decimal token at `pos`, advancing it. -1 = bad.
  const auto read_int = [&text](std::size_t& pos) {
    if (pos >= text.size() ||
        !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      return -1;
    }
    long value = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      value = value * 10 + (text[pos] - '0');
      if (value > 1'000'000) return -1;  // no real host has a cpu id here
      ++pos;
    }
    return static_cast<int>(value);
  };
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const int lo = read_int(pos);
    if (lo < 0) return {};
    int hi = lo;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      hi = read_int(pos);
      if (hi < lo) return {};
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    if (pos < text.size()) {
      if (text[pos] != ',') return {};
      ++pos;
    }
  }
  return cpus;
}

/// Every CPU the process could run on, for the single-node fallback.
std::vector<int> all_cpus_fallback() {
  const int n =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::vector<int> cpus(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) cpus[static_cast<std::size_t>(c)] = c;
  return cpus;
}

NumaTopology detect_topology() {
  NumaTopology topo;
  const char* env = std::getenv("AF_NUMA");
  const bool disabled =
      env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0);
#if defined(__linux__)
  if (!disabled) {
    // Nodes are contiguous in practice; probe node0, node1, … until the
    // first gap. Each node's cpulist file yields its CPU set.
    for (int node = 0;; ++node) {
      std::ifstream in("/sys/devices/system/node/node" +
                       std::to_string(node) + "/cpulist");
      if (!in) break;
      std::string line;
      std::getline(in, line);
      std::vector<int> cpus = parse_cpu_list(line);
      // CPU-less (memory-only) nodes exist on some hosts; skip them —
      // no thread can first-touch from there anyway.
      if (!cpus.empty()) topo.node_cpus.push_back(std::move(cpus));
    }
  }
#else
  (void)disabled;
#endif
  if (topo.node_cpus.empty()) topo.node_cpus.push_back(all_cpus_fallback());
  return topo;
}

}  // namespace

int NumaTopology::node_of_cpu(int cpu) const {
  for (std::size_t n = 0; n < node_cpus.size(); ++n) {
    if (std::find(node_cpus[n].begin(), node_cpus[n].end(), cpu) !=
        node_cpus[n].end()) {
      return static_cast<int>(n);
    }
  }
  return 0;
}

const NumaTopology& numa_topology() {
  static const NumaTopology topo = detect_topology();
  return topo;
}

bool numa_available() { return numa_topology().num_nodes() > 1; }

int current_numa_node() {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  if (cpu >= 0) return numa_topology().node_of_cpu(cpu);
#endif
  return 0;
}

bool pin_thread_to_cpus(const std::vector<int>& cpus) {
#if defined(__linux__)
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpus;
  return false;
#endif
}

bool pin_thread_to_node(int node) {
  const NumaTopology& topo = numa_topology();
  if (node < 0 || node >= topo.num_nodes()) return false;
  return pin_thread_to_cpus(topo.node_cpus[static_cast<std::size_t>(node)]);
}

}  // namespace af
