// Cooperative deadlines (util layer: no dependency above it).
//
// A Deadline is a steady_clock time_point; Deadline::max() means "none".
// Long-running estimator loops (diffusion/dklr's block loop) call
// check_deadline between blocks so an expired serving query stops
// mid-flight — throwing DeadlineExceededError, which core/planner maps
// to PlanStatus::kDeadlineExceeded — instead of burning a worker to the
// end of an answer nobody is waiting for (DESIGN.md §13).
#pragma once

#include <chrono>
#include <exception>

namespace af {

using Deadline = std::chrono::steady_clock::time_point;

/// The "no deadline" sentinel (matches QuerySpec::deadline's default).
constexpr Deadline kNoDeadline = Deadline::max();

/// Thrown by check_deadline; deliberately not derived from
/// std::runtime_error so the planner's generic std::exception →
/// kInternalError mapping can catch it *first* and map it to
/// kDeadlineExceeded instead.
class DeadlineExceededError : public std::exception {
 public:
  const char* what() const noexcept override {
    return "cooperative deadline exceeded";
  }
};

inline bool deadline_passed(Deadline d) {
  return d != kNoDeadline && std::chrono::steady_clock::now() >= d;
}

/// Throws DeadlineExceededError when `d` has passed.  The clock read is
/// ~20ns; call between blocks of work, not per sample.
inline void check_deadline(Deadline d) {
  if (deadline_passed(d)) throw DeadlineExceededError();
}

}  // namespace af
