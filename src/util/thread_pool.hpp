// A fixed-size worker-thread pool for fanning independent jobs out across
// cores (util layer: no dependency above it).
//
// Deliberately minimal — no work stealing, no priorities, no resizing: a
// locked FIFO queue drained by `threads` workers. The planner's batch
// queries are coarse (milliseconds to seconds each), so queue contention
// is negligible and a deterministic, auditable pool beats a clever one.
// Results and exceptions travel through std::future: a task that throws
// stores the exception in its future instead of taking the process down.
//
// Lock discipline (checked by Clang -Wthread-safety, DESIGN.md §12):
// `mu_` guards the queue, the stop flag, and the worker vector. Workers
// never touch `workers_`; shutdown moves the threads out under the lock
// and joins them outside it, so join never runs while `mu_` is held.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/sync.hpp"

namespace af {

/// Placement knobs for the pool's workers.
struct ThreadPoolOptions {
  /// Pin worker w to NUMA node (w mod nodes), spreading shard execution
  /// across nodes so node-replicated sampling indexes (DESIGN.md §9)
  /// serve local traffic. Best-effort and a no-op on single-node hosts,
  /// non-Linux platforms, or under AF_NUMA=off — an unpinned worker just
  /// reads whichever replica its CPU maps to.
  bool pin_numa = false;
};

/// What happens to queued-but-unstarted tasks when the pool shuts down.
enum class DrainPolicy {
  /// Workers run every queued task before exiting (the historical
  /// destructor behavior): every future gets its real result.
  kDrain,
  /// Queued tasks are destroyed without running. A packaged_task
  /// destroyed unfulfilled stores std::future_error{broken_promise} into
  /// its future, so discarded futures still resolve (exceptionally) —
  /// none dangle. Tasks already started run to completion either way.
  kDiscard,
};

/// Fixed-size FIFO thread pool. Construction spawns the workers; the
/// destructor drains the queue, then joins them.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 picks std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0, ThreadPoolOptions opts = {});

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs every queued task, then joins the workers (= shutdown(kDrain)).
  ~ThreadPool();

  /// Explicit, idempotent shutdown: stops admission (submit afterwards
  /// violates the precondition), resolves the queue per `policy`, and
  /// joins the workers. Lets owners of layered teardown sequences (the
  /// Planner's serving shutdown, DESIGN.md §10) stop a pool at a chosen
  /// point instead of at member-destruction order — and kDiscard bounds
  /// shutdown latency by in-flight work only, not queue depth.
  void shutdown(DrainPolicy policy = DrainPolicy::kDrain);

  /// Number of live worker threads; drops to 0 once shutdown begins.
  /// Safe to call concurrently with shutdown (the annotation rollout
  /// surfaced the old unguarded read racing shutdown's join loop).
  std::size_t size() const AF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return workers_.size();
  }

  /// Enqueues `fn` and returns a future for its result. The future also
  /// carries any exception `fn` throws.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

 private:
  void enqueue(std::function<void()> job) AF_EXCLUDES(mu_);
  void worker_loop() AF_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ AF_GUARDED_BY(mu_);
  bool stopping_ AF_GUARDED_BY(mu_) = false;
  /// Written at construction and moved out by shutdown, both under mu_;
  /// joined outside the lock (workers need mu_ to exit their wait).
  std::vector<std::thread> workers_ AF_GUARDED_BY(mu_);
};

}  // namespace af
