#include "util/cpu.hpp"

#include <cstdlib>
#include <cstring>

namespace af {

const char* to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto: return "auto";
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

bool compiled_avx2_kernels() {
#if defined(AF_HAVE_AVX2_KERNELS)
  return true;
#else
  return false;
#endif
}

namespace {

/// The best level this process may run: build gate, then cpuid, then the
/// AF_SIMD environment variable (any of "off"/"scalar"/"0", case
/// matters not being worth a tolower loop — these are the documented
/// spellings).
SimdLevel detect_ceiling() {
  if (simd_env_request() == SimdLevel::kScalar) return SimdLevel::kScalar;
#if defined(AF_HAVE_AVX2_KERNELS) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

}  // namespace

SimdLevel simd_env_request() {
  static const SimdLevel requested = [] {
    const char* env = std::getenv("AF_SIMD");
    if (env == nullptr) return SimdLevel::kAuto;
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
        std::strcmp(env, "0") == 0) {
      return SimdLevel::kScalar;
    }
    if (std::strcmp(env, "avx2") == 0) return SimdLevel::kAvx2;
    return SimdLevel::kAuto;
  }();
  return requested;
}

SimdLevel resolve_simd_level(SimdLevel requested) {
  static const SimdLevel ceiling = detect_ceiling();
  if (requested == SimdLevel::kScalar) return SimdLevel::kScalar;
  // kAuto and explicit kAvx2 both clamp to the ceiling: requesting a
  // level the build or CPU cannot honour degrades gracefully instead of
  // faulting on an illegal instruction.
  return ceiling;
}

}  // namespace af
