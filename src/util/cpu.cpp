#include "util/cpu.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/log.hpp"

namespace af {

int simd_kernel_ordinal(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto: return 0;
    case SimdLevel::kScalar: return 0;
    case SimdLevel::kAvx2: return 1;
    case SimdLevel::kAvx512: return 2;
    case SimdLevel::kNeon: return 3;
  }
  return 0;
}

const char* to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto: return "auto";
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
    case SimdLevel::kNeon: return "neon";
  }
  return "?";
}

bool compiled_simd_kernels(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto:
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
#if defined(AF_HAVE_AVX2_KERNELS)
      return true;
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#if defined(AF_HAVE_AVX512_KERNELS)
      return true;
#else
      return false;
#endif
    case SimdLevel::kNeon:
#if defined(AF_HAVE_NEON_KERNELS)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool compiled_avx2_kernels() {
  return compiled_simd_kernels(SimdLevel::kAvx2);
}

namespace {

/// Hardware support for a level's instructions, independent of what was
/// compiled. Cached: cpuid via __builtin_cpu_supports is not free.
bool cpu_supports(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto:
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2: {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      static const bool ok = __builtin_cpu_supports("avx2");
      return ok;
#else
      return false;
#endif
    }
    case SimdLevel::kAvx512: {
      // The kernels use F (gathers, mask ops, 64-bit lanes) and DQ
      // (vcvtuqq2pd for the compact index's exact coin) — the same pair
      // the TU is compiled with.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      static const bool ok = __builtin_cpu_supports("avx512f") &&
                             __builtin_cpu_supports("avx512dq");
      return ok;
#else
      return false;
#endif
    }
    case SimdLevel::kNeon:
      // Advanced SIMD is architecturally baseline on AArch64: if the
      // NEON TU compiled, the CPU runs it.
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

/// One step down the level's ISA family — the graceful-degradation order
/// resolve_simd_level walks when a requested level is unavailable.
SimdLevel degrade(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512: return SimdLevel::kAvx2;
    default: return SimdLevel::kScalar;
  }
}

}  // namespace

bool simd_level_available(SimdLevel level) {
  return compiled_simd_kernels(level) && cpu_supports(level);
}

namespace detail {

SimdLevel parse_af_simd(const char* value) {
  if (value == nullptr) return SimdLevel::kAuto;
  if (std::strcmp(value, "off") == 0 || std::strcmp(value, "scalar") == 0 ||
      std::strcmp(value, "0") == 0) {
    return SimdLevel::kScalar;
  }
  if (std::strcmp(value, "avx2") == 0) return SimdLevel::kAvx2;
  if (std::strcmp(value, "avx512") == 0) return SimdLevel::kAvx512;
  if (std::strcmp(value, "neon") == 0) return SimdLevel::kNeon;
  if (std::strcmp(value, "auto") == 0 || value[0] == '\0') {
    return SimdLevel::kAuto;
  }
  // A typo ("avx51", "AVX2", …) must not silently mean kAuto: warn once
  // naming the accepted spellings (the util/hugepage warn-once pattern:
  // function-local once_flag + call_once with the value captured by
  // copy, so concurrent first calls race neither on the flag nor on the
  // reported string), then proceed with the auto behavior — still safe,
  // just not what the operator asked for.
  static std::once_flag warned;
  std::call_once(warned, [value] {
    log_warn() << "AF_SIMD=\"" << value
               << "\" is not a recognized value; accepted: off | scalar | "
                  "0 | avx2 | avx512 | neon | auto. Falling back to auto "
                  "(measured dispatch).";
  });
  return SimdLevel::kAuto;
}

}  // namespace detail

SimdLevel simd_env_request() {
  static const SimdLevel requested =
      detail::parse_af_simd(std::getenv("AF_SIMD"));
  return requested;
}

SimdLevel resolve_simd_level(SimdLevel requested) {
  // A concrete AF_SIMD value is the operator's override — it replaces
  // whatever the caller asked for, in either direction.
  const SimdLevel env = simd_env_request();
  SimdLevel effective = env == SimdLevel::kAuto ? requested : env;
  if (effective == SimdLevel::kAuto) {
    // The ceiling: the best available level, walking the x86 family
    // first (kAvx512 degrades through kAvx2), then NEON.
    if (simd_level_available(SimdLevel::kAvx512)) return SimdLevel::kAvx512;
    if (simd_level_available(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
    if (simd_level_available(SimdLevel::kNeon)) return SimdLevel::kNeon;
    return SimdLevel::kScalar;
  }
  // A concrete request degrades down its ISA family until it lands on
  // something this build + CPU can actually run — never faults.
  while (effective != SimdLevel::kScalar && !simd_level_available(effective)) {
    effective = degrade(effective);
  }
  return effective;
}

}  // namespace af
