#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace af {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci_halfwidth(double z) const { return z * stderr_mean(); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0), value_sums_(bins, 0.0) {
  AF_EXPECTS(hi > lo, "histogram range must be non-empty");
  AF_EXPECTS(bins > 0, "histogram needs at least one bin");
}

std::size_t Histogram::bin_of(double x) const {
  if (x <= lo_) return 0;
  const std::size_t nb = counts_.size();
  auto b = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                    static_cast<double>(nb));
  return std::min(b, nb - 1);
}

void Histogram::add(double x, double weight) { counts_[bin_of(x)] += weight; }

void Histogram::add_xy(double x, double value) {
  const std::size_t b = bin_of(x);
  counts_[b] += 1.0;
  value_sums_[b] += value;
}

double Histogram::bin_lo(std::size_t b) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t b) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(b + 1) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_center(std::size_t b) const {
  return 0.5 * (bin_lo(b) + bin_hi(b));
}

double Histogram::bin_mean(std::size_t b) const {
  return counts_[b] == 0.0 ? 0.0 : value_sums_[b] / counts_[b];
}

double Proportion::wilson_halfwidth(double z) const {
  if (trials == 0) return 0.0;
  const double n = static_cast<double>(trials);
  const double p = estimate();
  const double z2 = z * z;
  return z / (1.0 + z2 / n) *
         std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
}

double Proportion::wilson_center(double z) const {
  if (trials == 0) return 0.0;
  const double n = static_cast<double>(trials);
  const double p = estimate();
  const double z2 = z * z;
  return (p + z2 / (2.0 * n)) / (1.0 + z2 / n);
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double quantile_of(std::vector<double> xs, double q) {
  AF_EXPECTS(!xs.empty(), "quantile of empty sample");
  AF_EXPECTS(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

}  // namespace af
