// Minimal leveled logging to stderr with a global threshold.
//
// Experiment binaries use INFO for progress lines; the libraries only log
// at DEBUG level so that programmatic users get silent-by-default behavior.
#pragma once

#include <sstream>
#include <string>

namespace af {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that will be emitted. Thread-safe:
/// the threshold is a relaxed atomic, so flipping it concurrently with
/// loggers is race-free (each call sees either the old or new level).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line ("[level] message") to stderr if `level` passes the
/// threshold. Thread-safe; each call is a single fprintf, so lines from
/// concurrent threads interleave whole, never mid-line.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace af
