#include "util/rng.hpp"

#include <unordered_set>

namespace af {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  AF_EXPECTS(k <= n, "cannot sample more elements than the population");
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;

  // For dense draws, a partial Fisher-Yates over an explicit index array is
  // cheapest; for sparse draws, rejection via a hash set avoids O(n) setup.
  if (k * 3 >= n) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + uniform_int(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
  } else {
    std::unordered_set<std::size_t> seen;
    seen.reserve(k * 2);
    while (out.size() < k) {
      std::size_t x = uniform_int(n);
      if (seen.insert(x).second) out.push_back(x);
    }
  }
  return out;
}

}  // namespace af
