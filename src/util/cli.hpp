// Minimal declarative command-line parser for the experiment binaries and
// examples. Supports `--name value`, `--name=value` and boolean flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace af {

/// Declarative CLI option parser.
///
/// Usage:
///   ArgParser args("exp_fig3", "Reproduces Fig. 3");
///   args.add_int("pairs", 20, "number of (s,t) pairs per dataset");
///   args.add_flag("full", "run at paper scale");
///   if (!args.parse(argc, argv)) return 1;   // printed help or an error
///   int pairs = args.get_int("pairs");
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  void add_int(const std::string& name, std::int64_t def,
               const std::string& help);
  void add_double(const std::string& name, double def, const std::string& help);
  void add_string(const std::string& name, std::string def,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Returns false if --help was requested or parsing failed (a message is
  /// printed either way); callers should exit in that case.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  void print_help() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };

  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // canonical textual value
  };

  const Option& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

/// Experiment-wide knobs shared by the bench exp_* binaries and the
/// flag-driven examples — one definition, one parser (previously each
/// binary family declared its own copy).
struct ExperimentEnv {
  bool full = false;
  std::uint64_t seed = 20190707;  // ICDCS'19 vintage
  std::size_t pairs = 0;          // per dataset; 0 = binary default
  std::uint64_t eval_samples = 20'000;
  std::string datasets = "wiki,hepth,hepph,youtube";
  std::string csv;  // optional CSV mirror path prefix
};

/// Registers the flags every randomized binary shares: --seed and
/// --eval-samples.
void add_sampling_flags(ArgParser& args, std::uint64_t default_seed,
                        std::uint64_t default_eval_samples);

/// Registers the full experiment-harness flag set (sampling flags plus
/// --full, --pairs, --datasets, --csv).
void add_experiment_flags(ArgParser& args, std::size_t default_pairs);

/// Reads the values registered by add_experiment_flags.
ExperimentEnv read_experiment_env(const ArgParser& args);

/// Splits "a,b,c" into {"a","b","c"}; empty items are dropped.
std::vector<std::string> split_csv_list(const std::string& s);

/// Splits and parses a comma-separated list of doubles ("0.1,0.2").
/// Throws std::invalid_argument on malformed items.
std::vector<double> parse_double_list(const std::string& s);

}  // namespace af
