// Minimal declarative command-line parser for the experiment binaries and
// examples. Supports `--name value`, `--name=value` and boolean flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace af {

/// Declarative CLI option parser.
///
/// Usage:
///   ArgParser args("exp_fig3", "Reproduces Fig. 3");
///   args.add_int("pairs", 20, "number of (s,t) pairs per dataset");
///   args.add_flag("full", "run at paper scale");
///   if (!args.parse(argc, argv)) return 1;   // printed help or an error
///   int pairs = args.get_int("pairs");
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  void add_int(const std::string& name, std::int64_t def,
               const std::string& help);
  void add_double(const std::string& name, double def, const std::string& help);
  void add_string(const std::string& name, std::string def,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Returns false if --help was requested or parsing failed (a message is
  /// printed either way); callers should exit in that case.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  void print_help() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };

  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // canonical textual value
  };

  const Option& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace af
