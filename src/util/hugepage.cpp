#include "util/hugepage.hpp"

#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace af::detail {

bool huge_pages_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("AF_HUGEPAGES");
    return env == nullptr ||
           (std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0);
  }();
  return enabled;
}

void* map_huge_region(std::size_t bytes, void** map_base,
                      std::size_t* map_len) {
#if defined(__linux__)
  constexpr std::size_t kHuge = std::size_t{2} << 20;
  // Over-map by one huge page so a 2 MiB-aligned base always fits; the
  // slack stays untouched (never faulted), so it costs address space,
  // not memory.
  const std::size_t len = bytes + kHuge;
  void* raw = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (raw == MAP_FAILED) return nullptr;
  const auto base = reinterpret_cast<std::uintptr_t>(raw);
  const std::uintptr_t aligned = (base + kHuge - 1) & ~(kHuge - 1);
  // Advisory: THP "madvise" mode honours it, "never" ignores it — the
  // buffer works either way, just without the TLB win.
  madvise(reinterpret_cast<void*>(aligned), bytes, MADV_HUGEPAGE);
  *map_base = raw;
  *map_len = len;
  return reinterpret_cast<void*>(aligned);
#else
  (void)bytes;
  (void)map_base;
  (void)map_len;
  return nullptr;
#endif
}

void unmap_region(void* map_base, std::size_t map_len) {
#if defined(__linux__)
  munmap(map_base, map_len);
#else
  (void)map_base;
  (void)map_len;
#endif
}

}  // namespace af::detail
