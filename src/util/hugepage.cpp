#include "util/hugepage.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/log.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace af {

bool advise_file_hugepages(void* addr, std::size_t bytes) {
#if defined(__linux__)
  if (!detail::huge_pages_enabled()) return false;
  constexpr std::size_t kHuge = std::size_t{2} << 20;
  // madvise wants page-aligned addresses and THP works on 2 MiB
  // granules: advise the largest huge-aligned interior of the region.
  const auto base = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t lo = (base + kHuge - 1) & ~(kHuge - 1);
  const std::uintptr_t hi = (base + bytes) & ~(kHuge - 1);
  if (hi <= lo) return false;  // interior smaller than one huge page
  if (madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE) == 0) {
    return true;
  }
  // Expected on kernels without file-backed THP (EINVAL) — warn once so
  // the fallback is visible, then stay quiet: the mapping is correct
  // either way, just without the TLB win. Function-local once_flag:
  // magic-statics give race-free init, call_once gives exactly-once
  // emission even when many mappings fail concurrently, and the lambda
  // captures errno by value so the message reports the *first* failure
  // rather than whatever errno holds by the time the log line renders.
  static std::once_flag warned;
  const int err = errno;
  std::call_once(warned, [err] {
    log_warn() << "madvise(MADV_HUGEPAGE) on a file-backed mapping failed ("
               << std::strerror(err)
               << "); mapped datasets stay on 4 KiB pages (kernel lacks "
                  "file-backed THP support?)";
  });
  return false;
#else
  (void)addr;
  (void)bytes;
  return false;
#endif
}

}  // namespace af

namespace af::detail {

bool huge_pages_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("AF_HUGEPAGES");
    return env == nullptr ||
           (std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0);
  }();
  return enabled;
}

void* map_huge_region(std::size_t bytes, void** map_base,
                      std::size_t* map_len) {
#if defined(__linux__)
  constexpr std::size_t kHuge = std::size_t{2} << 20;
  // Over-map by one huge page so a 2 MiB-aligned base always fits; the
  // slack stays untouched (never faulted), so it costs address space,
  // not memory.
  const std::size_t len = bytes + kHuge;
  void* raw = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (raw == MAP_FAILED) return nullptr;
  const auto base = reinterpret_cast<std::uintptr_t>(raw);
  const std::uintptr_t aligned = (base + kHuge - 1) & ~(kHuge - 1);
  // Advisory: THP "madvise" mode honours it, "never" ignores it — the
  // buffer works either way, just without the TLB win.
  madvise(reinterpret_cast<void*>(aligned), bytes, MADV_HUGEPAGE);
  *map_base = raw;
  *map_len = len;
  return reinterpret_cast<void*>(aligned);
#else
  (void)bytes;
  (void)map_base;
  (void)map_len;
  return nullptr;
#endif
}

void unmap_region(void* map_base, std::size_t map_len) {
#if defined(__linux__)
  munmap(map_base, map_len);
#else
  (void)map_base;
  (void)map_len;
#endif
}

}  // namespace af::detail
