// A bounded multi-producer/multi-consumer admission queue with explicit
// backpressure and pluggable dequeue ordering (util layer: no dependency
// above it).
//
// Built for serving admission control (core/planner's plan_async,
// DESIGN.md §10), where the queue IS the overload policy:
//
//  - Bounded + non-blocking admission: try_push never blocks and never
//    grows the queue past its capacity — a full queue is a *structured*
//    rejection the producer reports upstream, not a hidden stall. There
//    is deliberately no blocking push.
//  - Ordered dequeue: Compare is a strict-weak order and pop always
//    removes the Compare-least element, so "less" means "served sooner".
//    The default std::less<T> makes an int queue pop ascending; the
//    planner orders tasks by (priority, deadline, admission sequence).
//    FIFO is the special case of comparing admission sequence numbers.
//  - Coalescing support: extract_if removes every queued element
//    matching a predicate in one critical section, so a consumer that
//    just dequeued a task can claim its queued duplicates and serve them
//    all from one execution.
//  - Two-phase shutdown: close() stops admission but lets consumers
//    drain what was admitted; drain(out) additionally removes everything
//    still queued so the owner can resolve those items itself (e.g.
//    fulfil their promises with a shutdown status). After close(), pop
//    returns false once the queue is empty — consumers use that as the
//    exit signal.
//
// A mutex + condition_variable around a std::multiset is deliberate: the
// elements this queue carries are coarse (a serving task costs
// milliseconds; a queue operation costs nanoseconds), so lock-free
// cleverness would buy nothing and cost auditability — the same trade
// util/thread_pool makes.
#pragma once

#include <cstddef>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "util/contracts.hpp"
#include "util/sync.hpp"

namespace af {

/// Bounded MPMC queue; pop returns the Compare-least element first.
template <typename T, typename Compare = std::less<T>>
class MpmcQueue {
 public:
  /// A queue that admits at most `capacity` (> 0) undequeued elements.
  explicit MpmcQueue(std::size_t capacity, Compare compare = Compare{})
      : capacity_(capacity), items_(std::move(compare)) {
    AF_EXPECTS(capacity > 0, "MpmcQueue capacity must be positive");
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Admits `item` unless the queue is full or closed. Returns whether the
  /// item was admitted; on failure `item` is left untouched (the caller
  /// still owns it and reports the rejection upstream). Never blocks.
  bool try_push(T&& item) AF_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.insert(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed and
  /// empty. Returns true with the Compare-least element moved into `out`,
  /// or false when the queue is closed and fully drained (the consumer's
  /// exit signal).
  bool pop(T& out) AF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    cv_.wait(mu_, [this]() AF_REQUIRES(mu_) {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return false;
    out = std::move(items_.extract(items_.begin()).value());
    return true;
  }

  /// Removes every queued element matching `pred` and appends them to
  /// `out` (in dequeue order). One critical section: a consumer claiming
  /// duplicates of the task it just popped sees a consistent snapshot.
  /// Returns how many elements were extracted.
  template <typename Pred>
  std::size_t extract_if(Pred pred, std::vector<T>& out) AF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    std::size_t taken = 0;
    for (auto it = items_.begin(); it != items_.end();) {
      if (pred(*it)) {
        auto node = items_.extract(it++);
        out.push_back(std::move(node.value()));
        ++taken;
      } else {
        ++it;
      }
    }
    return taken;
  }

  /// Stops admission (try_push fails from now on) but keeps queued
  /// elements for consumers to drain; wakes every waiting pop.
  void close() AF_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// close() + removes everything still queued into `out`, so the owner
  /// can resolve the undequeued items itself. Consumers blocked in pop
  /// wake and return false. Returns how many elements were drained.
  std::size_t drain(std::vector<T>& out) AF_EXCLUDES(mu_) {
    std::size_t taken = 0;
    {
      MutexLock lock(mu_);
      closed_ = true;
      while (!items_.empty()) {
        out.push_back(std::move(items_.extract(items_.begin()).value()));
        ++taken;
      }
    }
    cv_.notify_all();
    return taken;
  }

  /// Elements currently queued (admitted, not yet popped).
  std::size_t size() const AF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const AF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar cv_;
  /// multiset, not a binary heap: pop and extract_if both need ordered
  /// removal from arbitrary positions, and node extraction moves the
  /// element out without copying.
  std::multiset<T, Compare> items_ AF_GUARDED_BY(mu_);
  bool closed_ AF_GUARDED_BY(mu_) = false;
};

}  // namespace af
