// Streaming statistics and small numeric helpers used throughout the
// experiment harness (confidence intervals on Monte-Carlo estimates,
// averaged experiment rows, histograms for ratio binning).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace af {

/// Welford-style streaming mean/variance accumulator.
///
/// Numerically stable for long Monte-Carlo runs; O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (0 for fewer than 2 samples).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double stderr_mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  /// Half-width of the normal-approximation confidence interval at the
  /// given z value (default z=1.96 ~ 95%).
  double ci_halfwidth(double z = 1.96) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-interval histogram over [lo, hi) with `bins` buckets plus
/// an overflow bucket. Used for the Fig. 4/5 ratio-binning protocol.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t b) const;
  double bin_hi(std::size_t b) const;
  double bin_center(std::size_t b) const;
  /// Total weight that fell into bin b.
  double count(std::size_t b) const { return counts_[b]; }
  /// Mean of the auxiliary values recorded into bin b (0 if empty).
  double bin_mean(std::size_t b) const;

  /// Records `value` into the bin of `x` (for "average y per x-interval").
  void add_xy(double x, double value);

 private:
  std::size_t bin_of(double x) const;

  double lo_;
  double hi_;
  std::vector<double> counts_;
  std::vector<double> value_sums_;
};

/// Exact binomial confidence interval helpers for Monte-Carlo proportions.
struct Proportion {
  std::size_t successes = 0;
  std::size_t trials = 0;

  double estimate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
  /// Wilson score interval half-width at z (robust near 0/1).
  double wilson_halfwidth(double z = 1.96) const;
  /// Wilson score interval center.
  double wilson_center(double z = 1.96) const;
};

/// Mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& xs);

/// Population quantile by linear interpolation, q in [0,1].
double quantile_of(std::vector<double> xs, double q);

}  // namespace af
