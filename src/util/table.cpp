#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace af {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  AF_EXPECTS(!header_.empty(), "table needs at least one column");
}

void TableWriter::add_row(std::vector<std::string> cells) {
  AF_EXPECTS(cells.size() == header_.size(),
             "row arity must match the header");
  rows_.push_back(std::move(cells));
}

std::string TableWriter::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TableWriter::fmt(std::size_t v) { return std::to_string(v); }

std::string TableWriter::fmt(long long v) { return std::to_string(v); }

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

bool TableWriter::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) f << ',';
      f << csv_escape(row[c]);
    }
    f << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return static_cast<bool>(f);
}

}  // namespace af
