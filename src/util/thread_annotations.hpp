// Clang thread-safety-analysis attribute macros (DESIGN.md §12).
//
// These macros declare the lock discipline — which mutex guards which
// state, which functions require or acquire which capability — so Clang's
// `-Wthread-safety` analysis can check it at compile time. The repo's
// hardest invariant, the counter-stream determinism contract (DESIGN.md
// §6), is only as strong as the lock discipline around the shared caches
// it rides on; the annotations turn that discipline from a comment into
// a compile error. Under GCC/MSVC every macro expands to nothing, so the
// annotations cost non-Clang builds exactly zero.
//
// The vocabulary follows the Clang documentation's canonical names
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed AF_.
// Use them through util/sync.hpp's af::Mutex / af::MutexLock / af::CondVar
// wrappers: std::mutex itself carries no capability attributes under
// libstdc++, so annotating members with the raw std types would declare a
// discipline the analysis cannot actually check.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define AF_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define AF_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Declares a class as a capability (lockable type). The string names the
/// capability kind in diagnostics ("mutex").
#define AF_CAPABILITY(x) AF_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class whose lifetime equals holding a capability.
#define AF_SCOPED_CAPABILITY AF_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member: may only be read/written while holding `x`.
#define AF_GUARDED_BY(x) AF_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while holding `x`
/// (the pointer itself is unguarded).
#define AF_PT_GUARDED_BY(x) AF_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function precondition: the caller must hold the listed capabilities
/// exclusively (and still holds them on return).
#define AF_REQUIRES(...) \
  AF_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function precondition: the caller must hold at least shared access.
#define AF_REQUIRES_SHARED(...) \
  AF_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities (caller must not hold
/// them) and holds them on return.
#define AF_ACQUIRE(...) \
  AF_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define AF_ACQUIRE_SHARED(...) \
  AF_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// The function releases the listed capabilities (caller must hold them).
#define AF_RELEASE(...) \
  AF_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define AF_RELEASE_SHARED(...) \
  AF_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// The function tries to acquire; the first argument is the return value
/// that means success.
#define AF_TRY_ACQUIRE(...) \
  AF_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// The function must be called while NOT holding the listed capabilities
/// (deadlock prevention for self-locking functions).
#define AF_EXCLUDES(...) \
  AF_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, to the analysis) that the capability is held.
#define AF_ASSERT_CAPABILITY(x) \
  AF_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// The function returns a reference to the named capability.
#define AF_RETURN_CAPABILITY(x) AF_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Every use must carry
/// a comment explaining why the discipline holds dynamically but cannot
/// be expressed statically (DESIGN.md §12 lists the accepted patterns).
#define AF_NO_THREAD_SAFETY_ANALYSIS \
  AF_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
