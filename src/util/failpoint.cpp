#include "util/failpoint.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace af::failpoint {

namespace {

// The authoritative failpoint catalog.  One line per site, sorted;
// af_lint parses this block (between the begin/end markers) and checks
// it against the names spelled at AF_FAILPOINT_* sites in src/.
// af-failpoint-catalog-begin
constexpr const char* kCatalog[] = {
    "index.alias_build",
    "index.alias_build_compact",
    "numa.replica_build",
    "planner.exec_transient",
    "planner.pair_alloc",
    "planner.pool_grow",
    "server.worker_exec",
    "storage.map_open",
    "storage.read_validate",
    "storage.writer_finish",
    "storage.writer_write",
};
// af-failpoint-catalog-end

/// FNV-1a over the site name: folds the name into the per-site seed so
/// two sites armed at the same probability fire on unrelated hit sets.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

namespace detail {

/// Registry node.  The spec fields are atomics so fired() never blocks:
/// arm() publishes with a release store on `mode` after writing n/p/seed,
/// and fired() reads `mode` with acquire before the rest.  Counter
/// resets during concurrent traffic are racy by design — arming is a
/// quiesce-point operation in every intended use.
struct Site {
  std::atomic<int> mode{static_cast<int>(Mode::kOff)};
  std::atomic<std::uint64_t> n{0};
  std::atomic<std::uint64_t> p_bits{0};
  std::atomic<std::uint64_t> seed{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
};

}  // namespace detail

namespace {

using detail::Site;

/// Registry state.  std::map keeps node addresses stable (call sites
/// cache Site*) and iterates in name order (stats(), determinism lint).
struct Registry {
  Mutex mu;
  std::map<std::string, Site, std::less<>> sites AF_GUARDED_BY(mu);
  std::uint64_t global_seed AF_GUARDED_BY(mu) = 0;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry();  // af-lint: raw-alloc (leaked singleton)
    {
      MutexLock lock(reg->mu);
      for (const char* name : kCatalog) {
        reg->sites.try_emplace(std::string(name));
      }
    }
    return reg;
  }();
  return *r;
}

std::uint64_t site_seed_for(std::uint64_t global_seed, std::string_view name) {
  return SplitMix64(global_seed ^ hash_name(name)).next();
}

void reset_site(Site& s, std::string_view name, std::uint64_t global_seed)
    AF_NO_THREAD_SAFETY_ANALYSIS {
  s.seed.store(site_seed_for(global_seed, name), std::memory_order_relaxed);
  s.hits.store(0, std::memory_order_relaxed);
  s.fires.store(0, std::memory_order_relaxed);
}

Site* find_or_register(std::string_view name) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  auto it = reg.sites.find(name);
  if (it == reg.sites.end()) {
    it = reg.sites.try_emplace(std::string(name)).first;
    reset_site(it->second, it->first, reg.global_seed);
  }
  return &it->second;
}

void arm_impl(std::string_view name, Spec spec);
std::size_t apply_env_impl(const char* value);

/// Applies AF_FAILPOINTS / AF_FAILPOINTS_SEED exactly once, lazily, the
/// first time anything touches the registry (the cpu.cpp env idiom:
/// getenv captured once, parse warnings emitted once).  The lambda must
/// go through the *_impl entry points: the public arm()/apply_env()
/// call back into install_env_once(), and std::call_once deadlocks when
/// re-entered on its own flag from inside the active call.
void install_env_once() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    if (const char* seed_text = std::getenv("AF_FAILPOINTS_SEED")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(seed_text, &end, 10);
      if (end != seed_text && end != nullptr && *end == '\0') {
        set_seed(static_cast<std::uint64_t>(v));
      } else {
        log_warn() << "AF_FAILPOINTS_SEED=\"" << seed_text
                   << "\" is not a number; keeping seed 0.";
      }
    }
    if (const char* spec_text = std::getenv("AF_FAILPOINTS")) {
      apply_env_impl(spec_text);
    }
  });
}

void arm_impl(std::string_view name, Spec spec) {
  Site* s = find_or_register(name);
  std::uint64_t global_seed;
  {
    Registry& reg = registry();
    MutexLock lock(reg.mu);
    global_seed = reg.global_seed;
  }
  reset_site(*s, name, global_seed);
  s->n.store(spec.n, std::memory_order_relaxed);
  std::uint64_t p_bits;
  static_assert(sizeof(p_bits) == sizeof(spec.p));
  std::memcpy(&p_bits, &spec.p, sizeof(p_bits));
  s->p_bits.store(p_bits, std::memory_order_relaxed);
  s->mode.store(static_cast<int>(spec.mode), std::memory_order_release);
}

std::size_t apply_env_impl(const char* value) {
  if (value == nullptr || value[0] == '\0') return 0;
  std::size_t armed = 0;
  std::string_view rest(value);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    Spec spec;
    if (eq == std::string_view::npos || eq == 0 ||
        !parse_spec(entry.substr(eq + 1), &spec)) {
      log_warn() << "AF_FAILPOINTS entry \"" << std::string(entry)
                 << "\" is malformed; expected name=on|off|once|n:<k>|p:<f>."
                    " Skipping it.";
      continue;
    }
    arm_impl(entry.substr(0, eq), spec);
    ++armed;
  }
  return armed;
}

}  // namespace

void arm(std::string_view name, Spec spec) {
  install_env_once();
  arm_impl(name, spec);
}

void disarm(std::string_view name) { arm(name, Spec{}); }

void disarm_all() {
  install_env_once();
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  for (auto& [name, site] : reg.sites) {
    site.mode.store(static_cast<int>(Mode::kOff), std::memory_order_release);
    reset_site(site, name, reg.global_seed);
  }
}

void set_seed(std::uint64_t new_seed) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  reg.global_seed = new_seed;
  for (auto& [name, site] : reg.sites) {
    reset_site(site, name, reg.global_seed);
  }
}

std::uint64_t seed() {
  install_env_once();
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  return reg.global_seed;
}

std::vector<SiteStats> stats() {
  install_env_once();
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  std::vector<SiteStats> out;
  out.reserve(reg.sites.size());
  for (const auto& [name, site] : reg.sites) {
    SiteStats row;
    row.name = name;
    row.spec.mode =
        static_cast<Mode>(site.mode.load(std::memory_order_acquire));
    row.spec.n = site.n.load(std::memory_order_relaxed);
    const std::uint64_t p_bits = site.p_bits.load(std::memory_order_relaxed);
    std::memcpy(&row.spec.p, &p_bits, sizeof(row.spec.p));
    row.hits = site.hits.load(std::memory_order_relaxed);
    row.fires = site.fires.load(std::memory_order_relaxed);
    out.push_back(std::move(row));
  }
  return out;
}

std::uint64_t hit_count(std::string_view name) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  const auto it = reg.sites.find(name);
  return it == reg.sites.end()
             ? 0
             : it->second.hits.load(std::memory_order_relaxed);
}

std::uint64_t fire_count(std::string_view name) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  const auto it = reg.sites.find(name);
  return it == reg.sites.end()
             ? 0
             : it->second.fires.load(std::memory_order_relaxed);
}

std::vector<std::string_view> catalog() {
  std::vector<std::string_view> out;
  out.reserve(std::size(kCatalog));
  for (const char* name : kCatalog) out.emplace_back(name);
  return out;
}

bool parse_spec(std::string_view text, Spec* out) {
  if (out == nullptr) return false;
  if (text == "on" || text == "always") {
    *out = Spec{Mode::kAlways, 0, 0.0};
    return true;
  }
  if (text == "off") {
    *out = Spec{Mode::kOff, 0, 0.0};
    return true;
  }
  if (text == "once") {
    *out = Spec{Mode::kOnce, 0, 0.0};
    return true;
  }
  if (text.size() > 2 && text.substr(0, 2) == "n:") {
    const std::string digits(text.substr(2));
    char* end = nullptr;
    const unsigned long long v = std::strtoull(digits.c_str(), &end, 10);
    if (end == digits.c_str() || *end != '\0' || v == 0) return false;
    *out = Spec{Mode::kNth, static_cast<std::uint64_t>(v), 0.0};
    return true;
  }
  if (text.size() > 2 && text.substr(0, 2) == "p:") {
    const std::string digits(text.substr(2));
    char* end = nullptr;
    const double v = std::strtod(digits.c_str(), &end);
    if (end == digits.c_str() || *end != '\0' || !(v >= 0.0) || v > 1.0) {
      return false;
    }
    *out = Spec{Mode::kProb, 0, v};
    return true;
  }
  return false;
}

std::size_t apply_env(const char* value) {
  install_env_once();
  return apply_env_impl(value);
}

namespace detail {

Site* site(const char* name) {
  install_env_once();
  return find_or_register(name);
}

bool fired(Site& s) {
  const std::uint64_t k = s.hits.fetch_add(1, std::memory_order_relaxed);
  const Mode mode =
      static_cast<Mode>(s.mode.load(std::memory_order_acquire));
  bool fire = false;
  switch (mode) {
    case Mode::kOff:
      return false;
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kOnce:
      fire = k == 0;
      break;
    case Mode::kNth:
      fire = k + 1 == s.n.load(std::memory_order_relaxed);
      break;
    case Mode::kProb: {
      const std::uint64_t p_bits = s.p_bits.load(std::memory_order_relaxed);
      double p;
      std::memcpy(&p, &p_bits, sizeof(p));
      // The decision for hit #k is a pure function of (site seed, k):
      // replayable under any thread interleaving.  Same bijection +
      // mix as stream_sample_seed.
      const std::uint64_t word =
          SplitMix64(s.seed.load(std::memory_order_relaxed) +
                     0x9e3779b97f4a7c15ULL * (k + 1))
              .next();
      fire = static_cast<double>(word >> 11) * 0x1.0p-53 < p;
      break;
    }
  }
  if (fire) s.fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

}  // namespace detail

}  // namespace af::failpoint
