// FlatArray<T> — a contiguous, read-mostly array that either OWNS its
// elements (a std::vector filled by a builder) or VIEWS externally owned
// memory (a section of an mmap-ed .af1 container, storage/).
//
// The graph substrate was built around std::vector members; the
// out-of-core path (DESIGN.md §11) needs the same Graph object to sit
// directly on top of a read-only file mapping without copying gigabytes
// of CSR arrays. FlatArray is the smallest abstraction that serves both:
// accessors read one (pointer, size) pair regardless of mode, owners
// keep vector value semantics (deep copy, cheap move), and views copy
// shallowly — a view's elements belong to whoever owns the mapping,
// which must outlive every FlatArray (and every copy) pointing into it.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace af {

/// Owning-or-viewing contiguous array. Elements are immutable through
/// this interface; builders fill a std::vector first and hand it over.
template <typename T>
class FlatArray {
 public:
  FlatArray() = default;

  /// Takes ownership of `v`'s elements.
  static FlatArray owned(std::vector<T> v) {
    FlatArray a;
    a.own_ = std::move(v);
    a.data_ = a.own_.data();
    a.size_ = a.own_.size();
    return a;
  }

  /// Views `size` elements at `data` without owning them. The memory
  /// must outlive this array and every copy of it.
  static FlatArray view(const T* data, std::size_t size) {
    FlatArray a;
    a.data_ = data;
    a.size_ = size;
    a.is_view_ = true;
    return a;
  }

  FlatArray(const FlatArray& other)
      : own_(other.own_), size_(other.size_), is_view_(other.is_view_) {
    data_ = is_view_ ? other.data_ : own_.data();
  }

  FlatArray& operator=(const FlatArray& other) {
    if (this != &other) {
      own_ = other.own_;
      size_ = other.size_;
      is_view_ = other.is_view_;
      data_ = is_view_ ? other.data_ : own_.data();
    }
    return *this;
  }

  FlatArray(FlatArray&& other) noexcept
      : own_(std::move(other.own_)),
        size_(other.size_),
        is_view_(other.is_view_) {
    data_ = is_view_ ? other.data_ : own_.data();
    other.reset();
  }

  FlatArray& operator=(FlatArray&& other) noexcept {
    if (this != &other) {
      own_ = std::move(other.own_);
      size_ = other.size_;
      is_view_ = other.is_view_;
      data_ = is_view_ ? other.data_ : own_.data();
      other.reset();
    }
    return *this;
  }

  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  /// True when the elements live in memory this array does not own.
  bool is_view() const { return is_view_; }

 private:
  void reset() {
    own_.clear();
    data_ = nullptr;
    size_ = 0;
    is_view_ = false;
  }

  std::vector<T> own_;
  const T* data_ = nullptr;
  std::size_t size_ = 0;
  bool is_view_ = false;
};

}  // namespace af
