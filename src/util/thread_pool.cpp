#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/numa.hpp"

namespace af {

ThreadPool::ThreadPool(std::size_t threads, ThreadPoolOptions opts) {
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  const int nodes = opts.pin_numa ? numa_topology().num_nodes() : 1;
  // Spawn under the lock: a concurrent size() observes either zero or
  // all workers, and the freshly spawned workers park on mu_ in their
  // wait until the constructor publishes the full vector.
  MutexLock lock(mu_);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i, nodes] {
      // Round-robin node placement before touching any work: shards then
      // run against the worker's node-local index replica.
      if (nodes > 1) pin_thread_to_node(static_cast<int>(i) % nodes);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() { shutdown(DrainPolicy::kDrain); }

void ThreadPool::shutdown(DrainPolicy policy) {
  std::deque<std::function<void()>> discarded;
  std::vector<std::thread> joiners;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    if (policy == DrainPolicy::kDiscard) discarded.swap(queue_);
    // Move the threads out so the join loop below runs without mu_ —
    // workers must be able to take the lock to see stopping_ and exit.
    // A second shutdown finds the vector empty and has nothing to join.
    joiners.swap(workers_);
  }
  cv_.notify_all();
  // Destroy discarded tasks outside the lock: a packaged_task destroyed
  // unfulfilled stores broken_promise into its future, which may wake a
  // waiter immediately.
  discarded.clear();
  for (std::thread& w : joiners) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    MutexLock lock(mu_);
    AF_EXPECTS(!stopping_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mu_);
      cv_.wait(mu_, [this]() AF_REQUIRES(mu_) {
        return stopping_ || !queue_.empty();
      });
      // Drain the queue even when stopping so every submitted future is
      // eventually satisfied.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task: exceptions land in the future, not here
  }
}

}  // namespace af
