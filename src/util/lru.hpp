// SizedLru — a size-aware least-recently-used map.
//
// A plain entry-count LRU is the wrong tool when entries have wildly
// different footprints (the Planner's per-pair realization pools range
// from a few KB to hundreds of MB). SizedLru charges every entry a
// caller-supplied cost — a byte count computed by whatever cost
// functional fits the value type — and evicts from the cold end until
// the charged total fits a fixed budget.
//
// Eviction is split in two so callers can release expensive state
// outside their own locks: evict_over_budget() / take_all() only
// *unlink* victims (O(1) per entry) and move their values into a sink
// vector; the caller destroys or swaps them out after dropping its
// mutex. The container itself is not thread-safe — the Planner guards
// it with its planner-wide mutex (DESIGN.md §8).
//
// budget() == 0 means unbounded: nothing is ever evicted and the
// structure degenerates to an access-ordered map with cost telemetry.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace af {

/// Size-aware LRU map from Key to Value. Every mutating lookup touches
/// the entry (moves it to the hot end); costs are re-stated via charge().
template <typename Key, typename Value>
class SizedLru {
 public:
  explicit SizedLru(std::uint64_t budget_bytes = 0)
      : budget_(budget_bytes) {}

  std::uint64_t budget() const { return budget_; }
  /// Σ cost over retained entries — the accounted footprint.
  std::uint64_t charged() const { return charged_; }
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  /// Entries evicted by evict_over_budget() since construction.
  std::uint64_t evictions() const { return evictions_; }

  /// Finds and touches. Returns nullptr when absent. The pointer is
  /// invalidated by any later mutating call.
  Value* find(const Key& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    touch(it->second);
    return &it->second->value;
  }

  /// True iff present; does not touch (telemetry / tests).
  bool contains(const Key& key) const { return map_.count(key) != 0; }

  /// Inserts a fresh entry at the hot end (the key must be absent) and
  /// charges `cost` for it. Does not evict — call evict_over_budget()
  /// afterwards so victims can be collected into the caller's sink.
  Value& insert(const Key& key, Value value, std::uint64_t cost) {
    AF_EXPECTS(map_.find(key) == map_.end(),
               "SizedLru::insert: key already present");
    order_.push_front(Node{key, std::move(value), cost});
    map_.emplace(key, order_.begin());
    charged_ += cost;
    return order_.front().value;
  }

  /// Re-states an entry's cost and touches it. Returns false when the
  /// key is absent (e.g. it was evicted while the caller worked on it).
  bool charge(const Key& key, std::uint64_t cost) {
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    charged_ += cost - it->second->cost;
    it->second->cost = cost;
    touch(it->second);
    return true;
  }

  /// Removes one entry, moving its value into `out`. Returns false when
  /// absent. Not counted as an eviction.
  bool take(const Key& key, Value& out) {
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    out = std::move(it->second->value);
    unlink(it);
    return true;
  }

  /// Unlinks cold-end entries until charged() ≤ budget() (no-op when the
  /// budget is 0), moving each victim's value into `victims`. Even the
  /// hottest entry is evicted if it alone exceeds the budget: the
  /// accounted total never ends above the budget.
  void evict_over_budget(std::vector<Value>& victims) {
    if (budget_ == 0) return;
    while (charged_ > budget_ && !order_.empty()) {
      auto it = map_.find(order_.back().key);
      victims.push_back(std::move(order_.back().value));
      ++evictions_;
      unlink(it);
    }
  }

  /// Unlinks everything, moving all values into `out` (hot to cold).
  /// Not counted as evictions.
  void take_all(std::vector<Value>& out) {
    out.reserve(out.size() + order_.size());
    for (Node& node : order_) out.push_back(std::move(node.value));
    order_.clear();
    map_.clear();
    charged_ = 0;
  }

 private:
  struct Node {
    Key key;
    Value value;
    std::uint64_t cost;
  };
  using Iter = typename std::list<Node>::iterator;

  void touch(Iter it) { order_.splice(order_.begin(), order_, it); }

  void unlink(typename std::unordered_map<Key, Iter>::iterator it) {
    charged_ -= it->second->cost;
    order_.erase(it->second);
    map_.erase(it);
  }

  std::uint64_t budget_;
  std::uint64_t charged_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<Node> order_;  // front = most recently used
  std::unordered_map<Key, Iter> map_;
};

}  // namespace af
