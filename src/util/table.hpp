// Aligned plain-text tables and CSV output for the experiment binaries.
//
// Every exp_* binary prints the rows the paper's corresponding table or
// figure reports, via TableWriter, and can mirror them to CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace af {

/// Collects rows of string cells and prints them with aligned columns.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt(std::size_t v);
  static std::string fmt(long long v);

  /// Renders the table (header, rule, rows) to the stream.
  void print(std::ostream& os) const;

  /// Writes header+rows as CSV to `path`. Returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace af
