// Named, compile-gated fault-injection registry (DESIGN.md §13).
//
// A failpoint is a named site in production code where a test or a chaos
// run can ask "pretend this just failed".  Sites are spelled with the
// AF_FAILPOINT_* macros below; each name lives in the authoritative
// catalog in failpoint.cpp (af_lint enforces that source names are
// unique and registered).  Arming is programmatic (`arm()`) or via the
// environment:
//
//   AF_FAILPOINTS=planner.pair_alloc=p:0.01,storage.read_validate=once
//   AF_FAILPOINTS_SEED=42
//
// Spec grammar per site: `on` (every hit) | `off` | `once` (first hit
// after arming) | `n:<k>` (exactly the k-th hit after arming) | `p:<f>`
// (each hit independently with probability f).
//
// Determinism: a probabilistic site's fire decision is a pure function
// of (site seed, hit ordinal) — SplitMix64 keyed on the global seed, the
// site name, and the per-site hit counter — so a chaos schedule replays
// identically regardless of thread interleaving, and a crash report's
// (seed, schedule) pair reproduces the exact fault sequence.
//
// Cost: the macros compile to nothing unless the build sets
// AF_FAILPOINTS_ENABLED (CMake option AF_FAILPOINTS, OFF by default —
// Release binaries carry zero overhead).  The registry TU itself is
// always compiled so arm()/stats() stay linkable from tests that
// GTEST_SKIP when the macros are compiled out.
#pragma once

#include <cstdint>
#include <new>
#include <string>
#include <string_view>
#include <vector>

namespace af::failpoint {

/// How an armed site decides to fire (see file comment for the grammar).
enum class Mode : int { kOff = 0, kAlways, kOnce, kNth, kProb };

/// An arming request: mode plus the mode's parameter (n for kNth, p for
/// kProb; both ignored otherwise).
struct Spec {
  Mode mode = Mode::kOff;
  std::uint64_t n = 0;
  double p = 0.0;
};

/// One registered site's counters, as observed by stats().
struct SiteStats {
  std::string name;
  Spec spec;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

/// True when this build compiled the AF_FAILPOINT_* macros in.
constexpr bool compiled_in() {
#if defined(AF_FAILPOINTS_ENABLED)
  return true;
#else
  return false;
#endif
}

/// Arms `name` with `spec`, resetting its hit/fire counters so kOnce /
/// kNth count from this arming.  Unknown names are registered on the
/// fly (af_lint keeps *source* sites inside the catalog; tests may use
/// scratch names).
void arm(std::string_view name, Spec spec);

/// Equivalent to arm(name, {kOff}).
void disarm(std::string_view name);

/// Disarms every registered site and clears all counters.
void disarm_all();

/// Reseeds deterministic firing and clears all counters.  The default
/// seed is 0 unless AF_FAILPOINTS_SEED overrides it.
void set_seed(std::uint64_t seed);
std::uint64_t seed();

/// Snapshot of every registered site, ordered by name.
std::vector<SiteStats> stats();

/// Counters for one site (0 if the name was never registered).
std::uint64_t hit_count(std::string_view name);
std::uint64_t fire_count(std::string_view name);

/// The authoritative site catalog (sorted).  af_lint checks that the
/// names spelled at AF_FAILPOINT_* sites in src/ equal this set.
std::vector<std::string_view> catalog();

/// Parses one spec token (`on`, `off`, `once`, `n:<k>`, `p:<f>`).
/// Returns false (out untouched) on malformed input.
bool parse_spec(std::string_view text, Spec* out);

/// Applies an AF_FAILPOINTS-format string (`name=spec,name=spec,...`),
/// arming each well-formed entry; malformed entries are skipped with a
/// warning.  Returns the number of sites armed.
std::size_t apply_env(const char* value);

/// The compiled-out form of AF_FAILPOINT_FIRED: keeps the call site a
/// real expression (no constant-folding warnings, name stays spelled)
/// while guaranteeing zero work.
constexpr bool never(const char* /*name*/) noexcept { return false; }

namespace detail {

struct Site;  // registry node; defined in failpoint.cpp

/// Looks up (registering if absent) the site for `name`.  The returned
/// pointer is stable for the process lifetime — call sites cache it in
/// a function-local static.
Site* site(const char* name);

/// Records a hit on `s` and returns whether the armed spec fires.
bool fired(Site& s);

}  // namespace detail

}  // namespace af::failpoint

// AF_FAILPOINT_FIRED("layer.site") — evaluates to true when the named
// failpoint is armed and fires on this hit.  The site pointer is cached
// in a function-local static, so steady-state cost is one relaxed
// fetch_add plus an acquire load.
#if defined(AF_FAILPOINTS_ENABLED)
#define AF_FAILPOINT_FIRED(name)                                          \
  ([]() -> bool {                                                         \
    static ::af::failpoint::detail::Site* af_fp_site =                    \
        ::af::failpoint::detail::site(name);                              \
    return ::af::failpoint::detail::fired(*af_fp_site);                   \
  }())
#else
#define AF_FAILPOINT_FIRED(name) (::af::failpoint::never(name))
#endif

// AF_FAILPOINT_ALLOC("layer.site") — models an allocation failure: when
// the site fires, throws std::bad_alloc so the injected fault exercises
// exactly the code path a real OOM would take.
#define AF_FAILPOINT_ALLOC(name)                       \
  do {                                                 \
    if (AF_FAILPOINT_FIRED(name)) throw std::bad_alloc(); \
  } while (false)
