#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace af {

namespace {
// Atomic: worker threads consult the threshold on every log call while a
// test harness or experiment main may flip it concurrently (surfaced by
// the thread-safety annotation rollout, DESIGN.md §12). Relaxed order is
// enough — the threshold is an independent filter knob, not a publication
// flag for other data.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  const LogLevel threshold = g_level.load(std::memory_order_relaxed);
  if (static_cast<int>(level) < static_cast<int>(threshold)) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace af
