// Huge-page-backed storage for the sampling hot path's big flat tables.
//
// The backward walk touches one ~random alias slot per step inside a
// tens-of-MB table. On 4 KiB pages that working set spans ~9k pages:
// nearly every step misses the dTLB, each miss costs a guest page walk
// (plus the EPT dimension under virtualization), and — decisive for
// DESIGN.md §9 — x86 software prefetch hints are DROPPED on dTLB misses,
// so the walker's exact-slot prefetch cannot hide what the TLB cannot
// map. Backing the table with 2 MiB pages covers it with a few dozen
// dTLB entries: walks stop page-walking and the prefetches land.
// Measured on the youtube analog (35 MB of slots, 16 lanes): ~37 ns/draw
// malloc-backed vs ~15 ns/draw huge-page-backed with prefetch.
//
// HugeBuffer<T> is the minimal owning array this needs: a fixed-size,
// move-only buffer that mmaps a 2 MiB-aligned anonymous region and asks
// for huge pages via madvise(MADV_HUGEPAGE) — cooperating with THP
// "madvise" mode, the common production default — and degrades to plain
// new[] on non-Linux hosts, for small buffers (< one huge page), when
// the mmap fails, or under AF_HUGEPAGES=off (the A/B kill switch).
// Storage never changes results: the tables hold the same bytes either
// way.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace af {

namespace detail {

/// mmaps ≥ `bytes` of anonymous memory, returns a 2 MiB-aligned pointer
/// into it and reports the raw mapping through base/len for unmap.
/// Applies MADV_HUGEPAGE to the aligned span. nullptr = unavailable
/// (non-Linux, mmap failure, or AF_HUGEPAGES=off) — caller falls back.
void* map_huge_region(std::size_t bytes, void** map_base,
                      std::size_t* map_len);
void unmap_region(void* map_base, std::size_t map_len);

/// True unless AF_HUGEPAGES=off/0 (checked once per process).
bool huge_pages_enabled();

}  // namespace detail

/// Asks the kernel to back an existing *file-backed* mapping with huge
/// pages: madvise(MADV_HUGEPAGE) over the 2 MiB-aligned interior of
/// [addr, addr+bytes). File-backed maps behave differently from the
/// anonymous ones HugeBuffer owns — read-only file THP needs kernel
/// support (CONFIG_READ_ONLY_THP_FOR_FS) and many kernels reject the
/// advice with EINVAL. Failure is therefore expected on some hosts: it
/// is reported with ONE logged warning per process (never silence, never
/// an error — the mapping keeps working on 4 KiB pages) and a false
/// return. No-op false under AF_HUGEPAGES=off, on non-Linux hosts, or
/// when the aligned interior is smaller than one huge page.
bool advise_file_hugepages(void* addr, std::size_t bytes);

/// Fixed-size, move-only array in (preferably) huge-page-backed memory.
/// Elements start uninitialized — every consumer fills the whole buffer
/// during construction of its owner. Trivial T only: the buffer never
/// runs constructors or destructors element-wise.
template <typename T>
class HugeBuffer {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "HugeBuffer is raw storage: trivial element types only");

 public:
  HugeBuffer() = default;

  /// Allocates `count` elements. `prefer_huge` = false forces the plain
  /// new[] path (the bench's faithful 4 KiB-page baseline).
  explicit HugeBuffer(std::size_t count, bool prefer_huge = true) {
    allocate(count, prefer_huge);
  }

  /// Adopts `count` elements at `data` as a non-owning VIEW — the
  /// zero-copy path over an mmap-ed .af1 section (storage/, DESIGN.md
  /// §11). The memory belongs to the mapping, which must outlive this
  /// buffer; it is typically PROT_READ, so writing through the buffer is
  /// undefined (every view consumer is read-only after construction).
  void adopt_view(const T* data, std::size_t count) {
    release();
    data_ = const_cast<T*>(data);
    size_ = count;
    view_ = true;
  }

  /// True when the elements live in memory this buffer does not own.
  bool is_view() const { return view_; }

  HugeBuffer(const HugeBuffer&) = delete;
  HugeBuffer& operator=(const HugeBuffer&) = delete;

  HugeBuffer(HugeBuffer&& other) noexcept { swap(other); }
  HugeBuffer& operator=(HugeBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  ~HugeBuffer() { release(); }

  void allocate(std::size_t count, bool prefer_huge = true) {
    release();
    if (count == 0) return;
    const std::size_t bytes = count * sizeof(T);
    // Below one huge page there is nothing to map hugely; above it, try
    // the aligned mapping and fall back silently (correctness never
    // depends on the page size).
    if (prefer_huge && detail::huge_pages_enabled() &&
        bytes >= (std::size_t{2} << 20)) {
      data_ = static_cast<T*>(
          detail::map_huge_region(bytes, &map_base_, &map_len_));
    }
    if (data_ == nullptr) {
      map_base_ = nullptr;
      map_len_ = 0;
      data_ = new T[count];
    }
    size_ = count;
  }

  std::size_t size() const { return size_; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  /// Whether the buffer landed in the huge-page mapping (telemetry).
  bool on_huge_pages() const { return map_base_ != nullptr; }

  /// Bytes owned (payload; mapping slack for alignment not counted —
  /// it is ≤ 4 MiB per buffer and reclaimable by the OS as untouched
  /// pages).
  std::size_t memory_bytes() const { return size_ * sizeof(T); }

 private:
  void release() {
    if (view_) {
      // The mapping owns the memory; nothing to free.
    } else if (map_base_ != nullptr) {
      detail::unmap_region(map_base_, map_len_);
    } else {
      delete[] data_;
    }
    data_ = nullptr;
    size_ = 0;
    map_base_ = nullptr;
    map_len_ = 0;
    view_ = false;
  }

  void swap(HugeBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(map_base_, other.map_base_);
    std::swap(map_len_, other.map_len_);
    std::swap(view_, other.view_);
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_base_ = nullptr;  // non-null ⟺ mmap path owns the storage
  std::size_t map_len_ = 0;
  bool view_ = false;  // non-owning view of external (mapped) memory
};

}  // namespace af
