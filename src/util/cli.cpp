#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "util/contracts.hpp"

namespace af {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_int(const std::string& name, std::int64_t def,
                        const std::string& help) {
  AF_EXPECTS(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{Kind::kInt, help, std::to_string(def)};
  order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, double def,
                           const std::string& help) {
  AF_EXPECTS(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{Kind::kDouble, help, std::to_string(def)};
  order_.push_back(name);
}

void ArgParser::add_string(const std::string& name, std::string def,
                           const std::string& help) {
  AF_EXPECTS(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{Kind::kString, help, std::move(def)};
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  AF_EXPECTS(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{Kind::kFlag, help, "0"};
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::cerr << program_ << ": unexpected positional argument '" << arg
                << "'\n";
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      std::cerr << program_ << ": unknown option '--" << name << "'\n";
      return false;
    }
    if (it->second.kind == Kind::kFlag) {
      it->second.value = has_value ? value : "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::cerr << program_ << ": option '--" << name
                  << "' expects a value\n";
        return false;
      }
      value = argv[++i];
    }
    // Validate numeric options eagerly so errors point at the bad flag.
    if (it->second.kind == Kind::kInt) {
      char* end = nullptr;
      (void)std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        std::cerr << program_ << ": option '--" << name
                  << "' expects an integer, got '" << value << "'\n";
        return false;
      }
    } else if (it->second.kind == Kind::kDouble) {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        std::cerr << program_ << ": option '--" << name
                  << "' expects a number, got '" << value << "'\n";
        return false;
      }
    }
    it->second.value = value;
  }
  return true;
}

const ArgParser::Option& ArgParser::find(const std::string& name,
                                         Kind kind) const {
  auto it = options_.find(name);
  AF_EXPECTS(it != options_.end(), "option was never declared: " + name);
  AF_EXPECTS(it->second.kind == kind, "option type mismatch: " + name);
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::strtoll(find(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name) const {
  return std::strtod(find(name, Kind::kDouble).value.c_str(), nullptr);
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool ArgParser::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).value != "0";
}

void add_sampling_flags(ArgParser& args, std::uint64_t default_seed,
                        std::uint64_t default_eval_samples) {
  args.add_int("seed", static_cast<std::int64_t>(default_seed), "RNG seed");
  args.add_int("eval-samples", static_cast<std::int64_t>(default_eval_samples),
               "Monte-Carlo samples per f(I) evaluation");
}

void add_experiment_flags(ArgParser& args, std::size_t default_pairs) {
  args.add_flag("full", "paper-scale parameters (slow)");
  add_sampling_flags(args, ExperimentEnv{}.seed, ExperimentEnv{}.eval_samples);
  args.add_int("pairs", static_cast<std::int64_t>(default_pairs),
               "number of (s,t) pairs per dataset (paper: 500)");
  args.add_string("datasets", ExperimentEnv{}.datasets,
                  "comma-separated dataset analogs to run");
  args.add_string("csv", "", "also write results to this CSV path prefix");
}

ExperimentEnv read_experiment_env(const ArgParser& args) {
  ExperimentEnv env;
  env.full = args.get_flag("full");
  env.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  env.pairs = static_cast<std::size_t>(args.get_int("pairs"));
  env.eval_samples = static_cast<std::uint64_t>(args.get_int("eval-samples"));
  env.datasets = args.get_string("datasets");
  env.csv = args.get_string("csv");
  return env;
}

std::vector<std::string> split_csv_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<double> parse_double_list(const std::string& s) {
  std::vector<double> out;
  for (const std::string& tok : split_csv_list(s)) {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) {
      throw std::invalid_argument("malformed number in list: '" + tok + "'");
    }
    out.push_back(v);
  }
  return out;
}

void ArgParser::print_help() const {
  std::cout << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const auto& opt = options_.at(name);
    std::string left = "  --" + name;
    if (opt.kind != Kind::kFlag) left += " <value>";
    std::printf("%-34s %s", left.c_str(), opt.help.c_str());
    if (opt.kind != Kind::kFlag) std::printf(" (default: %s)", opt.value.c_str());
    std::printf("\n");
  }
}

}  // namespace af
