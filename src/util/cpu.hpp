// Runtime CPU feature detection for the batched selection kernels.
//
// The vector kernels live in dedicated translation units compiled with
// their ISA flags (diffusion/sampling_index_avx2.cpp with -mavx2,
// sampling_index_avx512.cpp with -mavx512f -mavx512dq,
// sampling_index_neon.cpp on AArch64) while the rest of the library
// stays portable (no -march=native anywhere): whether a kernel may
// *run* is decided once, at index construction, by resolve_simd_level().
// Three gates stack, strictest wins:
//
//   1. build time — the AF_SIMD CMake option; OFF omits every vector TU
//      (the AF_HAVE_*_KERNELS defines tell this TU which were built);
//   2. hardware  — __builtin_cpu_supports on x86 (NEON is baseline on
//      AArch64, so the build gate alone decides there);
//   3. runtime   — the AF_SIMD environment variable: "off"/"scalar"/"0"
//      forces the portable kernel on any binary (the CI fallback leg and
//      A/B debugging both use this); "avx2"/"avx512"/"neon" force one
//      vector leg, degrading down its family where unavailable.
//
// Dispatch is a per-index function pointer, not per-call branching, and
// the kernels are bit-identical by construction (DESIGN.md §9), so the
// choice is invisible to results — only to throughput. Which leg kAuto
// picks is not decided here: diffusion/sampling_index runs an N-way
// measured tournament over every compiled-and-supported kernel and
// dispatches to the winner (memoized per index flavor and table size
// class).
#pragma once

namespace af {

/// Instruction-set level of the batched selection kernels.
enum class SimdLevel {
  /// Resolve at construction: the measured tournament winner among every
  /// level the build, the CPU and the AF_SIMD environment variable allow.
  kAuto,
  /// The portable scalar kernel.
  kScalar,
  /// AVX2 gathers (4 lanes of Lemire multiply-shift + fused-slot gather).
  kAvx2,
  /// AVX-512 gathers (8 lanes of vpgatherqq + mask-register remainder).
  kAvx512,
  /// AArch64 NEON (2-lane vectorized multiply-shift + alias coin; loads
  /// stay scalar — NEON has no gather).
  kNeon,
};

/// Number of concrete (non-kAuto) kernel levels — the portfolio size.
inline constexpr int kSimdKernelCount = 4;

/// Dense ordinal of a concrete level (kScalar=0, kAvx2=1, kAvx512=2,
/// kNeon=3) for calibration tables and bench counters. kAuto maps to 0.
int simd_kernel_ordinal(SimdLevel level);

/// Short stable name ("scalar", "avx2", "avx512", "neon") for logs and
/// bench counters.
const char* to_string(SimdLevel level);

/// True iff that level's kernel TU was compiled into this binary.
/// kScalar (and kAuto) report true — the portable kernel always exists.
bool compiled_simd_kernels(SimdLevel level);

/// True iff the AVX2 kernel TU was compiled into this binary.
/// (Equivalent to compiled_simd_kernels(kAvx2); kept for callers of the
/// pre-portfolio API.)
bool compiled_avx2_kernels();

/// True iff `level`'s kernel is both compiled into this binary AND
/// supported by the running CPU — i.e. dispatching to it cannot fault.
/// Ignores the AF_SIMD environment variable; kScalar is always true.
bool simd_level_available(SimdLevel level);

/// Clamps `requested` to what build, hardware and the AF_SIMD env var
/// allow. Never returns kAuto; kScalar is always honoured. A non-auto
/// AF_SIMD value overrides `requested` entirely (it is the operator's
/// knob); an unavailable level degrades down its ISA family
/// (kAvx512 → kAvx2 → kScalar; kNeon → kScalar) instead of faulting.
/// kAuto resolves to the best available level — the *ceiling*; whether
/// kAuto actually dispatches there is the tournament's call
/// (diffusion/sampling_index). Detection is performed once per process
/// and cached.
SimdLevel resolve_simd_level(SimdLevel requested = SimdLevel::kAuto);

/// What the AF_SIMD environment variable names, if anything:
/// "off"/"scalar"/"0" → kScalar, "avx2" → kAvx2, "avx512" → kAvx512,
/// "neon" → kNeon, unset/"auto" → kAuto. Any other value warns once to
/// stderr (naming the accepted spellings) and falls back to kAuto — a
/// typo like "avx51" must not silently change behavior. A concrete
/// request skips the construction-time kernel tournament that kAuto
/// runs (diffusion/sampling_index) — ISA support alone does not make
/// gathers a win on every part (virtualized gathers in particular can
/// lose to the scalar kernel), so kAuto measures; the env var overrides
/// the measurement in either direction.
SimdLevel simd_env_request();

namespace detail {
/// Parses one AF_SIMD spelling (nullptr = unset). Split out so tests can
/// pin the mapping — including the warn-once fallback for unknown values
/// — without mutating process environment state.
SimdLevel parse_af_simd(const char* value);
}  // namespace detail

}  // namespace af
