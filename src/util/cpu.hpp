// Runtime CPU feature detection for the batched selection kernels.
//
// The AVX2 kernels (diffusion/sampling_index_avx2.cpp) are compiled into
// a dedicated translation unit with -mavx2 while the rest of the library
// stays portable (no -march=native anywhere): whether they may *run* is
// decided once, at index construction, by resolve_simd_level(). Three
// gates stack, strictest wins:
//
//   1. build time — the AF_SIMD CMake option; OFF omits the AVX2 TU
//      entirely (the AF_HAVE_AVX2_KERNELS define tells this TU so);
//   2. hardware  — __builtin_cpu_supports("avx2") on x86;
//   3. runtime   — the AF_SIMD environment variable: "off"/"scalar"/"0"
//      forces the portable kernel on a binary built with the AVX2 TU
//      (the CI fallback leg and A/B debugging both use this).
//
// Dispatch is a per-index function pointer, not per-call branching, and
// the kernels are bit-identical by construction (DESIGN.md §9), so the
// choice is invisible to results — only to throughput.
#pragma once

namespace af {

/// Instruction-set level of the batched selection kernels.
enum class SimdLevel {
  /// Resolve at construction: the best level the build, the CPU and the
  /// AF_SIMD environment variable all allow.
  kAuto,
  /// The portable scalar kernel.
  kScalar,
  /// AVX2 gathers (4 lanes of Lemire multiply-shift + fused-slot gather).
  kAvx2,
};

/// Short stable name ("scalar", "avx2") for logs and bench counters.
const char* to_string(SimdLevel level);

/// True iff the AVX2 kernel TU was compiled into this binary.
bool compiled_avx2_kernels();

/// Clamps `requested` to what build, hardware and the AF_SIMD env var
/// allow. Never returns kAuto; kScalar is always honoured. Detection is
/// performed once per process and cached.
SimdLevel resolve_simd_level(SimdLevel requested = SimdLevel::kAuto);

/// What the AF_SIMD environment variable names, if anything:
/// "off"/"scalar"/"0" → kScalar, "avx2" → kAvx2, unset/other → kAuto.
/// A kAvx2 request skips the construction-time kernel calibration that
/// kAuto runs (diffusion/sampling_index) — ISA support alone does not
/// make gathers a win on every part (virtualized gathers in particular
/// can lose to the scalar kernel), so kAuto measures; the env var
/// overrides the measurement in either direction.
SimdLevel simd_env_request();

}  // namespace af
