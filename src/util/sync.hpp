// Annotated synchronization primitives (util layer: no dependency above
// it) — thin wrappers over the std types carrying the thread-safety
// capability attributes from util/thread_annotations.hpp.
//
// Why wrappers instead of annotating call sites: Clang's analysis tracks
// capabilities through *annotated* lock/unlock functions. libstdc++'s
// std::mutex and std::lock_guard are unannotated, so a `std::lock_guard
// lock(mu_);` acquires nothing as far as the analysis can see and every
// guarded-member access after it would be flagged. af::Mutex composes a
// std::mutex and annotates its three operations; af::MutexLock /
// af::ReleasableMutexLock are the scoped holders the analysis understands;
// af::CondVar wraps std::condition_variable_any so waiting can be
// expressed directly on the annotated Mutex (the wrapper's wait keeps the
// AF_REQUIRES precondition visible to callers).
//
// Cost: Mutex is exactly a std::mutex. CondVar uses
// condition_variable_any (one extra internal mutex per condvar) instead
// of condition_variable; the queues these guard carry millisecond-scale
// serving tasks, so the nanoseconds difference is noise — the same trade
// util/thread_pool and util/mpmc_queue already document for their locked
// designs. Off Clang the annotations vanish and only that thin wrapping
// remains.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/thread_annotations.hpp"

namespace af {

/// An exclusive capability: std::mutex plus the annotations that let
/// Clang check which state it guards (AF_GUARDED_BY members name one).
class AF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AF_ACQUIRE() { mu_.lock(); }
  void unlock() AF_RELEASE() { mu_.unlock(); }
  bool try_lock() AF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII holder: acquires at construction, releases at scope exit — the
/// annotated equivalent of std::lock_guard.
class AF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() AF_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII holder that can hand the capability back early — for the
/// "compute under the lock, then run the expensive tail outside it"
/// pattern (core/planner's covering step). The destructor releases only
/// if unlock() was never called.
class AF_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex& mu) AF_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
  }
  ~ReleasableMutexLock() AF_RELEASE() {
    if (mu_ != nullptr) mu_->unlock();
  }

  /// Releases the capability now instead of at scope exit. Must be held.
  void unlock() AF_RELEASE() {
    mu_->unlock();
    mu_ = nullptr;
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable over af::Mutex. wait() takes the Mutex itself (not
/// a lock object), so the AF_REQUIRES precondition names the capability
/// the analysis is tracking; the predicate lambda should carry its own
/// AF_REQUIRES for the guarded state it reads.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits until `pred()` is true, and
  /// reacquires `mu` before returning. Spurious wakeups are absorbed by
  /// the predicate loop, exactly like std::condition_variable::wait.
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) AF_REQUIRES(mu) {
    // condition_variable_any treats the Mutex as its BasicLockable; the
    // unlock/relock pairs happen inside the std implementation, which the
    // (intraprocedural) analysis does not look into — the net effect at
    // this boundary is "held before, held after", which is what the
    // AF_REQUIRES annotation states.
    cv_.wait(mu, std::move(pred));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace af
