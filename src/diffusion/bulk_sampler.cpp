#include "diffusion/bulk_sampler.hpp"

#include <algorithm>
#include <array>
#include <future>
#include <numeric>

#include "diffusion/index_replicas.hpp"

namespace af {

namespace {

/// Below this many samples the walk work cannot amortize shard setup:
/// run inline.
constexpr std::uint64_t kMinParallelSamples = 4096;

/// Where a shard's selection strategy comes from: a fixed sampler, or a
/// node-replicated set resolved on the worker thread the shard lands on
/// (so each shard walks its node-local tables). Either way the tables
/// are identical, so resolution cannot change a bit.
struct SamplerSource {
  const SelectionSampler* fixed = nullptr;
  const IndexReplicas* replicas = nullptr;

  const SelectionSampler& resolve() const {
    return fixed != nullptr ? *fixed : replicas->local();
  }
};

/// Runs samples [first, first+count) through cfg.lanes interleaved
/// walks, invoking finish(index, type1, path) as each walk completes.
///
/// The per-step work across all live lanes is ONE
/// sample_selection_batch call over SoA lane state (cur[]/rng[]/nxt[]),
/// so the alias indexes amortize dispatch and run their SIMD kernels;
/// each continuing lane then prefetches its *next* slot line before the
/// sweep moves on — by the time the next batch call reads it, the line
/// has had the rest of the sweep to arrive.
///
/// A sample's outcome depends only on its counter-derived stream (never
/// on lane scheduling), so lane width — like sharding — cannot change
/// any result; only the completion ORDER varies, and callers needing
/// stream order sort by index. The per-step case analysis is the shared
/// classify_walk_step, so this stays equivalent to
/// ReversePathSampler::sample_into by construction. Exhausted lanes are
/// swap-compacted to the tail so the batch call always sees a dense
/// prefix of live lanes.
/// One bit of a lane's 64-bit visited-set Bloom filter. Top 6 bits of a
/// golden-ratio multiply — a pure function of the node id, so the filter
/// is deterministic and shared by nothing.
inline std::uint64_t bloom_bit(NodeId v) {
  return std::uint64_t{1}
         << ((v * 0x9e3779b97f4a7c15ULL) >> 58);
}

template <typename FinishFn>
void run_lanes(const FriendingInstance& inst, const SelectionSampler& sel,
               std::uint64_t first, std::uint64_t count, std::uint64_t root,
               const BulkWalkConfig& cfg, FinishFn&& finish) {
  const NodeId t = inst.target();
  const std::size_t lanes =
      std::clamp<std::size_t>(cfg.lanes, 1, BulkWalkConfig::kMaxLanes);

  std::array<NodeId, BulkWalkConfig::kMaxLanes> cur;
  std::array<NodeId, BulkWalkConfig::kMaxLanes> nxt;
  std::array<Rng, BulkWalkConfig::kMaxLanes> rng;
  std::array<std::uint64_t, BulkWalkConfig::kMaxLanes> index;
  std::array<std::vector<NodeId>, BulkWalkConfig::kMaxLanes> path;
  // Per-lane Bloom filter over the walk's visited set: the revisit scan
  // (Alg. 1's cycle check) only runs when the drawn node's bit is
  // already set. Walks average ~11 nodes, so the 64-bit filter stays
  // sparse and the scan — a data-dependent loop whose mispredicts
  // dominated classification — is skipped for most steps. A false
  // positive just runs the scan; outcomes are bit-identical.
  std::array<std::uint64_t, BulkWalkConfig::kMaxLanes> bloom;

  // Shared high-water walk depth: every (re)launch reserves the longest
  // path seen by ANY lane of this shard, so lanes stop re-growing their
  // vectors from zero capacity after the first deep walk.
  std::size_t high_water = 0;

  std::uint64_t next_sample = first;
  const std::uint64_t end = first + count;
  std::size_t live = 0;

  const auto launch = [&](std::size_t slot) {
    if (next_sample >= end) return false;
    index[slot] = next_sample++;
    rng[slot].reseed(stream_sample_seed(root, index[slot]));
    cur[slot] = t;
    path[slot].clear();
    path[slot].reserve(high_water);
    path[slot].push_back(t);
    bloom[slot] = bloom_bit(t);
    return true;
  };
  while (live < lanes && launch(live)) ++live;

  while (live > 0) {
    // The fused entry point prefetches each lane's next slot line right
    // after its draw (one virtual call per sweep covers both); the
    // non-prefetch path is kept for the bench ablation.
    if (cfg.prefetch) {
      sel.sample_selection_batch_prefetch(cur.data(), rng.data(),
                                          nxt.data(), live);
    } else {
      sel.sample_selection_batch(cur.data(), rng.data(), nxt.data(), live);
    }
    for (std::size_t i = 0; i < live;) {
      // Alg. 1's case analysis (classify_walk_step semantics) with the
      // Bloom filter gating the revisit scan.
      const NodeId nx = nxt[i];
      WalkStep step;
      std::uint64_t bit = 0;
      if (nx == kNoNode) {
        step = WalkStep::kDied;
      } else if (inst.is_initial_friend(nx)) {
        step = WalkStep::kReachedNs;
      } else if (bit = bloom_bit(nx); (bloom[i] & bit) == 0) {
        step = WalkStep::kContinue;  // definitely unvisited: no scan
      } else {
        step = classify_walk_step(inst, nx, path[i]);
      }
      if (step == WalkStep::kContinue) {
        path[i].push_back(nx);
        bloom[i] |= bit;
        cur[i] = nx;
        ++i;
        continue;
      }
      high_water = std::max(high_water, path[i].size());
      finish(index[i], step == WalkStep::kReachedNs, path[i]);
      if (launch(i)) {
        ++i;
      } else {
        // Stream exhausted: swap-compact lane `live-1` into slot i. Its
        // nxt[] was computed this sweep but not yet classified, so the
        // slot is reprocessed (no ++i).
        --live;
        if (i != live) {
          std::swap(cur[i], cur[live]);
          std::swap(nxt[i], nxt[live]);
          std::swap(rng[i], rng[live]);
          std::swap(index[i], index[live]);
          std::swap(bloom[i], bloom[live]);
          path[i].swap(path[live]);
        }
      }
    }
  }
}

/// Samples one contiguous stream window, returning type-1 paths in
/// stream order.
BulkType1Paths sample_shard(const FriendingInstance& inst,
                            const SelectionSampler& sel, std::uint64_t first,
                            std::uint64_t count, std::uint64_t root,
                            const BulkWalkConfig& cfg) {
  // Capture in completion order, then restore stream order.
  PathArena unordered;
  std::vector<std::uint64_t> pos;
  run_lanes(inst, sel, first, count, root, cfg,
            [&](std::uint64_t idx, bool type1,
                const std::vector<NodeId>& path) {
              if (!type1) return;
              unordered.push_path(path);
              pos.push_back(idx);
            });

  std::vector<std::uint32_t> perm(pos.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(),
            [&](std::uint32_t a, std::uint32_t b) { return pos[a] < pos[b]; });

  BulkType1Paths out;
  out.paths.reserve(unordered.size(), unordered.total_nodes());
  out.positions.reserve(pos.size());
  for (const std::uint32_t k : perm) {
    out.paths.push_path(unordered[k]);
    out.positions.push_back(pos[k]);
  }
  return out;
}

/// Splits [first, first+count) into shards sized so every worker gets a
/// few, runs `task` per shard on the pool, returns results in stream
/// order.
template <typename ShardFn>
auto run_sharded(std::uint64_t first, std::uint64_t count, ThreadPool* pool,
                 ShardFn&& task) {
  using Result = decltype(task(first, count));
  const std::uint64_t shards = std::min<std::uint64_t>(
      count, static_cast<std::uint64_t>(pool->size()) * 4);
  const std::uint64_t per_shard = (count + shards - 1) / shards;
  std::vector<std::future<Result>> futures;
  futures.reserve(shards);
  for (std::uint64_t lo = 0; lo < count; lo += per_shard) {
    const std::uint64_t hi = std::min(lo + per_shard, count);
    futures.push_back(pool->submit(
        [&task, first, lo, hi] { return task(first + lo, hi - lo); }));
  }
  std::vector<Result> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

BulkType1Paths bulk_impl(const FriendingInstance& inst,
                         const SamplerSource& source, std::uint64_t first,
                         std::uint64_t count, std::uint64_t root,
                         ThreadPool* pool, const BulkWalkConfig& cfg) {
  if (count == 0) return {};
  if (pool == nullptr || pool->size() <= 1 || count < kMinParallelSamples) {
    return sample_shard(inst, source.resolve(), first, count, root, cfg);
  }
  auto shards = run_sharded(
      first, count, pool, [&](std::uint64_t lo, std::uint64_t cnt) {
        // Resolved here, on the worker thread: replicated indexes hand
        // each shard its node-local copy.
        return sample_shard(inst, source.resolve(), lo, cnt, root, cfg);
      });
  BulkType1Paths out;
  std::size_t paths = 0, nodes = 0;
  for (const auto& s : shards) {
    paths += s.paths.size();
    nodes += s.paths.total_nodes();
  }
  out.paths.reserve(paths, nodes);
  out.positions.reserve(paths);
  for (const auto& s : shards) {
    out.paths.append(s.paths);
    out.positions.insert(out.positions.end(), s.positions.begin(),
                         s.positions.end());
  }
  return out;
}

void flags_impl(const FriendingInstance& inst, const SamplerSource& source,
                std::uint64_t first, std::uint64_t count, std::uint64_t root,
                ThreadPool* pool, std::uint8_t* out,
                const BulkWalkConfig& cfg) {
  if (count == 0) return;
  const auto fill = [&](std::uint64_t lo, std::uint64_t cnt) {
    // Shard windows are disjoint, so concurrent writes never overlap;
    // each flag's slot is fixed, so completion order is irrelevant.
    run_lanes(inst, source.resolve(), lo, cnt, root, cfg,
              [&](std::uint64_t idx, bool type1, const std::vector<NodeId>&) {
                out[idx - first] = type1 ? 1 : 0;
              });
    return true;
  };
  if (pool == nullptr || pool->size() <= 1 || count < kMinParallelSamples) {
    fill(first, count);
    return;
  }
  run_sharded(first, count, pool, fill);
}

}  // namespace

BulkType1Paths sample_type1_bulk(const FriendingInstance& inst,
                                 const SelectionSampler& sel,
                                 std::uint64_t first, std::uint64_t count,
                                 std::uint64_t root, ThreadPool* pool,
                                 const BulkWalkConfig& cfg) {
  return bulk_impl(inst, {.fixed = &sel}, first, count, root, pool, cfg);
}

BulkType1Paths sample_type1_bulk(const FriendingInstance& inst,
                                 const IndexReplicas& replicas,
                                 std::uint64_t first, std::uint64_t count,
                                 std::uint64_t root, ThreadPool* pool,
                                 const BulkWalkConfig& cfg) {
  return bulk_impl(inst, {.replicas = &replicas}, first, count, root, pool,
                   cfg);
}

void sample_type1_flags(const FriendingInstance& inst,
                        const SelectionSampler& sel, std::uint64_t first,
                        std::uint64_t count, std::uint64_t root,
                        ThreadPool* pool, std::uint8_t* out,
                        const BulkWalkConfig& cfg) {
  flags_impl(inst, {.fixed = &sel}, first, count, root, pool, out, cfg);
}

void sample_type1_flags(const FriendingInstance& inst,
                        const IndexReplicas& replicas, std::uint64_t first,
                        std::uint64_t count, std::uint64_t root,
                        ThreadPool* pool, std::uint8_t* out,
                        const BulkWalkConfig& cfg) {
  flags_impl(inst, {.replicas = &replicas}, first, count, root, pool, out,
             cfg);
}

}  // namespace af
