#include "diffusion/bulk_sampler.hpp"

#include <algorithm>
#include <array>
#include <future>
#include <numeric>

namespace af {

namespace {

/// Below this many samples the walk work cannot amortize shard setup:
/// run inline.
constexpr std::uint64_t kMinParallelSamples = 4096;

/// Interleaved walks per shard. The walk is a serial pointer-chase
/// (offsets → alias slot → N_s mask per step); running independent walks
/// in lockstep overlaps their cache misses (memory-level parallelism), so
/// even one thread sustains several in-flight loads. 16 lanes ≈ the
/// per-core miss parallelism of current hardware.
constexpr std::size_t kLanes = 16;

/// One in-flight walk of the interleaved loop.
struct Lane {
  Rng rng{0};
  std::uint64_t index = 0;
  NodeId cur = 0;
  std::vector<NodeId> path;
  bool active = false;
};

/// Runs samples [first, first+count) through kLanes interleaved walks,
/// invoking finish(index, type1, path) as each walk completes. A sample's
/// outcome depends only on its counter-derived stream (never on lane
/// scheduling), so interleaving — like sharding — cannot change any
/// result; only the completion ORDER varies, and callers needing stream
/// order sort by index. The per-step case analysis is the shared
/// classify_walk_step, so this stays equivalent to
/// ReversePathSampler::sample_into by construction.
template <typename FinishFn>
void run_lanes(const FriendingInstance& inst, const SelectionSampler& sel,
               std::uint64_t first, std::uint64_t count, std::uint64_t root,
               FinishFn&& finish) {
  const NodeId t = inst.target();
  std::array<Lane, kLanes> lanes;
  std::uint64_t next = first;
  const std::uint64_t end = first + count;
  const auto launch = [&](Lane& ln) {
    if (next >= end) {
      ln.active = false;
      return;
    }
    ln.index = next++;
    ln.rng.reseed(stream_sample_seed(root, ln.index));
    ln.cur = t;
    ln.path.clear();
    ln.path.push_back(t);
    ln.active = true;
  };
  for (auto& ln : lanes) launch(ln);

  bool any = true;
  while (any) {
    any = false;
    for (auto& ln : lanes) {
      if (!ln.active) continue;
      any = true;
      const NodeId nxt = sel.sample_selection(ln.cur, ln.rng);
      const WalkStep step = classify_walk_step(inst, nxt, ln.path);
      if (step == WalkStep::kContinue) {
        ln.path.push_back(nxt);
        ln.cur = nxt;
        continue;
      }
      finish(ln.index, step == WalkStep::kReachedNs, ln.path);
      launch(ln);
    }
  }
}

/// Samples one contiguous stream window, returning type-1 paths in
/// stream order.
BulkType1Paths sample_shard(const FriendingInstance& inst,
                            const SelectionSampler& sel, std::uint64_t first,
                            std::uint64_t count, std::uint64_t root) {
  // Capture in completion order, then restore stream order.
  PathArena unordered;
  std::vector<std::uint64_t> pos;
  run_lanes(inst, sel, first, count, root,
            [&](std::uint64_t idx, bool type1,
                const std::vector<NodeId>& path) {
              if (!type1) return;
              unordered.push_path(path);
              pos.push_back(idx);
            });

  std::vector<std::uint32_t> perm(pos.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(),
            [&](std::uint32_t a, std::uint32_t b) { return pos[a] < pos[b]; });

  BulkType1Paths out;
  out.paths.reserve(unordered.size(), unordered.total_nodes());
  out.positions.reserve(pos.size());
  for (const std::uint32_t k : perm) {
    out.paths.push_path(unordered[k]);
    out.positions.push_back(pos[k]);
  }
  return out;
}

/// Splits [first, first+count) into shards sized so every worker gets a
/// few, runs `task` per shard on the pool, returns results in stream
/// order.
template <typename ShardFn>
auto run_sharded(std::uint64_t first, std::uint64_t count, ThreadPool* pool,
                 ShardFn&& task) {
  using Result = decltype(task(first, count));
  const std::uint64_t shards = std::min<std::uint64_t>(
      count, static_cast<std::uint64_t>(pool->size()) * 4);
  const std::uint64_t per_shard = (count + shards - 1) / shards;
  std::vector<std::future<Result>> futures;
  futures.reserve(shards);
  for (std::uint64_t lo = 0; lo < count; lo += per_shard) {
    const std::uint64_t hi = std::min(lo + per_shard, count);
    futures.push_back(pool->submit(
        [&task, first, lo, hi] { return task(first + lo, hi - lo); }));
  }
  std::vector<Result> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace

BulkType1Paths sample_type1_bulk(const FriendingInstance& inst,
                                 const SelectionSampler& sel,
                                 std::uint64_t first, std::uint64_t count,
                                 std::uint64_t root, ThreadPool* pool) {
  if (count == 0) return {};
  if (pool == nullptr || pool->size() <= 1 || count < kMinParallelSamples) {
    return sample_shard(inst, sel, first, count, root);
  }
  auto shards = run_sharded(
      first, count, pool, [&](std::uint64_t lo, std::uint64_t cnt) {
        return sample_shard(inst, sel, lo, cnt, root);
      });
  BulkType1Paths out;
  std::size_t paths = 0, nodes = 0;
  for (const auto& s : shards) {
    paths += s.paths.size();
    nodes += s.paths.total_nodes();
  }
  out.paths.reserve(paths, nodes);
  out.positions.reserve(paths);
  for (const auto& s : shards) {
    out.paths.append(s.paths);
    out.positions.insert(out.positions.end(), s.positions.begin(),
                         s.positions.end());
  }
  return out;
}

void sample_type1_flags(const FriendingInstance& inst,
                        const SelectionSampler& sel, std::uint64_t first,
                        std::uint64_t count, std::uint64_t root,
                        ThreadPool* pool, std::uint8_t* out) {
  if (count == 0) return;
  const auto fill = [&](std::uint64_t lo, std::uint64_t cnt) {
    // Shard windows are disjoint, so concurrent writes never overlap;
    // each flag's slot is fixed, so completion order is irrelevant.
    run_lanes(inst, sel, lo, cnt, root,
              [&](std::uint64_t idx, bool type1, const std::vector<NodeId>&) {
                out[idx - first] = type1 ? 1 : 0;
              });
    return true;
  };
  if (pool == nullptr || pool->size() <= 1 || count < kMinParallelSamples) {
    fill(first, count);
    return;
  }
  run_sharded(first, count, pool, fill);
}

}  // namespace af
