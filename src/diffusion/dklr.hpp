// The Dagum–Karp–Luby–Ross optimal Monte-Carlo stopping rule (Lemma 3,
// Algorithm 2).
//
// Estimates the mean μ of a [0,1]-valued random variable — here
// y(ĝ) = 1{ĝ is type-1}, whose mean is p_max (Corollary 2) — to within
// relative error ε with probability ≥ 1 − δ, using a number of samples
// adaptive in μ itself: draw until the running sum of outcomes reaches
//   Υ = 1 + 4(e−2)(1+ε)·ln(2/δ)/ε²,
// then report Υ / (number of draws). Expected cost Θ(Υ/μ) (Eq. 6).
//
// Because μ can be arbitrarily small (or exactly 0 when t is unreachable),
// the estimator takes a hard sample cap; a capped run reports the best
// available estimate and flags non-convergence.
#pragma once

#include <cstdint>
#include <functional>

#include "diffusion/instance.hpp"
#include "diffusion/realization.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace af {

class IndexReplicas;

/// Configuration of the stopping rule.
struct DklrConfig {
  /// Relative error ε ∈ (0, 1].
  double epsilon = 0.1;
  /// Failure probability δ ∈ (0, 1). The paper passes δ = 1/N.
  double delta = 1e-3;
  /// Hard cap on the number of draws (0 = uncapped; beware μ = 0).
  std::uint64_t max_samples = 50'000'000;
  /// Cooperative cancellation point, checked once per block: when it
  /// passes mid-estimation the block loop throws DeadlineExceededError
  /// instead of finishing an answer nobody waits for (the serving path
  /// maps it to kDeadlineExceeded). Deadline::max() = never.
  Deadline deadline = kNoDeadline;
};

/// Outcome of a stopping-rule estimation.
struct DklrResult {
  /// The estimate Υ/i (or successes/draws when capped).
  double estimate = 0.0;
  std::uint64_t samples_used = 0;
  std::uint64_t successes = 0;
  /// True iff the stopping condition was reached before the cap.
  bool converged = false;
  /// The threshold Υ that was used.
  double upsilon = 0.0;
  /// Walks actually generated, ≥ samples_used: block-mode estimation
  /// draws whole blocks and discards indicators past the stopping point,
  /// so drawn − used is the tail latency the adaptive schedule (DESIGN.md
  /// §8) exists to trim. Sequential estimation has drawn == used.
  std::uint64_t samples_drawn = 0;
};

/// Computes Υ(ε, δ) = 1 + 4(e−2)(1+ε)·ln(2/δ)/ε².
double dklr_upsilon(double epsilon, double delta);

/// Runs the stopping rule over an arbitrary Bernoulli oracle, drawing
/// sequentially from `rng`. The generic single-threaded engine.
DklrResult dklr_estimate(const std::function<bool(Rng&)>& draw, Rng& rng,
                         const DklrConfig& cfg);

/// Algorithm 2: estimates p_max by applying the stopping rule to the
/// type-1 indicator of random realizations drawn through `sel`.
///
/// Samples are generated in blocks with per-sample counter-derived
/// streams (diffusion/bulk_sampler) — rooted at one draw from `rng` —
/// and the stopping condition is applied by a sequential scan over the
/// block, so the result is bit-identical whether the block was filled
/// inline or sharded across `pool` (any size). Draws past the stopping
/// point are discarded, exactly as if sampling had been sequential.
///
/// Block sizes follow an adaptive schedule (DESIGN.md §8): geometric
/// growth while p̂ is still coarse, clipped to the expected remaining
/// draws (Υ − S)/p̂ plus a 3σ negative-binomial margin once successes
/// accumulate. Because sample #i is a pure function of (root, i), the
/// schedule affects only samples_drawn (work), never samples_used,
/// successes or the estimate — those match the draw-one-at-a-time
/// sequential rule exactly, for every schedule and thread count.
DklrResult estimate_pmax_dklr(const FriendingInstance& inst,
                              const SelectionSampler& sel, Rng& rng,
                              const DklrConfig& cfg,
                              ThreadPool* pool = nullptr);

/// NUMA-aware overload: each block's shards draw through the index
/// replica local to the worker they land on (diffusion/index_replicas).
/// Bit-identical to the single-sampler overload on the same tables.
DklrResult estimate_pmax_dklr(const FriendingInstance& inst,
                              const IndexReplicas& replicas, Rng& rng,
                              const DklrConfig& cfg,
                              ThreadPool* pool = nullptr);

/// Convenience overload: builds a private alias index (O(n + m)) and runs
/// inline. Callers holding a shared SamplingIndex or a worker pool (the
/// Planner) should use the strategy overload.
DklrResult estimate_pmax_dklr(const FriendingInstance& inst, Rng& rng,
                              const DklrConfig& cfg);

}  // namespace af
