// SamplingIndex — per-node Walker/Vose alias tables for O(1) realization
// selection sampling.
//
// Every sampling primitive in the pipeline (DKLR p*max estimation, the
// Eq. 16 realization budget, Algorithm 3's type-1 family, Monte-Carlo
// evaluation) reduces to drawing per-node selections: node v selects
// neighbor N_v[i] with probability w(N_v[i], v) or the artificial user ℵ0
// with the leftover mass (Def. 1). The cumulative scan pays O(deg(v)) per
// draw; on the youtube analog the backward walk is memory-latency-bound,
// so what matters is touches per draw as much as arithmetic.
//
// The alias method preprocesses each node's (deg + 1)-outcome distribution
// — the extra outcome is ℵ0 — so that one uniform slot pick plus one
// biased coin flip samples it. This implementation fuses everything one
// draw needs into a single 16-byte slot {threshold, accept, alias}: the
// coin is an integer compare against the 2⁶⁴-scaled threshold, and both
// coin outcomes store the *resolved* NodeId (kNoNode for ℵ0). A selection
// is therefore ONE 64-bit rng draw, ONE 128-bit multiply (Lemire
// multiply-shift slot pick) and ONE cache-line probe — it never touches
// the graph's adjacency or weight arrays at all. Build cost
// O(Σ(deg + 1)) = O(n + m); per-draw bias from reusing the multiply's low
// word as the coin is O(deg · 2⁻⁶⁴) — unobservable.
//
// Layout is a CSR mirror of the graph: node v's slots live at
// [offsets[v], offsets[v+1]), slot deg(v) is ℵ0. The index depends only
// on the graph's in-weights, so one instance serves every (s,t) pair —
// af::Planner builds one and shares it across all pair caches and worker
// threads (all accessors are const and thread-safe after construction).
//
// CompactSamplingIndex is the memory-lean sibling (DESIGN.md §8): the
// same tables with the coin threshold quantized to float32 and 32-bit
// CSR offsets — 12 bytes/slot instead of 16, which matters at full
// youtube scale (~210 MB → ~158 MB of slots). Per-slot quantization
// error is one float ulp (relative 2⁻²⁴), far below what the chi-square
// goodness-of-fit gate can detect; the two indices draw *different*
// (equally correct) streams from the same Rng, so switching index kinds
// changes sampled bits, not distributions. Select it per Planner via
// PlannerOptions::compact_index.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/realization.hpp"
#include "graph/graph.hpp"
#include "util/cpu.hpp"
#include "util/hugepage.hpp"

namespace af {

/// One candidate's measured cost in the construction-time kernel
/// tournament (kAuto dispatch, DESIGN.md §9).
struct KernelTiming {
  SimdLevel level = SimdLevel::kScalar;
  /// Best-of-reps cost per selection draw on the freshly built tables
  /// (the cache-cold 16-chained-lane regime the calibration times).
  double ns_per_step = 0.0;
};

/// A tournament verdict: the dispatched winner plus every candidate's
/// measurement, so dispatch decisions stay auditable (the bench exports
/// these into BENCH_sampling.json). Entries live in the process-wide
/// calibration cache — keyed by (index flavor, table size class) — so
/// repeated constructions (Planner rebuilds, from_mapped adoptions, NUMA
/// replicas) reuse the first verdict instead of re-measuring; pointers
/// into the cache stay valid for the process lifetime.
struct KernelCalibration {
  SimdLevel winner = SimdLevel::kScalar;
  std::vector<KernelTiming> timings;
};

/// Prebuilt alias tables living in externally owned memory — sections of
/// an mmap-ed .af1 container (storage/, DESIGN.md §11). raw_offsets()/
/// raw_slots() of an in-RAM index produce exactly these bytes, so an
/// index reconstructed from them draws bit-identical selections.
struct ExternalIndexTables {
  /// The CSR offset array's bytes (n+1 entries of the index's offset
  /// type; 8-byte entries for SamplingIndex, 4-byte for Compact).
  std::span<const std::byte> offsets;
  /// The slot array's bytes (offsets[n] slots of the index's Slot type).
  std::span<const std::byte> slots;
  /// false = zero-copy: the index VIEWS the external memory (it must
  /// outlive the index; the OS pages the cold tail on demand). true =
  /// materialize: copy the tables into freshly allocated (preferably
  /// huge-page-backed) RAM — the NUMA replication path, where the
  /// copying thread's first touch places the pages node-locally.
  bool copy = false;
  /// Huge-page preference for the copy path (ignored for views — a
  /// mapped file's page size is advised at map time, util/hugepage).
  bool huge_pages = true;
};

/// Vose alias tables over every node's selection distribution.
class SamplingIndex final : public SelectionSampler {
 public:
  /// Builds the tables from g.in_weights / g.leftover_mass. O(n + m).
  /// `simd` picks the batched-selection kernel, resolved once here
  /// (util/cpu.hpp): kAuto takes the best level the build, CPU and
  /// AF_SIMD env var allow; every level is bit-identical. `huge_pages`
  /// backs the tables with 2 MiB pages where available (util/hugepage:
  /// the TLB win that lets the walker's prefetch land, DESIGN.md §9) —
  /// false keeps plain 4 KiB allocation (the bench's PR-4-faithful
  /// baseline); the stored bytes are identical either way.
  explicit SamplingIndex(const Graph& g, SimdLevel simd = SimdLevel::kAuto,
                         bool huge_pages = true);

  /// Adopts PREBUILT tables (see ExternalIndexTables): no alias
  /// construction happens — the cold-start path. Validates the byte
  /// spans' shape against `num_nodes` (throws precondition_error on
  /// mismatch); kernel dispatch (`simd`) resolves exactly as in the
  /// building constructor.
  SamplingIndex(const ExternalIndexTables& tables, NodeId num_nodes,
                SimdLevel simd = SimdLevel::kAuto);

  /// The tables' raw bytes, for container serialization (storage/).
  /// Stable across hosts of equal endianness: exactly what the building
  /// constructor produced, with no pointers inside.
  std::span<const std::byte> raw_offsets() const {
    return {reinterpret_cast<const std::byte*>(offsets_.data()),
            offsets_.size() * sizeof(std::uint64_t)};
  }
  std::span<const std::byte> raw_slots() const {
    return {reinterpret_cast<const std::byte*>(slots_.data()),
            slots_.size() * sizeof(Slot)};
  }

  /// Draws v's selection in O(1): a neighbor of v, or kNoNode for ℵ0.
  /// Consumes exactly one draw from `rng`.
  NodeId sample_selection(NodeId v, Rng& rng) const override {
    const std::uint64_t off = offsets_[v];
    const std::uint64_t k = offsets_[v + 1] - off;
    // Lemire multiply-shift: high word picks the slot, low word is the
    // alias coin — uniform given the slot up to O(k·2⁻⁶⁴).
    const auto m = static_cast<__uint128_t>(rng.next_u64()) * k;
    const Slot& s = slots_[off + static_cast<std::uint64_t>(m >> 64)];
    return static_cast<std::uint64_t>(m) < s.threshold ? s.accept : s.alias;
  }

  /// Runs the whole batch through the kernel picked at construction —
  /// one indirect call per step instead of one virtual call per lane.
  void sample_selection_batch(const NodeId* cur, Rng* rng, NodeId* out,
                              std::size_t n) const override {
    batch_kernel_(*this, cur, rng, out, n);
  }

  /// Fused draw + next-step prefetch, one indirect call: each lane's
  /// next slot line (computed from the peeked rng word, which the draw
  /// already has in hand) is prefetched right after its draw, so it has
  /// the rest of the sweep — classification of every lane plus the next
  /// batch call's earlier lanes — to arrive (DESIGN.md §9).
  void sample_selection_batch_prefetch(const NodeId* cur, Rng* rng,
                                       NodeId* out,
                                       std::size_t n) const override {
    batch_prefetch_kernel_(*this, cur, rng, out, n);
  }

  /// Peeks rng's next word (free for xoshiro256++) and prefetches the
  /// exact slot line that word will probe — not just the node's first
  /// slot. Issued by the bulk walker one step ahead, so the line arrives
  /// while the other lanes finish their current step (DESIGN.md §9).
  void prefetch_selection(NodeId v, const Rng& rng) const override {
    const std::uint64_t off = offsets_[v];
    const std::uint64_t k = offsets_[v + 1] - off;
    const auto m = static_cast<__uint128_t>(rng.peek_u64()) * k;
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[off + static_cast<std::uint64_t>(m >> 64)]);
#endif
  }

  /// Number of alias slots (Σ_v (deg(v) + 1) = 2m + n).
  std::size_t num_slots() const override { return slots_.size(); }

  /// Resident size of the tables, for capacity planning.
  std::size_t memory_bytes() const override {
    return slots_.memory_bytes() + offsets_.memory_bytes();
  }

  /// Slot footprint — the bytes/slot figure the perf trajectory records.
  static constexpr std::size_t bytes_per_slot() { return sizeof(Slot); }

  /// The kernel level actually dispatched to (a concrete level of the
  /// portfolio: kScalar, kAvx2, kAvx512 or kNeon — never kAuto).
  SimdLevel simd_level() const override { return simd_; }

  /// The kAuto tournament's verdict this index dispatched on, with every
  /// candidate's measured ns/step — nullptr when the level was forced
  /// (no measurement ran). Points into the process-wide calibration
  /// cache; valid for the process lifetime.
  const KernelCalibration* calibration() const { return calibration_; }

  /// Whether the slot table landed on 2 MiB pages (telemetry).
  bool on_huge_pages() const { return slots_.on_huge_pages(); }

 private:
  /// One alias slot, fully resolved: the coin threshold (probability
  /// scaled to 2⁶⁴) and the selected node for either coin outcome.
  struct Slot {
    std::uint64_t threshold;
    NodeId accept;
    NodeId alias;
  };
  static_assert(sizeof(Slot) == 16, "one probe must stay one cache touch");

  using BatchKernel = void (*)(const SamplingIndex&, const NodeId*, Rng*,
                               NodeId*, std::size_t);
  /// Portable kernel: the scalar draw, inlined across the batch;
  /// Prefetch additionally warms each lane's next slot line.
  template <bool Prefetch>
  static void batch_scalar(const SamplingIndex& idx, const NodeId* cur,
                           Rng* rng, NodeId* out, std::size_t n);
  /// AVX2 kernel (sampling_index_avx2.cpp, compiled with -mavx2 behind
  /// the AF_SIMD build gate): 4-lane Lemire multiply-shift plus gathers
  /// of the fused slots. Bit-identical to batch_scalar.
  template <bool Prefetch>
  static void batch_avx2(const SamplingIndex& idx, const NodeId* cur,
                         Rng* rng, NodeId* out, std::size_t n);
  /// AVX-512 kernel (sampling_index_avx512.cpp, -mavx512f -mavx512dq):
  /// 8-lane multiply-shift with vpgatherqq slot probes and mask-register
  /// remainder handling — every batch size runs the one masked vector
  /// path, no scalar tail. Bit-identical to batch_scalar.
  template <bool Prefetch>
  static void batch_avx512(const SamplingIndex& idx, const NodeId* cur,
                           Rng* rng, NodeId* out, std::size_t n);
  /// NEON kernel (sampling_index_neon.cpp, AArch64 builds): 2-lane
  /// vectorized multiply-shift and alias coin; slot loads stay scalar
  /// (NEON has no gather). Bit-identical to batch_scalar.
  template <bool Prefetch>
  static void batch_neon(const SamplingIndex& idx, const NodeId* cur,
                         Rng* rng, NodeId* out, std::size_t n);

  /// Shared constructor tail: resolves `simd` (running the tournament
  /// under kAuto) and installs the batch kernels.
  void init_kernels(SimdLevel simd, NodeId num_nodes);

  SimdLevel simd_ = SimdLevel::kScalar;
  const KernelCalibration* calibration_ = nullptr;
  BatchKernel batch_kernel_ = &SamplingIndex::batch_scalar<false>;
  BatchKernel batch_prefetch_kernel_ = &SamplingIndex::batch_scalar<true>;
  HugeBuffer<std::uint64_t> offsets_;  // size n+1; node v owns deg(v)+1 slots
  HugeBuffer<Slot> slots_;
};

/// Float32-threshold alias tables: the same per-node Vose construction as
/// SamplingIndex packed into 12-byte slots {float threshold, accept,
/// alias} with 32-bit CSR offsets. A draw is still one rng word, one
/// Lemire multiply-shift and one slot probe; the coin compares the low
/// word's top 53 bits (as a double in [0,1)) against the float threshold,
/// so the only distributional error is the float32 rounding of each
/// slot's acceptance probability — relative 2⁻²⁴, invisible to the
/// chi-square gate (pinned in tests/sampling_index_test.cpp).
class CompactSamplingIndex final : public SelectionSampler {
 public:
  /// Builds the tables. O(n + m); requires 2m + n < 2³² slots. `simd`
  /// and `huge_pages` behave exactly as for SamplingIndex.
  explicit CompactSamplingIndex(const Graph& g,
                                SimdLevel simd = SimdLevel::kAuto,
                                bool huge_pages = true);

  /// Adopts PREBUILT tables without construction (see SamplingIndex's
  /// external constructor; offsets here are 32-bit, slots 12-byte).
  CompactSamplingIndex(const ExternalIndexTables& tables, NodeId num_nodes,
                       SimdLevel simd = SimdLevel::kAuto);

  /// The tables' raw bytes, for container serialization (storage/).
  std::span<const std::byte> raw_offsets() const {
    return {reinterpret_cast<const std::byte*>(offsets_.data()),
            offsets_.size() * sizeof(std::uint32_t)};
  }
  std::span<const std::byte> raw_slots() const {
    return {reinterpret_cast<const std::byte*>(slots_.data()),
            slots_.size() * sizeof(Slot)};
  }

  /// Draws v's selection in O(1): a neighbor of v, or kNoNode for ℵ0.
  NodeId sample_selection(NodeId v, Rng& rng) const override {
    const std::uint32_t off = offsets_[v];
    const std::uint32_t k = offsets_[v + 1] - off;
    const auto m = static_cast<__uint128_t>(rng.next_u64()) * k;
    const Slot& s = slots_[off + static_cast<std::uint32_t>(m >> 64)];
    const double coin = static_cast<double>(
                            static_cast<std::uint64_t>(m) >> 11) *
                        0x1.0p-53;
    return coin < s.threshold ? s.accept : s.alias;
  }

  /// Batched draws through the construction-time kernel (see
  /// SamplingIndex::sample_selection_batch).
  void sample_selection_batch(const NodeId* cur, Rng* rng, NodeId* out,
                              std::size_t n) const override {
    batch_kernel_(*this, cur, rng, out, n);
  }

  /// Fused draw + next-step prefetch (see SamplingIndex).
  void sample_selection_batch_prefetch(const NodeId* cur, Rng* rng,
                                       NodeId* out,
                                       std::size_t n) const override {
    batch_prefetch_kernel_(*this, cur, rng, out, n);
  }

  /// Exact-slot prefetch one step ahead (see SamplingIndex).
  void prefetch_selection(NodeId v, const Rng& rng) const override {
    const std::uint32_t off = offsets_[v];
    const std::uint32_t k = offsets_[v + 1] - off;
    const auto m = static_cast<__uint128_t>(rng.peek_u64()) * k;
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[off + static_cast<std::uint32_t>(m >> 64)]);
#endif
  }

  /// Number of alias slots (Σ_v (deg(v) + 1) = 2m + n).
  std::size_t num_slots() const override { return slots_.size(); }

  /// Resident size of the tables, for capacity planning.
  std::size_t memory_bytes() const override {
    return slots_.memory_bytes() + offsets_.memory_bytes();
  }

  /// Slot footprint — ≤ 12 bytes is the ROADMAP target this class exists
  /// to hit.
  static constexpr std::size_t bytes_per_slot() { return sizeof(Slot); }

  /// The kernel level actually dispatched to (a concrete level of the
  /// portfolio: kScalar, kAvx2, kAvx512 or kNeon — never kAuto).
  SimdLevel simd_level() const override { return simd_; }

  /// The kAuto tournament's verdict (see SamplingIndex::calibration).
  const KernelCalibration* calibration() const { return calibration_; }

  /// Whether the slot table landed on 2 MiB pages (telemetry).
  bool on_huge_pages() const { return slots_.on_huge_pages(); }

 private:
  /// Threshold is the acceptance probability itself (not 2⁶⁴-scaled):
  /// float32 precision is the whole point of the compact layout.
  struct Slot {
    float threshold;
    NodeId accept;
    NodeId alias;
  };
  static_assert(sizeof(Slot) == 12, "compact slots must stay 12 bytes");

  using BatchKernel = void (*)(const CompactSamplingIndex&, const NodeId*,
                               Rng*, NodeId*, std::size_t);
  template <bool Prefetch>
  static void batch_scalar(const CompactSamplingIndex& idx,
                           const NodeId* cur, Rng* rng, NodeId* out,
                           std::size_t n);
  /// AVX2 kernel (sampling_index_avx2.cpp): 12-byte slots are gathered
  /// with byte-scaled offsets and the float32 coin compare is emulated
  /// exactly in double precision. Bit-identical to batch_scalar.
  template <bool Prefetch>
  static void batch_avx2(const CompactSamplingIndex& idx, const NodeId* cur,
                         Rng* rng, NodeId* out, std::size_t n);
  /// AVX-512 kernel (sampling_index_avx512.cpp): 8 lanes; the {off[v],
  /// off[v+1]} pair is fetched as one 64-bit gather, thresholds gather as
  /// floats and widen to double for the exact coin (vcvtuqq2pd needs DQ).
  /// Masked remainder, no scalar tail. Bit-identical to batch_scalar.
  template <bool Prefetch>
  static void batch_avx512(const CompactSamplingIndex& idx,
                           const NodeId* cur, Rng* rng, NodeId* out,
                           std::size_t n);
  /// NEON kernel (sampling_index_neon.cpp): 2-lane multiply-shift and
  /// float64 coin; slot loads scalar. Bit-identical to batch_scalar.
  template <bool Prefetch>
  static void batch_neon(const CompactSamplingIndex& idx, const NodeId* cur,
                         Rng* rng, NodeId* out, std::size_t n);

  /// Shared constructor tail: resolves `simd` (running the tournament
  /// under kAuto) and installs the batch kernels.
  void init_kernels(SimdLevel simd, NodeId num_nodes);

  SimdLevel simd_ = SimdLevel::kScalar;
  const KernelCalibration* calibration_ = nullptr;
  BatchKernel batch_kernel_ = &CompactSamplingIndex::batch_scalar<false>;
  BatchKernel batch_prefetch_kernel_ =
      &CompactSamplingIndex::batch_scalar<true>;
  HugeBuffer<std::uint32_t> offsets_;  // size n+1
  HugeBuffer<Slot> slots_;
};

}  // namespace af
