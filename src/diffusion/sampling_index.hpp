// SamplingIndex — per-node Walker/Vose alias tables for O(1) realization
// selection sampling.
//
// Every sampling primitive in the pipeline (DKLR p*max estimation, the
// Eq. 16 realization budget, Algorithm 3's type-1 family, Monte-Carlo
// evaluation) reduces to drawing per-node selections: node v selects
// neighbor N_v[i] with probability w(N_v[i], v) or the artificial user ℵ0
// with the leftover mass (Def. 1). The cumulative scan pays O(deg(v)) per
// draw; on the youtube analog the backward walk is memory-latency-bound,
// so what matters is touches per draw as much as arithmetic.
//
// The alias method preprocesses each node's (deg + 1)-outcome distribution
// — the extra outcome is ℵ0 — so that one uniform slot pick plus one
// biased coin flip samples it. This implementation fuses everything one
// draw needs into a single 16-byte slot {threshold, accept, alias}: the
// coin is an integer compare against the 2⁶⁴-scaled threshold, and both
// coin outcomes store the *resolved* NodeId (kNoNode for ℵ0). A selection
// is therefore ONE 64-bit rng draw, ONE 128-bit multiply (Lemire
// multiply-shift slot pick) and ONE cache-line probe — it never touches
// the graph's adjacency or weight arrays at all. Build cost
// O(Σ(deg + 1)) = O(n + m); per-draw bias from reusing the multiply's low
// word as the coin is O(deg · 2⁻⁶⁴) — unobservable.
//
// Layout is a CSR mirror of the graph: node v's slots live at
// [offsets[v], offsets[v+1]), slot deg(v) is ℵ0. The index depends only
// on the graph's in-weights, so one instance serves every (s,t) pair —
// af::Planner builds one and shares it across all pair caches and worker
// threads (all accessors are const and thread-safe after construction).
#pragma once

#include <cstdint>
#include <vector>

#include "diffusion/realization.hpp"
#include "graph/graph.hpp"

namespace af {

/// Vose alias tables over every node's selection distribution.
class SamplingIndex final : public SelectionSampler {
 public:
  /// Builds the tables from g.in_weights / g.leftover_mass. O(n + m).
  explicit SamplingIndex(const Graph& g);

  /// Draws v's selection in O(1): a neighbor of v, or kNoNode for ℵ0.
  /// Consumes exactly one draw from `rng`.
  NodeId sample_selection(NodeId v, Rng& rng) const override {
    const std::uint64_t off = offsets_[v];
    const std::uint64_t k = offsets_[v + 1] - off;
    // Lemire multiply-shift: high word picks the slot, low word is the
    // alias coin — uniform given the slot up to O(k·2⁻⁶⁴).
    const auto m = static_cast<__uint128_t>(rng.next_u64()) * k;
    const Slot& s = slots_[off + static_cast<std::uint64_t>(m >> 64)];
    return static_cast<std::uint64_t>(m) < s.threshold ? s.accept : s.alias;
  }

  /// Number of alias slots (Σ_v (deg(v) + 1) = 2m + n).
  std::size_t num_slots() const { return slots_.size(); }

  /// Resident size of the tables, for capacity planning.
  std::size_t memory_bytes() const {
    return slots_.size() * sizeof(Slot) +
           offsets_.size() * sizeof(std::uint64_t);
  }

 private:
  /// One alias slot, fully resolved: the coin threshold (probability
  /// scaled to 2⁶⁴) and the selected node for either coin outcome.
  struct Slot {
    std::uint64_t threshold;
    NodeId accept;
    NodeId alias;
  };
  static_assert(sizeof(Slot) == 16, "one probe must stay one cache touch");

  std::vector<std::uint64_t> offsets_;  // size n+1; node v owns deg(v)+1 slots
  std::vector<Slot> slots_;
};

}  // namespace af
