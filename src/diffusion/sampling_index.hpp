// SamplingIndex — per-node Walker/Vose alias tables for O(1) realization
// selection sampling.
//
// Every sampling primitive in the pipeline (DKLR p*max estimation, the
// Eq. 16 realization budget, Algorithm 3's type-1 family, Monte-Carlo
// evaluation) reduces to drawing per-node selections: node v selects
// neighbor N_v[i] with probability w(N_v[i], v) or the artificial user ℵ0
// with the leftover mass (Def. 1). The cumulative scan pays O(deg(v)) per
// draw; on the youtube analog the backward walk is memory-latency-bound,
// so what matters is touches per draw as much as arithmetic.
//
// The alias method preprocesses each node's (deg + 1)-outcome distribution
// — the extra outcome is ℵ0 — so that one uniform slot pick plus one
// biased coin flip samples it. This implementation fuses everything one
// draw needs into a single 16-byte slot {threshold, accept, alias}: the
// coin is an integer compare against the 2⁶⁴-scaled threshold, and both
// coin outcomes store the *resolved* NodeId (kNoNode for ℵ0). A selection
// is therefore ONE 64-bit rng draw, ONE 128-bit multiply (Lemire
// multiply-shift slot pick) and ONE cache-line probe — it never touches
// the graph's adjacency or weight arrays at all. Build cost
// O(Σ(deg + 1)) = O(n + m); per-draw bias from reusing the multiply's low
// word as the coin is O(deg · 2⁻⁶⁴) — unobservable.
//
// Layout is a CSR mirror of the graph: node v's slots live at
// [offsets[v], offsets[v+1]), slot deg(v) is ℵ0. The index depends only
// on the graph's in-weights, so one instance serves every (s,t) pair —
// af::Planner builds one and shares it across all pair caches and worker
// threads (all accessors are const and thread-safe after construction).
//
// CompactSamplingIndex is the memory-lean sibling (DESIGN.md §8): the
// same tables with the coin threshold quantized to float32 and 32-bit
// CSR offsets — 12 bytes/slot instead of 16, which matters at full
// youtube scale (~210 MB → ~158 MB of slots). Per-slot quantization
// error is one float ulp (relative 2⁻²⁴), far below what the chi-square
// goodness-of-fit gate can detect; the two indices draw *different*
// (equally correct) streams from the same Rng, so switching index kinds
// changes sampled bits, not distributions. Select it per Planner via
// PlannerOptions::compact_index.
#pragma once

#include <cstdint>
#include <vector>

#include "diffusion/realization.hpp"
#include "graph/graph.hpp"

namespace af {

/// Vose alias tables over every node's selection distribution.
class SamplingIndex final : public SelectionSampler {
 public:
  /// Builds the tables from g.in_weights / g.leftover_mass. O(n + m).
  explicit SamplingIndex(const Graph& g);

  /// Draws v's selection in O(1): a neighbor of v, or kNoNode for ℵ0.
  /// Consumes exactly one draw from `rng`.
  NodeId sample_selection(NodeId v, Rng& rng) const override {
    const std::uint64_t off = offsets_[v];
    const std::uint64_t k = offsets_[v + 1] - off;
    // Lemire multiply-shift: high word picks the slot, low word is the
    // alias coin — uniform given the slot up to O(k·2⁻⁶⁴).
    const auto m = static_cast<__uint128_t>(rng.next_u64()) * k;
    const Slot& s = slots_[off + static_cast<std::uint64_t>(m >> 64)];
    return static_cast<std::uint64_t>(m) < s.threshold ? s.accept : s.alias;
  }

  /// Number of alias slots (Σ_v (deg(v) + 1) = 2m + n).
  std::size_t num_slots() const { return slots_.size(); }

  /// Resident size of the tables, for capacity planning.
  std::size_t memory_bytes() const {
    return slots_.size() * sizeof(Slot) +
           offsets_.size() * sizeof(std::uint64_t);
  }

  /// Slot footprint — the bytes/slot figure the perf trajectory records.
  static constexpr std::size_t bytes_per_slot() { return sizeof(Slot); }

 private:
  /// One alias slot, fully resolved: the coin threshold (probability
  /// scaled to 2⁶⁴) and the selected node for either coin outcome.
  struct Slot {
    std::uint64_t threshold;
    NodeId accept;
    NodeId alias;
  };
  static_assert(sizeof(Slot) == 16, "one probe must stay one cache touch");

  std::vector<std::uint64_t> offsets_;  // size n+1; node v owns deg(v)+1 slots
  std::vector<Slot> slots_;
};

/// Float32-threshold alias tables: the same per-node Vose construction as
/// SamplingIndex packed into 12-byte slots {float threshold, accept,
/// alias} with 32-bit CSR offsets. A draw is still one rng word, one
/// Lemire multiply-shift and one slot probe; the coin compares the low
/// word's top 53 bits (as a double in [0,1)) against the float threshold,
/// so the only distributional error is the float32 rounding of each
/// slot's acceptance probability — relative 2⁻²⁴, invisible to the
/// chi-square gate (pinned in tests/sampling_index_test.cpp).
class CompactSamplingIndex final : public SelectionSampler {
 public:
  /// Builds the tables. O(n + m); requires 2m + n < 2³² slots.
  explicit CompactSamplingIndex(const Graph& g);

  /// Draws v's selection in O(1): a neighbor of v, or kNoNode for ℵ0.
  NodeId sample_selection(NodeId v, Rng& rng) const override {
    const std::uint32_t off = offsets_[v];
    const std::uint32_t k = offsets_[v + 1] - off;
    const auto m = static_cast<__uint128_t>(rng.next_u64()) * k;
    const Slot& s = slots_[off + static_cast<std::uint32_t>(m >> 64)];
    const double coin = static_cast<double>(
                            static_cast<std::uint64_t>(m) >> 11) *
                        0x1.0p-53;
    return coin < s.threshold ? s.accept : s.alias;
  }

  /// Number of alias slots (Σ_v (deg(v) + 1) = 2m + n).
  std::size_t num_slots() const { return slots_.size(); }

  /// Resident size of the tables, for capacity planning.
  std::size_t memory_bytes() const {
    return slots_.size() * sizeof(Slot) +
           offsets_.size() * sizeof(std::uint32_t);
  }

  /// Slot footprint — ≤ 12 bytes is the ROADMAP target this class exists
  /// to hit.
  static constexpr std::size_t bytes_per_slot() { return sizeof(Slot); }

 private:
  /// Threshold is the acceptance probability itself (not 2⁶⁴-scaled):
  /// float32 precision is the whole point of the compact layout.
  struct Slot {
    float threshold;
    NodeId accept;
    NodeId alias;
  };
  static_assert(sizeof(Slot) == 12, "compact slots must stay 12 bytes");

  std::vector<std::uint32_t> offsets_;  // size n+1
  std::vector<Slot> slots_;
};

}  // namespace af
