#include "diffusion/dklr.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace af {

double dklr_upsilon(double epsilon, double delta) {
  AF_EXPECTS(epsilon > 0.0 && epsilon <= 1.0, "DKLR requires ε ∈ (0,1]");
  AF_EXPECTS(delta > 0.0 && delta < 1.0, "DKLR requires δ ∈ (0,1)");
  const double e_minus_2 = std::exp(1.0) - 2.0;
  return 1.0 +
         4.0 * e_minus_2 * (1.0 + epsilon) * std::log(2.0 / delta) /
             (epsilon * epsilon);
}

DklrResult dklr_estimate(const std::function<bool(Rng&)>& draw, Rng& rng,
                         const DklrConfig& cfg) {
  DklrResult out;
  out.upsilon = dklr_upsilon(cfg.epsilon, cfg.delta);

  // Stopping rule: draw until the success count passes Υ.
  while (static_cast<double>(out.successes) < out.upsilon) {
    if (cfg.max_samples != 0 && out.samples_used >= cfg.max_samples) {
      // Capped: report the plain frequency estimate without the DKLR
      // guarantee. Callers inspect `converged`.
      out.estimate = out.samples_used == 0
                         ? 0.0
                         : static_cast<double>(out.successes) /
                               static_cast<double>(out.samples_used);
      out.converged = false;
      return out;
    }
    ++out.samples_used;
    if (draw(rng)) ++out.successes;
  }
  out.estimate = out.upsilon / static_cast<double>(out.samples_used);
  out.converged = true;
  return out;
}

DklrResult estimate_pmax_dklr(const FriendingInstance& inst, Rng& rng,
                              const DklrConfig& cfg) {
  ReversePathSampler sampler(inst);
  return dklr_estimate(
      [&sampler](Rng& r) { return sampler.sample(r).type1; }, rng, cfg);
}

}  // namespace af
