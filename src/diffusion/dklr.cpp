#include "diffusion/dklr.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "diffusion/bulk_sampler.hpp"
#include "diffusion/sampling_index.hpp"
#include "util/contracts.hpp"

namespace af {

double dklr_upsilon(double epsilon, double delta) {
  AF_EXPECTS(epsilon > 0.0 && epsilon <= 1.0, "DKLR requires ε ∈ (0,1]");
  AF_EXPECTS(delta > 0.0 && delta < 1.0, "DKLR requires δ ∈ (0,1)");
  const double e_minus_2 = std::exp(1.0) - 2.0;
  return 1.0 +
         4.0 * e_minus_2 * (1.0 + epsilon) * std::log(2.0 / delta) /
             (epsilon * epsilon);
}

DklrResult dklr_estimate(const std::function<bool(Rng&)>& draw, Rng& rng,
                         const DklrConfig& cfg) {
  DklrResult out;
  out.upsilon = dklr_upsilon(cfg.epsilon, cfg.delta);

  // Stopping rule: draw until the success count passes Υ.
  while (static_cast<double>(out.successes) < out.upsilon) {
    if (cfg.max_samples != 0 && out.samples_used >= cfg.max_samples) {
      // Capped: report the plain frequency estimate without the DKLR
      // guarantee. Callers inspect `converged`.
      out.estimate = out.samples_used == 0
                         ? 0.0
                         : static_cast<double>(out.successes) /
                               static_cast<double>(out.samples_used);
      out.converged = false;
      out.samples_drawn = out.samples_used;
      return out;
    }
    ++out.samples_used;
    if (draw(rng)) ++out.successes;
  }
  out.estimate = out.upsilon / static_cast<double>(out.samples_used);
  out.converged = true;
  out.samples_drawn = out.samples_used;
  return out;
}

namespace {

/// Adaptive block schedule (DESIGN.md §8). Ramps geometrically from
/// kDklrFirstBlock while p̂ is still coarse; once successes accumulate,
/// the next block is clipped to the expected remaining draws
/// (Υ − S)/p̂ plus a 3σ negative-binomial margin, so the final block ends
/// near the stopping draw instead of overshooting it by a whole fixed
/// block. Floors at kDklrMinBlock (a block must amortize its pool
/// dispatch) and caps at kDklrMaxBlock (bounds the flag buffer).
constexpr std::uint64_t kDklrFirstBlock = 1024;
constexpr std::uint64_t kDklrMinBlock = 256;
constexpr std::uint64_t kDklrMaxBlock = std::uint64_t{1} << 21;

std::uint64_t next_block_size(std::uint64_t prev_block, double upsilon,
                              std::uint64_t successes,
                              std::uint64_t samples_used) {
  std::uint64_t block = std::min(2 * prev_block, kDklrMaxBlock);
  if (successes > 0) {
    const double p_hat = static_cast<double>(successes) /
                         static_cast<double>(samples_used);
    // Draws to collect the remaining r = Υ − S successes: negative
    // binomial with mean r/p̂ and σ = √(r(1−p̂))/p̂.
    const double r = std::max(upsilon - static_cast<double>(successes), 1.0);
    const double expected = r / p_hat;
    const double sigma = std::sqrt(r * (1.0 - p_hat)) / p_hat;
    const double target = expected + 3.0 * sigma;
    if (target < static_cast<double>(block)) {
      block = static_cast<std::uint64_t>(target) + 1;
    }
  }
  return std::max(block, kDklrMinBlock);
}

/// The shared block loop, generic over how a flags window is filled
/// (fixed sampler vs node-local replicas): generate type-1 indicators in
/// blocks of counter-seeded samples and scan each block sequentially for
/// the stopping condition. The scan stops at exactly the draw the
/// sequential rule would have stopped at; indicators past it are
/// discarded, so blocking (and any sharding inside sample_type1_flags)
/// never shows in samples_used, successes or the estimate — only
/// samples_drawn records the scheduling overshoot.
template <typename FillFlags>
DklrResult dklr_block_loop(const DklrConfig& cfg, FillFlags&& fill_flags) {
  DklrResult out;
  out.upsilon = dklr_upsilon(cfg.epsilon, cfg.delta);
  std::uint64_t block = kDklrFirstBlock;
  std::vector<std::uint8_t> flags;
  while (static_cast<double>(out.successes) < out.upsilon) {
    // One clock read per block (blocks are ≥ kDklrMinBlock walks, so the
    // check is noise); an expired deadline unwinds the whole estimation.
    check_deadline(cfg.deadline);
    if (cfg.max_samples != 0 && out.samples_used >= cfg.max_samples) {
      // Capped: report the plain frequency estimate without the DKLR
      // guarantee. Callers inspect `converged`.
      out.estimate = out.samples_used == 0
                         ? 0.0
                         : static_cast<double>(out.successes) /
                               static_cast<double>(out.samples_used);
      out.converged = false;
      return out;
    }
    if (cfg.max_samples != 0) {
      block = std::min(block, cfg.max_samples - out.samples_used);
    }
    flags.resize(block);
    fill_flags(out.samples_used, block, flags.data());
    out.samples_drawn += block;
    for (std::uint64_t i = 0; i < block; ++i) {
      ++out.samples_used;
      if (flags[i]) ++out.successes;
      if (static_cast<double>(out.successes) >= out.upsilon) break;
    }
    block = next_block_size(block, out.upsilon, out.successes,
                            out.samples_used);
  }
  out.estimate = out.upsilon / static_cast<double>(out.samples_used);
  out.converged = true;
  return out;
}

}  // namespace

DklrResult estimate_pmax_dklr(const FriendingInstance& inst,
                              const SelectionSampler& sel, Rng& rng,
                              const DklrConfig& cfg, ThreadPool* pool) {
  const std::uint64_t root = rng.next_u64();
  return dklr_block_loop(
      cfg, [&](std::uint64_t first, std::uint64_t count, std::uint8_t* out) {
        sample_type1_flags(inst, sel, first, count, root, pool, out);
      });
}

DklrResult estimate_pmax_dklr(const FriendingInstance& inst,
                              const IndexReplicas& replicas, Rng& rng,
                              const DklrConfig& cfg, ThreadPool* pool) {
  const std::uint64_t root = rng.next_u64();
  return dklr_block_loop(
      cfg, [&](std::uint64_t first, std::uint64_t count, std::uint8_t* out) {
        sample_type1_flags(inst, replicas, first, count, root, pool, out);
      });
}

DklrResult estimate_pmax_dklr(const FriendingInstance& inst, Rng& rng,
                              const DklrConfig& cfg) {
  const SamplingIndex index(inst.graph());
  return estimate_pmax_dklr(inst, index, rng, cfg, nullptr);
}

}  // namespace af
