#include "diffusion/dklr.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "diffusion/bulk_sampler.hpp"
#include "diffusion/sampling_index.hpp"
#include "util/contracts.hpp"

namespace af {

double dklr_upsilon(double epsilon, double delta) {
  AF_EXPECTS(epsilon > 0.0 && epsilon <= 1.0, "DKLR requires ε ∈ (0,1]");
  AF_EXPECTS(delta > 0.0 && delta < 1.0, "DKLR requires δ ∈ (0,1)");
  const double e_minus_2 = std::exp(1.0) - 2.0;
  return 1.0 +
         4.0 * e_minus_2 * (1.0 + epsilon) * std::log(2.0 / delta) /
             (epsilon * epsilon);
}

DklrResult dklr_estimate(const std::function<bool(Rng&)>& draw, Rng& rng,
                         const DklrConfig& cfg) {
  DklrResult out;
  out.upsilon = dklr_upsilon(cfg.epsilon, cfg.delta);

  // Stopping rule: draw until the success count passes Υ.
  while (static_cast<double>(out.successes) < out.upsilon) {
    if (cfg.max_samples != 0 && out.samples_used >= cfg.max_samples) {
      // Capped: report the plain frequency estimate without the DKLR
      // guarantee. Callers inspect `converged`.
      out.estimate = out.samples_used == 0
                         ? 0.0
                         : static_cast<double>(out.successes) /
                               static_cast<double>(out.samples_used);
      out.converged = false;
      return out;
    }
    ++out.samples_used;
    if (draw(rng)) ++out.successes;
  }
  out.estimate = out.upsilon / static_cast<double>(out.samples_used);
  out.converged = true;
  return out;
}

DklrResult estimate_pmax_dklr(const FriendingInstance& inst,
                              const SelectionSampler& sel, Rng& rng,
                              const DklrConfig& cfg, ThreadPool* pool) {
  DklrResult out;
  out.upsilon = dklr_upsilon(cfg.epsilon, cfg.delta);
  const std::uint64_t root = rng.next_u64();

  // Generate type-1 indicators in blocks of counter-seeded samples and
  // scan each block sequentially for the stopping condition. The scan
  // stops at exactly the draw the sequential rule would have stopped at;
  // indicators past it are discarded, so blocking (and any sharding
  // inside sample_type1_flags) never shows in the result.
  constexpr std::uint64_t kBlock = 8192;
  std::vector<std::uint8_t> flags;
  while (static_cast<double>(out.successes) < out.upsilon) {
    if (cfg.max_samples != 0 && out.samples_used >= cfg.max_samples) {
      // Capped: report the plain frequency estimate without the DKLR
      // guarantee. Callers inspect `converged`.
      out.estimate = out.samples_used == 0
                         ? 0.0
                         : static_cast<double>(out.successes) /
                               static_cast<double>(out.samples_used);
      out.converged = false;
      return out;
    }
    std::uint64_t block = kBlock;
    if (cfg.max_samples != 0) {
      block = std::min(block, cfg.max_samples - out.samples_used);
    }
    flags.resize(block);
    sample_type1_flags(inst, sel, out.samples_used, block, root, pool,
                       flags.data());
    for (std::uint64_t i = 0; i < block; ++i) {
      ++out.samples_used;
      if (flags[i]) ++out.successes;
      if (static_cast<double>(out.successes) >= out.upsilon) break;
    }
  }
  out.estimate = out.upsilon / static_cast<double>(out.samples_used);
  out.converged = true;
  return out;
}

DklrResult estimate_pmax_dklr(const FriendingInstance& inst, Rng& rng,
                              const DklrConfig& cfg) {
  const SamplingIndex index(inst.graph());
  return estimate_pmax_dklr(inst, index, rng, cfg, nullptr);
}

}  // namespace af
