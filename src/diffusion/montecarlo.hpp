// Fixed-budget Monte-Carlo estimators of the acceptance probability f(I)
// and of p_max = f(V).
//
// Two interchangeable engines:
//  - Reverse (default): samples t(ĝ) and checks t(ĝ) ⊆ I (Corollary 1).
//    One sample costs a backward walk — far cheaper than a full cascade.
//  - Forward: literally runs Process 1. Kept as the ground-truth engine;
//    the equivalence of the two (Lemma 1) is property-tested.
#pragma once

#include <cstdint>

#include "diffusion/forward_process.hpp"
#include "diffusion/instance.hpp"
#include "diffusion/invitation.hpp"
#include "diffusion/realization.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace af {

enum class McEngine { kReverse, kForward };

/// Reusable Monte-Carlo evaluator bound to one instance.
class MonteCarloEvaluator {
 public:
  /// Builds and owns a per-graph alias index (O(n + m)) for the reverse
  /// engine. Callers evaluating many instances of ONE graph should use
  /// the borrowing overload to share a single SamplingIndex instead.
  explicit MonteCarloEvaluator(const FriendingInstance& inst);

  /// Borrows a selection strategy (shared alias index, or the scan
  /// oracle); `sel` must outlive the evaluator.
  MonteCarloEvaluator(const FriendingInstance& inst,
                      const SelectionSampler& sel);

  /// Estimates f(I) with `samples` independent trials.
  Proportion estimate_f(const InvitationSet& invited, std::uint64_t samples,
                        Rng& rng, McEngine engine = McEngine::kReverse);

  /// Estimates p_max = f(V) with `samples` trials (reverse engine: the
  /// fraction of type-1 realizations, Corollary 2).
  Proportion estimate_pmax(std::uint64_t samples, Rng& rng,
                           McEngine engine = McEngine::kReverse);

  const FriendingInstance& instance() const { return inst_; }

 private:
  const FriendingInstance& inst_;
  ForwardProcess forward_;
  ReversePathSampler reverse_;
  std::vector<NodeId> path_buf_;  // reused across draws: no per-sample alloc
};

}  // namespace af
