#include "diffusion/sampling_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace af {

namespace {

/// prob ∈ [0,1] → the 2⁶⁴-scaled coin threshold. Full slots saturate to
/// 2⁶⁴−1; their alias is set equal to accept, so the 2⁻⁶⁴ "miss" lands on
/// the same node and full slots stay exact.
std::uint64_t scale_threshold(double prob) {
  if (prob >= 1.0) return ~std::uint64_t{0};
  if (prob <= 0.0) return 0;
  return static_cast<std::uint64_t>(prob * 0x1p64);
}

/// Scratch buffers for Vose's construction, reused across nodes so the
/// whole build allocates O(max_deg) once.
struct VoseScratch {
  std::vector<double> prob;
  std::vector<std::uint32_t> alias;
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
};

/// Vose's alias construction for node v's (deg(v)+1)-outcome selection
/// distribution (local outcome deg(v) is ℵ0), shared by both index
/// layouts. Invokes emit(i, prob_i, accept_node, alias_node) for each of
/// the k local outcomes, where prob_i ∈ [0,1] is the slot's acceptance
/// probability and both nodes are fully resolved (kNoNode for ℵ0);
/// full slots report alias_node == accept_node. O(deg + 1) per node.
template <typename Emit>
void build_node_alias(const Graph& g, NodeId v, VoseScratch& scratch,
                      Emit&& emit) {
  auto& [prob, alias, small, large] = scratch;
  const auto nbrs = g.neighbors(v);
  const auto ws = g.in_weights(v);
  const auto k = static_cast<std::uint32_t>(ws.size() + 1);

  // Normalize defensively by the actual outcome total (≈ 1, but the
  // weights are sums of doubles), then scale by k so "fair share" = 1.
  double total = g.leftover_mass(v);
  for (double w : ws) total += w;
  AF_EXPECTS(total > 0.0, "node outcome mass must be positive");
  const double scale = static_cast<double>(k) / total;
  prob.assign(k, 0.0);
  for (std::uint32_t i = 0; i + 1 < k; ++i) prob[i] = ws[i] * scale;
  prob[k - 1] = g.leftover_mass(v) * scale;

  alias.assign(k, 0);
  small.clear();
  large.clear();
  for (std::uint32_t i = 0; i < k; ++i) {
    (prob[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    alias[s] = l;
    // l donates (1 − prob[s]) of its mass to fill s's slot.
    prob[l] = (prob[l] + prob[s]) - 1.0;
    (prob[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftover entries are exactly full up to rounding: accept always.
  while (!large.empty()) {
    prob[large.back()] = 1.0;
    alias[large.back()] = large.back();
    large.pop_back();
  }
  while (!small.empty()) {
    prob[small.back()] = 1.0;
    alias[small.back()] = small.back();
    small.pop_back();
  }

  // Resolve each local outcome to its node id and emit the slots.
  const auto outcome_node = [&](std::uint32_t i) {
    return i + 1 == k ? kNoNode : nbrs[i];
  };
  for (std::uint32_t i = 0; i < k; ++i) {
    emit(i, prob[i],
         outcome_node(i),
         prob[i] >= 1.0 ? outcome_node(i) : outcome_node(alias[i]));
  }
}

}  // namespace

SamplingIndex::SamplingIndex(const Graph& g) {
  const NodeId n = g.num_nodes();
  offsets_.resize(static_cast<std::size_t>(n) + 1);
  offsets_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + g.degree(v) + 1;
  }
  slots_.resize(offsets_[n]);

  VoseScratch scratch;
  for (NodeId v = 0; v < n; ++v) {
    Slot* out = slots_.data() + offsets_[v];
    build_node_alias(g, v, scratch,
                     [out](std::uint32_t i, double prob, NodeId accept,
                           NodeId alias) {
                       out[i].threshold = scale_threshold(prob);
                       out[i].accept = accept;
                       out[i].alias = alias;
                     });
  }
}

CompactSamplingIndex::CompactSamplingIndex(const Graph& g) {
  const NodeId n = g.num_nodes();
  const std::uint64_t total_slots =
      2ULL * g.num_edges() + static_cast<std::uint64_t>(n);
  AF_EXPECTS(total_slots <= std::numeric_limits<std::uint32_t>::max(),
             "compact index needs 2m + n < 2^32 slots");
  offsets_.resize(static_cast<std::size_t>(n) + 1);
  offsets_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + g.degree(v) + 1;
  }
  slots_.resize(offsets_[n]);

  VoseScratch scratch;
  for (NodeId v = 0; v < n; ++v) {
    Slot* out = slots_.data() + offsets_[v];
    build_node_alias(
        g, v, scratch,
        [out](std::uint32_t i, double prob, NodeId accept, NodeId alias) {
          // Clamp before narrowing: Vose arithmetic can leave 1 + O(ulp),
          // and float rounding must not push a sub-1 probability past 1
          // silently (it may round *to* 1.0f — that is the accepted 2⁻²⁴
          // quantization, since alias == accept only for full slots).
          out[i].threshold =
              static_cast<float>(std::clamp(prob, 0.0, 1.0));
          out[i].accept = accept;
          out[i].alias = alias;
        });
  }
}

}  // namespace af
