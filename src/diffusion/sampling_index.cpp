#include "diffusion/sampling_index.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <utility>

#include "util/contracts.hpp"
#include "util/failpoint.hpp"
#include "util/sync.hpp"

namespace af {

namespace {

/// prob ∈ [0,1] → the 2⁶⁴-scaled coin threshold. Full slots saturate to
/// 2⁶⁴−1; their alias is set equal to accept, so the 2⁻⁶⁴ "miss" lands on
/// the same node and full slots stay exact.
std::uint64_t scale_threshold(double prob) {
  if (prob >= 1.0) return ~std::uint64_t{0};
  if (prob <= 0.0) return 0;
  return static_cast<std::uint64_t>(prob * 0x1p64);
}

/// Scratch buffers for Vose's construction, reused across nodes so the
/// whole build allocates O(max_deg) once.
struct VoseScratch {
  std::vector<double> prob;
  std::vector<std::uint32_t> alias;
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
};

/// Vose's alias construction for node v's (deg(v)+1)-outcome selection
/// distribution (local outcome deg(v) is ℵ0), shared by both index
/// layouts. Invokes emit(i, prob_i, accept_node, alias_node) for each of
/// the k local outcomes, where prob_i ∈ [0,1] is the slot's acceptance
/// probability and both nodes are fully resolved (kNoNode for ℵ0);
/// full slots report alias_node == accept_node. O(deg + 1) per node.
template <typename Emit>
void build_node_alias(const Graph& g, NodeId v, VoseScratch& scratch,
                      Emit&& emit) {
  auto& [prob, alias, small, large] = scratch;
  const auto nbrs = g.neighbors(v);
  const auto ws = g.in_weights(v);
  const auto k = static_cast<std::uint32_t>(ws.size() + 1);

  // Normalize defensively by the actual outcome total (≈ 1, but the
  // weights are sums of doubles), then scale by k so "fair share" = 1.
  double total = g.leftover_mass(v);
  for (double w : ws) total += w;
  AF_EXPECTS(total > 0.0, "node outcome mass must be positive");
  const double scale = static_cast<double>(k) / total;
  prob.assign(k, 0.0);
  for (std::uint32_t i = 0; i + 1 < k; ++i) prob[i] = ws[i] * scale;
  prob[k - 1] = g.leftover_mass(v) * scale;

  alias.assign(k, 0);
  small.clear();
  large.clear();
  for (std::uint32_t i = 0; i < k; ++i) {
    (prob[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    alias[s] = l;
    // l donates (1 − prob[s]) of its mass to fill s's slot.
    prob[l] = (prob[l] + prob[s]) - 1.0;
    (prob[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftover entries are exactly full up to rounding: accept always.
  while (!large.empty()) {
    prob[large.back()] = 1.0;
    alias[large.back()] = large.back();
    large.pop_back();
  }
  while (!small.empty()) {
    prob[small.back()] = 1.0;
    alias[small.back()] = small.back();
    small.pop_back();
  }

  // Resolve each local outcome to its node id and emit the slots.
  const auto outcome_node = [&](std::uint32_t i) {
    return i + 1 == k ? kNoNode : nbrs[i];
  };
  for (std::uint32_t i = 0; i < k; ++i) {
    emit(i, prob[i],
         outcome_node(i),
         prob[i] >= 1.0 ? outcome_node(i) : outcome_node(alias[i]));
  }
}

/// One tournament candidate: a concrete level and its prefetch-fused
/// batch kernel (the fused form is what the walker actually runs, so it
/// is the one worth timing).
template <typename Kernel>
struct KernelCandidate {
  SimdLevel level;
  Kernel kernel;
};

/// kAuto's measured dispatch (DESIGN.md §9): an ISA bit in CPUID does
/// not make a vector kernel a win — under virtualization (and on several
/// microarchitectures) gathers are microcoded, and a microcoded gather
/// loses badly to the scalar loop whose independent loads the OoO core
/// already overlaps; AVX-512 adds license-based downclocking on some
/// parts. So kAuto runs a tournament: time EVERY compiled-and-supported
/// kernel on the freshly built tables over 16 chained lanes (the
/// walker's cache-cold regime — the one where a wrong choice is
/// expensive) and dispatch to the fastest vector leg, with a deliberate
/// 10% bias toward scalar: the risk is asymmetric (scalar's worst case
/// vs a good vector kernel is bounded, while a microcoded gather can run
/// 2× slower than the scalar loop), so a vector leg must win decisively
/// to be chosen — the winner therefore NEVER measured slower than
/// scalar. Kernels are bit-identical, so a flipped verdict on another
/// host changes throughput only, never results. A concrete AF_SIMD value
/// or PlannerOptions::simd skips the tournament entirely.
template <typename Index, typename Kernel>
KernelCalibration run_tournament_impl(const Index& idx,
                                      const KernelCandidate<Kernel>* cand,
                                      std::size_t num_cand,
                                      NodeId num_nodes) {
  constexpr std::size_t kLanes = 16;
  constexpr std::size_t kDraws = 1024;
  NodeId cur[kLanes];
  NodeId out[kLanes];
  Rng rngs[kLanes];
  const auto run = [&](Kernel kernel) {
    // Fresh, FIXED seed per run: every rep of every kernel replays the
    // identical start nodes, draws and restart sequence, so the timing
    // comparison is apples-to-apples.
    Rng seed(0x5eedU);
    for (std::size_t i = 0; i < kLanes; ++i) {
      cur[i] = static_cast<NodeId>(seed.uniform_int(num_nodes));
      rngs[i].reseed(i + 1);
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t d = 0; d < kDraws; ++d) {
      kernel(idx, cur, rngs, out, kLanes);
      for (std::size_t i = 0; i < kLanes; ++i) {
        // Chain each lane through its drawn node like the walker; dead
        // lanes restart pseudo-randomly (cheap LCG — identical cost for
        // every kernel, so it cancels out of the comparison).
        cur[i] = out[i] == kNoNode
                     ? static_cast<NodeId>((cur[i] * 2654435761U + 1) %
                                           num_nodes)
                     : out[i];
      }
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  // Alternating best-of-5 across ALL candidates: min() drops
  // scheduler/VM interference, the first rep doubles as table warmup for
  // everyone, and interleaving spreads any slow drift fairly.
  double best[kSimdKernelCount];
  std::fill(best, best + num_cand, 1e30);
  for (int rep = 0; rep < 5; ++rep) {
    for (std::size_t c = 0; c < num_cand; ++c) {
      best[c] = std::min(best[c], run(cand[c].kernel));
    }
  }
  // Candidate 0 is scalar by construction (init_kernels pushes it first).
  KernelCalibration calib;
  double best_vec = 1e30;
  SimdLevel best_vec_level = SimdLevel::kScalar;
  constexpr double kStepsPerRun = double{kLanes} * double{kDraws};
  for (std::size_t c = 0; c < num_cand; ++c) {
    calib.timings.push_back(
        {cand[c].level, best[c] * 1e9 / kStepsPerRun});
    if (c > 0 && best[c] < best_vec) {
      best_vec = best[c];
      best_vec_level = cand[c].level;
    }
  }
  calib.winner = best_vec < 0.9 * best[0] ? best_vec_level
                                          : SimdLevel::kScalar;
  return calib;
}

/// The process-wide memoized calibration cache, keyed by (index flavor,
/// table size class = bit_width(num_slots)). Two jobs:
///
///  1. Repeated constructions stop re-paying the measurement: Planner
///     rebuilds, from_mapped adoptions and NUMA replicas of
///     similarly-sized tables all reuse the first verdict. The size
///     CLASS (power-of-two bucket) is the key because the verdict is
///     about memory behavior — a table 1000× smaller lives in L2 and can
///     legitimately pick a different kernel than one spilling to DRAM.
///  2. The mutex is held ACROSS the measurement (not just the lookup):
///     the NUMA replica factory builds indexes concurrently, and without
///     serialization every builder would measure at once — each timing
///     run contended by the others (exactly the noise calibration exists
///     to avoid) and replicas could land on different kernels. The first
///     caller measures on an otherwise-idle process; the other builders
///     block here with their tables already built and share its verdict.
///
/// std::map nodes are address-stable, so the returned pointer (exposed
/// via Index::calibration() for bench/telemetry) lives as long as the
/// process.
struct CalibrationCache {
  Mutex mu;
  std::map<std::pair<int, int>, KernelCalibration> verdicts AF_GUARDED_BY(mu);
};

CalibrationCache& calibration_cache() {
  static CalibrationCache cache;
  return cache;
}

template <typename Index, typename Kernel>
const KernelCalibration* run_tournament(const Index& idx, int flavor,
                                        const KernelCandidate<Kernel>* cand,
                                        std::size_t num_cand,
                                        NodeId num_nodes) {
  auto& cache = calibration_cache();
  const std::pair<int, int> key{
      flavor, std::bit_width(static_cast<std::uint64_t>(idx.num_slots()))};
  MutexLock lock(cache.mu);
  auto it = cache.verdicts.find(key);
  if (it == cache.verdicts.end()) {
    it = cache.verdicts
             .emplace(key,
                      run_tournament_impl(idx, cand, num_cand, num_nodes))
             .first;
  }
  return &it->second;
}

}  // namespace

template <bool Prefetch>
void SamplingIndex::batch_scalar(const SamplingIndex& idx, const NodeId* cur,
                                 Rng* rng, NodeId* out, std::size_t n) {
  // The inline scalar draw across the batch: one tight loop, no virtual
  // dispatch per lane. This is the portable kernel and the bit-identity
  // reference for batch_avx2. With Prefetch, each lane's draw is
  // followed by an exact-slot prefetch for the lane's NEXT draw (at
  // out[i], with rng[i]'s peeked word) — the draw-time loads of the
  // next step then hit lines this step already warmed.
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId nxt = idx.sample_selection(cur[i], rng[i]);
    out[i] = nxt;
    if constexpr (Prefetch) {
      if (nxt != kNoNode) idx.prefetch_selection(nxt, rng[i]);
    }
  }
}

template void SamplingIndex::batch_scalar<false>(const SamplingIndex&,
                                                 const NodeId*, Rng*,
                                                 NodeId*, std::size_t);
template void SamplingIndex::batch_scalar<true>(const SamplingIndex&,
                                                const NodeId*, Rng*, NodeId*,
                                                std::size_t);

template <bool Prefetch>
void CompactSamplingIndex::batch_scalar(const CompactSamplingIndex& idx,
                                        const NodeId* cur, Rng* rng,
                                        NodeId* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId nxt = idx.sample_selection(cur[i], rng[i]);
    out[i] = nxt;
    if constexpr (Prefetch) {
      if (nxt != kNoNode) idx.prefetch_selection(nxt, rng[i]);
    }
  }
}

template void CompactSamplingIndex::batch_scalar<false>(
    const CompactSamplingIndex&, const NodeId*, Rng*, NodeId*, std::size_t);
template void CompactSamplingIndex::batch_scalar<true>(
    const CompactSamplingIndex&, const NodeId*, Rng*, NodeId*, std::size_t);

SamplingIndex::SamplingIndex(const Graph& g, SimdLevel simd,
                             bool huge_pages) {
  // Injectable alias-build failure (DESIGN.md §13): the planner's
  // factory catches the bad_alloc and degrades to ScanSelectionSampler.
  AF_FAILPOINT_ALLOC("index.alias_build");
  const NodeId n = g.num_nodes();
  offsets_.allocate(static_cast<std::size_t>(n) + 1, huge_pages);
  offsets_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + g.degree(v) + 1;
  }
  slots_.allocate(offsets_[n], huge_pages);

  VoseScratch scratch;
  for (NodeId v = 0; v < n; ++v) {
    Slot* out = slots_.data() + offsets_[v];
    build_node_alias(g, v, scratch,
                     [out](std::uint32_t i, double prob, NodeId accept,
                           NodeId alias) {
                       out[i].threshold = scale_threshold(prob);
                       out[i].accept = accept;
                       out[i].alias = alias;
                     });
  }

  init_kernels(simd, n);
}

void SamplingIndex::init_kernels(SimdLevel simd, NodeId num_nodes) {
  simd_ = resolve_simd_level(simd);
  // Tournament only under genuine kAuto (neither the caller nor AF_SIMD
  // forced a concrete level) when at least one vector leg is available —
  // resolve_simd_level returned the ceiling; whether to actually
  // dispatch there is the measurement's call.
  if (simd == SimdLevel::kAuto && simd_env_request() == SimdLevel::kAuto &&
      simd_ != SimdLevel::kScalar && num_nodes > 0) {
    KernelCandidate<BatchKernel> cands[kSimdKernelCount];
    std::size_t nc = 0;
    cands[nc++] = {SimdLevel::kScalar, &SamplingIndex::batch_scalar<true>};
#if defined(AF_HAVE_AVX2_KERNELS)
    if (simd_level_available(SimdLevel::kAvx2)) {
      cands[nc++] = {SimdLevel::kAvx2, &SamplingIndex::batch_avx2<true>};
    }
#endif
#if defined(AF_HAVE_AVX512_KERNELS)
    if (simd_level_available(SimdLevel::kAvx512)) {
      cands[nc++] = {SimdLevel::kAvx512,
                     &SamplingIndex::batch_avx512<true>};
    }
#endif
#if defined(AF_HAVE_NEON_KERNELS)
    if (simd_level_available(SimdLevel::kNeon)) {
      cands[nc++] = {SimdLevel::kNeon, &SamplingIndex::batch_neon<true>};
    }
#endif
    calibration_ = run_tournament(*this, /*flavor=*/0, cands, nc, num_nodes);
    simd_ = calibration_->winner;
  }
  switch (simd_) {
#if defined(AF_HAVE_AVX2_KERNELS)
    case SimdLevel::kAvx2:
      batch_kernel_ = &SamplingIndex::batch_avx2<false>;
      batch_prefetch_kernel_ = &SamplingIndex::batch_avx2<true>;
      break;
#endif
#if defined(AF_HAVE_AVX512_KERNELS)
    case SimdLevel::kAvx512:
      batch_kernel_ = &SamplingIndex::batch_avx512<false>;
      batch_prefetch_kernel_ = &SamplingIndex::batch_avx512<true>;
      break;
#endif
#if defined(AF_HAVE_NEON_KERNELS)
    case SimdLevel::kNeon:
      batch_kernel_ = &SamplingIndex::batch_neon<false>;
      batch_prefetch_kernel_ = &SamplingIndex::batch_neon<true>;
      break;
#endif
    default:
      // kScalar — the in-class defaults already point at batch_scalar.
      // (Levels whose TU was not compiled are unreachable here:
      // resolve_simd_level and the tournament only return available
      // levels.)
      break;
  }
}

SamplingIndex::SamplingIndex(const ExternalIndexTables& tables,
                             NodeId num_nodes, SimdLevel simd) {
  const auto n = static_cast<std::size_t>(num_nodes);
  AF_EXPECTS(tables.offsets.size() == (n + 1) * sizeof(std::uint64_t),
             "external index offsets: wrong byte count for n+1 entries");
  AF_EXPECTS(tables.slots.size() % sizeof(Slot) == 0,
             "external index slots: byte count not a multiple of 16");
  AF_EXPECTS(reinterpret_cast<std::uintptr_t>(tables.offsets.data()) %
                     alignof(std::uint64_t) ==
                 0,
             "external index offsets misaligned");
  AF_EXPECTS(reinterpret_cast<std::uintptr_t>(tables.slots.data()) %
                     alignof(Slot) ==
                 0,
             "external index slots misaligned");
  const auto* offs =
      reinterpret_cast<const std::uint64_t*>(tables.offsets.data());
  const std::size_t slot_count = tables.slots.size() / sizeof(Slot);
  AF_EXPECTS(offs[0] == 0 && offs[n] == slot_count,
             "external index tables: offsets do not cover the slot array");
  if (tables.copy) {
    // Materialize: the caller's thread first-touches every page, which
    // is what places NUMA replicas node-locally (diffusion/
    // index_replicas builds each copy on a pinned thread).
    offsets_.allocate(n + 1, tables.huge_pages);
    std::memcpy(offsets_.data(), tables.offsets.data(),
                tables.offsets.size());
    slots_.allocate(slot_count, tables.huge_pages);
    std::memcpy(slots_.data(), tables.slots.data(), tables.slots.size());
  } else {
    offsets_.adopt_view(offs, n + 1);
    slots_.adopt_view(reinterpret_cast<const Slot*>(tables.slots.data()),
                      slot_count);
  }
  init_kernels(simd, num_nodes);
}

CompactSamplingIndex::CompactSamplingIndex(const Graph& g, SimdLevel simd,
                                           bool huge_pages) {
  AF_FAILPOINT_ALLOC("index.alias_build_compact");
  const NodeId n = g.num_nodes();
  const std::uint64_t total_slots =
      2ULL * g.num_edges() + static_cast<std::uint64_t>(n);
  AF_EXPECTS(total_slots <= std::numeric_limits<std::uint32_t>::max(),
             "compact index needs 2m + n < 2^32 slots");
  offsets_.allocate(static_cast<std::size_t>(n) + 1, huge_pages);
  offsets_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + g.degree(v) + 1;
  }
  slots_.allocate(offsets_[n], huge_pages);

  VoseScratch scratch;
  for (NodeId v = 0; v < n; ++v) {
    Slot* out = slots_.data() + offsets_[v];
    build_node_alias(
        g, v, scratch,
        [out](std::uint32_t i, double prob, NodeId accept, NodeId alias) {
          // Clamp before narrowing: Vose arithmetic can leave 1 + O(ulp),
          // and float rounding must not push a sub-1 probability past 1
          // silently (it may round *to* 1.0f — that is the accepted 2⁻²⁴
          // quantization, since alias == accept only for full slots).
          out[i].threshold =
              static_cast<float>(std::clamp(prob, 0.0, 1.0));
          out[i].accept = accept;
          out[i].alias = alias;
        });
  }

  init_kernels(simd, n);
}

void CompactSamplingIndex::init_kernels(SimdLevel simd, NodeId num_nodes) {
  simd_ = resolve_simd_level(simd);
  if (simd == SimdLevel::kAuto && simd_env_request() == SimdLevel::kAuto &&
      simd_ != SimdLevel::kScalar && num_nodes > 0) {
    KernelCandidate<BatchKernel> cands[kSimdKernelCount];
    std::size_t nc = 0;
    cands[nc++] = {SimdLevel::kScalar,
                   &CompactSamplingIndex::batch_scalar<true>};
#if defined(AF_HAVE_AVX2_KERNELS)
    if (simd_level_available(SimdLevel::kAvx2)) {
      cands[nc++] = {SimdLevel::kAvx2,
                     &CompactSamplingIndex::batch_avx2<true>};
    }
#endif
#if defined(AF_HAVE_AVX512_KERNELS)
    if (simd_level_available(SimdLevel::kAvx512)) {
      cands[nc++] = {SimdLevel::kAvx512,
                     &CompactSamplingIndex::batch_avx512<true>};
    }
#endif
#if defined(AF_HAVE_NEON_KERNELS)
    if (simd_level_available(SimdLevel::kNeon)) {
      cands[nc++] = {SimdLevel::kNeon,
                     &CompactSamplingIndex::batch_neon<true>};
    }
#endif
    calibration_ = run_tournament(*this, /*flavor=*/1, cands, nc, num_nodes);
    simd_ = calibration_->winner;
  }
  switch (simd_) {
#if defined(AF_HAVE_AVX2_KERNELS)
    case SimdLevel::kAvx2:
      batch_kernel_ = &CompactSamplingIndex::batch_avx2<false>;
      batch_prefetch_kernel_ = &CompactSamplingIndex::batch_avx2<true>;
      break;
#endif
#if defined(AF_HAVE_AVX512_KERNELS)
    case SimdLevel::kAvx512:
      batch_kernel_ = &CompactSamplingIndex::batch_avx512<false>;
      batch_prefetch_kernel_ = &CompactSamplingIndex::batch_avx512<true>;
      break;
#endif
#if defined(AF_HAVE_NEON_KERNELS)
    case SimdLevel::kNeon:
      batch_kernel_ = &CompactSamplingIndex::batch_neon<false>;
      batch_prefetch_kernel_ = &CompactSamplingIndex::batch_neon<true>;
      break;
#endif
    default:
      break;  // kScalar — in-class defaults stand.
  }
}

CompactSamplingIndex::CompactSamplingIndex(const ExternalIndexTables& tables,
                                           NodeId num_nodes,
                                           SimdLevel simd) {
  const auto n = static_cast<std::size_t>(num_nodes);
  AF_EXPECTS(tables.offsets.size() == (n + 1) * sizeof(std::uint32_t),
             "external compact offsets: wrong byte count for n+1 entries");
  AF_EXPECTS(tables.slots.size() % sizeof(Slot) == 0,
             "external compact slots: byte count not a multiple of 12");
  AF_EXPECTS(reinterpret_cast<std::uintptr_t>(tables.offsets.data()) %
                     alignof(std::uint32_t) ==
                 0,
             "external compact offsets misaligned");
  AF_EXPECTS(reinterpret_cast<std::uintptr_t>(tables.slots.data()) %
                     alignof(Slot) ==
                 0,
             "external compact slots misaligned");
  const auto* offs =
      reinterpret_cast<const std::uint32_t*>(tables.offsets.data());
  const std::size_t slot_count = tables.slots.size() / sizeof(Slot);
  AF_EXPECTS(offs[0] == 0 && offs[n] == slot_count,
             "external compact tables: offsets do not cover the slot array");
  if (tables.copy) {
    offsets_.allocate(n + 1, tables.huge_pages);
    std::memcpy(offsets_.data(), tables.offsets.data(),
                tables.offsets.size());
    slots_.allocate(slot_count, tables.huge_pages);
    std::memcpy(slots_.data(), tables.slots.data(), tables.slots.size());
  } else {
    offsets_.adopt_view(offs, n + 1);
    slots_.adopt_view(reinterpret_cast<const Slot*>(tables.slots.data()),
                      slot_count);
  }
  init_kernels(simd, num_nodes);
}

}  // namespace af
