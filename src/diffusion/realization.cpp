#include "diffusion/realization.hpp"

#include "util/contracts.hpp"

namespace af {

std::vector<NodeId> sample_full_realization(const Graph& g, Rng& rng) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> out(n, kNoNode);
  for (NodeId v = 0; v < n; ++v) {
    // Select friend i with probability w(N_v[i], v); nobody with the
    // leftover 1 − Σ w. One uniform draw, cumulative scan.
    const double x = rng.uniform();
    double acc = 0.0;
    auto nbrs = g.neighbors(v);
    auto ws = g.in_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      acc += ws[i];
      if (x < acc) {
        out[v] = nbrs[i];
        break;
      }
    }
  }
  return out;
}

namespace {

/// Shared core of Alg. 1: walks backward from t through `select(v)`,
/// classifying the realization. `select` returns the selected friend of v
/// or kNoNode. `visited(v)` / `mark(v)` implement the cycle check.
template <typename SelectFn, typename VisitedFn, typename MarkFn>
TgSample walk_back(const FriendingInstance& inst, SelectFn&& select,
                   VisitedFn&& visited, MarkFn&& mark) {
  TgSample out;
  NodeId cur = inst.target();
  out.path.push_back(cur);
  mark(cur);
  while (true) {
    const NodeId nxt = select(cur);
    if (nxt == kNoNode) {
      // Case a: the walk dies before reaching N_s — t(g) contains ℵ0.
      out.type1 = false;
      return out;
    }
    if (inst.is_initial_friend(nxt)) {
      // Case c: reached a friend of s. t(g) is complete (the N_s node
      // itself is NOT part of t(g): it is already a friend).
      out.type1 = true;
      return out;
    }
    if (visited(nxt)) {
      // Case b: a cycle — equivalent to ℵ0 (Alg. 1 line 6).
      out.type1 = false;
      return out;
    }
    out.path.push_back(nxt);
    mark(nxt);
    cur = nxt;
  }
}

}  // namespace

TgSample trace_tg(const FriendingInstance& inst,
                  const std::vector<NodeId>& realization) {
  AF_EXPECTS(realization.size() == inst.graph().num_nodes(),
             "realization size mismatch");
  std::vector<char> seen(inst.graph().num_nodes(), 0);
  return walk_back(
      inst, [&](NodeId v) { return realization[v]; },
      [&](NodeId v) { return seen[v] != 0; }, [&](NodeId v) { seen[v] = 1; });
}

ReversePathSampler::ReversePathSampler(const FriendingInstance& inst)
    : inst_(inst) {
  visit_stamp_.assign(inst.graph().num_nodes(), 0);
}

NodeId ReversePathSampler::sample_selection(NodeId v, Rng& rng) const {
  const Graph& g = inst_.graph();
  const double x = rng.uniform();
  // Early exit on the no-selection mass, which dominates for low-weight
  // nodes: if x lands beyond the total in-weight, v selects nobody.
  if (x >= g.total_in_weight(v)) return kNoNode;
  double acc = 0.0;
  auto nbrs = g.neighbors(v);
  auto ws = g.in_weights(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    acc += ws[i];
    if (x < acc) return nbrs[i];
  }
  // Floating-point slack: x fell within total weight but the scan missed
  // (rounding at the boundary) — attribute to the last neighbor.
  return nbrs.empty() ? kNoNode : nbrs.back();
}

TgSample ReversePathSampler::sample(Rng& rng) {
  ++samples_;
  ++stamp_;
  return walk_back(
      inst_, [&](NodeId v) { return sample_selection(v, rng); },
      [&](NodeId v) { return visit_stamp_[v] == stamp_; },
      [&](NodeId v) { visit_stamp_[v] = stamp_; });
}

}  // namespace af
