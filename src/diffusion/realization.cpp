#include "diffusion/realization.hpp"

#include "diffusion/sampling_index.hpp"
#include "util/contracts.hpp"

namespace af {

NodeId ScanSelectionSampler::sample_selection(NodeId v, Rng& rng) const {
  const Graph& g = *g_;
  const double x = rng.uniform();
  // Early exit on the no-selection mass, which dominates for low-weight
  // nodes: if x lands beyond the total in-weight, v selects nobody.
  if (x >= g.total_in_weight(v)) return kNoNode;
  double acc = 0.0;
  auto nbrs = g.neighbors(v);
  auto ws = g.in_weights(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    acc += ws[i];
    if (x < acc) return nbrs[i];
  }
  // Floating-point slack: x fell within total weight but the scan missed
  // (rounding at the boundary) — attribute to the last neighbor.
  return nbrs.empty() ? kNoNode : nbrs.back();
}

void sample_full_realization(const Graph& g, const SelectionSampler& sel,
                             Rng& rng, std::vector<NodeId>& out) {
  const NodeId n = g.num_nodes();
  out.assign(n, kNoNode);
  for (NodeId v = 0; v < n; ++v) out[v] = sel.sample_selection(v, rng);
}

void sample_full_realization(const Graph& g, Rng& rng,
                             std::vector<NodeId>& out) {
  sample_full_realization(g, ScanSelectionSampler(g), rng, out);
}

std::vector<NodeId> sample_full_realization(const Graph& g, Rng& rng) {
  std::vector<NodeId> out;
  sample_full_realization(g, rng, out);
  return out;
}

TgSample trace_tg(const FriendingInstance& inst,
                  const std::vector<NodeId>& realization) {
  AF_EXPECTS(realization.size() == inst.graph().num_nodes(),
             "realization size mismatch");
  TgSample out;
  NodeId cur = inst.target();
  out.path.push_back(cur);
  while (true) {
    const NodeId nxt = realization[cur];
    const WalkStep step = classify_walk_step(inst, nxt, out.path);
    if (step == WalkStep::kReachedNs) {
      out.type1 = true;
      return out;
    }
    if (step != WalkStep::kContinue) return out;
    out.path.push_back(nxt);
    cur = nxt;
  }
}

ReversePathSampler::ReversePathSampler(const FriendingInstance& inst)
    : inst_(inst) {
  try {
    owned_index_ = std::make_unique<const SamplingIndex>(inst.graph());
  } catch (const std::bad_alloc&) {
    // alias→scan rung (DESIGN.md §13), same as the planner's index
    // factory: answers stay correct, each step pays O(deg) instead of
    // O(1). Different rng consumption than the alias path, like every
    // degraded-scan surface.
    owned_index_ = std::make_unique<const ScanSelectionSampler>(inst.graph());
  }
  sel_ = owned_index_.get();
}

ReversePathSampler::ReversePathSampler(const FriendingInstance& inst,
                                       const SelectionSampler& sel)
    : inst_(inst), sel_(&sel) {}

ReversePathSampler::~ReversePathSampler() = default;
ReversePathSampler::ReversePathSampler(ReversePathSampler&&) noexcept =
    default;

bool ReversePathSampler::sample_into(Rng& rng, std::vector<NodeId>& path) {
  ++samples_;
  path.clear();
  NodeId cur = inst_.target();
  path.push_back(cur);
  while (true) {
    const NodeId nxt = sel_->sample_selection(cur, rng);
    const WalkStep step = classify_walk_step(inst_, nxt, path);
    if (step == WalkStep::kReachedNs) return true;
    if (step != WalkStep::kContinue) return false;
    path.push_back(nxt);
    cur = nxt;
  }
}

TgSample ReversePathSampler::sample(Rng& rng) {
  TgSample out;
  out.type1 = sample_into(rng, out.path);
  return out;
}

}  // namespace af
