#include "diffusion/montecarlo.hpp"

#include "util/contracts.hpp"

namespace af {

MonteCarloEvaluator::MonteCarloEvaluator(const FriendingInstance& inst)
    : inst_(inst), forward_(inst), reverse_(inst) {}

MonteCarloEvaluator::MonteCarloEvaluator(const FriendingInstance& inst,
                                         const SelectionSampler& sel)
    : inst_(inst), forward_(inst), reverse_(inst, sel) {}

Proportion MonteCarloEvaluator::estimate_f(const InvitationSet& invited,
                                           std::uint64_t samples, Rng& rng,
                                           McEngine engine) {
  AF_EXPECTS(samples > 0, "need at least one sample");
  Proportion p;
  p.trials = samples;

  // f(I) = 0 whenever t itself is not invited (only invited users can
  // become friends); both engines handle it, but short-circuit for speed.
  if (!invited.contains(inst_.target())) return p;

  if (engine == McEngine::kForward) {
    for (std::uint64_t i = 0; i < samples; ++i) {
      if (forward_.run(invited, rng).target_reached) ++p.successes;
    }
    return p;
  }
  for (std::uint64_t i = 0; i < samples; ++i) {
    if (!reverse_.sample_into(rng, path_buf_)) continue;
    bool covered = true;
    for (NodeId v : path_buf_) {
      if (!invited.contains(v)) {
        covered = false;
        break;
      }
    }
    if (covered) ++p.successes;
  }
  return p;
}

Proportion MonteCarloEvaluator::estimate_pmax(std::uint64_t samples, Rng& rng,
                                              McEngine engine) {
  AF_EXPECTS(samples > 0, "need at least one sample");
  if (engine == McEngine::kForward) {
    const InvitationSet full = InvitationSet::full(inst_);
    return estimate_f(full, samples, rng, McEngine::kForward);
  }
  Proportion p;
  p.trials = samples;
  for (std::uint64_t i = 0; i < samples; ++i) {
    if (reverse_.sample_into(rng, path_buf_)) ++p.successes;
  }
  return p;
}

}  // namespace af
