// Invitation sets I ⊆ V with O(1) membership and a stable member list.
#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"

namespace af {

class FriendingInstance;

/// A set of invited users. Membership is O(1); members() preserves
/// insertion order (deduplicated).
class InvitationSet {
 public:
  explicit InvitationSet(NodeId num_nodes) : mask_(num_nodes, 0) {}

  InvitationSet(NodeId num_nodes, std::span<const NodeId> nodes)
      : InvitationSet(num_nodes) {
    for (NodeId v : nodes) add(v);
  }

  /// Adds v; returns true if newly inserted.
  bool add(NodeId v) {
    if (mask_[v]) return false;
    mask_[v] = 1;
    members_.push_back(v);
    return true;
  }

  bool contains(NodeId v) const { return mask_[v] != 0; }
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }
  const std::vector<NodeId>& members() const { return members_; }
  NodeId universe_size() const { return static_cast<NodeId>(mask_.size()); }

  /// All nodes of the instance's graph that are meaningful to invite
  /// (everything except s and N_s). This is the "I = V" of the paper:
  /// f(full_set) = p_max.
  static InvitationSet full(const FriendingInstance& inst);

  /// Drops members that are no-ops for the instance (s and N_s nodes);
  /// returns the number removed. Baseline strategies use this to spend
  /// their size budget only on effective invitations.
  std::size_t normalize(const FriendingInstance& inst);

 private:
  std::vector<char> mask_;
  std::vector<NodeId> members_;
};

}  // namespace af
