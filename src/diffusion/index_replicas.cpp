#include "diffusion/index_replicas.hpp"

#include <exception>
#include <new>
#include <thread>
#include <utility>

#include "util/contracts.hpp"
#include "util/failpoint.hpp"

namespace af {

IndexReplicas::IndexReplicas(const Factory& factory,
                             const NumaTopology& topo) {
  const int nodes = topo.num_nodes() > 0 ? topo.num_nodes() : 1;
  if (nodes == 1) {
    replicas_.push_back(factory());
    AF_EXPECTS(replicas_[0] != nullptr, "replica factory returned null");
    lookup_.push_back(replicas_[0].get());
    return;
  }
  // One builder thread per node, pinned before construction so every
  // page the build first-touches is node-local. Pinning is best-effort:
  // an unpinnable builder still produces a correct (just possibly
  // remote) replica. bad_alloc from a builder is tolerated per node —
  // memory pressure on one socket degrades that node to sharing, it
  // does not abort the planner; any other exception is carried back and
  // rethrown.
  std::vector<std::unique_ptr<const SelectionSampler>> built(
      static_cast<std::size_t>(nodes));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nodes));
  std::vector<std::thread> builders;
  builders.reserve(static_cast<std::size_t>(nodes));
  for (int node = 0; node < nodes; ++node) {
    builders.emplace_back([&, node] {
      try {
        pin_thread_to_node(node);
        AF_FAILPOINT_ALLOC("numa.replica_build");
        built[static_cast<std::size_t>(node)] = factory();
        AF_EXPECTS(built[static_cast<std::size_t>(node)] != nullptr,
                   "replica factory returned null");
      } catch (const std::bad_alloc&) {
        // Tolerated: built[node] stays null and the node shares below.
      } catch (...) {
        errors[static_cast<std::size_t>(node)] = std::current_exception();
      }
    });
  }
  for (auto& builder : builders) builder.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  // Compact the healthy copies and alias every failed node to the first
  // healthy replica. Nothing to degrade to when every build failed —
  // that IS an out-of-memory condition, so report it as one (the
  // planner's shed-and-retry ladder or the caller handles it).
  lookup_.assign(static_cast<std::size_t>(nodes), nullptr);
  for (int node = 0; node < nodes; ++node) {
    auto& candidate = built[static_cast<std::size_t>(node)];
    if (candidate != nullptr) {
      lookup_[static_cast<std::size_t>(node)] = candidate.get();
      replicas_.push_back(std::move(candidate));
    } else {
      ++build_failures_;
    }
  }
  if (replicas_.empty()) throw std::bad_alloc();
  for (auto& entry : lookup_) {
    if (entry == nullptr) entry = replicas_[0].get();
  }
}

IndexReplicas::IndexReplicas(std::unique_ptr<const SelectionSampler> single) {
  AF_EXPECTS(single != nullptr, "IndexReplicas needs a sampler");
  replicas_.push_back(std::move(single));
  lookup_.push_back(replicas_[0].get());
}

}  // namespace af
