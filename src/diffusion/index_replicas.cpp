#include "diffusion/index_replicas.hpp"

#include <exception>
#include <thread>
#include <utility>

#include "util/contracts.hpp"

namespace af {

IndexReplicas::IndexReplicas(const Factory& factory,
                             const NumaTopology& topo) {
  const int nodes = topo.num_nodes() > 0 ? topo.num_nodes() : 1;
  replicas_.resize(static_cast<std::size_t>(nodes));
  if (nodes == 1) {
    replicas_[0] = factory();
    AF_EXPECTS(replicas_[0] != nullptr, "replica factory returned null");
    return;
  }
  // One builder thread per node, pinned before construction so every
  // page the build first-touches is node-local. Pinning is best-effort:
  // an unpinnable builder still produces a correct (just possibly
  // remote) replica. Builder exceptions are carried back and rethrown.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nodes));
  std::vector<std::thread> builders;
  builders.reserve(static_cast<std::size_t>(nodes));
  for (int node = 0; node < nodes; ++node) {
    builders.emplace_back([&, node] {
      try {
        pin_thread_to_node(node);
        replicas_[static_cast<std::size_t>(node)] = factory();
      } catch (...) {
        errors[static_cast<std::size_t>(node)] = std::current_exception();
      }
    });
  }
  for (auto& builder : builders) builder.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  for (const auto& replica : replicas_) {
    AF_EXPECTS(replica != nullptr, "replica factory returned null");
  }
}

IndexReplicas::IndexReplicas(std::unique_ptr<const SelectionSampler> single) {
  AF_EXPECTS(single != nullptr, "IndexReplicas needs a sampler");
  replicas_.push_back(std::move(single));
}

}  // namespace af
