// A friending instance: the graph plus the initiator s and target t.
//
// Validates the paper's standing assumptions (Sec. II): s ≠ t and t is
// not already a friend of s. Caches N_s and a membership mask for it,
// since every diffusion primitive tests "is this node an initial friend"
// in its inner loop.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace af {

/// Immutable (graph, s, t) triple with cached initial-friend data.
/// Holds a reference to the graph; the graph must outlive the instance.
class FriendingInstance {
 public:
  FriendingInstance(const Graph& g, NodeId s, NodeId t);

  const Graph& graph() const { return *g_; }
  NodeId initiator() const { return s_; }
  NodeId target() const { return t_; }

  /// N_s — current friends of the initiator (sorted).
  const std::vector<NodeId>& initial_friends() const { return ns_; }

  /// True iff v ∈ N_s. O(1).
  bool is_initial_friend(NodeId v) const { return ns_mask_[v]; }

  /// True iff v is eligible to appear in an invitation set: not s, not t's
  /// trivially excluded nodes — inviting s or an existing friend is a
  /// no-op in Process 1, so normalized invitation sets exclude them.
  bool invitable(NodeId v) const { return v != s_ && !ns_mask_[v]; }

  /// Bytes retained by the instance's own buffers (the n-sized N_s mask
  /// dominates). The Planner's memory governor charges this as part of a
  /// pair cache's fixed overhead (DESIGN.md §8).
  std::size_t memory_bytes() const {
    return ns_.capacity() * sizeof(NodeId) +
           ns_mask_.capacity() * sizeof(char);
  }

 private:
  const Graph* g_;
  NodeId s_;
  NodeId t_;
  std::vector<NodeId> ns_;
  std::vector<char> ns_mask_;
};

}  // namespace af
