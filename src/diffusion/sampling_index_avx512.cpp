// AVX-512 batched selection kernels (DESIGN.md §9).
//
// This TU is compiled with -mavx512f -mavx512dq behind the AF_SIMD build
// gate and only ever *executed* after util/cpu.hpp's runtime detection
// says the CPU has both F and DQ — the rest of the library stays
// portable (no -march=native).
//
// Twice the AVX2 leg's width (8 lanes of 64-bit arithmetic per block)
// plus two things AVX2 cannot do:
//
//  1. Mask-register remainder handling. There is no scalar tail: a batch
//     of any size runs the one vector path, with the final block's
//     inactive lanes switched off by a __mmask8 — masked gathers touch
//     no memory for dead lanes and the masked narrowing store
//     (vpmovqd) writes only live outputs. The bulk walker's live-lane
//     count decays as lanes die, so odd batch sizes are the common case,
//     not the exception.
//  2. Native unsigned 64-bit compares (vpcmpuq) for the alias coin —
//     the AVX2 leg pays a sign-flip xor per lane to fake them.
//
// Bit-identity contract: exactly the same as the AVX2 leg. The Lemire
// multiply-shift is exact 64×64→128 integer arithmetic from vpmuludq
// partial products; the full index's coin is the unsigned compare
// lo < threshold; the compact index's coin converts (lo >> 11) with
// vcvtuqq2pd (DQ; exact — the value is < 2⁵³) and compares in double
// against the widened float32 threshold, exactly as the scalar draw
// does. Per-lane rng state updates stay scalar (xoshiro256++ is a
// serial ALU recurrence per stream); only active lanes consume a word,
// so rng streams advance exactly as under the scalar kernel.
//
// The equivalence is pinned across lane widths, thread counts and both
// index layouts in tests/bulk_kernel_equivalence_test.cpp.
#include "diffusion/sampling_index.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace af {

namespace {

/// hi/lo of the lane-wise 64×64→128 product, from four 32×32→64 partial
/// products (vpmuludq). Exactly matches __uint128_t multiplication lane
/// by lane — the same construction as the AVX2 leg, twice as wide.
inline void mul_64x64_128(__m512i a, __m512i b, __m512i& hi, __m512i& lo) {
  const __m512i mask32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i a_hi = _mm512_srli_epi64(a, 32);
  const __m512i b_hi = _mm512_srli_epi64(b, 32);
  // _mm512_mul_epu32 reads the low 32 bits of each 64-bit lane.
  const __m512i ll = _mm512_mul_epu32(a, b);
  const __m512i lh = _mm512_mul_epu32(a, b_hi);
  const __m512i hl = _mm512_mul_epu32(a_hi, b);
  const __m512i hh = _mm512_mul_epu32(a_hi, b_hi);
  // Carry column: (ll >> 32) + low32(lh) + low32(hl) fits in 64 bits,
  // so plain adds cannot wrap.
  const __m512i t = _mm512_add_epi64(
      _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                       _mm512_and_si512(lh, mask32)),
      _mm512_and_si512(hl, mask32));
  hi = _mm512_add_epi64(
      _mm512_add_epi64(hh, _mm512_srli_epi64(lh, 32)),
      _mm512_add_epi64(_mm512_srli_epi64(hl, 32), _mm512_srli_epi64(t, 32)));
  lo = _mm512_or_si512(_mm512_slli_epi64(t, 32),
                       _mm512_and_si512(ll, mask32));
}

/// The block's live-lane mask: all 8, or the first `rem` for the final
/// partial block. This is the whole remainder story — every gather,
/// compare and store below takes it.
inline __mmask8 block_mask(std::size_t rem) {
  return rem >= 8 ? static_cast<__mmask8>(0xff)
                  : static_cast<__mmask8>((1u << rem) - 1u);
}

}  // namespace

template <bool Prefetch>
void SamplingIndex::batch_avx512(const SamplingIndex& idx, const NodeId* cur,
                                 Rng* rng, NodeId* out, std::size_t n) {
  const auto* offsets = idx.offsets_.data();
  const auto* slots = reinterpret_cast<const long long*>(idx.slots_.data());
  for (std::size_t i = 0; i < n; i += 8) {
    const std::size_t active = n - i < 8 ? n - i : 8;
    const __mmask8 m = block_mask(active);

    // Per-lane rng words, ACTIVE lanes only (rng consumption must match
    // the scalar kernel word for word); node ids zero-padded so the
    // unmasked vector load below reads only our own stack.
    alignas(64) std::uint64_t words[8] = {};
    alignas(32) NodeId vbuf[8] = {};
    for (std::size_t j = 0; j < active; ++j) {
      words[j] = rng[i + j].next_u64();
      vbuf[j] = cur[i + j];
    }
    const __m512i x =
        _mm512_load_si512(reinterpret_cast<const void*>(words));
    const __m256i v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(vbuf));

    const __m512i zero = _mm512_setzero_si512();
    const __m512i off0 = _mm512_mask_i32gather_epi64(zero, m, v, offsets, 8);
    const __m512i off1 =
        _mm512_mask_i32gather_epi64(zero, m, v, offsets + 1, 8);
    const __m512i k = _mm512_sub_epi64(off1, off0);

    __m512i hi, lo;
    mul_64x64_128(x, k, hi, lo);
    const __m512i slot = _mm512_add_epi64(off0, hi);

    // 16-byte slots viewed as u64 pairs: word 2·slot is the threshold,
    // word 2·slot+1 packs {accept, alias}.
    const __m512i widx = _mm512_slli_epi64(slot, 1);
    const __m512i thr = _mm512_mask_i64gather_epi64(zero, m, widx, slots, 8);
    const __m512i pair = _mm512_mask_i64gather_epi64(
        zero, m, _mm512_or_si512(widx, _mm512_set1_epi64(1)), slots, 8);

    // Native unsigned compare: lane takes accept iff lo < threshold.
    const __mmask8 take_accept = _mm512_cmplt_epu64_mask(lo, thr);
    const __m512i accept =
        _mm512_and_si512(pair, _mm512_set1_epi64(0xffffffffLL));
    const __m512i alias = _mm512_srli_epi64(pair, 32);
    const __m512i sel = _mm512_mask_blend_epi64(take_accept, alias, accept);
    // Masked narrowing store (vpmovqd): live lanes' low 32 bits land in
    // out[i..i+active), dead lanes write nothing.
    _mm512_mask_cvtepi64_storeu_epi32(out + i, m, sel);

    if constexpr (Prefetch) {
      // Next-step prefetch, scalar per lane (prefetch is one address per
      // instruction anyway): peek the post-draw rng word and warm the
      // exact slot line the lane's next draw would probe at out[i+j].
      for (std::size_t j = 0; j < active; ++j) {
        if (out[i + j] != kNoNode) {
          idx.prefetch_selection(out[i + j], rng[i + j]);
        }
      }
    }
  }
}

template void SamplingIndex::batch_avx512<false>(const SamplingIndex&,
                                                 const NodeId*, Rng*,
                                                 NodeId*, std::size_t);
template void SamplingIndex::batch_avx512<true>(const SamplingIndex&,
                                                const NodeId*, Rng*, NodeId*,
                                                std::size_t);

template <bool Prefetch>
void CompactSamplingIndex::batch_avx512(const CompactSamplingIndex& idx,
                                        const NodeId* cur, Rng* rng,
                                        NodeId* out, std::size_t n) {
  const auto* offsets = reinterpret_cast<const char*>(idx.offsets_.data());
  const auto* slots = reinterpret_cast<const char*>(idx.slots_.data());
  for (std::size_t i = 0; i < n; i += 8) {
    const std::size_t active = n - i < 8 ? n - i : 8;
    const __mmask8 m = block_mask(active);

    alignas(64) std::uint64_t words[8] = {};
    alignas(32) NodeId vbuf[8] = {};
    for (std::size_t j = 0; j < active; ++j) {
      words[j] = rng[i + j].next_u64();
      vbuf[j] = cur[i + j];
    }
    const __m512i x =
        _mm512_load_si512(reinterpret_cast<const void*>(words));
    const __m256i v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(vbuf));

    // One gather fetches BOTH 32-bit CSR bounds per lane: the 8-byte
    // load at byte offset 4·v reads {off[v], off[v+1]} adjacent in the
    // (n+1)-entry array — off[v] in the low dword (little-endian),
    // off[v+1] in the high. Halves the AVX2 leg's two offset gathers.
    const __m512i zero = _mm512_setzero_si512();
    const __m512i offpair =
        _mm512_mask_i32gather_epi64(zero, m, v, offsets, 4);
    const __m512i mask32 = _mm512_set1_epi64(0xffffffffLL);
    const __m512i off0 = _mm512_and_si512(offpair, mask32);
    const __m512i k =
        _mm512_sub_epi64(_mm512_srli_epi64(offpair, 32), off0);

    __m512i hi, lo;
    mul_64x64_128(x, k, hi, lo);
    const __m512i slot = _mm512_add_epi64(off0, hi);

    // 12-byte slots: gather with byte offsets (scale 1). Word 0 at
    // slot·12 packs {float threshold, accept}; word 1 at slot·12+4
    // packs {accept, alias}. Both 8-byte loads stay inside the slot.
    const __m512i byteoff = _mm512_add_epi64(_mm512_slli_epi64(slot, 3),
                                             _mm512_slli_epi64(slot, 2));
    const __m512i w0 =
        _mm512_mask_i64gather_epi64(zero, m, byteoff, slots, 1);
    const __m512i w1 =
        _mm512_mask_i64gather_epi64(zero, m, byteoff, slots + 4, 1);

    // Coin: (lo >> 11)·2⁻⁵³ < (double)threshold, exactly as the scalar
    // draw computes it. vcvtuqq2pd (DQ) is exact here — the operand is
    // < 2⁵³ — replacing the AVX2 leg's magic-number construction.
    const __m512d coin =
        _mm512_mul_pd(_mm512_cvtepu64_pd(_mm512_srli_epi64(lo, 11)),
                      _mm512_set1_pd(0x1p-53));
    // Low dword of each w0 lane is the float32 threshold; narrow
    // (vpmovqd), reinterpret as floats, widen to double — float→double
    // is exact, so the compare matches scalar bit for bit.
    const __m256 thr_f =
        _mm256_castsi256_ps(_mm512_cvtepi64_epi32(w0));
    const __m512d thr = _mm512_cvtps_pd(thr_f);
    const __mmask8 take_accept =
        _mm512_cmp_pd_mask(coin, thr, _CMP_LT_OQ);

    const __m512i accept = _mm512_and_si512(w1, mask32);
    const __m512i alias = _mm512_srli_epi64(w1, 32);
    const __m512i sel = _mm512_mask_blend_epi64(take_accept, alias, accept);
    _mm512_mask_cvtepi64_storeu_epi32(out + i, m, sel);

    if constexpr (Prefetch) {
      for (std::size_t j = 0; j < active; ++j) {
        if (out[i + j] != kNoNode) {
          idx.prefetch_selection(out[i + j], rng[i + j]);
        }
      }
    }
  }
}

template void CompactSamplingIndex::batch_avx512<false>(
    const CompactSamplingIndex&, const NodeId*, Rng*, NodeId*, std::size_t);
template void CompactSamplingIndex::batch_avx512<true>(
    const CompactSamplingIndex&, const NodeId*, Rng*, NodeId*, std::size_t);

}  // namespace af

#endif  // __AVX512F__ && __AVX512DQ__
