#include "diffusion/instance.hpp"

#include "util/contracts.hpp"

namespace af {

FriendingInstance::FriendingInstance(const Graph& g, NodeId s, NodeId t)
    : g_(&g), s_(s), t_(t) {
  AF_EXPECTS(s < g.num_nodes() && t < g.num_nodes(),
             "instance endpoints out of range");
  AF_EXPECTS(s != t, "initiator and target must differ");
  AF_EXPECTS(!g.has_edge(s, t),
             "target is already a friend of the initiator");
  ns_.assign(g.neighbors(s).begin(), g.neighbors(s).end());
  ns_mask_.assign(g.num_nodes(), 0);
  for (NodeId v : ns_) ns_mask_[v] = 1;
}

}  // namespace af
