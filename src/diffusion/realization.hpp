// Realizations (Definition 1) and the backward trace t(g) (Algorithm 1).
//
// A realization maps every user v to at most one selected friend, chosen
// with probability w(u,v) (and "nobody" — the artificial user ℵ0 — with
// the leftover probability 1 − Σ_u w(u,v)). Lemma 2 shows the friending
// process succeeds under g iff the invitation set contains the backward
// path t(g): t, g(t), g(g(t)), … up to (excluding) the first node of N_s.
//
// Two samplers are provided:
//  - sample_full_realization: materializes g for all nodes (O(n + m)).
//    Used by tests and by the literal Process-2 evaluation.
//  - ReversePathSampler: samples only the selections along the backward
//    walk from t (the reverse-sampling idea of Borgs et al., Remark 3),
//    which is what makes RAF practical. Worst case O(m), typical cost
//    proportional to the walk length times average degree.
#pragma once

#include <cstdint>
#include <vector>

#include "diffusion/instance.hpp"
#include "util/rng.hpp"

namespace af {

/// Result of tracing t(g): the path nodes and the realization type
/// (Def. 2: type-1 iff ℵ0 ∉ t(g), i.e. the walk reached N_s).
struct TgSample {
  /// true: the backward walk reached a friend of s (the realization is
  /// type-1 and `path` is exactly t(g) without the artificial ℵ0).
  bool type1 = false;
  /// Nodes of t(g) in walk order: path[0] = t, then g(t), g(g(t)), …
  /// Never contains s or any node of N_s. For type-0 realizations the
  /// nodes visited before hitting ℵ0/a cycle (diagnostic value only).
  std::vector<NodeId> path;
};

/// Samples a full realization: out[v] = selected friend of v, or kNoNode
/// for "selects nobody" (ℵ0). Each friend u is selected with probability
/// w(u,v), independently across v.
std::vector<NodeId> sample_full_realization(const Graph& g, Rng& rng);

/// Traces t(g) (Alg. 1) through an explicit realization. Deterministic.
TgSample trace_tg(const FriendingInstance& inst,
                  const std::vector<NodeId>& realization);

/// Lazily samples t(ĝ) for random realizations ĝ without materializing g.
///
/// Holds stamp-versioned visit marks so repeated sampling allocates
/// nothing. Each sample() consumes randomness only for the nodes actually
/// visited by the backward walk; by independence of per-node selections
/// this has exactly the distribution of trace_tg(sample_full_realization).
class ReversePathSampler {
 public:
  explicit ReversePathSampler(const FriendingInstance& inst);

  /// Draws one t(ĝ) sample.
  TgSample sample(Rng& rng);

  /// Number of samples drawn so far (diagnostics).
  std::uint64_t samples_drawn() const { return samples_; }

 private:
  /// Samples the selection of node v: an index into neighbors(v) chosen
  /// with the in-weights, or kNoNode for ℵ0.
  NodeId sample_selection(NodeId v, Rng& rng) const;

  const FriendingInstance& inst_;
  std::vector<std::uint32_t> visit_stamp_;
  std::uint32_t stamp_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace af
