// Realizations (Definition 1) and the backward trace t(g) (Algorithm 1).
//
// A realization maps every user v to at most one selected friend, chosen
// with probability w(u,v) (and "nobody" — the artificial user ℵ0 — with
// the leftover probability 1 − Σ_u w(u,v)). Lemma 2 shows the friending
// process succeeds under g iff the invitation set contains the backward
// path t(g): t, g(t), g(g(t)), … up to (excluding) the first node of N_s.
//
// Per-node selection sampling is a strategy (the MpuSolver pattern):
//  - ScanSelectionSampler: the original O(deg) cumulative scan, kept as
//    the equivalence oracle for tests and ablation benchmarks.
//  - SamplingIndex (diffusion/sampling_index.hpp): Vose alias tables
//    with O(1) selection — the production engine.
//
// Two walk drivers consume a strategy:
//  - sample_full_realization: materializes g for all nodes (O(n) draws).
//    Used by tests and by the literal Process-2 evaluation. The
//    out-parameter overload reuses the caller's n-sized buffer.
//  - ReversePathSampler: samples only the selections along the backward
//    walk from t (the reverse-sampling idea of Borgs et al., Remark 3),
//    which is what makes RAF practical. With the alias strategy one walk
//    step costs O(1); sample_into() reuses the caller's path buffer so
//    repeated draws allocate nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "diffusion/instance.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"

namespace af {

class SamplingIndex;

/// Strategy for sampling one node's realization selection: the friend v
/// selects (an element of neighbors(v)), or kNoNode for ℵ0. Implementations
/// must realize exactly the distribution {w(N_v[i], v)} ∪ {leftover}.
class SelectionSampler {
 public:
  virtual ~SelectionSampler() = default;

  /// Draws v's selection, consuming `rng`.
  virtual NodeId sample_selection(NodeId v, Rng& rng) const = 0;

  /// Batched form: out[i] = the selection of cur[i] drawn from rng[i],
  /// for i in [0, n). Semantically exactly n independent
  /// sample_selection calls — every implementation must consume one draw
  /// from each rng[i] and produce bit-identical outputs to the scalar
  /// form — but a strategy may override it to amortize the per-draw
  /// work across the batch (the alias indexes run the whole batch
  /// through one dispatched kernel: no per-lane virtual call, and with
  /// AVX2 the slot picks and probes are 4-lane gathers; DESIGN.md §9).
  /// The bulk walker calls this once per step for all live lanes.
  virtual void sample_selection_batch(const NodeId* cur, Rng* rng,
                                      NodeId* out, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = sample_selection(cur[i], rng[i]);
    }
  }

  /// Hints that the *next* draw against this strategy will be
  /// sample_selection(v, rng) — and that `rng` will not be advanced in
  /// between. Implementations may software-prefetch the memory that draw
  /// will touch (the alias indexes peek rng's next word and prefetch the
  /// exact slot line); the default is a no-op. Purely a latency hint:
  /// never consumes randomness, never changes results.
  virtual void prefetch_selection(NodeId v, const Rng& rng) const {
    (void)v;
    (void)rng;
  }

  /// sample_selection_batch fused with next-step prefetch: after drawing
  /// out[i], the implementation may prefetch the memory that the lane's
  /// NEXT draw — sample_selection(out[i], rng[i]) with rng[i] not
  /// advanced in between — would touch, skipping lanes whose outcome is
  /// kNoNode. That is exactly the bulk walker's continuing-lane
  /// situation; for lanes that die or relaunch the hint is wasted but
  /// harmless. Fusing matters: the draw already holds the lane's rng
  /// word, CSR offsets and slot address in registers, so the prefetch
  /// costs one peeked word and one offsets load instead of a separate
  /// virtual call per lane recomputing both (DESIGN.md §9). Identical
  /// outputs and rng consumption to sample_selection_batch.
  virtual void sample_selection_batch_prefetch(const NodeId* cur, Rng* rng,
                                               NodeId* out,
                                               std::size_t n) const {
    sample_selection_batch(cur, rng, out, n);
    for (std::size_t i = 0; i < n; ++i) {
      if (out[i] != kNoNode) prefetch_selection(out[i], rng[i]);
    }
  }

  /// Resident bytes of per-strategy state (0 for stateless strategies).
  /// Virtual so owners of replicated indexes (diffusion/index_replicas)
  /// can account footprint through the interface.
  virtual std::size_t memory_bytes() const { return 0; }

  /// Alias slots held, when the strategy is table-backed (0 otherwise).
  virtual std::size_t num_slots() const { return 0; }

  /// The batch kernel's concrete instruction-set level (never kAuto).
  /// Table-backed strategies report what construction-time dispatch
  /// picked from the portfolio (scalar/avx2/avx512/neon, DESIGN.md §9);
  /// strategies without a vectorized batch path are kScalar. Telemetry
  /// only — every level draws bit-identical selections.
  virtual SimdLevel simd_level() const { return SimdLevel::kScalar; }
};

/// The original O(deg) cumulative-scan selection. Superseded on the hot
/// path by SamplingIndex; retained as the equivalence oracle (its
/// correctness is a three-line argument from Def. 1) and as the
/// alias-vs-scan baseline in bench_micro_diffusion.
class ScanSelectionSampler final : public SelectionSampler {
 public:
  explicit ScanSelectionSampler(const Graph& g) : g_(&g) {}

  NodeId sample_selection(NodeId v, Rng& rng) const override;

 private:
  const Graph* g_;
};

/// Outcome of one backward-walk step — Alg. 1's case analysis, shared by
/// every walk driver (ReversePathSampler, trace_tg, the bulk sampler's
/// interleaved lanes) so the classification cannot drift between them.
enum class WalkStep {
  /// Case a: the selection was ℵ0 — the realization is type-0.
  kDied,
  /// Case c: the selection is a friend of s — type-1, walk complete (the
  /// N_s node itself is NOT part of t(g): it is already a friend).
  kReachedNs,
  /// Case b: the selection revisits the walk — a cycle, equivalent to ℵ0
  /// (Alg. 1 line 6).
  kCycle,
  /// The walk extends to the selected node.
  kContinue,
};

/// Classifies the selection `nxt` of the current walk head against the
/// visited path. The path IS the visited set (every visited node is
/// pushed, starting with t), short and cache-hot, so the revisit check
/// scans it instead of an n-sized mark array.
inline WalkStep classify_walk_step(const FriendingInstance& inst, NodeId nxt,
                                   std::span<const NodeId> path) {
  if (nxt == kNoNode) return WalkStep::kDied;
  if (inst.is_initial_friend(nxt)) return WalkStep::kReachedNs;
  for (NodeId u : path) {
    if (u == nxt) return WalkStep::kCycle;
  }
  return WalkStep::kContinue;
}

/// Result of tracing t(g): the path nodes and the realization type
/// (Def. 2: type-1 iff ℵ0 ∉ t(g), i.e. the walk reached N_s).
struct TgSample {
  /// true: the backward walk reached a friend of s (the realization is
  /// type-1 and `path` is exactly t(g) without the artificial ℵ0).
  bool type1 = false;
  /// Nodes of t(g) in walk order: path[0] = t, then g(t), g(g(t)), …
  /// Never contains s or any node of N_s. For type-0 realizations the
  /// nodes visited before hitting ℵ0/a cycle (diagnostic value only).
  std::vector<NodeId> path;
};

/// Samples a full realization into `out` (resized to n): out[v] = selected
/// friend of v, or kNoNode for "selects nobody" (ℵ0), drawn through `sel`.
void sample_full_realization(const Graph& g, const SelectionSampler& sel,
                             Rng& rng, std::vector<NodeId>& out);

/// Out-parameter overload with the scan strategy — reuses the caller's
/// buffer so repeated draws (Monte-Carlo loops, tests) allocate nothing.
void sample_full_realization(const Graph& g, Rng& rng,
                             std::vector<NodeId>& out);

/// Allocating convenience overload.
std::vector<NodeId> sample_full_realization(const Graph& g, Rng& rng);

/// Traces t(g) (Alg. 1) through an explicit realization. Deterministic.
TgSample trace_tg(const FriendingInstance& inst,
                  const std::vector<NodeId>& realization);

/// Lazily samples t(ĝ) for random realizations ĝ without materializing g.
///
/// Each sample() consumes randomness only for the nodes actually visited
/// by the backward walk; by independence of per-node selections this has
/// exactly the distribution of trace_tg(sample_full_realization). The
/// cycle check scans the walk's own (short, cache-hot) path instead of an
/// n-sized mark array: construction is O(1) and a walk step touches no
/// per-sampler memory — worst case O(len²) per walk, with len the walk
/// length, which the type-0 absorption keeps tiny in practice.
class ReversePathSampler {
 public:
  /// Builds and owns a per-node alias index (O(n + m)); every walk step is
  /// then O(1). Use the borrowing constructor to share one index across
  /// samplers (the Planner does) or to plug in the scan oracle. If the
  /// alias tables fail to allocate, degrades to an owned scan sampler
  /// (the alias→scan rung, DESIGN.md §13) instead of propagating.
  explicit ReversePathSampler(const FriendingInstance& inst);

  /// Borrows a selection strategy; `sel` must outlive the sampler.
  ReversePathSampler(const FriendingInstance& inst,
                     const SelectionSampler& sel);

  ~ReversePathSampler();
  ReversePathSampler(ReversePathSampler&&) noexcept;
  ReversePathSampler& operator=(ReversePathSampler&&) noexcept = delete;

  /// Draws one t(ĝ) sample.
  TgSample sample(Rng& rng);

  /// Draws one sample into the caller's buffer (cleared first) and returns
  /// whether the realization is type-1. The allocation-free hot-path form:
  /// bulk loops reuse one buffer for millions of draws.
  bool sample_into(Rng& rng, std::vector<NodeId>& path);

  /// Number of samples drawn so far (diagnostics).
  std::uint64_t samples_drawn() const { return samples_; }

 private:
  const FriendingInstance& inst_;
  std::unique_ptr<const SelectionSampler> owned_index_;
  const SelectionSampler* sel_;
  std::uint64_t samples_ = 0;
};

}  // namespace af
