// Node-replicated selection samplers for NUMA-aware bulk sampling.
//
// A SamplingIndex is one big allocation; on a multi-socket host every
// shard on the remote socket pays cross-node latency per walk step. The
// counter-stream contract (DESIGN.md §7) makes the fix trivial to reason
// about: a sample's outcome depends only on (instance, strategy, root,
// index), so *which physical copy* of the same tables serves a shard can
// never change a bit — replication is purely a latency trade.
//
// IndexReplicas builds one copy of the index per NUMA node, each
// constructed on a thread pinned to that node so first-touch places its
// pages in node-local memory, and local() hands any caller the replica
// of the node it is currently running on (util/numa's sysfs topology;
// ThreadPoolOptions::pin_numa keeps pool workers put). On single-node
// hosts — or when sysfs/libnuma-style topology is unavailable, pinning
// fails, or AF_NUMA=off — this degrades to exactly one replica resolved
// without any syscall: the graceful fallback the portable build relies
// on.
//
// Thread-safety (DESIGN.md §12): deliberately lock-free, and therefore
// carries no capability annotations. Builder threads each write one
// distinct, pre-sized vector element and are joined before the
// constructor returns; thread::join() gives the happens-before edge that
// publishes every replica to subsequent readers, after which the object
// is immutable and local() is safe from any thread.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "diffusion/realization.hpp"
#include "util/numa.hpp"

namespace af {

/// One selection-sampler replica per NUMA node.
class IndexReplicas {
 public:
  /// Builds one sampler per (replicated) node.
  using Factory = std::function<std::unique_ptr<const SelectionSampler>()>;

  /// Calls `factory` once per node of `topo`, each call on a thread
  /// pinned to that node (first-touch replication); a single-node
  /// topology builds inline on the calling thread. `factory` must be
  /// safe to run concurrently (index construction only reads the const
  /// Graph).
  ///
  /// Failure tolerance (DESIGN.md §13): a builder that throws
  /// std::bad_alloc costs that node its local copy, not the process —
  /// the node shares the first healthy replica instead (remote-access
  /// latency, identical bits; counted by build_failures()). Only when
  /// EVERY node's build fails does the constructor rethrow bad_alloc.
  /// Non-allocation exceptions still propagate unconditionally.
  explicit IndexReplicas(const Factory& factory,
                         const NumaTopology& topo = numa_topology());

  /// Wraps an already-built sampler as the sole replica (the
  /// no-replication path: single node, or replication disabled).
  explicit IndexReplicas(std::unique_ptr<const SelectionSampler> single);

  /// The replica serving the calling thread's NUMA node. With one
  /// replica this is a plain load; otherwise one sched_getcpu per call —
  /// cheap enough to resolve once per shard. A node whose build failed
  /// resolves to the first healthy replica (shared, remote access).
  const SelectionSampler& local() const {
    if (lookup_.size() == 1) return *lookup_[0];
    const auto node = static_cast<std::size_t>(current_numa_node());
    return *lookup_[node < lookup_.size() ? node : 0];
  }

  /// The first healthy replica — the copy sequential (non-sharded)
  /// callers use.
  const SelectionSampler& primary() const { return *replicas_[0]; }

  /// The replicas' dispatched kernel level. All replicas agree: under
  /// kAuto, concurrent builders serialize on the process-wide
  /// calibration cache (diffusion/sampling_index.cpp) and share the
  /// first tournament's verdict, so reporting primary()'s level speaks
  /// for every copy.
  SimdLevel simd_level() const { return primary().simd_level(); }

  /// Number of physical copies (= replicated NUMA nodes that built
  /// successfully).
  std::size_t count() const { return replicas_.size(); }

  /// Nodes whose replica build failed with bad_alloc and now share a
  /// healthy copy (the replica→shared rung of the degradation ladder).
  std::size_t build_failures() const { return build_failures_; }

 private:
  /// Owned copies, healthy builds only (compacted).
  std::vector<std::unique_ptr<const SelectionSampler>> replicas_;
  /// Per-topology-node resolution table: lookup_[node] is that node's
  /// own copy, or the first healthy replica when its build failed.
  std::vector<const SelectionSampler*> lookup_;
  std::size_t build_failures_ = 0;
};

}  // namespace af
