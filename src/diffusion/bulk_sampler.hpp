// Deterministic bulk reverse-path sampling over a worker pool.
//
// Extends the Planner's batch-of-queries determinism contract down to
// batch-of-samples: sample #i of a bulk draw is generated from its own
// Rng seeded by stream_sample_seed(root, i) (util/rng.hpp), so its
// outcome depends only on (instance, strategy, root, i). Sharding across
// util::ThreadPool workers — or running inline with no pool at all —
// cannot change any sample, which makes threaded bulk sampling
// bit-identical to sequential at every thread count, and lets a
// realization pool grow monotonically ([0,k) then [k,l)) while matching a
// one-shot [0,l) draw exactly.
//
// Inside a shard, walks run in interleaved lanes whose per-step
// selections are drawn through ONE SelectionSampler::sample_selection_batch
// call (the alias indexes dispatch it to an AVX2 or scalar kernel chosen
// at construction, DESIGN.md §9), with each continuing lane's next slot
// line software-prefetched one step ahead. Lane width, prefetching and
// kernel choice change throughput only — never a single output bit.
//
// The replica overloads resolve a node-local index copy per shard
// (diffusion/index_replicas) so multi-socket hosts avoid remote-memory
// walk steps; the counter-stream contract makes any placement
// bit-identical.
//
// Consumers: Algorithm 3's type-1 family (core/raf), the DKLR p*max loop
// (diffusion/dklr), and the Planner's shared realization pool.
#pragma once

#include <cstdint>
#include <vector>

#include "diffusion/instance.hpp"
#include "diffusion/path_arena.hpp"
#include "diffusion/realization.hpp"
#include "util/thread_pool.hpp"

namespace af {

class IndexReplicas;

/// Walker knobs — every setting yields bit-identical results (per-sample
/// counter streams); these trade only speed, and exist as parameters so
/// the equivalence tests and the bench ablation can sweep them.
struct BulkWalkConfig {
  /// Hard lane ceiling (sizes the walker's stack-resident SoA state).
  static constexpr std::size_t kMaxLanes = 16;
  /// Interleaved walks per shard, clamped to [1, kMaxLanes]. 16 ≈ the
  /// per-core miss parallelism of current hardware; 1 degenerates to
  /// one-walk-at-a-time (the ns/step ablation's scalar baseline).
  std::size_t lanes = kMaxLanes;
  /// Software-prefetch each continuing lane's next alias-slot line one
  /// step ahead (SelectionSampler::prefetch_selection).
  bool prefetch = true;
};

/// Type-1 backward paths kept from a contiguous window of sample streams.
struct BulkType1Paths {
  /// The paths, in stream order, packed into a flat arena.
  PathArena paths;
  /// positions[k] = absolute stream index of paths[k].
  std::vector<std::uint64_t> positions;
};

/// Draws samples [first, first+count) of the stream rooted at `root`,
/// keeping the type-1 backward paths. Fans shards out over `pool` when
/// given and worthwhile (nullptr = inline); the result is bit-identical
/// either way.
BulkType1Paths sample_type1_bulk(const FriendingInstance& inst,
                                 const SelectionSampler& sel,
                                 std::uint64_t first, std::uint64_t count,
                                 std::uint64_t root, ThreadPool* pool,
                                 const BulkWalkConfig& cfg = {});

/// NUMA-aware form: each shard draws through the replica local to the
/// worker it lands on. Bit-identical to the single-sampler form built
/// from the same tables.
BulkType1Paths sample_type1_bulk(const FriendingInstance& inst,
                                 const IndexReplicas& replicas,
                                 std::uint64_t first, std::uint64_t count,
                                 std::uint64_t root, ThreadPool* pool,
                                 const BulkWalkConfig& cfg = {});

/// Same stream windows, but records only the type-1 indicator:
/// out[i] = 1 iff sample (first + i) is type-1. `out` must hold `count`
/// bytes. The DKLR stopping rule consumes this (it needs no paths).
void sample_type1_flags(const FriendingInstance& inst,
                        const SelectionSampler& sel, std::uint64_t first,
                        std::uint64_t count, std::uint64_t root,
                        ThreadPool* pool, std::uint8_t* out,
                        const BulkWalkConfig& cfg = {});

/// NUMA-aware indicator form (see sample_type1_bulk).
void sample_type1_flags(const FriendingInstance& inst,
                        const IndexReplicas& replicas, std::uint64_t first,
                        std::uint64_t count, std::uint64_t root,
                        ThreadPool* pool, std::uint8_t* out,
                        const BulkWalkConfig& cfg = {});

}  // namespace af
