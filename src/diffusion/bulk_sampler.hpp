// Deterministic bulk reverse-path sampling over a worker pool.
//
// Extends the Planner's batch-of-queries determinism contract down to
// batch-of-samples: sample #i of a bulk draw is generated from its own
// Rng seeded by stream_sample_seed(root, i) (util/rng.hpp), so its
// outcome depends only on (instance, strategy, root, i). Sharding across
// util::ThreadPool workers — or running inline with no pool at all —
// cannot change any sample, which makes threaded bulk sampling
// bit-identical to sequential at every thread count, and lets a
// realization pool grow monotonically ([0,k) then [k,l)) while matching a
// one-shot [0,l) draw exactly.
//
// Consumers: Algorithm 3's type-1 family (core/raf), the DKLR p*max loop
// (diffusion/dklr), and the Planner's shared realization pool.
#pragma once

#include <cstdint>
#include <vector>

#include "diffusion/instance.hpp"
#include "diffusion/path_arena.hpp"
#include "diffusion/realization.hpp"
#include "util/thread_pool.hpp"

namespace af {

/// Type-1 backward paths kept from a contiguous window of sample streams.
struct BulkType1Paths {
  /// The paths, in stream order, packed into a flat arena.
  PathArena paths;
  /// positions[k] = absolute stream index of paths[k].
  std::vector<std::uint64_t> positions;
};

/// Draws samples [first, first+count) of the stream rooted at `root`,
/// keeping the type-1 backward paths. Fans shards out over `pool` when
/// given and worthwhile (nullptr = inline); the result is bit-identical
/// either way.
BulkType1Paths sample_type1_bulk(const FriendingInstance& inst,
                                 const SelectionSampler& sel,
                                 std::uint64_t first, std::uint64_t count,
                                 std::uint64_t root, ThreadPool* pool);

/// Same stream windows, but records only the type-1 indicator:
/// out[i] = 1 iff sample (first + i) is type-1. `out` must hold `count`
/// bytes. The DKLR stopping rule consumes this (it needs no paths).
void sample_type1_flags(const FriendingInstance& inst,
                        const SelectionSampler& sel, std::uint64_t first,
                        std::uint64_t count, std::uint64_t root,
                        ThreadPool* pool, std::uint8_t* out);

}  // namespace af
