// Exact acceptance probabilities by exhaustive realization enumeration.
//
// For graphs where Π_v (deg(v)+1) is small, f(I) (and p_max) can be
// integrated over the entire realization space (Corollary 1) with no
// Monte-Carlo error. Intended for model validation, unit tests, and
// worked examples; guarded by an explicit work bound.
#pragma once

#include <cstdint>

#include "diffusion/instance.hpp"
#include "diffusion/invitation.hpp"

namespace af {

/// Upper bound on the number of enumerated realizations (Π (deg+1)),
/// above which exact evaluation refuses to run.
inline constexpr double kDefaultEnumerationBudget = 5e7;

/// Number of realizations an exact evaluation of this graph would visit:
/// Π_v (deg(v)+1), saturating at infinity for large graphs.
double enumeration_cost(const Graph& g);

/// Exact f(I). Throws precondition_error when enumeration_cost exceeds
/// `budget`.
double exact_f(const FriendingInstance& inst, const InvitationSet& invited,
               double budget = kDefaultEnumerationBudget);

/// Exact p_max = f(V).
double exact_pmax(const FriendingInstance& inst,
                  double budget = kDefaultEnumerationBudget);

}  // namespace af
