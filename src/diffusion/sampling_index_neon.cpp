// AArch64 NEON batched selection kernels (DESIGN.md §9).
//
// Compiled on AArch64 builds behind the AF_SIMD build gate; Advanced
// SIMD is architecturally baseline there, so unlike the x86 legs no
// extra compile flags or runtime CPUID check are needed — if this TU
// built, the CPU runs it.
//
// NEON is 128 bits wide and has no gather, so the shape differs from
// the x86 legs: 2 lanes of 64-bit arithmetic per block, with the slot
// and CSR-offset loads kept scalar (two independent scalar loads per
// block — the OoO core overlaps them just as well as a 2-lane gather
// would, since that is exactly what a gather decodes to on every ARM
// core shipping today). What vectorizes profitably is the pure ALU
// work: the exact 64×64→128 Lemire multiply-shift (vmull_u32 partial
// products — the same four-partials construction as the x86 legs), the
// alias coin (vcltq_u64 for the full index; vcvtq_f64_u64 + vcltq_f64
// for the compact index's exact double compare), and the accept/alias
// select (vbslq_u64). Odd batch sizes finish with one scalar draw.
//
// Bit-identity contract: identical to every other leg — same rng words
// consumed per lane, same selections produced, pinned in
// tests/bulk_kernel_equivalence_test.cpp (the aarch64 CI leg runs that
// suite under qemu-user).
#include "diffusion/sampling_index.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace af {

namespace {

/// hi/lo of the lane-wise 64×64→128 product, from four 32×32→64 partial
/// products (vmull_u32). Exactly matches __uint128_t multiplication
/// lane by lane.
inline void mul_64x64_128(uint64x2_t a, uint64x2_t b, uint64x2_t& hi,
                          uint64x2_t& lo) {
  const uint64x2_t mask32 = vdupq_n_u64(0xffffffffULL);
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint32x2_t b_lo = vmovn_u64(b);
  const uint32x2_t b_hi = vshrn_n_u64(b, 32);
  const uint64x2_t ll = vmull_u32(a_lo, b_lo);
  const uint64x2_t lh = vmull_u32(a_lo, b_hi);
  const uint64x2_t hl = vmull_u32(a_hi, b_lo);
  const uint64x2_t hh = vmull_u32(a_hi, b_hi);
  // Carry column: (ll >> 32) + low32(lh) + low32(hl) fits in 64 bits,
  // so plain adds cannot wrap.
  const uint64x2_t t =
      vaddq_u64(vaddq_u64(vshrq_n_u64(ll, 32), vandq_u64(lh, mask32)),
                vandq_u64(hl, mask32));
  hi = vaddq_u64(vaddq_u64(hh, vshrq_n_u64(lh, 32)),
                 vaddq_u64(vshrq_n_u64(hl, 32), vshrq_n_u64(t, 32)));
  lo = vorrq_u64(vshlq_n_u64(t, 32), vandq_u64(ll, mask32));
}

/// Two scalar u64s as one vector (scalar loads are the NEON gather).
inline uint64x2_t pack_u64(std::uint64_t v0, std::uint64_t v1) {
  return vcombine_u64(vcreate_u64(v0), vcreate_u64(v1));
}

}  // namespace

template <bool Prefetch>
void SamplingIndex::batch_neon(const SamplingIndex& idx, const NodeId* cur,
                               Rng* rng, NodeId* out, std::size_t n) {
  const std::uint64_t* offsets = idx.offsets_.data();
  const Slot* slots = idx.slots_.data();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // Per-lane rng words (serial ALU recurrences, kept scalar).
    const uint64x2_t x = pack_u64(rng[i].next_u64(), rng[i + 1].next_u64());

    const NodeId v0 = cur[i];
    const NodeId v1 = cur[i + 1];
    const std::uint64_t o0 = offsets[v0];
    const std::uint64_t o1 = offsets[v1];
    const uint64x2_t off0 = pack_u64(o0, o1);
    const uint64x2_t k =
        pack_u64(offsets[v0 + 1] - o0, offsets[v1 + 1] - o1);

    uint64x2_t hi, lo;
    mul_64x64_128(x, k, hi, lo);
    const uint64x2_t slot = vaddq_u64(off0, hi);

    const Slot& s0 = slots[vgetq_lane_u64(slot, 0)];
    const Slot& s1 = slots[vgetq_lane_u64(slot, 1)];
    const uint64x2_t thr = pack_u64(s0.threshold, s1.threshold);
    const uint64x2_t accept = pack_u64(s0.accept, s1.accept);
    const uint64x2_t alias = pack_u64(s0.alias, s1.alias);

    // Coin: lane takes accept iff lo < threshold (unsigned).
    const uint64x2_t take_accept = vcltq_u64(lo, thr);
    const uint64x2_t sel = vbslq_u64(take_accept, accept, alias);
    out[i] = static_cast<NodeId>(vgetq_lane_u64(sel, 0));
    out[i + 1] = static_cast<NodeId>(vgetq_lane_u64(sel, 1));

    if constexpr (Prefetch) {
      // Next-step prefetch, scalar per lane: peek the post-draw rng word
      // and warm the exact slot line the lane's next draw would probe.
      if (out[i] != kNoNode) idx.prefetch_selection(out[i], rng[i]);
      if (out[i + 1] != kNoNode) {
        idx.prefetch_selection(out[i + 1], rng[i + 1]);
      }
    }
  }
  for (; i < n; ++i) {
    out[i] = idx.sample_selection(cur[i], rng[i]);
    if constexpr (Prefetch) {
      if (out[i] != kNoNode) idx.prefetch_selection(out[i], rng[i]);
    }
  }
}

template void SamplingIndex::batch_neon<false>(const SamplingIndex&,
                                               const NodeId*, Rng*, NodeId*,
                                               std::size_t);
template void SamplingIndex::batch_neon<true>(const SamplingIndex&,
                                              const NodeId*, Rng*, NodeId*,
                                              std::size_t);

template <bool Prefetch>
void CompactSamplingIndex::batch_neon(const CompactSamplingIndex& idx,
                                      const NodeId* cur, Rng* rng,
                                      NodeId* out, std::size_t n) {
  const std::uint32_t* offsets = idx.offsets_.data();
  const Slot* slots = idx.slots_.data();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t x = pack_u64(rng[i].next_u64(), rng[i + 1].next_u64());

    const NodeId v0 = cur[i];
    const NodeId v1 = cur[i + 1];
    const std::uint32_t o0 = offsets[v0];
    const std::uint32_t o1 = offsets[v1];
    const uint64x2_t off0 = pack_u64(o0, o1);
    const uint64x2_t k =
        pack_u64(offsets[v0 + 1] - o0, offsets[v1 + 1] - o1);

    uint64x2_t hi, lo;
    mul_64x64_128(x, k, hi, lo);
    const uint64x2_t slot = vaddq_u64(off0, hi);

    const Slot& s0 = slots[vgetq_lane_u64(slot, 0)];
    const Slot& s1 = slots[vgetq_lane_u64(slot, 1)];

    // Coin: (lo >> 11)·2⁻⁵³ < (double)threshold, exactly as the scalar
    // draw computes it — vcvtq_f64_u64 is exact (operand < 2⁵³), and
    // float→double widening of the threshold is exact.
    const float64x2_t coin =
        vmulq_n_f64(vcvtq_f64_u64(vshrq_n_u64(lo, 11)), 0x1p-53);
    float64x2_t thr = vdupq_n_f64(static_cast<double>(s0.threshold));
    thr = vsetq_lane_f64(static_cast<double>(s1.threshold), thr, 1);
    const uint64x2_t take_accept = vcltq_f64(coin, thr);

    const uint64x2_t accept = pack_u64(s0.accept, s1.accept);
    const uint64x2_t alias = pack_u64(s0.alias, s1.alias);
    const uint64x2_t sel = vbslq_u64(take_accept, accept, alias);
    out[i] = static_cast<NodeId>(vgetq_lane_u64(sel, 0));
    out[i + 1] = static_cast<NodeId>(vgetq_lane_u64(sel, 1));

    if constexpr (Prefetch) {
      if (out[i] != kNoNode) idx.prefetch_selection(out[i], rng[i]);
      if (out[i + 1] != kNoNode) {
        idx.prefetch_selection(out[i + 1], rng[i + 1]);
      }
    }
  }
  for (; i < n; ++i) {
    out[i] = idx.sample_selection(cur[i], rng[i]);
    if constexpr (Prefetch) {
      if (out[i] != kNoNode) idx.prefetch_selection(out[i], rng[i]);
    }
  }
}

template void CompactSamplingIndex::batch_neon<false>(
    const CompactSamplingIndex&, const NodeId*, Rng*, NodeId*, std::size_t);
template void CompactSamplingIndex::batch_neon<true>(
    const CompactSamplingIndex&, const NodeId*, Rng*, NodeId*, std::size_t);

}  // namespace af

#endif  // __aarch64__
