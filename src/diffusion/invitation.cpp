#include "diffusion/invitation.hpp"

#include "diffusion/instance.hpp"

namespace af {

InvitationSet InvitationSet::full(const FriendingInstance& inst) {
  const NodeId n = inst.graph().num_nodes();
  InvitationSet out(n);
  for (NodeId v = 0; v < n; ++v) {
    if (inst.invitable(v)) out.add(v);
  }
  return out;
}

std::size_t InvitationSet::normalize(const FriendingInstance& inst) {
  std::size_t removed = 0;
  std::vector<NodeId> kept;
  kept.reserve(members_.size());
  for (NodeId v : members_) {
    if (inst.invitable(v)) {
      kept.push_back(v);
    } else {
      mask_[v] = 0;
      ++removed;
    }
  }
  members_ = std::move(kept);
  return removed;
}

}  // namespace af
