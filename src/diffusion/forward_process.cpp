#include "diffusion/forward_process.hpp"

#include "util/contracts.hpp"

namespace af {

ForwardProcess::ForwardProcess(const FriendingInstance& inst) : inst_(inst) {
  const NodeId n = inst.graph().num_nodes();
  stamp_of_.assign(n, 0);
  acc_weight_.assign(n, 0.0);
  threshold_.assign(n, 0.0);
  friend_stamp_.assign(n, 0);
  queue_.reserve(n);
}

ForwardRunResult ForwardProcess::run(const InvitationSet& invited, Rng& rng) {
  AF_EXPECTS(invited.universe_size() == inst_.graph().num_nodes(),
             "invitation set universe mismatch");
  const Graph& g = inst_.graph();
  const NodeId s = inst_.initiator();
  const NodeId t = inst_.target();

  ++stamp_;
  queue_.clear();
  for (NodeId v : inst_.initial_friends()) {
    friend_stamp_[v] = stamp_;
    queue_.push_back(v);
  }

  ForwardRunResult result;
  std::size_t head = 0;
  while (head < queue_.size()) {
    const NodeId v = queue_[head++];
    auto nbrs = g.neighbors(v);
    auto ows = g.out_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId u = nbrs[i];
      if (friend_stamp_[u] == stamp_) continue;  // already a friend
      if (u == s || !invited.contains(u)) continue;
      if (stamp_of_[u] != stamp_) {
        stamp_of_[u] = stamp_;
        acc_weight_[u] = 0.0;
        threshold_[u] = rng.uniform();
      }
      acc_weight_[u] += ows[i];
      if (acc_weight_[u] >= threshold_[u]) {
        friend_stamp_[u] = stamp_;
        ++result.new_friends;
        if (u == t) {
          result.target_reached = true;
          return result;
        }
        queue_.push_back(u);
      }
    }
  }
  return result;
}

DeterministicRunResult ForwardProcess::run_with_thresholds(
    const InvitationSet& invited, std::span<const double> thresholds) const {
  const Graph& g = inst_.graph();
  AF_EXPECTS(thresholds.size() == g.num_nodes(),
             "need one threshold per node");
  const NodeId s = inst_.initiator();
  const NodeId t = inst_.target();

  // Literal Eq. (2): C_{i+1} = C_i ∪ (Φ(C_i) ∩ I), rounds until no change
  // or t joins. O(rounds · Σdeg) — test-oriented fidelity over speed.
  std::vector<char> in_c(g.num_nodes(), 0);
  for (NodeId v : inst_.initial_friends()) in_c[v] = 1;

  DeterministicRunResult result;
  bool changed = true;
  while (changed && !result.target_reached) {
    changed = false;
    // Φ(C_i): evaluate against the frozen C_i, then merge.
    std::vector<NodeId> joiners;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (in_c[u] || u == s || !invited.contains(u)) continue;
      double sum = 0.0;
      auto nbrs = g.neighbors(u);
      auto ws = g.in_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (in_c[nbrs[i]]) sum += ws[i];
      }
      if (sum >= thresholds[u]) joiners.push_back(u);
    }
    for (NodeId u : joiners) {
      in_c[u] = 1;
      result.new_friends.push_back(u);
      changed = true;
      if (u == t) result.target_reached = true;
    }
  }
  return result;
}

ForwardRunResult ForwardProcess::run_under_realization(
    const InvitationSet& invited, const std::vector<NodeId>& g) {
  const Graph& graph = inst_.graph();
  AF_EXPECTS(g.size() == graph.num_nodes(),
             "realization size mismatch");
  const NodeId s = inst_.initiator();
  const NodeId t = inst_.target();

  ++stamp_;
  queue_.clear();
  for (NodeId v : inst_.initial_friends()) {
    friend_stamp_[v] = stamp_;
    queue_.push_back(v);
  }

  ForwardRunResult result;
  std::size_t head = 0;
  while (head < queue_.size()) {
    const NodeId v = queue_[head++];
    // Ψ(H) = { u ∉ H : g(u) ∈ H }: only neighbors of v can have g(u) = v.
    for (NodeId u : graph.neighbors(v)) {
      if (friend_stamp_[u] == stamp_) continue;
      if (u == s || !invited.contains(u)) continue;
      if (g[u] != v) continue;
      friend_stamp_[u] = stamp_;
      ++result.new_friends;
      if (u == t) {
        result.target_reached = true;
        return result;
      }
      queue_.push_back(u);
    }
  }
  return result;
}

}  // namespace af
