#include "diffusion/exact.hpp"

#include <limits>

#include "diffusion/realization.hpp"
#include "util/contracts.hpp"

namespace af {

double enumeration_cost(const Graph& g) {
  double cost = 1.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    cost *= static_cast<double>(g.degree(v) + 1);
    if (cost > 1e300) return std::numeric_limits<double>::infinity();
  }
  return cost;
}

double exact_f(const FriendingInstance& inst, const InvitationSet& invited,
               double budget) {
  const Graph& g = inst.graph();
  AF_EXPECTS(enumeration_cost(g) <= budget,
             "graph too large for exact enumeration");
  AF_EXPECTS(invited.universe_size() == g.num_nodes(),
             "invitation set universe mismatch");

  const NodeId n = g.num_nodes();
  std::vector<NodeId> sel(n, kNoNode);
  double total = 0.0;

  // Depth-first product over per-node selections, weighting each branch
  // by its selection probability; a leaf contributes its probability
  // when the traced backward path is type-1 and fully invited.
  auto rec = [&](auto&& self, NodeId v, double prob) -> void {
    if (prob <= 0.0) return;
    if (v == n) {
      const TgSample tg = trace_tg(inst, sel);
      if (!tg.type1) return;
      for (NodeId x : tg.path) {
        if (!invited.contains(x)) return;
      }
      total += prob;
      return;
    }
    sel[v] = kNoNode;
    self(self, v + 1, prob * (1.0 - g.total_in_weight(v)));
    auto nbrs = g.neighbors(v);
    auto ws = g.in_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      sel[v] = nbrs[i];
      self(self, v + 1, prob * ws[i]);
    }
    sel[v] = kNoNode;
  };
  rec(rec, 0, 1.0);
  return total;
}

double exact_pmax(const FriendingInstance& inst, double budget) {
  return exact_f(inst, InvitationSet::full(inst), budget);
}

}  // namespace af
