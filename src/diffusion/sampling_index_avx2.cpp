// AVX2 batched selection kernels (DESIGN.md §9).
//
// This TU is compiled with -mavx2 behind the AF_SIMD build gate and only
// ever *executed* after util/cpu.hpp's runtime detection says the CPU has
// AVX2 — the rest of the library stays portable (no -march=native).
//
// Both kernels are bit-for-bit identical to their scalar references: the
// Lemire multiply-shift is emulated with exact 64×64→128 integer
// arithmetic (4 lanes of _mm256_mul_epu32 partial products), the slot
// probe becomes one gather of the fused slot words, and the alias coin is
// the same compare the scalar draw performs — an unsigned 64-bit integer
// compare for SamplingIndex, an exact double compare against the float32
// threshold for CompactSamplingIndex (the u64→double conversion uses the
// standard 2⁵²/2⁸⁴ magic-number construction, exact for values < 2⁵³,
// which (m mod 2⁶⁴) >> 11 always is). Per-lane rng state updates stay
// scalar: xoshiro256++ is a serial recurrence per stream and pure ALU —
// the memory-bound work (the slot probes) is what the gathers batch.
//
// The equivalence is pinned across lane widths, thread counts and both
// index layouts in tests/bulk_kernel_equivalence_test.cpp.
#include "diffusion/sampling_index.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace af {

namespace {

/// hi/lo of the lane-wise 64×64→128 product, from four 32×32→64 partial
/// products. Exactly matches __uint128_t multiplication lane by lane.
inline void mul_64x64_128(__m256i a, __m256i b, __m256i& hi, __m256i& lo) {
  const __m256i mask32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  // _mm256_mul_epu32 reads the low 32 bits of each 64-bit lane.
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i lh = _mm256_mul_epu32(a, b_hi);
  const __m256i hl = _mm256_mul_epu32(a_hi, b);
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  // Carry column: (ll >> 32) + low32(lh) + low32(hl) fits in 64 bits
  // (≤ 3·(2³²−1)·2³²-ish), so plain adds cannot wrap.
  const __m256i t = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                       _mm256_and_si256(lh, mask32)),
      _mm256_and_si256(hl, mask32));
  hi = _mm256_add_epi64(
      _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(hl, 32), _mm256_srli_epi64(t, 32)));
  lo = _mm256_or_si256(_mm256_slli_epi64(t, 32),
                       _mm256_and_si256(ll, mask32));
}

/// Packs the low 32 bits of each 64-bit lane into the result's first
/// 128 bits and stores 4 NodeIds.
inline void store_low32(NodeId* out, __m256i sel64) {
  const __m256i packed = _mm256_permutevar8x32_epi32(
      sel64, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                   _mm256_castsi256_si128(packed));
}

/// Exact u64 → double for values < 2⁵³ (here: (lo mod 2⁶⁴) >> 11, at
/// most 53 bits). hi·2³² is exact (hi < 2²¹), the final add lands on an
/// integer < 2⁵³ and is therefore exact too — matching the scalar
/// static_cast<double> bit for bit.
inline __m256d u64lt2p53_to_double(__m256i v) {
  const __m256i magic_lo = _mm256_set1_epi64x(0x4330000000000000LL);  // 2⁵²
  const __m256i magic_hi = _mm256_set1_epi64x(0x4530000000000000LL);  // 2⁸⁴
  // Low dword of each lane stays, high dword becomes the 2⁵² exponent.
  const __m256i lo32 = _mm256_blend_epi32(v, magic_lo, 0xaa);
  const __m256d d_lo = _mm256_sub_pd(_mm256_castsi256_pd(lo32),
                                     _mm256_set1_pd(0x1p52));
  const __m256i hi32 = _mm256_or_si256(_mm256_srli_epi64(v, 32), magic_hi);
  const __m256d d_hi = _mm256_sub_pd(_mm256_castsi256_pd(hi32),
                                     _mm256_set1_pd(0x1p84));
  return _mm256_add_pd(d_hi, d_lo);
}

}  // namespace

template <bool Prefetch>
void SamplingIndex::batch_avx2(const SamplingIndex& idx, const NodeId* cur,
                               Rng* rng, NodeId* out, std::size_t n) {
  const auto* offsets =
      reinterpret_cast<const long long*>(idx.offsets_.data());
  const auto* slots = reinterpret_cast<const long long*>(idx.slots_.data());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Per-lane rng words (serial ALU recurrences, kept scalar).
    alignas(32) std::uint64_t words[4];
    for (int j = 0; j < 4; ++j) words[j] = rng[i + j].next_u64();
    const __m256i x =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(words));

    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cur + i));
    const __m256i off0 = _mm256_i32gather_epi64(offsets, v, 8);
    const __m256i off1 = _mm256_i32gather_epi64(offsets + 1, v, 8);
    const __m256i k = _mm256_sub_epi64(off1, off0);

    __m256i hi, lo;
    mul_64x64_128(x, k, hi, lo);
    const __m256i slot = _mm256_add_epi64(off0, hi);

    // 16-byte slots viewed as u64 pairs: word 2·slot is the threshold,
    // word 2·slot+1 packs {accept, alias}.
    const __m256i widx = _mm256_slli_epi64(slot, 1);
    const __m256i thr = _mm256_i64gather_epi64(slots, widx, 8);
    const __m256i pair = _mm256_i64gather_epi64(
        slots, _mm256_or_si256(widx, _mm256_set1_epi64x(1)), 8);

    // Unsigned lo < thr via sign-flipped signed compare.
    const __m256i sbit = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    const __m256i take_accept = _mm256_cmpgt_epi64(
        _mm256_xor_si256(thr, sbit), _mm256_xor_si256(lo, sbit));
    const __m256i accept =
        _mm256_and_si256(pair, _mm256_set1_epi64x(0xffffffffLL));
    const __m256i alias = _mm256_srli_epi64(pair, 32);
    store_low32(out + i, _mm256_blendv_epi8(alias, accept, take_accept));

    if constexpr (Prefetch) {
      // Next-step prefetch, scalar per lane (prefetch is one address per
      // instruction anyway): peek the post-draw rng word and warm the
      // exact slot line the lane's next draw would probe at out[i+j].
      for (int j = 0; j < 4; ++j) {
        if (out[i + j] != kNoNode) {
          idx.prefetch_selection(out[i + j], rng[i + j]);
        }
      }
    }
  }
  for (; i < n; ++i) {
    out[i] = idx.sample_selection(cur[i], rng[i]);
    if constexpr (Prefetch) {
      if (out[i] != kNoNode) idx.prefetch_selection(out[i], rng[i]);
    }
  }
}

template void SamplingIndex::batch_avx2<false>(const SamplingIndex&,
                                               const NodeId*, Rng*, NodeId*,
                                               std::size_t);
template void SamplingIndex::batch_avx2<true>(const SamplingIndex&,
                                              const NodeId*, Rng*, NodeId*,
                                              std::size_t);

template <bool Prefetch>
void CompactSamplingIndex::batch_avx2(const CompactSamplingIndex& idx,
                                      const NodeId* cur, Rng* rng,
                                      NodeId* out, std::size_t n) {
  const auto* offsets = reinterpret_cast<const int*>(idx.offsets_.data());
  const auto* slots = reinterpret_cast<const char*>(idx.slots_.data());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    alignas(32) std::uint64_t words[4];
    for (int j = 0; j < 4; ++j) words[j] = rng[i + j].next_u64();
    const __m256i x =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(words));

    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cur + i));
    const __m128i off0 = _mm_i32gather_epi32(offsets, v, 4);
    const __m128i off1 = _mm_i32gather_epi32(offsets + 1, v, 4);
    const __m256i k = _mm256_cvtepu32_epi64(_mm_sub_epi32(off1, off0));

    __m256i hi, lo;
    mul_64x64_128(x, k, hi, lo);
    const __m256i slot = _mm256_add_epi64(_mm256_cvtepu32_epi64(off0), hi);

    // 12-byte slots: gather with byte offsets (scale 1). Word 0 at
    // slot·12 packs {float threshold, accept}; word 1 at slot·12+4
    // packs {accept, alias}. Both 8-byte loads stay inside the slot.
    const __m256i byteoff = _mm256_add_epi64(_mm256_slli_epi64(slot, 3),
                                             _mm256_slli_epi64(slot, 2));
    const __m256i w0 = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(slots), byteoff, 1);
    const __m256i w1 = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(slots + 4), byteoff, 1);

    // Coin: (lo >> 11)·2⁻⁵³ < (double)threshold, exactly as the scalar
    // draw computes it.
    const __m256d coin = _mm256_mul_pd(
        u64lt2p53_to_double(_mm256_srli_epi64(lo, 11)),
        _mm256_set1_pd(0x1p-53));
    const __m128 thr_f = _mm_castsi128_ps(_mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(
            w0, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0))));
    const __m256d thr = _mm256_cvtps_pd(thr_f);
    const __m256i take_accept =
        _mm256_castpd_si256(_mm256_cmp_pd(coin, thr, _CMP_LT_OQ));

    const __m256i accept =
        _mm256_and_si256(w1, _mm256_set1_epi64x(0xffffffffLL));
    const __m256i alias = _mm256_srli_epi64(w1, 32);
    store_low32(out + i, _mm256_blendv_epi8(alias, accept, take_accept));

    if constexpr (Prefetch) {
      for (int j = 0; j < 4; ++j) {
        if (out[i + j] != kNoNode) {
          idx.prefetch_selection(out[i + j], rng[i + j]);
        }
      }
    }
  }
  for (; i < n; ++i) {
    out[i] = idx.sample_selection(cur[i], rng[i]);
    if constexpr (Prefetch) {
      if (out[i] != kNoNode) idx.prefetch_selection(out[i], rng[i]);
    }
  }
}

template void CompactSamplingIndex::batch_avx2<false>(
    const CompactSamplingIndex&, const NodeId*, Rng*, NodeId*, std::size_t);
template void CompactSamplingIndex::batch_avx2<true>(
    const CompactSamplingIndex&, const NodeId*, Rng*, NodeId*, std::size_t);

}  // namespace af

#endif  // __AVX2__
