// A flat arena of node paths: one contiguous NodeId buffer plus offsets.
//
// The sampling hot path produces millions of short type-1 backward paths
// (average length ≈ walk depth, typically 2–6 nodes). Storing each in its
// own std::vector costs one heap allocation plus pointer-chasing per
// path; the arena packs them back to back so bulk sampling appends with
// amortized O(1) and consumers (cover/SetFamily, the planner's
// realization pool) read each path as a std::span without touching the
// allocator. Memory: exactly 4 bytes per path node + 8 per path.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "util/contracts.hpp"

namespace af {

/// Append-only flat storage for a sequence of NodeId paths.
///
/// Invariant: offsets_ always holds at least the sentinel {0}, including
/// on a moved-from arena (the move operations restore it), so size() and
/// empty() never underflow.
class PathArena {
 public:
  PathArena() = default;
  PathArena(const PathArena&) = default;
  PathArena& operator=(const PathArena&) = default;

  /// Moves leave `other` valid and empty (the {0} sentinel is restored —
  /// a moved-from std::vector would otherwise leave offsets_ empty and
  /// size()/empty() underflowing).
  PathArena(PathArena&& other) noexcept
      : nodes_(std::move(other.nodes_)),
        offsets_(std::move(other.offsets_)) {
    other.offsets_.assign(1, 0);
    other.nodes_.clear();
  }
  PathArena& operator=(PathArena&& other) noexcept {
    if (this != &other) {
      nodes_ = std::move(other.nodes_);
      offsets_ = std::move(other.offsets_);
      other.offsets_.assign(1, 0);
      other.nodes_.clear();
    }
    return *this;
  }

  /// Number of paths stored.
  std::size_t size() const {
    AF_EXPECTS(!offsets_.empty(), "PathArena invariant: offsets sentinel");
    return offsets_.size() - 1;
  }
  bool empty() const {
    AF_EXPECTS(!offsets_.empty(), "PathArena invariant: offsets sentinel");
    return offsets_.size() == 1;
  }

  /// Total nodes across all paths (the arena's payload size).
  std::size_t total_nodes() const { return nodes_.size(); }

  /// Bytes currently held by the arena's buffers (capacity, not payload):
  /// the cost functional the Planner's memory governor charges.
  std::size_t memory_bytes() const {
    return nodes_.capacity() * sizeof(NodeId) +
           offsets_.capacity() * sizeof(std::size_t);
  }

  /// Path i as a view into the arena. The span is valid only until the
  /// next mutation (push_path/append/clear/release/swap/move/destruction):
  /// appends may reallocate the node buffer and move the data the span
  /// points into. Re-index after any mutation instead of holding spans
  /// across one — consumers that copy immediately (SetFamily::add_set,
  /// the planner pool's family construction) are safe by construction.
  std::span<const NodeId> operator[](std::size_t i) const {
    return {nodes_.data() + offsets_[i],
            nodes_.data() + offsets_[i + 1]};
  }

  /// Appends one path. `path` must not alias this arena's own storage.
  void push_path(std::span<const NodeId> path) {
    nodes_.insert(nodes_.end(), path.begin(), path.end());
    offsets_.push_back(nodes_.size());
  }

  /// Appends every path of `other`, preserving order.
  void append(const PathArena& other) {
    AF_EXPECTS(&other != this, "PathArena::append: self-append aliases the "
                               "buffer being reallocated");
    const std::size_t base = nodes_.size();
    nodes_.insert(nodes_.end(), other.nodes_.begin(), other.nodes_.end());
    offsets_.reserve(offsets_.size() + other.size());
    for (std::size_t i = 1; i < other.offsets_.size(); ++i) {
      offsets_.push_back(base + other.offsets_[i]);
    }
  }

  /// Empties the arena but KEEPS capacity (the buffers stay allocated for
  /// reuse). To actually return memory, use release().
  void clear() {
    nodes_.clear();
    offsets_.assign(1, 0);
  }

  /// Empties the arena and releases its buffers (swap idiom: trades
  /// storage with a fresh arena, so capacity really goes back to the
  /// allocator). The Planner's eviction path relies on this.
  void release() {
    PathArena fresh;
    swap(fresh);
  }

  void swap(PathArena& other) noexcept {
    nodes_.swap(other.nodes_);
    offsets_.swap(other.offsets_);
  }

  /// Pre-allocates for `paths` paths totalling `nodes` nodes.
  void reserve(std::size_t paths, std::size_t nodes) {
    offsets_.reserve(paths + 1);
    nodes_.reserve(nodes);
  }

  friend bool operator==(const PathArena&, const PathArena&) = default;

 private:
  std::vector<NodeId> nodes_;
  std::vector<std::size_t> offsets_{0};
};

}  // namespace af
