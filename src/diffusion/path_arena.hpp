// A flat arena of node paths: one contiguous NodeId buffer plus offsets.
//
// The sampling hot path produces millions of short type-1 backward paths
// (average length ≈ walk depth, typically 2–6 nodes). Storing each in its
// own std::vector costs one heap allocation plus pointer-chasing per
// path; the arena packs them back to back so bulk sampling appends with
// amortized O(1) and consumers (cover/SetFamily, the planner's
// realization pool) read each path as a std::span without touching the
// allocator. Memory: exactly 4 bytes per path node + 8 per path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace af {

/// Append-only flat storage for a sequence of NodeId paths.
class PathArena {
 public:
  /// Number of paths stored.
  std::size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return offsets_.size() == 1; }

  /// Total nodes across all paths (the arena's payload size).
  std::size_t total_nodes() const { return nodes_.size(); }

  /// Path i as a view into the arena. Valid until the arena is destroyed
  /// (appends never invalidate: offsets index, they don't point).
  std::span<const NodeId> operator[](std::size_t i) const {
    return {nodes_.data() + offsets_[i],
            nodes_.data() + offsets_[i + 1]};
  }

  /// Appends one path.
  void push_path(std::span<const NodeId> path) {
    nodes_.insert(nodes_.end(), path.begin(), path.end());
    offsets_.push_back(nodes_.size());
  }

  /// Appends every path of `other`, preserving order.
  void append(const PathArena& other) {
    const std::size_t base = nodes_.size();
    nodes_.insert(nodes_.end(), other.nodes_.begin(), other.nodes_.end());
    offsets_.reserve(offsets_.size() + other.size());
    for (std::size_t i = 1; i < other.offsets_.size(); ++i) {
      offsets_.push_back(base + other.offsets_[i]);
    }
  }

  void clear() {
    nodes_.clear();
    offsets_.assign(1, 0);
  }

  /// Pre-allocates for `paths` paths totalling `nodes` nodes.
  void reserve(std::size_t paths, std::size_t nodes) {
    offsets_.reserve(paths + 1);
    nodes_.reserve(nodes);
  }

  friend bool operator==(const PathArena&, const PathArena&) = default;

 private:
  std::vector<NodeId> nodes_;
  std::vector<std::size_t> offsets_{0};
};

}  // namespace af
