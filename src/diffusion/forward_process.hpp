// Forward simulation of the friending process (Process 1, Sec. II-A).
//
// The process starts from C_0 = N_s; in each round, every invited
// non-friend u whose accumulated familiarity weight from current friends
// reaches its threshold θ_u ~ U[0,1] becomes a friend. It terminates when
// no new friend appears or when the target joins.
//
// Thresholds are sampled lazily on first contact — equivalent to sampling
// them all upfront because each θ_u is consulted only against the
// monotone increasing weight sum. The simulator keeps per-instance
// scratch buffers (stamp-versioned) so repeated Monte-Carlo runs allocate
// nothing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/instance.hpp"
#include "diffusion/invitation.hpp"
#include "util/rng.hpp"

namespace af {

/// Single-run result of the forward process.
struct ForwardRunResult {
  bool target_reached = false;
  /// Number of users that became new friends of s (excluding N_s).
  std::size_t new_friends = 0;
};

/// Result of a deterministic run with explicit thresholds.
struct DeterministicRunResult {
  bool target_reached = false;
  /// New friends of s in the order they joined (C_∞ ∖ N_s).
  std::vector<NodeId> new_friends;
};

/// Reusable forward simulator for one instance.
class ForwardProcess {
 public:
  explicit ForwardProcess(const FriendingInstance& inst);

  /// Simulates Process 1 once with fresh random thresholds.
  ForwardRunResult run(const InvitationSet& invited, Rng& rng);

  /// Literal round-based Process 1 (Eq. 2) with explicit per-node
  /// thresholds — fully deterministic. Used to reproduce worked examples
  /// (e.g. the paper's Example 1) and to cross-check the lazy queue-based
  /// run() implementation.
  DeterministicRunResult run_with_thresholds(
      const InvitationSet& invited, std::span<const double> thresholds) const;

  /// Simulates Process 2 under a fixed realization `g` (Def. 1):
  /// g[v] is the friend v selected, or kNoNode for "nobody". Deterministic.
  /// This is f(g, I) evaluated by the literal round-based definition; used
  /// to validate the Alg. 1 shortcut (Lemma 2).
  ForwardRunResult run_under_realization(const InvitationSet& invited,
                                         const std::vector<NodeId>& g);

 private:
  const FriendingInstance& inst_;
  // Stamp-versioned scratch: entry valid iff stamp_of_[v] == stamp_.
  std::vector<std::uint32_t> stamp_of_;
  std::vector<double> acc_weight_;
  std::vector<double> threshold_;
  std::vector<char> is_friend_;
  std::vector<std::uint32_t> friend_stamp_;
  std::vector<NodeId> queue_;
  std::uint32_t stamp_ = 0;
};

}  // namespace af
