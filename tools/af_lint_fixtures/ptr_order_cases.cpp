// af_lint fixture: the `ptr-order` rule (pointer-value ordering).
#include <functional>
#include <map>
#include <set>
#include <vector>

struct Node {};

void positive_cases() {
  std::set<Node*> by_address;                      // expect: ptr-order
  std::map<const Node*, int> ranks;                // expect: ptr-order
  std::set<int*, std::less<int*>> explicit_less;   // expect: ptr-order
  (void)by_address; (void)ranks; (void)explicit_less;
}

void waived_cases() {
  // af-lint: ptr-order — dedup only; the tree is never iterated for output.
  std::set<Node*> seen_once;
  (void)seen_once;
}

void clean_cases() {
  std::map<int, Node*> by_id;       // pointer VALUES, ordered by int key
  std::set<int> plain;              // no pointers at all
  std::vector<Node*> insertion;     // vectors carry insertion order
  (void)by_id; (void)plain; (void)insertion;
}
