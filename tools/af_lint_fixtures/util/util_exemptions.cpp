// af_lint fixture: paths under util/ are exempt from `raw-alloc` (the
// util allocators themselves must call the primitives) — but NOT from
// the determinism rules, which hold everywhere.
#include <cstdlib>
#include <unordered_map>

void util_allocator_internals(std::size_t n) {
  void* block = malloc(n);       // exempt: this file lives under util/
  char* arena = new char[n];     // exempt: likewise
  delete[] arena;
  free(block);
}

void util_is_not_exempt_from_determinism() {
  std::unordered_map<int, int> m;
  for (const auto& kv : m) (void)kv;  // expect: unordered-iter
}
