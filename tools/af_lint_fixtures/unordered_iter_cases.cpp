// af_lint fixture: the `unordered-iter` rule (hash-order iteration).
#include <unordered_map>
#include <unordered_set>
#include <vector>

void positive_cases() {
  std::unordered_map<int, int> counts;
  std::unordered_set<int> ids;
  for (const auto& kv : counts) {        // expect: unordered-iter
    (void)kv;
  }
  for (int v : ids) (void)v;             // expect: unordered-iter
  for (auto it = counts.begin(); it != counts.end(); ++it) {  // expect: unordered-iter
    (void)it;
  }
}

void waived_cases() {
  std::unordered_map<int, int> hist;
  long total = 0;
  // af-lint: unordered-ok — summation is commutative; order never leaks.
  for (const auto& kv : hist) total += kv.second;
  for (auto it = hist.begin(); it != hist.end(); ++it) {  // af-lint: unordered-ok
    total += it->first;
  }
  (void)total;
}

void clean_cases() {
  std::unordered_set<int> members;
  std::vector<int> ordered;
  // Membership checks observe no order: find() against the end sentinel.
  bool present = members.find(3) != members.end();
  for (int v : ordered) (void)v;  // range-for over a vector is fine
  (void)present;
}
