// af_lint fixture: the `raw-alloc` rule (manual buffers outside util/).
#include <cstdlib>
#include <memory>
#include <vector>

void positive_cases(std::size_t n) {
  int* a = new int[n];                        // expect: raw-alloc
  void* m = malloc(n);                        // expect: raw-alloc
  void* c = std::calloc(n, 4);                // expect: raw-alloc
  m = realloc(m, n * 2);                      // expect: raw-alloc
  delete[] a;
  free(m);
  free(c);
}

void waived_cases(std::size_t n) {
  // af-lint: raw-alloc — interop with a C API that takes ownership.
  char* buf = static_cast<char*>(malloc(n));
  double* d = new double[n];  // af-lint: raw-alloc — placement target
  delete[] d;
  free(buf);
}

void clean_cases(std::size_t n) {
  std::vector<int> v(n);                   // containers, not raw buffers
  auto p = std::make_unique<int[]>(n);     // smart-pointer arrays are fine
  auto s = new std::vector<int>(n);        // scalar new is not new[]
  const char* doc = "call malloc(n) here";  // strings never fire
  delete s;
  (void)p; (void)doc;
}
