// af_lint fixture: the `rng` rule (nondeterministic randomness sources).
// `// expect: <rule>` marks lines the linter must flag; waived and clean
// sections must stay silent. Never compiled — pattern food only.
#include <cstdlib>
#include <ctime>
#include <random>

void positive_cases() {
  int a = std::rand();                   // expect: rng
  srand(42);                             // expect: rng
  std::random_device rd;                 // expect: rng
  unsigned seed = time(nullptr);         // expect: rng
  unsigned seed0 = time(0);              // expect: rng
  (void)a; (void)rd; (void)seed; (void)seed0;
}

void waived_cases() {
  // af-lint: rng — entropy for a throwaway perf-harness warmup only.
  std::random_device rd;
  unsigned s = time(nullptr);  // af-lint: rng — wall-clock for a log stamp
  (void)rd; (void)s;
}

void clean_cases() {
  // Mentions in comments must not fire: std::rand, srand, random_device.
  const char* msg = "call std::rand() or srand(time(nullptr))";  // string
  int operand = 1;       // identifier containing "rand" is not a call
  int strand = operand;  // likewise
  double t = time_scale(3);  // a time() call with a real argument is fine
  (void)msg; (void)strand; (void)t;
}
