// af_lint fixture: the `float-order` rule (order-sensitive FP reduction).
#include <atomic>
#include <numeric>
#include <vector>

double positive_cases(const std::vector<double>& xs) {
  double a = std::reduce(xs.begin(), xs.end());          // expect: float-order
  double b = std::transform_reduce(                      // expect: float-order
      xs.begin(), xs.end(), 0.0, std::plus<>{}, [](double v) { return v; });
  std::atomic<double> acc{0.0};                          // expect: float-order
  std::atomic<float> facc{0.0f};                         // expect: float-order
#pragma omp parallel for reduction(+ : a)                // expect: float-order
  for (int i = 0; i < 4; ++i) a += xs[i];
  return a + b + acc.load() + facc.load();
}

double waived_cases(const std::vector<double>& xs) {
  // af-lint: ordered — integer-valued doubles below 2^53: exact addition.
  double n = std::reduce(xs.begin(), xs.end());
  std::atomic<double> telemetry{0.0};  // af-lint: ordered — stats only
  return n + telemetry.load();
}

double clean_cases(const std::vector<double>& xs) {
  // Sequential left-fold: std::accumulate has a specified order.
  double sum = std::accumulate(xs.begin(), xs.end(), 0.0);
  std::atomic<long> count{0};  // integer atomics associate exactly
  for (double v : xs) sum += v;  // ordered loop over an ordered container
  return sum + static_cast<double>(count.load());
}
