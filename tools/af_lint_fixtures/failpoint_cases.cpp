// af_lint fixture: the `failpoint` rule (site-name hygiene). Names at
// AF_FAILPOINT_* sites must be lowercase <layer>.<site> so the catalog,
// the AF_FAILPOINTS env grammar, and crash-report schedules all agree on
// one spelling. `// expect: <rule>` marks lines the linter must flag;
// waived and clean sections must stay silent. Never compiled — pattern
// food only. (The cross-file catalog checks run only on full src/ lints,
// not in fixture mode.)

void positive_cases() {
  if (AF_FAILPOINT_FIRED("BadName")) {}               // expect: failpoint
  AF_FAILPOINT_ALLOC("nolayerseparator");             // expect: failpoint
  if (AF_FAILPOINT_FIRED("layer.MixedCase")) {}       // expect: failpoint
  if (AF_FAILPOINT_FIRED("layer..site")) {}           // expect: failpoint
  if (AF_FAILPOINT_FIRED("layer.site-dash")) {}       // expect: failpoint
  if (AF_FAILPOINT_FIRED("")) {}                      // expect: failpoint
}

void waived_cases() {
  // af-lint: failpoint — migration shim keeps a legacy spelling alive.
  if (AF_FAILPOINT_FIRED("Legacy.Spelling")) {}
}

void clean_cases() {
  if (AF_FAILPOINT_FIRED("storage.writer_write")) {}
  AF_FAILPOINT_ALLOC("planner.pair_alloc");
  if (AF_FAILPOINT_FIRED("a.b.c_3")) {}  // deeper nesting is fine
  // Mentions in comments must not fire: AF_FAILPOINT_FIRED("NotASite").
  const char* doc = "see AF_FAILPOINT_FIRED docs";  // nor in strings
  (void)doc;
}
