#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the files this branch
# changed, plus the always-checked core set — or over all of src/ with
# --all or when no diff base exists (first build, detached CI checkout).
#
# Usage: tools/clang_tidy_changed.sh [BUILD_DIR] [--all]
#   BUILD_DIR must contain compile_commands.json (any configure produces
#   it — CMAKE_EXPORT_COMPILE_COMMANDS is on by default).
set -euo pipefail

BUILD_DIR=build
ALL=0
for arg in "$@"; do
  case "$arg" in
    --all) ALL=1 ;;
    *) BUILD_DIR=$arg ;;
  esac
done

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json not found." >&2
  echo "       configure first: cmake -S . -B $BUILD_DIR" >&2
  exit 2
fi

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null; then
  echo "error: $TIDY not found (set CLANG_TIDY to your binary)" >&2
  exit 2
fi

# The lock-discipline hot spots are checked on every run regardless of
# what changed: annotation regressions here are the costliest to miss.
CORE_FILES=(
  src/core/planner.cpp
  src/util/thread_pool.cpp
  src/diffusion/sampling_index.cpp
)

declare -a FILES=()
if [[ $ALL -eq 0 ]]; then
  BASE=$(git merge-base origin/main HEAD 2>/dev/null || true)
  if [[ -n $BASE ]]; then
    while IFS= read -r f; do
      [[ $f == *.cpp || $f == *.cc ]] && FILES+=("$f")
    done < <(git diff --name-only --diff-filter=d "$BASE" -- 'src/*' 'tools/*.cpp')
    FILES+=("${CORE_FILES[@]}")
  else
    echo "note: no merge base with origin/main; checking all of src/" >&2
    ALL=1
  fi
fi
if [[ $ALL -eq 1 ]]; then
  while IFS= read -r f; do FILES+=("$f"); done \
    < <(git ls-files 'src/*.cpp' 'tools/*.cpp')
fi

# Dedup while preserving order; drop files absent from the compile DB
# (headers are covered via HeaderFilterRegex when their includers run).
declare -A SEEN=()
declare -a UNIQUE=()
for f in "${FILES[@]}"; do
  [[ -f $f && -z ${SEEN[$f]:-} ]] || continue
  SEEN[$f]=1
  grep -q "$f" "$BUILD_DIR/compile_commands.json" && UNIQUE+=("$f")
done

if [[ ${#UNIQUE[@]} -eq 0 ]]; then
  echo "clang-tidy: no translation units to check"
  exit 0
fi

echo "clang-tidy: checking ${#UNIQUE[@]} file(s)"
STATUS=0
for f in "${UNIQUE[@]}"; do
  echo "  $f"
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
exit $STATUS
