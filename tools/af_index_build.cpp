// af_index_build — offline .af1 container builder (DESIGN.md §11).
//
// Converts a text edge list (plain "u v" or weighted "u v w_uv w_vu") —
// or a synthetic generator graph, for demos and scale tests — into one
// .af1 container holding the CSR topology, directional weights,
// leftover-mass vector and the PREBUILT SamplingIndex /
// CompactSamplingIndex tables. Servers then open the container with
// storage::MappedDataset + Planner::from_mapped and cold-start without
// building anything: the expensive work happens here, once, offline.
//
// Text inputs stream through the two-pass loaders (graph/io): resident
// memory is the compacted graph, never the input file, so inputs larger
// than RAM convert fine. The container itself is streamed out through
// Af1Writer (temp file + atomic rename).
//
//   af_index_build --input edges.txt --output graph.af1 --verify
//   af_index_build --synthetic ba --nodes 100000 --output ba.af1
//       --save-edges ba_edges.txt
//
// --verify re-opens the written container and proves byte equality of
// every graph array against the in-RAM build; --verify-plans additionally
// runs queries through both construction paths and compares answers
// bit-for-bit (the round-trip determinism contract).
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>

#include "core/planner.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/weights.hpp"
#include "storage/convert.hpp"
#include "storage/format.hpp"
#include "storage/mapped_dataset.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using af::Graph;
using af::NodeId;

/// Parses --scheme: "inverse-degree", "constant:<c>", "random:<total>",
/// "trivalency". Throws std::invalid_argument on anything else.
af::WeightScheme parse_scheme(const std::string& s) {
  if (s == "inverse-degree") return af::WeightScheme::inverse_degree();
  if (s == "trivalency") return af::WeightScheme::trivalency();
  const auto colon = s.find(':');
  if (colon != std::string::npos) {
    const std::string head = s.substr(0, colon);
    const double param = std::stod(s.substr(colon + 1));
    if (head == "constant") return af::WeightScheme::constant_clamped(param);
    if (head == "random") return af::WeightScheme::random_normalized(param);
  }
  throw std::invalid_argument(
      "unknown --scheme '" + s +
      "' (want inverse-degree, constant:<c>, random:<total>, trivalency)");
}

/// Bit-equality of two plan results: same status, same invitation set in
/// the same order, same coverage bits. The round-trip contract.
bool same_plan(const af::PlanResult& a, const af::PlanResult& b) {
  return a.status == b.status &&
         a.invitation.members() == b.invitation.members() &&
         std::memcmp(&a.sample_coverage, &b.sample_coverage,
                     sizeof(double)) == 0;
}

/// Byte equality of the container's graph arrays against the in-RAM
/// build — the zero-copy views must reproduce the source arrays exactly.
bool arrays_identical(const Graph& ram, const Graph& mapped) {
  const auto eq = [](auto a, auto b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size_bytes()) == 0;
  };
  return eq(ram.raw_offsets(), mapped.raw_offsets()) &&
         eq(ram.raw_adjacency(), mapped.raw_adjacency()) &&
         eq(ram.raw_in_weights(), mapped.raw_in_weights()) &&
         eq(ram.raw_out_weights(), mapped.raw_out_weights()) &&
         eq(ram.raw_total_in_weight(), mapped.raw_total_in_weight());
}

/// Plans a few deterministic queries through both construction paths and
/// compares bit-for-bit. Returns the number of mismatches.
int verify_plans(const Graph& g, const af::storage::MappedDataset& ds,
                 bool compact) {
  af::PlannerOptions opt;
  opt.compact_index = compact;
  af::Planner in_ram(g, opt);
  const auto mapped = af::Planner::from_mapped(ds, opt);

  const auto stats = mapped->cache_stats();
  if (!stats.mapped || stats.index_build_seconds != 0.0) {
    std::fprintf(stderr,
                 "verify-plans: mapped planner stats wrong (mapped=%d, "
                 "index_build_seconds=%g)\n",
                 static_cast<int>(stats.mapped), stats.index_build_seconds);
    return 1;
  }

  int mismatches = 0;
  const NodeId n = g.num_nodes();
  const NodeId pairs[][2] = {{0, static_cast<NodeId>(n / 2)},
                             {1, static_cast<NodeId>(n / 3)},
                             {2, static_cast<NodeId>(2 * (n / 3))}};
  for (const auto& p : pairs) {
    af::QuerySpec q;
    q.s = p[0];
    q.t = p[1];
    q.mode = af::MaximizeSpec{.budget = 5, .realizations = 2000};
    if (!same_plan(in_ram.plan(q), mapped->plan(q))) {
      std::fprintf(stderr, "verify-plans: (%u,%u) diverged (%s index)\n",
                   q.s, q.t, compact ? "compact" : "full");
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  af::ArgParser args("af_index_build",
                     "Offline edge-list -> .af1 container converter: "
                     "embeds prebuilt sampling-index tables so servers "
                     "cold-start without building anything");
  args.add_string("input", "",
                  "text edge list to convert ('u v' per line; with "
                  "--weighted, 'u v w_uv w_vu')");
  args.add_string("output", "", "output container path (required)");
  args.add_flag("weighted", "input lines carry explicit weights");
  args.add_string("scheme", "inverse-degree",
                  "weight scheme for plain inputs: inverse-degree, "
                  "constant:<c>, random:<total>, trivalency");
  args.add_int("seed", 20190707,
               "rng seed for random schemes and synthetic graphs");
  args.add_flag("skip-index64",
                "omit the 16-byte/slot SamplingIndex sections");
  args.add_flag("skip-index32",
                "omit the 12-byte/slot CompactSamplingIndex sections");
  args.add_string("synthetic", "",
                  "generate instead of reading --input: 'ba' "
                  "(Barabasi-Albert with --nodes/--attach)");
  args.add_int("nodes", 100000, "synthetic graph node count");
  args.add_int("attach", 8, "synthetic BA attachment parameter");
  args.add_string("save-edges", "",
                  "also write the graph as a plain text edge list");
  args.add_flag("verify",
                "re-open the container and prove the mapped graph arrays "
                "byte-identical to the in-RAM build");
  args.add_flag("verify-plans",
                "additionally compare plan() answers between the in-RAM "
                "and mapped planners, bit for bit");
  if (!args.parse(argc, argv)) return 1;

  try {
    const std::string output = args.get_string("output");
    if (output.empty()) {
      std::fprintf(stderr, "af_index_build: --output is required\n");
      return 1;
    }
    const std::string input = args.get_string("input");
    const std::string synthetic = args.get_string("synthetic");
    if (input.empty() == synthetic.empty()) {
      std::fprintf(stderr,
                   "af_index_build: give exactly one of --input or "
                   "--synthetic\n");
      return 1;
    }

    const af::WeightScheme scheme = parse_scheme(args.get_string("scheme"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    af::WallTimer load_timer;
    Graph g;
    if (!synthetic.empty()) {
      if (synthetic != "ba") {
        std::fprintf(stderr, "af_index_build: unknown --synthetic '%s'\n",
                     synthetic.c_str());
        return 1;
      }
      af::Rng rng(seed);
      g = af::barabasi_albert(static_cast<NodeId>(args.get_int("nodes")),
                              static_cast<std::size_t>(args.get_int("attach")),
                              rng)
              .build(scheme, &rng);
    } else if (args.get_flag("weighted")) {
      g = af::load_weighted_edge_list_streaming(input).graph;
    } else {
      af::Rng rng(seed);
      g = af::load_edge_list_streaming(input, scheme, &rng).graph;
    }
    const double load_seconds = load_timer.elapsed_seconds();

    const std::string save_edges = args.get_string("save-edges");
    if (!save_edges.empty() && !af::save_edge_list(g, save_edges)) {
      std::fprintf(stderr, "af_index_build: cannot write '%s'\n",
                   save_edges.c_str());
      return 1;
    }

    af::storage::ConvertOptions copt;
    copt.index64 = !args.get_flag("skip-index64");
    copt.index32 = !args.get_flag("skip-index32");

    af::WallTimer write_timer;
    const std::uint64_t bytes = af::storage::write_container(g, output, copt);
    std::printf(
        "af_index_build: %s: %u nodes, %llu edges, %llu bytes "
        "(load %.2fs, build+write %.2fs)\n",
        output.c_str(), g.num_nodes(),
        static_cast<unsigned long long>(g.num_edges()),
        static_cast<unsigned long long>(bytes), load_seconds,
        write_timer.elapsed_seconds());

    if (args.get_flag("verify") || args.get_flag("verify-plans")) {
      af::WallTimer open_timer;
      af::storage::MappedDataset ds(output);
      std::printf("af_index_build: verify: opened+validated in %.3fs\n",
                  open_timer.elapsed_seconds());
      if (!arrays_identical(g, ds.graph())) {
        std::fprintf(stderr,
                     "af_index_build: verify FAILED: mapped graph arrays "
                     "differ from the in-RAM build\n");
        return 1;
      }
      int mismatches = 0;
      if (args.get_flag("verify-plans")) {
        if (copt.index64) mismatches += verify_plans(g, ds, /*compact=*/false);
        if (copt.index32) mismatches += verify_plans(g, ds, /*compact=*/true);
      }
      if (mismatches > 0) {
        std::fprintf(stderr, "af_index_build: verify FAILED: %d plan "
                             "mismatches\n",
                     mismatches);
        return 1;
      }
      std::printf("af_index_build: verify ok (arrays byte-identical%s)\n",
                  args.get_flag("verify-plans")
                      ? ", plans bit-identical on both index types"
                      : "");
    }
  } catch (const af::storage::Af1Error& e) {
    std::fprintf(stderr, "af_index_build: container error [%s]: %s\n",
                 af::storage::to_string(e.code()), e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "af_index_build: %s\n", e.what());
    return 1;
  }
  return 0;
}
