#!/usr/bin/env python3
"""af_lint — repo-specific determinism-contract linter (DESIGN.md §12).

The counter-stream contract (DESIGN.md §6) promises bit-identical answers
at any thread count, on any platform, from a (instance, seed) pair.  A
handful of innocent-looking C++ constructs silently break that promise;
this linter rejects them in `src/` unless a reviewed waiver comment says
why the specific use is order-insensitive.

Rules (waiver comment, on the same or the previous line):

  rng            std::rand/srand/random_device/time-seeded randomness
                 outside util/rng — bypasses the deterministic counter
                 streams.                       (waiver: af-lint: rng)
  unordered-iter iteration over an unordered_{map,set} — the visit order
                 is hash/allocator dependent, so anything accumulated or
                 emitted in that order varies between runs and stdlibs.
                                         (waiver: af-lint: unordered-ok)
  ptr-order      ordered containers keyed on pointers or std::less over
                 a pointer type — the ordering is the allocator's whim.
                                            (waiver: af-lint: ptr-order)
  float-order    reduction constructs with unspecified evaluation order
                 over float/double (std::reduce, std::transform_reduce,
                 std::atomic<float|double>, OpenMP reductions) — FP
                 addition does not associate.    (waiver: af-lint: ordered)
  raw-alloc      new[]/malloc/calloc/realloc outside util/ — raw buffers
                 dodge the sized-accounting and hugepage paths and are a
                 lifetime audit burden.        (waiver: af-lint: raw-alloc)

Usage:
  af_lint.py [--root DIR] [PATHS...]   lint src/ (or PATHS) under DIR
  af_lint.py --fixtures DIR            self-test mode: every file in DIR
                                       must produce exactly the findings
                                       its `// expect: <rule>` comments
                                       declare (after waivers).

Exit status 0 = clean / all fixtures match, 1 = findings / mismatch,
2 = usage error.  Python 3.8+, stdlib only.
"""

import argparse
import os
import re
import sys

EXTENSIONS = (".hpp", ".cpp", ".h", ".cc", ".cxx", ".hxx")

RULES = ("rng", "unordered-iter", "ptr-order", "float-order", "raw-alloc")

WAIVER_FOR_RULE = {
    "rng": "rng",
    "unordered-iter": "unordered-ok",
    "ptr-order": "ptr-order",
    "float-order": "ordered",
    "raw-alloc": "raw-alloc",
}


class Line:
    __slots__ = ("num", "code", "comment")

    def __init__(self, num, code, comment):
        self.num = num
        self.code = code
        self.comment = comment


def split_code_comments(text):
    """Returns a list of Line with string/char literals blanked out of
    `code` and comment text (both // and /* */) collected per line."""
    lines = []
    i = 0
    n = len(text)
    lineno = 1
    code = []
    comment = []
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n":
            lines.append(Line(lineno, "".join(code), "".join(comment)))
            code, comment = [], []
            lineno += 1
            if state == "line_comment":
                state = "code"
            # Raw newlines end string literals only in ill-formed code;
            # treat them as terminators so one bad line cannot swallow
            # the rest of the file.
            if state in ("string", "char"):
                state = "code"
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if ch == '"':
                state = "string"
                code.append('"')
                i += 1
                continue
            if ch == "'":
                state = "char"
                code.append("'")
                i += 1
                continue
            code.append(ch)
            i += 1
        elif state == "line_comment":
            comment.append(ch)
            i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                comment.append(ch)
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                i += 2  # skip the escaped character, whatever it is
                continue
            if ch == quote:
                code.append(quote)
                state = "code"
            i += 1
    if code or comment:
        lines.append(Line(lineno, "".join(code), "".join(comment)))
    return lines


WAIVER_RE = re.compile(r"af-lint:\s*([\w-]+)")
EXPECT_RE = re.compile(r"expect:\s*([\w-]+)")

RNG_PATTERNS = [
    (re.compile(r"(?<![\w:.>])std::rand\b"), "std::rand"),
    (re.compile(r"(?<![\w:.>])srand\s*\("), "srand"),
    (re.compile(r"(?<![\w:.>])(std::)?random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(nullptr|NULL|0)\s*\)"),
     "wall-clock seeding (time(...))"),
]

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*&?\s*"
    r"(\w+)\s*(?:[;={(,)]|$)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;]*?):([^;]*)\)")
# begin() only: a bare `x.end()` is almost always the sentinel in a
# `find(key) == end()` membership check, which never observes order.
BEGIN_CALL_RE = re.compile(r"(\w+)\s*(?:\.|->)\s*c?begin\s*\(")

PTR_ORDER_PATTERNS = [
    (re.compile(r"\bstd::(?:multi)?(?:map|set)\s*<[^,>]*\*"),
     "ordered container keyed on a pointer"),
    (re.compile(r"\bstd::less\s*<[^>]*\*\s*>"), "std::less over a pointer"),
]

FLOAT_ORDER_PATTERNS = [
    (re.compile(r"\bstd::(?:transform_)?reduce\s*\("),
     "std::reduce family evaluates in unspecified order"),
    (re.compile(r"\bstd::atomic\s*<\s*(?:float|double|long\s+double)\s*>"),
     "atomic float accumulates in scheduling order"),
]
OMP_REDUCTION_RE = re.compile(r"#\s*pragma\s+omp\b.*\breduction\s*\(")

RAW_ALLOC_PATTERNS = [
    (re.compile(r"\bnew\s+[\w:<>,\s]+?\["), "new[]"),
    (re.compile(r"(?<![\w:.>])(?:std::)?(malloc|calloc|realloc)\s*\("),
     "C allocation"),
]


def is_under_util(relpath):
    parts = relpath.replace("\\", "/").split("/")
    return "util" in parts


def is_rng_home(relpath):
    base = os.path.basename(relpath)
    return is_under_util(relpath) and base.startswith("rng")


def collect_unordered_vars(lines):
    """Names declared (anywhere in the file) with an unordered container
    type.  Per-file scope is deliberately coarse: a false positive costs
    one reviewed waiver, a false negative costs determinism."""
    names = set()
    for ln in lines:
        for m in UNORDERED_DECL_RE.finditer(ln.code):
            names.add(m.group(1))
    return names


def lint_file(path, relpath, text):
    lines = split_code_comments(text)
    findings = []  # (lineno, rule, message)

    def add(ln, rule, message):
        findings.append((ln.num, rule, message))

    unordered_vars = collect_unordered_vars(lines)

    for ln in lines:
        code = ln.code

        if not is_rng_home(relpath):
            for pat, what in RNG_PATTERNS:
                if pat.search(code):
                    add(ln, "rng",
                        f"{what}: use util/rng counter streams instead")

        for m in RANGE_FOR_RE.finditer(code):
            range_expr = m.group(2)
            hit = "unordered_" in range_expr or any(
                re.search(r"\b" + re.escape(v) + r"\b", range_expr)
                for v in unordered_vars)
            if hit:
                add(ln, "unordered-iter",
                    "range-for over an unordered container: visit order "
                    "is hash-dependent")
        for m in BEGIN_CALL_RE.finditer(code):
            if m.group(1) in unordered_vars:
                add(ln, "unordered-iter",
                    f"iterator over unordered container '{m.group(1)}': "
                    "visit order is hash-dependent")

        for pat, what in PTR_ORDER_PATTERNS:
            if pat.search(code):
                add(ln, "ptr-order",
                    f"{what}: pointer values are allocator-dependent")

        for pat, what in FLOAT_ORDER_PATTERNS:
            if pat.search(code):
                add(ln, "float-order", what)
        # OpenMP pragmas live outside the code/comment split's interest
        # but survive it unchanged (they are code, not comments).
        if OMP_REDUCTION_RE.search(code):
            add(ln, "float-order",
                "OpenMP reduction combines partials in thread order")

        if not is_under_util(relpath):
            for pat, what in RAW_ALLOC_PATTERNS:
                if pat.search(code):
                    add(ln, "raw-alloc",
                        f"{what}: use std containers / util allocators")

    # Dedup identical (line, rule) pairs (several patterns can fire on
    # one line) and honor waivers on the same or the previous line.
    waivers = {}  # lineno -> set of waiver tokens
    for ln in lines:
        tokens = set(WAIVER_RE.findall(ln.comment))
        if tokens:
            waivers[ln.num] = tokens

    out = []
    seen = set()
    for num, rule, message in findings:
        if (num, rule) in seen:
            continue
        seen.add((num, rule))
        tok = WAIVER_FOR_RULE[rule]
        if tok in waivers.get(num, ()) or tok in waivers.get(num - 1, ()):
            continue
        out.append((num, rule, message))
    return sorted(out)


def iter_source_files(root, paths):
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            yield ap
            continue
        for dirpath, _dirnames, filenames in os.walk(ap):
            for fn in sorted(filenames):
                if fn.endswith(EXTENSIONS):
                    yield os.path.join(dirpath, fn)


def run_lint(root, paths):
    failures = 0
    for ap in sorted(set(iter_source_files(root, paths))):
        rel = os.path.relpath(ap, root)
        with open(ap, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        for num, rule, message in lint_file(ap, rel, text):
            print(f"{rel}:{num}: [{rule}] {message}")
            failures += 1
    if failures:
        print(f"af_lint: {failures} finding(s). Waive with a reviewed "
              f"'// af-lint: <token>' comment (DESIGN.md §12).",
              file=sys.stderr)
    return 1 if failures else 0


def run_fixtures(fixtures_dir):
    """Self-test: each fixture must yield exactly the findings declared by
    its `// expect: <rule>` comments (same line), nothing more or less."""
    total = mismatches = 0
    for ap in sorted(set(iter_source_files(fixtures_dir, ["."]))):
        rel = os.path.relpath(ap, fixtures_dir)
        with open(ap, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        lines = split_code_comments(text)
        expected = set()
        for ln in lines:
            for rule in EXPECT_RE.findall(ln.comment):
                if rule not in RULES:
                    print(f"{rel}:{ln.num}: unknown rule in expect: {rule}")
                    return 2
                expected.add((ln.num, rule))
        actual = {(num, rule) for num, rule, _ in lint_file(ap, rel, text)}
        total += 1
        for num, rule in sorted(expected - actual):
            print(f"{rel}:{num}: expected [{rule}] but the linter was silent")
            mismatches += 1
        for num, rule in sorted(actual - expected):
            print(f"{rel}:{num}: unexpected [{rule}] finding")
            mismatches += 1
    if mismatches:
        print(f"af_lint --fixtures: {mismatches} mismatch(es) across "
              f"{total} fixture(s)", file=sys.stderr)
        return 1
    print(f"af_lint --fixtures: {total} fixture(s) OK")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repo root; lint paths are relative to it")
    ap.add_argument("--fixtures", metavar="DIR",
                    help="run in self-test mode over fixture files")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/dirs to lint (default: src)")
    args = ap.parse_args(argv)
    if args.fixtures:
        if args.paths:
            ap.error("--fixtures takes no positional paths")
        return run_fixtures(args.fixtures)
    return run_lint(args.root, args.paths or ["src"])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
