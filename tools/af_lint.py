#!/usr/bin/env python3
"""af_lint — repo-specific determinism-contract linter (DESIGN.md §12).

The counter-stream contract (DESIGN.md §6) promises bit-identical answers
at any thread count, on any platform, from a (instance, seed) pair.  A
handful of innocent-looking C++ constructs silently break that promise;
this linter rejects them in `src/` unless a reviewed waiver comment says
why the specific use is order-insensitive.

Rules (waiver comment, on the same or the previous line):

  rng            std::rand/srand/random_device/time-seeded randomness
                 outside util/rng — bypasses the deterministic counter
                 streams.                       (waiver: af-lint: rng)
  unordered-iter iteration over an unordered_{map,set} — the visit order
                 is hash/allocator dependent, so anything accumulated or
                 emitted in that order varies between runs and stdlibs.
                                         (waiver: af-lint: unordered-ok)
  ptr-order      ordered containers keyed on pointers or std::less over
                 a pointer type — the ordering is the allocator's whim.
                                            (waiver: af-lint: ptr-order)
  float-order    reduction constructs with unspecified evaluation order
                 over float/double (std::reduce, std::transform_reduce,
                 std::atomic<float|double>, OpenMP reductions) — FP
                 addition does not associate.    (waiver: af-lint: ordered)
  raw-alloc      new[]/malloc/calloc/realloc outside util/ — raw buffers
                 dodge the sized-accounting and hugepage paths and are a
                 lifetime audit burden.        (waiver: af-lint: raw-alloc)
  failpoint      AF_FAILPOINT_* site names must be lowercase
                 <layer>.<site> and, across a full src/ lint, must match
                 the authoritative catalog in util/failpoint.cpp exactly
                 (registered, no dead catalog entries, no name reused by
                 a second file).              (waiver: af-lint: failpoint)

Usage:
  af_lint.py [--root DIR] [PATHS...]   lint src/ (or PATHS) under DIR
  af_lint.py --fixtures DIR            self-test mode: every file in DIR
                                       must produce exactly the findings
                                       its `// expect: <rule>` comments
                                       declare (after waivers).

Exit status 0 = clean / all fixtures match, 1 = findings / mismatch,
2 = usage error.  Python 3.8+, stdlib only.
"""

import argparse
import os
import re
import sys

EXTENSIONS = (".hpp", ".cpp", ".h", ".cc", ".cxx", ".hxx")

RULES = ("rng", "unordered-iter", "ptr-order", "float-order", "raw-alloc",
         "failpoint")

WAIVER_FOR_RULE = {
    "rng": "rng",
    "unordered-iter": "unordered-ok",
    "ptr-order": "ptr-order",
    "float-order": "ordered",
    "raw-alloc": "raw-alloc",
    "failpoint": "failpoint",
}


class Line:
    __slots__ = ("num", "code", "comment")

    def __init__(self, num, code, comment):
        self.num = num
        self.code = code
        self.comment = comment


def split_code_comments(text):
    """Returns a list of Line with string/char literals blanked out of
    `code` and comment text (both // and /* */) collected per line."""
    lines = []
    i = 0
    n = len(text)
    lineno = 1
    code = []
    comment = []
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n":
            lines.append(Line(lineno, "".join(code), "".join(comment)))
            code, comment = [], []
            lineno += 1
            if state == "line_comment":
                state = "code"
            # Raw newlines end string literals only in ill-formed code;
            # treat them as terminators so one bad line cannot swallow
            # the rest of the file.
            if state in ("string", "char"):
                state = "code"
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if ch == '"':
                state = "string"
                code.append('"')
                i += 1
                continue
            if ch == "'":
                state = "char"
                code.append("'")
                i += 1
                continue
            code.append(ch)
            i += 1
        elif state == "line_comment":
            comment.append(ch)
            i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                comment.append(ch)
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                i += 2  # skip the escaped character, whatever it is
                continue
            if ch == quote:
                code.append(quote)
                state = "code"
            i += 1
    if code or comment:
        lines.append(Line(lineno, "".join(code), "".join(comment)))
    return lines


WAIVER_RE = re.compile(r"af-lint:\s*([\w-]+)")
EXPECT_RE = re.compile(r"expect:\s*([\w-]+)")

RNG_PATTERNS = [
    (re.compile(r"(?<![\w:.>])std::rand\b"), "std::rand"),
    (re.compile(r"(?<![\w:.>])srand\s*\("), "srand"),
    (re.compile(r"(?<![\w:.>])(std::)?random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(nullptr|NULL|0)\s*\)"),
     "wall-clock seeding (time(...))"),
]

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*&?\s*"
    r"(\w+)\s*(?:[;={(,)]|$)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;]*?):([^;]*)\)")
# begin() only: a bare `x.end()` is almost always the sentinel in a
# `find(key) == end()` membership check, which never observes order.
BEGIN_CALL_RE = re.compile(r"(\w+)\s*(?:\.|->)\s*c?begin\s*\(")

PTR_ORDER_PATTERNS = [
    (re.compile(r"\bstd::(?:multi)?(?:map|set)\s*<[^,>]*\*"),
     "ordered container keyed on a pointer"),
    (re.compile(r"\bstd::less\s*<[^>]*\*\s*>"), "std::less over a pointer"),
]

FLOAT_ORDER_PATTERNS = [
    (re.compile(r"\bstd::(?:transform_)?reduce\s*\("),
     "std::reduce family evaluates in unspecified order"),
    (re.compile(r"\bstd::atomic\s*<\s*(?:float|double|long\s+double)\s*>"),
     "atomic float accumulates in scheduling order"),
]
OMP_REDUCTION_RE = re.compile(r"#\s*pragma\s+omp\b.*\breduction\s*\(")

RAW_ALLOC_PATTERNS = [
    (re.compile(r"\bnew\s+[\w:<>,\s]+?\["), "new[]"),
    (re.compile(r"(?<![\w:.>])(?:std::)?(malloc|calloc|realloc)\s*\("),
     "C allocation"),
]

# Failpoint sites: the name is a string literal (blanked from Line.code),
# so the match runs over the RAW line, gated on the macro name surviving
# in code for that line (mentions inside comments must not fire).
FAILPOINT_SITE_RE = re.compile(r'\bAF_FAILPOINT\w*\s*\(\s*"([^"]*)"')
FAILPOINT_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
FAILPOINT_CATALOG_PATH = os.path.join("src", "util", "failpoint.cpp")
FAILPOINT_CATALOG_BEGIN = "af-failpoint-catalog-begin"
FAILPOINT_CATALOG_END = "af-failpoint-catalog-end"


def failpoint_sites(text):
    """Returns [(lineno, name)] for every AF_FAILPOINT_* site in `text`
    whose macro invocation is real code (not commentary)."""
    code_by_num = {ln.num: ln.code for ln in split_code_comments(text)}
    sites = []
    for num, raw in enumerate(text.splitlines(), 1):
        if "AF_FAILPOINT" not in code_by_num.get(num, ""):
            continue
        for m in FAILPOINT_SITE_RE.finditer(raw):
            sites.append((num, m.group(1)))
    return sites


def parse_failpoint_catalog(text):
    """The names listed between the catalog markers in failpoint.cpp."""
    names = set()
    inside = False
    for raw in text.splitlines():
        if FAILPOINT_CATALOG_BEGIN in raw:
            inside = True
            continue
        if FAILPOINT_CATALOG_END in raw:
            break
        if inside:
            names.update(re.findall(r'"([^"]+)"', raw))
    return names


def is_under_util(relpath):
    parts = relpath.replace("\\", "/").split("/")
    return "util" in parts


def is_rng_home(relpath):
    base = os.path.basename(relpath)
    return is_under_util(relpath) and base.startswith("rng")


def collect_unordered_vars(lines):
    """Names declared (anywhere in the file) with an unordered container
    type.  Per-file scope is deliberately coarse: a false positive costs
    one reviewed waiver, a false negative costs determinism."""
    names = set()
    for ln in lines:
        for m in UNORDERED_DECL_RE.finditer(ln.code):
            names.add(m.group(1))
    return names


def lint_file(path, relpath, text):
    lines = split_code_comments(text)
    findings = []  # (lineno, rule, message)

    def add(ln, rule, message):
        findings.append((ln.num, rule, message))

    unordered_vars = collect_unordered_vars(lines)

    for ln in lines:
        code = ln.code

        if not is_rng_home(relpath):
            for pat, what in RNG_PATTERNS:
                if pat.search(code):
                    add(ln, "rng",
                        f"{what}: use util/rng counter streams instead")

        for m in RANGE_FOR_RE.finditer(code):
            range_expr = m.group(2)
            hit = "unordered_" in range_expr or any(
                re.search(r"\b" + re.escape(v) + r"\b", range_expr)
                for v in unordered_vars)
            if hit:
                add(ln, "unordered-iter",
                    "range-for over an unordered container: visit order "
                    "is hash-dependent")
        for m in BEGIN_CALL_RE.finditer(code):
            if m.group(1) in unordered_vars:
                add(ln, "unordered-iter",
                    f"iterator over unordered container '{m.group(1)}': "
                    "visit order is hash-dependent")

        for pat, what in PTR_ORDER_PATTERNS:
            if pat.search(code):
                add(ln, "ptr-order",
                    f"{what}: pointer values are allocator-dependent")

        for pat, what in FLOAT_ORDER_PATTERNS:
            if pat.search(code):
                add(ln, "float-order", what)
        # OpenMP pragmas live outside the code/comment split's interest
        # but survive it unchanged (they are code, not comments).
        if OMP_REDUCTION_RE.search(code):
            add(ln, "float-order",
                "OpenMP reduction combines partials in thread order")

        if not is_under_util(relpath):
            for pat, what in RAW_ALLOC_PATTERNS:
                if pat.search(code):
                    add(ln, "raw-alloc",
                        f"{what}: use std containers / util allocators")

    for num, name in failpoint_sites(text):
        if not FAILPOINT_NAME_RE.match(name):
            findings.append(
                (num, "failpoint",
                 f'failpoint name "{name}" is not lowercase <layer>.<site>'))

    # Dedup identical (line, rule) pairs (several patterns can fire on
    # one line) and honor waivers on the same or the previous line.
    waivers = {}  # lineno -> set of waiver tokens
    for ln in lines:
        tokens = set(WAIVER_RE.findall(ln.comment))
        if tokens:
            waivers[ln.num] = tokens

    out = []
    seen = set()
    for num, rule, message in findings:
        if (num, rule) in seen:
            continue
        seen.add((num, rule))
        tok = WAIVER_FOR_RULE[rule]
        if tok in waivers.get(num, ()) or tok in waivers.get(num - 1, ()):
            continue
        out.append((num, rule, message))
    return sorted(out)


def iter_source_files(root, paths):
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            yield ap
            continue
        for dirpath, _dirnames, filenames in os.walk(ap):
            for fn in sorted(filenames):
                if fn.endswith(EXTENSIONS):
                    yield os.path.join(dirpath, fn)


def check_failpoint_registry(root, used_sites):
    """Cross-file failpoint pass: every site name used in the linted tree
    must be in failpoint.cpp's catalog, every catalog entry must have a
    live site, and no name may be spelled by two different files (a
    copy-pasted name makes two unrelated faults indistinguishable).
    `used_sites` maps name -> {relpath: first lineno}.  Skipped when the
    catalog file is absent (partial lints of other trees)."""
    catalog_path = os.path.join(root, FAILPOINT_CATALOG_PATH)
    if not os.path.isfile(catalog_path):
        return 0
    with open(catalog_path, "r", encoding="utf-8", errors="replace") as f:
        catalog = parse_failpoint_catalog(f.read())
    failures = 0
    for name, locs in sorted(used_sites.items()):
        first_rel = min(locs)
        first_line = locs[first_rel]
        if name not in catalog:
            print(f"{first_rel}:{first_line}: [failpoint] site "
                  f'"{name}" is not in the catalog in '
                  f"{FAILPOINT_CATALOG_PATH}")
            failures += 1
        if len(locs) > 1:
            others = ", ".join(sorted(set(locs) - {first_rel}))
            print(f"{first_rel}:{first_line}: [failpoint] site "
                  f'"{name}" is also spelled in {others}; failpoint '
                  f"names are one-file-one-name")
            failures += 1
    for name in sorted(catalog - set(used_sites)):
        print(f"{FAILPOINT_CATALOG_PATH}: [failpoint] catalog entry "
              f'"{name}" has no AF_FAILPOINT_* site in the linted tree')
        failures += 1
    return failures


def run_lint(root, paths):
    failures = 0
    used_sites = {}  # failpoint name -> {relpath: first lineno}
    lint_failpoint_home = False
    for ap in sorted(set(iter_source_files(root, paths))):
        rel = os.path.relpath(ap, root)
        with open(ap, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        for num, rule, message in lint_file(ap, rel, text):
            print(f"{rel}:{num}: [{rule}] {message}")
            failures += 1
        for num, name in failpoint_sites(text):
            used_sites.setdefault(name, {}).setdefault(rel, num)
        if rel.replace("\\", "/") == FAILPOINT_CATALOG_PATH.replace(
                "\\", "/"):
            lint_failpoint_home = True
    # The registry cross-check only makes sense for a lint run that saw
    # the whole instrumented tree; a single-file lint must not report
    # every other catalog entry as dead.
    if lint_failpoint_home:
        failures += check_failpoint_registry(root, used_sites)
    if failures:
        print(f"af_lint: {failures} finding(s). Waive with a reviewed "
              f"'// af-lint: <token>' comment (DESIGN.md §12).",
              file=sys.stderr)
    return 1 if failures else 0


def run_fixtures(fixtures_dir):
    """Self-test: each fixture must yield exactly the findings declared by
    its `// expect: <rule>` comments (same line), nothing more or less."""
    total = mismatches = 0
    for ap in sorted(set(iter_source_files(fixtures_dir, ["."]))):
        rel = os.path.relpath(ap, fixtures_dir)
        with open(ap, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        lines = split_code_comments(text)
        expected = set()
        for ln in lines:
            for rule in EXPECT_RE.findall(ln.comment):
                if rule not in RULES:
                    print(f"{rel}:{ln.num}: unknown rule in expect: {rule}")
                    return 2
                expected.add((ln.num, rule))
        actual = {(num, rule) for num, rule, _ in lint_file(ap, rel, text)}
        total += 1
        for num, rule in sorted(expected - actual):
            print(f"{rel}:{num}: expected [{rule}] but the linter was silent")
            mismatches += 1
        for num, rule in sorted(actual - expected):
            print(f"{rel}:{num}: unexpected [{rule}] finding")
            mismatches += 1
    if mismatches:
        print(f"af_lint --fixtures: {mismatches} mismatch(es) across "
              f"{total} fixture(s)", file=sys.stderr)
        return 1
    print(f"af_lint --fixtures: {total} fixture(s) OK")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repo root; lint paths are relative to it")
    ap.add_argument("--fixtures", metavar="DIR",
                    help="run in self-test mode over fixture files")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/dirs to lint (default: src)")
    args = ap.parse_args(argv)
    if args.fixtures:
        if args.paths:
            ap.error("--fixtures takes no positional paths")
        return run_fixtures(args.fixtures)
    return run_lint(args.root, args.paths or ["src"])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
