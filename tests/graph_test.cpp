#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/weights.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

Graph triangle_inverse_degree() {
  Graph::Builder b(3);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
  return b.build(WeightScheme::inverse_degree());
}

// -------------------------------------------------------------- builder/CSR

TEST(GraphBuilder, BasicCounts) {
  const Graph g = triangle_inverse_degree();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(GraphBuilder, AdjacencySortedAndSymmetric) {
  Graph::Builder b(5);
  b.add_edge(4, 0).add_edge(2, 0).add_edge(0, 3);
  const Graph g = b.build(WeightScheme::inverse_degree());
  auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 2u);
  EXPECT_EQ(nbrs[1], 3u);
  EXPECT_EQ(nbrs[2], 4u);
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_TRUE(g.has_edge(4, 0));
  EXPECT_FALSE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(GraphBuilder, RejectsSelfLoop) {
  Graph::Builder b(3);
  EXPECT_THROW(b.add_edge(1, 1), precondition_error);
}

TEST(GraphBuilder, RejectsOutOfRange) {
  Graph::Builder b(3);
  EXPECT_THROW(b.add_edge(0, 3), precondition_error);
}

TEST(GraphBuilder, RejectsDuplicateEdgeAtBuild) {
  Graph::Builder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // same undirected edge
  EXPECT_THROW(b.build(WeightScheme::inverse_degree()), precondition_error);
}

TEST(GraphBuilder, HasEdgeDuringConstruction) {
  Graph::Builder b(4);
  b.add_edge(0, 1);
  EXPECT_TRUE(b.has_edge(0, 1));
  EXPECT_TRUE(b.has_edge(1, 0));
  EXPECT_FALSE(b.has_edge(0, 2));
}

TEST(GraphBuilder, EmptyGraphIsValid) {
  Graph::Builder b(4);
  const Graph g = b.build(WeightScheme::inverse_degree());
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_DOUBLE_EQ(g.total_in_weight(0), 0.0);
}

TEST(GraphBuilder, IsolatedNodesCoexistWithEdges) {
  Graph::Builder b(5);
  b.add_edge(0, 1);
  const Graph g = b.build(WeightScheme::inverse_degree());
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_EQ(g.degree(0), 1u);
}

// ------------------------------------------------------------------ weights

TEST(Weights, InverseDegreeSumsToOne) {
  const Graph g = triangle_inverse_degree();
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(g.total_in_weight(v), 1.0);
    for (double w : g.in_weights(v)) EXPECT_DOUBLE_EQ(w, 0.5);
  }
}

TEST(Weights, InverseDegreeOnStar) {
  Graph::Builder b(4);
  b.add_edge(0, 1).add_edge(0, 2).add_edge(0, 3);
  const Graph g = b.build(WeightScheme::inverse_degree());
  // Center has degree 3 → each leaf contributes 1/3 toward it.
  for (double w : g.in_weights(0)) EXPECT_DOUBLE_EQ(w, 1.0 / 3.0);
  // Leaves have degree 1 → the center contributes 1.
  EXPECT_DOUBLE_EQ(g.in_weights(1)[0], 1.0);
}

TEST(Weights, ConstantClampedRespectsNormalization) {
  Graph::Builder b(4);
  b.add_edge(0, 1).add_edge(0, 2).add_edge(0, 3);
  const Graph g = b.build(WeightScheme::constant_clamped(0.5));
  // Center degree 3: min(0.5, 1/3) = 1/3 each.
  EXPECT_NEAR(g.weight(1, 0), 1.0 / 3.0, 1e-12);
  // Leaf degree 1: min(0.5, 1) = 0.5.
  EXPECT_NEAR(g.weight(0, 1), 0.5, 1e-12);
}

TEST(Weights, ConstantClampedRejectsBadParam) {
  Graph::Builder b(2);
  b.add_edge(0, 1);
  EXPECT_THROW(b.build(WeightScheme::constant_clamped(0.0)),
               precondition_error);
  EXPECT_THROW(b.build(WeightScheme::constant_clamped(1.5)),
               precondition_error);
}

TEST(Weights, RandomNormalizedSumsToParam) {
  Rng rng(5);
  Graph::Builder b(5);
  b.add_edge(0, 1).add_edge(0, 2).add_edge(0, 3).add_edge(0, 4);
  const Graph g = b.build(WeightScheme::random_normalized(0.8), &rng);
  EXPECT_NEAR(g.total_in_weight(0), 0.8, 1e-9);
  for (double w : g.in_weights(0)) EXPECT_GT(w, 0.0);
}

TEST(Weights, RandomSchemesRequireRng) {
  Graph::Builder b(2);
  b.add_edge(0, 1);
  EXPECT_THROW(b.build(WeightScheme::random_normalized(1.0)),
               precondition_error);
  EXPECT_THROW(b.build(WeightScheme::trivalency()), precondition_error);
}

TEST(Weights, TrivalencyWithinModelBounds) {
  Rng rng(7);
  Graph::Builder b(30);
  for (NodeId v = 1; v < 30; ++v) b.add_edge(0, v);
  const Graph g = b.build(WeightScheme::trivalency(), &rng);
  EXPECT_LE(g.total_in_weight(0), 1.0 + 1e-9);
  for (double w : g.in_weights(0)) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 0.1 + 1e-12);
  }
}

TEST(Weights, ExplicitDirectionalWeights) {
  Graph::Builder b(2);
  b.add_edge(0, 1, /*w_uv=*/0.7, /*w_vu=*/0.2);
  const Graph g = b.build_with_explicit_weights();
  EXPECT_DOUBLE_EQ(g.weight(0, 1), 0.7);  // w(0,1): 0's contribution to 1
  EXPECT_DOUBLE_EQ(g.weight(1, 0), 0.2);
  EXPECT_DOUBLE_EQ(g.weight(0, 0), 0.0);  // non-edge convention
}

TEST(Weights, ExplicitBuildRequiresAllWeights) {
  Graph::Builder b(3);
  b.add_edge(0, 1, 0.5, 0.5);
  b.add_edge(1, 2);  // weightless
  EXPECT_THROW(b.build_with_explicit_weights(), precondition_error);
}

TEST(Weights, ExplicitOverNormalizedIsRejected) {
  Graph::Builder b(3);
  b.add_edge(0, 2, 0.8, 0.8);
  b.add_edge(1, 2, 0.8, 0.8);  // node 2 would receive 1.6 total
  EXPECT_THROW(b.build_with_explicit_weights(), postcondition_error);
}

TEST(Weights, OutWeightsMirrorInWeights) {
  Graph::Builder b(3);
  b.add_edge(0, 1, 0.3, 0.6).add_edge(1, 2, 0.4, 0.2);
  const Graph g = b.build_with_explicit_weights();
  // out_weights(0)[0] is w(0,1) = 0.3.
  EXPECT_DOUBLE_EQ(g.out_weights(0)[0], 0.3);
  // out_weights(1): neighbors are {0, 2}; w(1,0)=0.6, w(1,2)=0.4.
  EXPECT_DOUBLE_EQ(g.out_weights(1)[0], 0.6);
  EXPECT_DOUBLE_EQ(g.out_weights(1)[1], 0.4);
}

TEST(Weights, WeightLookupForNonEdgesIsZero) {
  const Graph g = triangle_inverse_degree();
  Graph::Builder b(5);
  b.add_edge(0, 1);
  const Graph g2 = b.build(WeightScheme::inverse_degree());
  EXPECT_DOUBLE_EQ(g2.weight(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(g2.weight(3, 4), 0.0);
}

TEST(Weights, InWeightFromPredicate) {
  const Graph g = triangle_inverse_degree();
  // Node 2's incoming from only node 0: 0.5.
  const double w =
      g.in_weight_from(2, [](NodeId u) { return u == 0; });
  EXPECT_DOUBLE_EQ(w, 0.5);
}

// ----------------------------------------------------------------------- io

TEST(GraphIo, PlainEdgeListRoundTrip) {
  const std::string path = testing::TempDir() + "/af_plain.txt";
  {
    std::ofstream f(path);
    f << "# a comment\n"
      << "10 20\n"
      << "20 30\n"
      << "\n"
      << "30 10\n"
      << "10 20\n"   // duplicate: skipped
      << "20 10\n"   // reversed duplicate: skipped
      << "10 10\n";  // self loop: skipped
  }
  const LoadedGraph lg = load_edge_list(path, WeightScheme::inverse_degree());
  EXPECT_EQ(lg.graph.num_nodes(), 3u);
  EXPECT_EQ(lg.graph.num_edges(), 3u);
  EXPECT_EQ(lg.id_map.size(), 3u);
  // First-appearance compaction: 10→0, 20→1, 30→2.
  EXPECT_EQ(lg.id_map.at(10), 0u);
  EXPECT_EQ(lg.id_map.at(30), 2u);
  std::remove(path.c_str());
}

TEST(GraphIo, WeightedRoundTripPreservesGraph) {
  Graph::Builder b(4);
  b.add_edge(0, 1, 0.25, 0.5).add_edge(1, 2, 0.125, 0.25).add_edge(2, 3, 0.75,
                                                                   0.0625);
  const Graph g = b.build_with_explicit_weights();

  const std::string path = testing::TempDir() + "/af_weighted.txt";
  ASSERT_TRUE(save_weighted_edge_list(g, path));
  const LoadedGraph lg = load_weighted_edge_list(path);
  const Graph& h = lg.graph;

  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  // Ids may be re-compacted; map through id_map.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      const NodeId hv = lg.id_map.at(v);
      const NodeId hu = lg.id_map.at(u);
      EXPECT_TRUE(h.has_edge(hv, hu));
      EXPECT_NEAR(h.weight(hu, hv), g.weight(u, v), 1e-12);
    }
  }
  std::remove(path.c_str());
}

TEST(GraphIo, PlainSaveLoad) {
  Graph::Builder b(3);
  b.add_edge(0, 1).add_edge(1, 2);
  const Graph g = b.build(WeightScheme::inverse_degree());
  const std::string path = testing::TempDir() + "/af_plain_save.txt";
  ASSERT_TRUE(save_edge_list(g, path));
  const LoadedGraph lg = load_edge_list(path, WeightScheme::inverse_degree());
  EXPECT_EQ(lg.graph.num_nodes(), 3u);
  EXPECT_EQ(lg.graph.num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_edge_list("/no/such/file.txt",
                              WeightScheme::inverse_degree()),
               std::runtime_error);
}

TEST(GraphIo, MalformedLineThrows) {
  const std::string path = testing::TempDir() + "/af_bad.txt";
  {
    std::ofstream f(path);
    f << "1 notanumber\n";
  }
  EXPECT_THROW(load_edge_list(path, WeightScheme::inverse_degree()),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(GraphIo, WeightedFormatRequiresFourFields) {
  const std::string path = testing::TempDir() + "/af_short.txt";
  {
    std::ofstream f(path);
    f << "1 2 0.5\n";
  }
  EXPECT_THROW(load_weighted_edge_list(path), std::runtime_error);
  std::remove(path.c_str());
}

// --------------------------------------------------------------- invariants

TEST(GraphInvariants, CheckPassesOnValidGraph) {
  const Graph g = triangle_inverse_degree();
  EXPECT_NO_THROW(g.check_invariants());
}

}  // namespace
}  // namespace af
