#include <gtest/gtest.h>

#include <cmath>

#include "diffusion/exact.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

TEST(EnumerationCost, ProductOfDegreePlusOne) {
  const Graph g = path_graph(4).build(WeightScheme::inverse_degree());
  // Degrees 1,2,2,1 → (2)(3)(3)(2) = 36.
  EXPECT_DOUBLE_EQ(enumeration_cost(g), 36.0);
}

TEST(EnumerationCost, SaturatesOnHugeGraphs) {
  Rng rng(1);
  const Graph g =
      gnm_random(2000, 8000, rng).build(WeightScheme::inverse_degree());
  EXPECT_TRUE(enumeration_cost(g) > 1e100);
}

TEST(ExactF, SinglePathIsWeightProduct) {
  // s - a - b - t with explicit weights; the only type-1 realization
  // chain is t→b→a with a selecting the N_s node.
  Graph::Builder b(4);
  b.add_edge(0, 1, 0.5, 0.5)
      .add_edge(1, 2, 0.5, 0.25)
      .add_edge(2, 3, 0.5, 0.125);
  const Graph g = b.build_with_explicit_weights();
  const FriendingInstance inst(g, 0, 3);
  InvitationSet all(4);
  all.add(2);
  all.add(3);
  // p = w(2,3)·w(1,2) = 0.5 · 0.5  — t selects 2 (w(2,3)=0.5),
  // 2 selects 1 ∈ N_s (w(1,2)=0.5).
  EXPECT_NEAR(exact_pmax(inst), 0.25, 1e-12);
  EXPECT_NEAR(exact_f(inst, all), 0.25, 1e-12);
}

TEST(ExactF, MatchesAnalyticParallelPaths) {
  for (std::size_t count : {1u, 2u, 4u}) {
    for (std::size_t len : {1u, 2u, 3u}) {
      const auto fx = test::ParallelPathFixture::make(count, len);
      const FriendingInstance inst(fx.graph, fx.s, fx.t);
      EXPECT_NEAR(exact_pmax(inst), fx.pmax(), 1e-12)
          << count << "x" << len;
    }
  }
}

TEST(ExactF, BudgetGuardRejectsLargeGraphs) {
  Rng rng(2);
  const Graph g =
      barabasi_albert(200, 3, rng).build(WeightScheme::inverse_degree());
  NodeId t = 100;
  while (g.has_edge(0, t)) ++t;
  const FriendingInstance inst(g, 0, t);
  EXPECT_THROW(exact_pmax(inst), precondition_error);
}

TEST(ExactF, CustomBudgetIsHonored) {
  const Graph g = path_graph(4).build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, 3);
  EXPECT_THROW(exact_pmax(inst, /*budget=*/10.0), precondition_error);
  EXPECT_NO_THROW(exact_pmax(inst, /*budget=*/100.0));
}

TEST(ExactF, AgreesWithForwardMonteCarloOnRandomGraphs) {
  // Independent mechanisms: threshold cascade vs realization
  // enumeration, coupled by Lemma 1.
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g =
        gnm_random(7, 11, rng).build(WeightScheme::inverse_degree());
    bool done = false;
    for (NodeId s = 0; s < 7 && !done; ++s) {
      if (g.degree(s) == 0) continue;
      for (NodeId t = 0; t < 7 && !done; ++t) {
        if (t == s || g.has_edge(s, t)) continue;
        const FriendingInstance inst(g, s, t);
        MonteCarloEvaluator mc(inst);
        const double mc_est =
            mc.estimate_pmax(40'000, rng, McEngine::kForward).estimate();
        EXPECT_NEAR(exact_pmax(inst), mc_est, 0.02);
        done = true;
      }
    }
  }
}

TEST(ExactF, ZeroWhenTargetNotInvited) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  InvitationSet inv(fx.graph.num_nodes());
  inv.add(3);
  inv.add(5);
  EXPECT_DOUBLE_EQ(exact_f(inst, inv), 0.0);
}

TEST(ExactF, UniverseMismatchRejected) {
  const auto fx = test::ParallelPathFixture::make(1, 1);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  InvitationSet wrong(2);
  EXPECT_THROW(exact_f(inst, wrong), precondition_error);
}

}  // namespace
}  // namespace af
