#include <gtest/gtest.h>

#include <algorithm>

#include "core/vmax.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

Graph build(Graph::Builder b) {
  return b.build(WeightScheme::inverse_degree());
}

// ------------------------------------------------------------- handcrafted

TEST(Vmax, PathGraphTakesAllIntermediates) {
  const Graph g = build(path_graph(6));  // s=0, N_s={1}, t=5
  const FriendingInstance inst(g, 0, 5);
  EXPECT_EQ(compute_vmax(inst), (std::vector<NodeId>{2, 3, 4, 5}));
}

TEST(Vmax, ParallelPathsTakeEverything) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const auto vmax = compute_vmax(inst);
  // N_s = {2, 4, 6} (s-side); V_max = {1, 3, 5, 7} (t + t-side nodes).
  EXPECT_EQ(vmax, (std::vector<NodeId>{1, 3, 5, 7}));
}

TEST(Vmax, DeadEndBranchesExcluded) {
  // s=0 - 1 - 2 - t=3, plus dead-end 2-4 and isolated 5.
  Graph::Builder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).add_edge(2, 4);
  const Graph g = build(std::move(b));
  const FriendingInstance inst(g, 0, 3);
  EXPECT_EQ(compute_vmax(inst), (std::vector<NodeId>{2, 3}));
}

TEST(Vmax, UnreachableTargetGivesEmpty) {
  Graph::Builder b(5);
  b.add_edge(0, 1).add_edge(2, 3).add_edge(3, 4);
  const Graph g = build(std::move(b));
  const FriendingInstance inst(g, 0, 3);
  EXPECT_TRUE(compute_vmax(inst).empty());
}

TEST(Vmax, TargetAdjacentToNsGivesJustT) {
  const Graph g = build(path_graph(3));  // s=0, N_s={1}, t=2
  const FriendingInstance inst(g, 0, 2);
  EXPECT_EQ(compute_vmax(inst), (std::vector<NodeId>{2}));
}

TEST(Vmax, CycleOffersTwoRoutes) {
  const Graph g = build(cycle_graph(6));  // s=0, N_s={1,5}, t=3
  const FriendingInstance inst(g, 0, 3);
  // Both arcs: 2-3 and 4-3 are on simple N_s→t paths.
  EXPECT_EQ(compute_vmax(inst), (std::vector<NodeId>{2, 3, 4}));
}

TEST(Vmax, PathsThroughNsInternallyDontCount) {
  // Node 4 reaches t only via N_s node 1 → not in V_max.
  //    s=0 — 1 — 2 — t=3
  //          |
  //          4
  Graph::Builder b(5);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).add_edge(1, 4);
  const Graph g = build(std::move(b));
  const FriendingInstance inst(g, 0, 3);
  EXPECT_EQ(compute_vmax(inst), (std::vector<NodeId>{2, 3}));
}

// -------------------------------------------------------- brute force match

class VmaxProperty : public testing::TestWithParam<int> {};

TEST_P(VmaxProperty, MatchesBruteForceEnumeration) {
  Rng rng(4000 + GetParam());
  const NodeId n = 9;
  const Graph g = build(gnm_random(n, 6 + GetParam() % 10, rng));
  for (NodeId s = 0; s < n; ++s) {
    if (g.degree(s) == 0) continue;
    for (NodeId t = 0; t < n; ++t) {
      if (t == s || g.has_edge(s, t)) continue;
      const FriendingInstance inst(g, s, t);
      EXPECT_EQ(compute_vmax(inst), test::brute_force_vmax(inst))
          << "s=" << s << " t=" << t << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, VmaxProperty, testing::Range(0, 20));

TEST_P(VmaxProperty, ReachabilityVariantIsSuperset) {
  Rng rng(4100 + GetParam());
  const Graph g = build(gnm_random(10, 14, rng));
  for (NodeId s = 0; s < 10; ++s) {
    if (g.degree(s) == 0) continue;
    for (NodeId t = 0; t < 10; ++t) {
      if (t == s || g.has_edge(s, t)) continue;
      const FriendingInstance inst(g, s, t);
      const auto exact = compute_vmax(inst);
      const auto reach = compute_vmax_reachability(inst);
      EXPECT_TRUE(std::includes(reach.begin(), reach.end(), exact.begin(),
                                exact.end()))
          << "s=" << s << " t=" << t;
      if (exact.empty()) {
        // p_max = 0 ⟺ both certify it (reachability may still find a
        // component, but only when it touches N_s — in which case a
        // simple path exists too).
        EXPECT_TRUE(reach.empty());
      }
    }
  }
}

// ----------------------------------------------------------- Lemma 7 (exact)

TEST(Lemma7, VmaxAchievesPmaxExactly) {
  const auto fx = test::ParallelPathFixture::make(2, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const auto vmax = compute_vmax(inst);
  InvitationSet inv(fx.graph.num_nodes(), vmax);
  EXPECT_NEAR(test::exact_f(inst, inv), test::exact_pmax(inst), 1e-12);
}

TEST(Lemma7, RemovingAnyVmaxNodeStrictlyHurts) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const auto vmax = compute_vmax(inst);
  const double pmax = test::exact_pmax(inst);
  for (NodeId drop : vmax) {
    InvitationSet inv(fx.graph.num_nodes());
    for (NodeId v : vmax) {
      if (v != drop) inv.add(v);
    }
    EXPECT_LT(test::exact_f(inst, inv), pmax - 1e-12)
        << "dropping " << drop << " should strictly reduce f";
  }
}

TEST(Lemma7, NodesOutsideVmaxAreUseless) {
  // Adding any node outside V_max to V_max cannot raise f — and V_max
  // already equals the full-invite probability.
  Graph::Builder b(7);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);  // s-1-2-t path
  b.add_edge(2, 4).add_edge(4, 5);                 // dead end
  const Graph g = build(std::move(b));
  const FriendingInstance inst(g, 0, 3);
  const auto vmax = compute_vmax(inst);
  EXPECT_EQ(vmax, (std::vector<NodeId>{2, 3}));
  InvitationSet inv(7, vmax);
  const double with_vmax = test::exact_f(inst, inv);
  EXPECT_NEAR(with_vmax, test::exact_pmax(inst), 1e-12);
  inv.add(4);
  inv.add(5);
  EXPECT_NEAR(test::exact_f(inst, inv), with_vmax, 1e-12);
}

TEST(Lemma7, StatisticalCheckOnLargerGraph) {
  Rng rng(31);
  const Graph g =
      barabasi_albert(300, 3, rng).build(WeightScheme::inverse_degree());
  // Find a valid pair.
  for (NodeId s = 0; s < 300; ++s) {
    for (NodeId t = 0; t < 300; ++t) {
      if (s == t || g.has_edge(s, t) || g.degree(s) == 0) continue;
      const FriendingInstance inst(g, s, t);
      const auto vmax = compute_vmax(inst);
      if (vmax.empty()) continue;
      MonteCarloEvaluator mc(inst);
      const double pmax = mc.estimate_pmax(40'000, rng).estimate();
      InvitationSet inv(300, vmax);
      const double f_vmax = mc.estimate_f(inv, 40'000, rng).estimate();
      EXPECT_NEAR(f_vmax, pmax, 0.015);
      return;
    }
  }
  FAIL() << "no valid pair found";
}

}  // namespace
}  // namespace af
