#include <gtest/gtest.h>

#include "cover/maxflow.hpp"
#include "util/contracts.hpp"

namespace af {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlow f(2);
  f.add_edge(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(f.solve(0, 1), 3.5);
}

TEST(MaxFlow, SeriesTakesMinimum) {
  MaxFlow f(3);
  f.add_edge(0, 1, 5.0);
  f.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 2), 2.0);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlow f(4);
  f.add_edge(0, 1, 3.0);
  f.add_edge(1, 3, 3.0);
  f.add_edge(0, 2, 4.0);
  f.add_edge(2, 3, 4.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 3), 7.0);
}

TEST(MaxFlow, ClassicTextbookNetwork) {
  // CLRS-style example with a crossing edge requiring augmentation.
  MaxFlow f(6);
  f.add_edge(0, 1, 16);
  f.add_edge(0, 2, 13);
  f.add_edge(1, 3, 12);
  f.add_edge(2, 1, 4);
  f.add_edge(3, 2, 9);
  f.add_edge(2, 4, 14);
  f.add_edge(4, 3, 7);
  f.add_edge(3, 5, 20);
  f.add_edge(4, 5, 4);
  EXPECT_DOUBLE_EQ(f.solve(0, 5), 23.0);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow f(4);
  f.add_edge(0, 1, 5.0);
  f.add_edge(2, 3, 5.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 3), 0.0);
}

TEST(MaxFlow, ParallelDuplicateEdgesSupported) {
  MaxFlow f(2);
  f.add_edge(0, 1, 1.0);
  f.add_edge(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 1), 3.0);
}

TEST(MaxFlow, InfiniteMiddleCapacity) {
  MaxFlow f(4);
  f.add_edge(0, 1, 5.0);
  f.add_edge(1, 2, MaxFlow::kInfCapacity);
  f.add_edge(2, 3, 2.5);
  EXPECT_DOUBLE_EQ(f.solve(0, 3), 2.5);
}

TEST(MaxFlow, MinCutSeparatesSourceSide) {
  MaxFlow f(4);
  f.add_edge(0, 1, 10.0);
  f.add_edge(1, 2, 1.0);  // bottleneck
  f.add_edge(2, 3, 10.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 3), 1.0);
  const auto side = f.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlow, BipartiteMatchingValue) {
  // 3x3 bipartite with a perfect matching: L={1,2,3}, R={4,5,6}.
  MaxFlow f(8);
  for (int l = 1; l <= 3; ++l) f.add_edge(0, l, 1.0);
  for (int r = 4; r <= 6; ++r) f.add_edge(r, 7, 1.0);
  f.add_edge(1, 4, 1.0);
  f.add_edge(1, 5, 1.0);
  f.add_edge(2, 4, 1.0);
  f.add_edge(3, 6, 1.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 7), 3.0);
}

TEST(MaxFlow, RejectsInvalidInputs) {
  MaxFlow f(3);
  EXPECT_THROW(f.add_edge(0, 5, 1.0), precondition_error);
  EXPECT_THROW(f.add_edge(0, 1, -1.0), precondition_error);
  EXPECT_THROW(f.solve(1, 1), precondition_error);
}

TEST(MaxFlow, ZeroCapacityEdgeCarriesNothing) {
  MaxFlow f(2);
  f.add_edge(0, 1, 0.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 1), 0.0);
}

}  // namespace
}  // namespace af
