// Property tests for the paper's core coupling results:
//   Lemma 1 (Kempe-style): f(I) = E[f(ĝ, I)] — the forward threshold
//     process and the realization view give the same acceptance
//     probability.
//   Lemma 2 / Corollary 1: f(ĝ, I) can be evaluated as t(ĝ) ⊆ I.
// Verified three ways on analytically tractable graphs: exact enumeration
// over the realization space vs forward Monte-Carlo vs reverse
// Monte-Carlo.
#include <gtest/gtest.h>

#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

struct Scenario {
  std::string name;
  std::size_t paths;
  std::size_t len;
};

class EquivalenceOnParallelPaths : public testing::TestWithParam<Scenario> {};

TEST_P(EquivalenceOnParallelPaths, ExactPmaxMatchesAnalytic) {
  const auto& sc = GetParam();
  const auto fx = test::ParallelPathFixture::make(sc.paths, sc.len);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  EXPECT_NEAR(test::exact_pmax(inst), fx.pmax(), 1e-12);
}

TEST_P(EquivalenceOnParallelPaths, ForwardMcMatchesExact) {
  const auto& sc = GetParam();
  const auto fx = test::ParallelPathFixture::make(sc.paths, sc.len);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  MonteCarloEvaluator mc(inst);
  Rng rng(101);
  const auto est = mc.estimate_pmax(60'000, rng, McEngine::kForward);
  EXPECT_NEAR(est.estimate(), fx.pmax(), 0.012) << sc.name;
}

TEST_P(EquivalenceOnParallelPaths, ReverseMcMatchesExact) {
  const auto& sc = GetParam();
  const auto fx = test::ParallelPathFixture::make(sc.paths, sc.len);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  MonteCarloEvaluator mc(inst);
  Rng rng(202);
  const auto est = mc.estimate_pmax(60'000, rng, McEngine::kReverse);
  EXPECT_NEAR(est.estimate(), fx.pmax(), 0.012) << sc.name;
}

TEST_P(EquivalenceOnParallelPaths, SinglePathInvitationSplitsPmax) {
  const auto& sc = GetParam();
  if (sc.len < 2) return;  // analytic form needs interior nodes
  const auto fx = test::ParallelPathFixture::make(sc.paths, sc.len);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const InvitationSet one_path = fx.invite_path(0);
  const double expected = fx.pmax() / static_cast<double>(sc.paths);
  EXPECT_NEAR(test::exact_f(inst, one_path), expected, 1e-12);

  MonteCarloEvaluator mc(inst);
  Rng rng(303);
  EXPECT_NEAR(mc.estimate_f(one_path, 80'000, rng).estimate(), expected,
              0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EquivalenceOnParallelPaths,
    testing::Values(Scenario{"p1l1", 1, 1}, Scenario{"p1l2", 1, 2},
                    Scenario{"p2l2", 2, 2}, Scenario{"p3l2", 3, 2},
                    Scenario{"p2l3", 2, 3}, Scenario{"p4l1", 4, 1},
                    Scenario{"p3l3", 3, 3}),
    [](const auto& info) { return info.param.name; });

// ------------------------------------------------ random-graph properties

class EquivalenceOnRandomGraphs : public testing::TestWithParam<int> {};

TEST_P(EquivalenceOnRandomGraphs, ForwardEqualsReverseEqualsExact) {
  Rng rng(5000 + GetParam());
  // Small dense-ish graphs keep the enumeration oracle cheap while still
  // exercising cycles, shared paths, and multiple N_s routes.
  const Graph g =
      gnm_random(8, 12, rng).build(WeightScheme::inverse_degree());

  // Find a valid (s,t): not adjacent, s with ≥1 friend.
  for (NodeId s = 0; s < 8; ++s) {
    if (g.degree(s) == 0) continue;
    for (NodeId t = 0; t < 8; ++t) {
      if (t == s || g.has_edge(s, t)) continue;
      const FriendingInstance inst(g, s, t);

      // Random invitation set containing t.
      InvitationSet inv(8);
      inv.add(t);
      for (NodeId v = 0; v < 8; ++v) {
        if (inst.invitable(v) && rng.bernoulli(0.6)) inv.add(v);
      }

      const double exact = test::exact_f(inst, inv);
      MonteCarloEvaluator mc(inst);
      const double fwd =
          mc.estimate_f(inv, 30'000, rng, McEngine::kForward).estimate();
      const double rev =
          mc.estimate_f(inv, 30'000, rng, McEngine::kReverse).estimate();
      EXPECT_NEAR(fwd, exact, 0.02) << "s=" << s << " t=" << t;
      EXPECT_NEAR(rev, exact, 0.02) << "s=" << s << " t=" << t;
      return;  // one instance per seed keeps runtime bounded
    }
  }
  GTEST_SKIP() << "no valid (s,t) pair in this random graph";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceOnRandomGraphs,
                         testing::Range(0, 15));

// --------------------------------------------------------- monotonicity

TEST(Monotonicity, AddingInviteesNeverHurts) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);

  InvitationSet grow(fx.graph.num_nodes());
  grow.add(fx.t);
  double prev = test::exact_f(inst, grow);
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::size_t i = 0; i < 2; ++i) {
      grow.add(static_cast<NodeId>(2 + p * 2 + i));
      const double cur = test::exact_f(inst, grow);
      EXPECT_GE(cur, prev - 1e-12);
      prev = cur;
    }
  }
  EXPECT_NEAR(prev, fx.pmax(), 1e-12);  // full invite reaches p_max
}

TEST(Monotonicity, WithoutTargetFIsZero) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  InvitationSet inv(fx.graph.num_nodes());
  for (NodeId v = 2; v < fx.graph.num_nodes(); ++v) inv.add(v);
  // Everything except t invited.
  EXPECT_DOUBLE_EQ(test::exact_f(inst, inv), 0.0);
  MonteCarloEvaluator mc(inst);
  Rng rng(7);
  EXPECT_EQ(mc.estimate_f(inv, 1000, rng).successes, 0u);
}

TEST(Monotonicity, PartialPathIsUseless) {
  // Inviting a strict prefix of a path (missing the s-side link) gives 0.
  const auto fx = test::ParallelPathFixture::make(1, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  InvitationSet inv(fx.graph.num_nodes());
  inv.add(fx.t);
  inv.add(4);  // middle intermediate
  // Missing node 3 (t-side)? Path nodes are 2,3,4 (2 = s-side). Invite
  // t and 4 only: the backward path t←4←3←(2∈?) ... node 3 not invited →
  // cannot cover any realization.
  EXPECT_DOUBLE_EQ(test::exact_f(inst, inv), 0.0);
}

}  // namespace
}  // namespace af
