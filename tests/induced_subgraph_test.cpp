#include <gtest/gtest.h>

#include "diffusion/exact.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

TEST(InducedSubgraphOp, KeepsOnlyInternalEdges) {
  const Graph g = cycle_graph(6).build(WeightScheme::inverse_degree());
  const auto sub = induced_subgraph(g, {0, 1, 2, 4});
  EXPECT_EQ(sub.graph.num_nodes(), 4u);
  // Internal edges: 0-1, 1-2. Node 4's cycle edges lead outside.
  EXPECT_EQ(sub.graph.num_edges(), 2u);
  EXPECT_TRUE(sub.graph.has_edge(sub.to_sub[0], sub.to_sub[1]));
  EXPECT_TRUE(sub.graph.has_edge(sub.to_sub[1], sub.to_sub[2]));
  EXPECT_EQ(sub.graph.degree(sub.to_sub[4]), 0u);
}

TEST(InducedSubgraphOp, MappingsAreInverse) {
  Rng rng(1);
  const Graph g =
      gnm_random(30, 60, rng).build(WeightScheme::inverse_degree());
  const std::vector<NodeId> subset{3, 7, 7, 11, 25, 3};  // with duplicates
  const auto sub = induced_subgraph(g, subset);
  EXPECT_EQ(sub.graph.num_nodes(), 4u);  // duplicates collapsed
  for (NodeId sv = 0; sv < sub.graph.num_nodes(); ++sv) {
    EXPECT_EQ(sub.to_sub[sub.to_original[sv]], sv);
  }
  for (NodeId v = 0; v < 30; ++v) {
    if (sub.to_sub[v] != kNoNode) {
      EXPECT_EQ(sub.to_original[sub.to_sub[v]], v);
    }
  }
}

TEST(InducedSubgraphOp, WeightsCopiedPerDirection) {
  Graph::Builder b(4);
  b.add_edge(0, 1, 0.25, 0.75).add_edge(1, 2, 0.5, 0.125).add_edge(2, 3, 0.5,
                                                                   0.5);
  const Graph g = b.build_with_explicit_weights();
  const auto sub = induced_subgraph(g, {0, 1, 2});
  EXPECT_DOUBLE_EQ(
      sub.graph.weight(sub.to_sub[0], sub.to_sub[1]), 0.25);
  EXPECT_DOUBLE_EQ(
      sub.graph.weight(sub.to_sub[1], sub.to_sub[0]), 0.75);
  EXPECT_DOUBLE_EQ(
      sub.graph.weight(sub.to_sub[1], sub.to_sub[2]), 0.5);
}

TEST(InducedSubgraphOp, FullSubsetReproducesTheGraph) {
  Rng rng(2);
  const Graph g =
      gnm_random(20, 40, rng).build(WeightScheme::inverse_degree());
  std::vector<NodeId> all(20);
  for (NodeId v = 0; v < 20; ++v) all[v] = v;
  const auto sub = induced_subgraph(g, all);
  ASSERT_EQ(sub.graph.num_nodes(), g.num_nodes());
  ASSERT_EQ(sub.graph.num_edges(), g.num_edges());
  for (NodeId v = 0; v < 20; ++v) {
    for (NodeId u : g.neighbors(v)) {
      EXPECT_NEAR(sub.graph.weight(sub.to_sub[v], sub.to_sub[u]),
                  g.weight(v, u), 1e-12);
    }
  }
}

TEST(InducedSubgraphOp, ModelInvariantPreserved) {
  // Restricting a graph can only lower per-node incoming totals; the
  // built subgraph must still pass all model invariants (checked by the
  // builder) — exercise on a denser random graph.
  Rng rng(3);
  Rng wr(4);
  auto builder = gnm_random(25, 80, rng);
  const Graph g = builder.build(WeightScheme::random_normalized(0.95), &wr);
  const auto keep = rng.sample_without_replacement(25, 12);
  std::vector<NodeId> nodes;
  for (auto x : keep) nodes.push_back(static_cast<NodeId>(x));
  const auto sub = induced_subgraph(g, nodes);  // builder validates
  EXPECT_NO_THROW(sub.graph.check_invariants());
  for (NodeId sv = 0; sv < sub.graph.num_nodes(); ++sv) {
    EXPECT_LE(sub.graph.total_in_weight(sv),
              g.total_in_weight(sub.to_original[sv]) + 1e-12);
  }
}

TEST(InducedSubgraphOp, RestrictionToVmaxPreservesPmax) {
  // p_max only depends on simple N_s→t paths; restricting the graph to
  // {s} ∪ N_s ∪ V_max must not change it. (The induced instance keeps
  // the same weights, so every backward path and its probability
  // survive verbatim.)
  Graph::Builder b(8);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);  // s-1-2-t path
  b.add_edge(2, 4);                                // dead end
  b.add_edge(5, 6).add_edge(6, 7);                 // separate component
  const Graph g = b.build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, 3);
  const double pmax_full = exact_pmax(inst);

  // V_max here = {2, 3}; keep s(0), N_s(1), 2, 3 — but note degree
  // changes alter 1/deg weights, so copy weights via induced_subgraph
  // (which preserves them) rather than rebuilding with a scheme.
  const auto sub = induced_subgraph(g, {0, 1, 2, 3, 4});
  const FriendingInstance sub_inst(sub.graph, sub.to_sub[0], sub.to_sub[3]);
  EXPECT_NEAR(exact_pmax(sub_inst), pmax_full, 1e-12);
}

TEST(InducedSubgraphOp, RejectsOutOfRange) {
  const Graph g = path_graph(3).build(WeightScheme::inverse_degree());
  EXPECT_THROW(induced_subgraph(g, {0, 5}), precondition_error);
}

}  // namespace
}  // namespace af
