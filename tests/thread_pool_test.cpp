#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/contracts.hpp"

namespace af {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);

  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ActuallyRunsConcurrently) {
  ThreadPool pool(2);
  // Two tasks that can only finish if they overlap in time.
  std::atomic<int> arrived{0};
  auto rendezvous = [&arrived] {
    ++arrived;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (arrived.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };
  auto a = pool.submit(rendezvous);
  auto b = pool.submit(rendezvous);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      // Fire-and-forget: futures discarded on purpose.
      (void)pool.submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool must run all 32 before joining
  EXPECT_EQ(counter.load(), 32);
}

}  // namespace
}  // namespace af
