#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/contracts.hpp"

namespace af {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);

  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ActuallyRunsConcurrently) {
  ThreadPool pool(2);
  // Two tasks that can only finish if they overlap in time.
  std::atomic<int> arrived{0};
  auto rendezvous = [&arrived] {
    ++arrived;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (arrived.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };
  auto a = pool.submit(rendezvous);
  auto b = pool.submit(rendezvous);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitShutdownDrainRunsEverythingAndIsIdempotent) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  pool.shutdown(DrainPolicy::kDrain);
  EXPECT_EQ(counter.load(), 32);
  EXPECT_EQ(pool.size(), 0u);
  for (auto& f : futures) f.get();  // all real results, none broken
  pool.shutdown();                  // second shutdown is a no-op
}

TEST(ThreadPool, ShutdownDiscardBreaksQueuedPromisesButRunsInFlight) {
  ThreadPool pool(1);
  // Gate the single worker so everything behind the first task is
  // provably still queued when shutdown(kDiscard) runs.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  auto gate = pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
    ++ran;
  });
  // The gate must be in flight (popped, running) before anything else is
  // queued — otherwise the discard below could claim the gate itself.
  while (!started.load()) std::this_thread::yield();
  std::vector<std::future<int>> queued;
  for (int i = 0; i < 16; ++i) {
    queued.push_back(pool.submit([&ran, i] {
      ++ran;
      return i;
    }));
  }
  std::thread stopper([&pool] { pool.shutdown(DrainPolicy::kDiscard); });
  // The discard happens before shutdown joins: the queued futures turn
  // ready (broken) the moment the queue is swapped out. Wait for that
  // proof before releasing the gate, so no queued task can sneak in
  // between gate release and discard.
  queued.front().wait();
  release.store(true);
  stopper.join();

  gate.get();  // the in-flight task completed normally
  EXPECT_EQ(ran.load(), 1);
  // Discarded tasks never ran, but their futures resolved exceptionally
  // (broken promise) rather than dangling.
  for (auto& f : queued) {
    EXPECT_THROW(f.get(), std::future_error);
  }
}

TEST(ThreadPool, SubmitAfterShutdownViolatesThePrecondition) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] { return 1; }), precondition_error);
}

// Regression (static-correctness PR): size() used to read workers_
// without the lock, racing shutdown's join-and-clear — exactly the kind
// of bug the AF_GUARDED_BY rollout exists to make uncompilable. Both the
// TSan leg and Clang -Wthread-safety now watch this path.
TEST(ThreadPool, SizeIsSafeConcurrentWithShutdown) {
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(2);
    std::atomic<bool> stop{false};
    std::thread prober([&pool, &stop] {
      while (!stop.load()) {
        const std::size_t n = pool.size();
        // Either the pre-shutdown count or zero — never garbage.
        EXPECT_TRUE(n == 0 || n == 2) << n;
      }
    });
    pool.shutdown();
    EXPECT_EQ(pool.size(), 0u);
    stop.store(true);
    prober.join();
  }
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      // Fire-and-forget: futures discarded on purpose.
      (void)pool.submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool must run all 32 before joining
  EXPECT_EQ(counter.load(), 32);
}

}  // namespace
}  // namespace af
