#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

Graph build(Graph::Builder b) {
  return b.build(WeightScheme::inverse_degree());
}

// -------------------------------------------------------------- degrees

TEST(DegreeStats, StarGraph) {
  const auto ds = degree_stats(build(star_graph(11)));
  EXPECT_EQ(ds.min, 1u);
  EXPECT_EQ(ds.max, 10u);
  EXPECT_NEAR(ds.mean, 20.0 / 11.0, 1e-12);
  EXPECT_DOUBLE_EQ(ds.median, 1.0);
}

TEST(DegreeStats, RegularGraph) {
  const auto ds = degree_stats(build(cycle_graph(10)));
  EXPECT_EQ(ds.min, 2u);
  EXPECT_EQ(ds.max, 2u);
  EXPECT_DOUBLE_EQ(ds.median, 2.0);
  EXPECT_DOUBLE_EQ(ds.p99, 2.0);
}

TEST(DegreeStats, HeavyTailShowsInP99) {
  Rng rng(1);
  const auto ds = degree_stats(build(barabasi_albert(3000, 3, rng)));
  EXPECT_GT(ds.p99, 3.0 * ds.median);
  EXPECT_GT(ds.max, ds.p99);
}

// ----------------------------------------------------------- clustering

TEST(Clustering, TriangleIsFullyClustered) {
  const Graph g = build(complete_graph(3));
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(local_clustering(g, v), 1.0);
  }
}

TEST(Clustering, PathHasNoTriangles) {
  const Graph g = build(path_graph(5));
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(local_clustering(g, v), 0.0);
  }
}

TEST(Clustering, KnownMixedValue) {
  // Square with one diagonal: 0-1-2-3-0 plus 0-2.
  Graph::Builder b(4);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).add_edge(3, 0).add_edge(0, 2);
  const Graph g = build(std::move(b));
  // Node 1: neighbors {0,2}, linked → C = 1.
  EXPECT_DOUBLE_EQ(local_clustering(g, 1), 1.0);
  // Node 0: neighbors {1,2,3}; links among them: (1,2),(2,3) → 2/3.
  EXPECT_NEAR(local_clustering(g, 0), 2.0 / 3.0, 1e-12);
}

TEST(Clustering, AverageFullVsSampledConsistent) {
  Rng rng(3);
  const Graph g = build(watts_strogatz(200, 6, 0.0, rng));
  // WS with β=0: every node identical → sampling must agree exactly.
  const double full = average_clustering(g, 0, rng);
  const double sampled = average_clustering(g, 50, rng);
  EXPECT_NEAR(full, sampled, 1e-12);
  EXPECT_NEAR(full, 0.6, 1e-9);  // ring lattice k=6: C = 3(k-2)/(4(k-1))
}

TEST(Clustering, LatticeBeatsRandomGraph) {
  Rng rng(5);
  const Graph lattice = build(watts_strogatz(500, 6, 0.0, rng));
  const Graph random = build(gnm_random(500, 1500, rng));
  EXPECT_GT(average_clustering(lattice, 0, rng),
            3.0 * average_clustering(random, 0, rng));
}

// -------------------------------------------------------------- k-cores

TEST(Cores, PathGraphIsOneCore) {
  const auto core = core_numbers(build(path_graph(6)));
  for (auto c : core) EXPECT_EQ(c, 1u);
}

TEST(Cores, CycleIsTwoCore) {
  const auto core = core_numbers(build(cycle_graph(7)));
  for (auto c : core) EXPECT_EQ(c, 2u);
}

TEST(Cores, CompleteGraphCore) {
  const auto core = core_numbers(build(complete_graph(6)));
  for (auto c : core) EXPECT_EQ(c, 5u);
  EXPECT_EQ(degeneracy(build(complete_graph(6))), 5u);
}

TEST(Cores, CliqueWithPendantPath) {
  // K4 on {0,1,2,3} plus path 3-4-5.
  Graph::Builder b(6);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) b.add_edge(u, v);
  }
  b.add_edge(3, 4).add_edge(4, 5);
  const auto core = core_numbers(build(std::move(b)));
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(Cores, IsolatedNodesAreZeroCore) {
  Graph::Builder b(3);
  b.add_edge(0, 1);
  const auto core = core_numbers(build(std::move(b)));
  EXPECT_EQ(core[2], 0u);
  EXPECT_EQ(core[0], 1u);
}

TEST(Cores, DefinitionHoldsOnRandomGraphs) {
  // Every node's core number k: the subgraph induced by {v: core ≥ k}
  // has min degree ≥ k (the defining property of the k-core).
  Rng rng(7);
  const Graph g = build(gnm_random(60, 180, rng));
  const auto core = core_numbers(g);
  const auto kmax = *std::max_element(core.begin(), core.end());
  for (std::uint32_t k = 1; k <= kmax; ++k) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (core[v] < k) continue;
      std::size_t deg_in = 0;
      for (NodeId u : g.neighbors(v)) {
        if (core[u] >= k) ++deg_in;
      }
      EXPECT_GE(deg_in, k) << "node " << v << " in " << k << "-core";
    }
  }
}

TEST(Cores, BaDegeneracyEqualsAttachment) {
  Rng rng(9);
  // BA attaches each new node with `a` edges: degeneracy is exactly a
  // (the last node has degree a; the seed clique has degree a).
  const Graph g = build(barabasi_albert(500, 4, rng));
  EXPECT_EQ(degeneracy(g), 4u);
}

// ------------------------------------------------------------- diameter

TEST(Diameter, PathGraphExact) {
  EXPECT_EQ(diameter_estimate(build(path_graph(9))), 8u);
}

TEST(Diameter, StarGraph) {
  EXPECT_EQ(diameter_estimate(build(star_graph(10))), 2u);
}

TEST(Diameter, CompleteGraph) {
  EXPECT_EQ(diameter_estimate(build(complete_graph(5))), 1u);
}

TEST(Diameter, EdgelessGraphIsZero) {
  Graph::Builder b(4);
  EXPECT_EQ(diameter_estimate(build(std::move(b))), 0u);
}

TEST(Diameter, GridLowerBoundIsTight) {
  // Double sweep is exact on many bipartite-ish structures; on a grid
  // it must reach the full corner-to-corner distance.
  EXPECT_EQ(diameter_estimate(build(grid_graph(4, 7))), 9u);
}

}  // namespace
}  // namespace af
