#include <gtest/gtest.h>

#include <cmath>

#include "diffusion/dklr.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

TEST(DklrUpsilon, MatchesFormula) {
  const double eps = 0.1;
  const double delta = 0.01;
  const double expected = 1.0 + 4.0 * (std::exp(1.0) - 2.0) * (1.0 + eps) *
                                    std::log(2.0 / delta) / (eps * eps);
  EXPECT_NEAR(dklr_upsilon(eps, delta), expected, 1e-9);
}

TEST(DklrUpsilon, GrowsAsEpsilonShrinks) {
  EXPECT_GT(dklr_upsilon(0.01, 0.01), dklr_upsilon(0.1, 0.01));
  EXPECT_GT(dklr_upsilon(0.1, 0.001), dklr_upsilon(0.1, 0.01));
}

TEST(DklrUpsilon, RejectsBadParameters) {
  EXPECT_THROW(dklr_upsilon(0.0, 0.1), precondition_error);
  EXPECT_THROW(dklr_upsilon(1.5, 0.1), precondition_error);
  EXPECT_THROW(dklr_upsilon(0.1, 0.0), precondition_error);
  EXPECT_THROW(dklr_upsilon(0.1, 1.0), precondition_error);
}

// The (ε,δ) guarantee, checked empirically across repetitions: the
// relative error must stay within ε in (far) more than 1−δ of the runs.
class DklrGuarantee : public testing::TestWithParam<double> {};

TEST_P(DklrGuarantee, RelativeErrorBound) {
  const double p = GetParam();
  DklrConfig cfg;
  cfg.epsilon = 0.15;
  cfg.delta = 0.05;
  cfg.max_samples = 0;  // uncapped: p > 0 guarantees termination

  Rng rng(static_cast<std::uint64_t>(p * 1e6) + 3);
  int within = 0;
  const int reps = 25;
  for (int r = 0; r < reps; ++r) {
    const auto res = dklr_estimate(
        [p](Rng& rr) { return rr.bernoulli(p); }, rng, cfg);
    ASSERT_TRUE(res.converged);
    EXPECT_GT(res.samples_used, 0u);
    if (std::abs(res.estimate - p) <= cfg.epsilon * p) ++within;
  }
  // δ=5%: allow a little slack over 95% of 25 runs.
  EXPECT_GE(within, 22) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Rates, DklrGuarantee,
                         testing::Values(0.5, 0.1, 0.02));

TEST(Dklr, SampleCountScalesInverselyWithP) {
  DklrConfig cfg;
  cfg.epsilon = 0.2;
  cfg.delta = 0.1;
  cfg.max_samples = 0;
  Rng rng(9);
  const auto hi = dklr_estimate([](Rng& r) { return r.bernoulli(0.5); },
                                rng, cfg);
  const auto lo = dklr_estimate([](Rng& r) { return r.bernoulli(0.01); },
                                rng, cfg);
  // E[samples] = Υ/p: the low-probability oracle needs ~50x more.
  EXPECT_GT(lo.samples_used, 10 * hi.samples_used);
}

TEST(Dklr, ZeroProbabilityHitsCap) {
  DklrConfig cfg;
  cfg.epsilon = 0.2;
  cfg.delta = 0.1;
  cfg.max_samples = 5'000;
  Rng rng(11);
  const auto res =
      dklr_estimate([](Rng&) { return false; }, rng, cfg);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.samples_used, 5'000u);
  EXPECT_DOUBLE_EQ(res.estimate, 0.0);
}

TEST(Dklr, CappedRunReportsFrequency) {
  DklrConfig cfg;
  cfg.epsilon = 0.05;  // huge Υ → cap will hit first
  cfg.delta = 0.001;
  cfg.max_samples = 2'000;
  Rng rng(13);
  const auto res = dklr_estimate(
      [](Rng& r) { return r.bernoulli(0.3); }, rng, cfg);
  EXPECT_FALSE(res.converged);
  EXPECT_NEAR(res.estimate, 0.3, 0.05);
}

TEST(Dklr, PmaxEstimationOnAnalyticInstance) {
  const auto fx = test::ParallelPathFixture::make(2, 2);  // p_max = 0.5
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  DklrConfig cfg;
  cfg.epsilon = 0.1;
  cfg.delta = 0.01;
  Rng rng(17);
  const auto res = estimate_pmax_dklr(inst, rng, cfg);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.estimate, fx.pmax(), 0.1 * fx.pmax() * 1.5);
}

TEST(Dklr, UnreachableTargetReturnsZeroAtCap) {
  Graph::Builder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const Graph g = b.build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, 2);
  DklrConfig cfg;
  cfg.max_samples = 3'000;
  Rng rng(19);
  const auto res = estimate_pmax_dklr(inst, rng, cfg);
  EXPECT_FALSE(res.converged);
  EXPECT_DOUBLE_EQ(res.estimate, 0.0);
}

}  // namespace
}  // namespace af
