#include <gtest/gtest.h>

#include <vector>

#include "cover/setfamily.hpp"
#include "util/contracts.hpp"

namespace af {
namespace {

TEST(SetFamily, AddAndQuery) {
  SetFamily fam(10);
  const auto a = fam.add_set(std::vector<NodeId>{3, 1, 2});
  EXPECT_EQ(fam.num_sets(), 1u);
  EXPECT_EQ(fam.elements(a), (std::vector<NodeId>{1, 2, 3}));  // sorted
  EXPECT_EQ(fam.multiplicity(a), 1u);
  EXPECT_EQ(fam.total_multiplicity(), 1u);
  EXPECT_EQ(fam.total_elements(), 3u);
}

TEST(SetFamily, DuplicatesAccumulateMultiplicity) {
  SetFamily fam(10);
  const auto a = fam.add_set(std::vector<NodeId>{1, 2});
  const auto b = fam.add_set(std::vector<NodeId>{2, 1});  // same set
  EXPECT_EQ(a, b);
  EXPECT_EQ(fam.num_sets(), 1u);
  EXPECT_EQ(fam.multiplicity(a), 2u);
  EXPECT_EQ(fam.total_multiplicity(), 2u);
  EXPECT_EQ(fam.total_elements(), 2u);  // distinct storage only
}

TEST(SetFamily, InputDuplicatesCollapsed) {
  SetFamily fam(10);
  const auto a = fam.add_set(std::vector<NodeId>{5, 5, 5});
  EXPECT_EQ(fam.elements(a), (std::vector<NodeId>{5}));
}

TEST(SetFamily, DistinctSetsGetDistinctIds) {
  SetFamily fam(10);
  const auto a = fam.add_set(std::vector<NodeId>{1});
  const auto b = fam.add_set(std::vector<NodeId>{2});
  const auto c = fam.add_set(std::vector<NodeId>{1, 2});
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(fam.num_sets(), 3u);
}

TEST(SetFamily, InvertedIndexTracksMembership) {
  SetFamily fam(6);
  const auto a = fam.add_set(std::vector<NodeId>{0, 1});
  const auto b = fam.add_set(std::vector<NodeId>{1, 2});
  EXPECT_EQ(fam.sets_containing(0), (std::vector<std::uint32_t>{a}));
  EXPECT_EQ(fam.sets_containing(1), (std::vector<std::uint32_t>{a, b}));
  EXPECT_TRUE(fam.sets_containing(5).empty());
}

TEST(SetFamily, InvertedIndexNotDuplicatedByMultiplicity) {
  SetFamily fam(4);
  fam.add_set(std::vector<NodeId>{0});
  fam.add_set(std::vector<NodeId>{0});
  EXPECT_EQ(fam.sets_containing(0).size(), 1u);
}

TEST(SetFamily, RejectsEmptySet) {
  SetFamily fam(4);
  EXPECT_THROW(fam.add_set(std::vector<NodeId>{}), precondition_error);
}

TEST(SetFamily, RejectsOutOfUniverse) {
  SetFamily fam(4);
  EXPECT_THROW(fam.add_set(std::vector<NodeId>{4}), precondition_error);
}

TEST(SetFamily, ManySetsStressDedup) {
  SetFamily fam(100);
  // 50 distinct singletons, each added 3 times.
  for (int round = 0; round < 3; ++round) {
    for (NodeId v = 0; v < 50; ++v) {
      fam.add_set(std::vector<NodeId>{v});
    }
  }
  EXPECT_EQ(fam.num_sets(), 50u);
  EXPECT_EQ(fam.total_multiplicity(), 150u);
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(fam.multiplicity(i), 3u);
  }
}

}  // namespace
}  // namespace af
