#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cover/mpu.hpp"
#include "testutil.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

SetFamily make_family(NodeId universe,
                      const std::vector<std::vector<NodeId>>& sets,
                      const std::vector<std::uint64_t>& mult = {}) {
  SetFamily fam(universe);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const std::uint64_t reps = mult.empty() ? 1 : mult[i];
    for (std::uint64_t r = 0; r < reps; ++r) fam.add_set(sets[i]);
  }
  return fam;
}

void expect_feasible(const SetFamily& fam, const MpuResult& res,
                     std::uint64_t p) {
  EXPECT_GE(res.covered, p);
  // covered must equal the multiplicity sum of chosen sets.
  std::uint64_t check = 0;
  std::set<NodeId> uni;
  for (std::uint32_t i : res.chosen_sets) {
    check += fam.multiplicity(i);
    uni.insert(fam.elements(i).begin(), fam.elements(i).end());
  }
  EXPECT_EQ(check, res.covered);
  EXPECT_EQ(std::vector<NodeId>(uni.begin(), uni.end()), res.union_elements);
}

// -------------------------------------------------------------- greedy

TEST(GreedyMpu, PrefersSmallSets) {
  const SetFamily fam =
      make_family(10, {{0}, {1, 2, 3, 4}, {5}, {6, 7}});
  const auto res = GreedyMpuSolver().solve(fam, 2);
  expect_feasible(fam, res, 2);
  EXPECT_EQ(res.union_elements.size(), 2u);  // the two singletons
}

TEST(GreedyMpu, ExploitsOverlap) {
  // Overlapping pair {0,1},{1,2} has union 3; disjoint {5,6},{7,8} has 4.
  const SetFamily fam =
      make_family(10, {{0, 1}, {1, 2}, {5, 6}, {7, 8}});
  const auto res = GreedyMpuSolver().solve(fam, 2);
  expect_feasible(fam, res, 2);
  EXPECT_LE(res.union_elements.size(), 3u);
}

TEST(GreedyMpu, MultiplicityCountsTowardCoverage) {
  const SetFamily fam = make_family(10, {{0, 1, 2}, {5}}, {4, 1});
  // p=3: the multiplicity-4 set alone suffices.
  const auto res = GreedyMpuSolver().solve(fam, 3);
  expect_feasible(fam, res, 3);
  EXPECT_EQ(res.chosen_sets.size(), 1u);
  EXPECT_EQ(res.covered, 4u);
}

TEST(GreedyMpu, FullCoverageTakesEverythingNeeded) {
  const SetFamily fam = make_family(6, {{0}, {1}, {2}});
  const auto res = GreedyMpuSolver().solve(fam, 3);
  expect_feasible(fam, res, 3);
  EXPECT_EQ(res.chosen_sets.size(), 3u);
}

TEST(GreedyMpu, RejectsInfeasibleTargets) {
  const SetFamily fam = make_family(6, {{0}});
  EXPECT_THROW(GreedyMpuSolver().solve(fam, 2), precondition_error);
  EXPECT_THROW(GreedyMpuSolver().solve(fam, 0), precondition_error);
}

// --------------------------------------------------------------- exact

TEST(ExactMpu, FindsOptimalOverlap) {
  // Optimal 2-of: {0,1} + {1,2} → union 3. Greedy might do the same;
  // exact must.
  const SetFamily fam =
      make_family(10, {{0, 1}, {1, 2}, {5, 6}, {7, 8}});
  const auto res = ExactMpuSolver().solve(fam, 2);
  expect_feasible(fam, res, 2);
  EXPECT_EQ(res.union_elements.size(), 3u);
}

TEST(ExactMpu, GreedyTrapInstance) {
  // Greedy takes the singleton {9} first, then must add a 3-set.
  // Optimal pair: {0,1} + {0,1} (stored as multiplicity 2) → union 2.
  const SetFamily fam =
      make_family(10, {{9}, {0, 1}, {0, 1}, {2, 3, 4}});
  const auto res = ExactMpuSolver().solve(fam, 2);
  expect_feasible(fam, res, 2);
  EXPECT_EQ(res.union_elements.size(), 2u);
}

TEST(ExactMpu, EnforcesSizeLimits) {
  std::vector<std::vector<NodeId>> sets(31, {0});
  const SetFamily fam = make_family(4, sets);
  // 31 identical sets collapse to one set with multiplicity 31 — fine.
  EXPECT_NO_THROW(ExactMpuSolver().solve(fam, 1));

  // 31 distinct sets exceed the solver's bound.
  SetFamily big(40);
  for (NodeId v = 0; v < 31; ++v) big.add_set(std::vector<NodeId>{v});
  EXPECT_THROW(ExactMpuSolver().solve(big, 1), precondition_error);
}

// ---------------------------------------------------- smallest-sets/densest

TEST(SmallestSets, FeasibleAndOrdered) {
  const SetFamily fam =
      make_family(10, {{0, 1, 2, 3}, {4}, {5, 6}});
  const auto res = SmallestSetsSolver().solve(fam, 2);
  expect_feasible(fam, res, 2);
  EXPECT_EQ(res.union_elements.size(), 3u);  // {4} then {5,6}
}

TEST(DensestMpu, FeasibleOnOverlapInstance) {
  const SetFamily fam =
      make_family(10, {{0, 1}, {1, 2}, {5, 6}, {7, 8}});
  for (auto engine : {DensestMpuSolver::Engine::kExact,
                      DensestMpuSolver::Engine::kPeeling}) {
    const auto res = DensestMpuSolver(engine).solve(fam, 2);
    expect_feasible(fam, res, 2);
    EXPECT_LE(res.union_elements.size(), 4u);
  }
}

TEST(DensestMpu, HandlesOvershootClipping) {
  // A dense block of 3 sets; p = 2 forces clipping inside the block.
  const SetFamily fam =
      make_family(8, {{0, 1}, {0, 1, 2}, {1, 2}, {5, 6, 7}});
  const auto res =
      DensestMpuSolver(DensestMpuSolver::Engine::kExact).solve(fam, 2);
  expect_feasible(fam, res, 2);
  EXPECT_LE(res.union_elements.size(), 3u);
}

// -------------------------------------------------------- local search

TEST(LocalSearch, DropsRedundantSets) {
  const SetFamily fam = make_family(10, {{0}, {1}, {2}});
  MpuResult start;
  start.chosen_sets = {0, 1, 2};
  start.union_elements = {0, 1, 2};
  start.covered = 3;
  const auto refined = refine_local_search(fam, 2, start);
  expect_feasible(fam, refined, 2);
  EXPECT_EQ(refined.chosen_sets.size(), 2u);
}

TEST(LocalSearch, SwapsToShrinkUnion) {
  // Start with the fat set; swapping it for the singleton keeps p=1
  // and shrinks the union from 3 to 1.
  const SetFamily fam = make_family(10, {{0, 1, 2}, {5}});
  MpuResult start;
  start.chosen_sets = {0};
  start.union_elements = {0, 1, 2};
  start.covered = 1;
  const auto refined = refine_local_search(fam, 1, start);
  expect_feasible(fam, refined, 1);
  EXPECT_EQ(refined.union_elements.size(), 1u);
}

TEST(LocalSearch, NeverWorsens) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::vector<NodeId>> sets;
    for (int i = 0; i < 8; ++i) {
      std::vector<NodeId> s;
      for (NodeId v = 0; v < 12; ++v) {
        if (rng.bernoulli(0.3)) s.push_back(v);
      }
      if (s.empty()) s.push_back(0);
      sets.push_back(std::move(s));
    }
    const SetFamily fam = make_family(12, sets);
    const std::uint64_t p = 1 + rng.uniform_int(fam.total_multiplicity());
    const auto start = GreedyMpuSolver().solve(fam, p);
    const auto refined = refine_local_search(fam, p, start);
    expect_feasible(fam, refined, p);
    EXPECT_LE(refined.union_elements.size(), start.union_elements.size());
  }
}

// ------------------------------------------------------------ properties

struct SolverCase {
  std::string name;
  const MpuSolver* solver;
};

class MpuPropertySweep : public testing::TestWithParam<int> {};

TEST_P(MpuPropertySweep, AllSolversFeasibleAndWithinChlamtacRatio) {
  Rng rng(3000 + GetParam());
  const NodeId universe = 10;
  const std::size_t num_sets = 3 + rng.uniform_int(std::uint64_t{7});
  std::vector<std::vector<NodeId>> sets;
  for (std::size_t i = 0; i < num_sets; ++i) {
    std::vector<NodeId> s;
    for (NodeId v = 0; v < universe; ++v) {
      if (rng.bernoulli(0.35)) s.push_back(v);
    }
    if (s.empty()) s.push_back(static_cast<NodeId>(
        rng.uniform_int(std::uint64_t{universe})));
    sets.push_back(std::move(s));
  }
  const SetFamily fam = make_family(universe, sets);
  const std::uint64_t total = fam.total_multiplicity();
  const std::uint64_t p = 1 + rng.uniform_int(total);

  // Brute-force optimum (on distinct sets with multiplicities).
  std::vector<std::vector<NodeId>> distinct;
  std::vector<std::uint64_t> mult;
  for (std::uint32_t i = 0; i < fam.num_sets(); ++i) {
    distinct.push_back(fam.elements(i));
    mult.push_back(fam.multiplicity(i));
  }
  const std::size_t opt = test::brute_force_mpu_size(distinct, mult, p);

  const GreedyMpuSolver greedy;
  const SmallestSetsSolver smallest;
  const DensestMpuSolver densest(DensestMpuSolver::Engine::kExact);
  const ExactMpuSolver exact;
  const double ratio_bound =
      2.0 * std::sqrt(static_cast<double>(fam.num_sets()));

  for (const MpuSolver* solver :
       std::vector<const MpuSolver*>{&greedy, &smallest, &densest, &exact}) {
    const auto res = solver->solve(fam, p);
    expect_feasible(fam, res, p);
    EXPECT_GE(res.union_elements.size(), opt) << solver->name();
    EXPECT_LE(static_cast<double>(res.union_elements.size()),
              ratio_bound * static_cast<double>(opt) + 1e-9)
        << solver->name() << " exceeded the 2√|U| ratio";
  }

  // The exact solver must hit the brute-force optimum.
  EXPECT_EQ(exact.solve(fam, p).union_elements.size(), opt);
}

INSTANTIATE_TEST_SUITE_P(Random, MpuPropertySweep, testing::Range(0, 30));

TEST(Msc, WrapperDelegates) {
  const SetFamily fam = make_family(6, {{0}, {1, 2}});
  const GreedyMpuSolver solver;
  const auto res = solve_msc(fam, 1, solver);
  EXPECT_GE(res.covered, 1u);
  EXPECT_THROW(solve_msc(fam, 5, solver), precondition_error);
}

}  // namespace
}  // namespace af
