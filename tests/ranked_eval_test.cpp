#include <gtest/gtest.h>

#include <algorithm>

#include "core/baselines.hpp"
#include "core/ranked_eval.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

// --------------------------------------------------------------- rankings

TEST(Rankings, TargetIsAlwaysFirst) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(1);
  EXPECT_EQ(high_degree_ranking(inst).front(), fx.t);
  EXPECT_EQ(shortest_path_ranking(inst).front(), fx.t);
  EXPECT_EQ(random_ranking(inst, rng).front(), fx.t);
}

TEST(Rankings, CoverAllInvitableNodesExactlyOnce) {
  Rng rng(2);
  const Graph g =
      gnm_random(50, 120, rng).build(WeightScheme::inverse_degree());
  for (NodeId s = 0; s < 50; ++s) {
    if (g.degree(s) == 0) continue;
    for (NodeId t = 0; t < 50; ++t) {
      if (t == s || g.has_edge(s, t)) continue;
      const FriendingInstance inst(g, s, t);
      std::size_t invitable = 0;
      for (NodeId v = 0; v < 50; ++v) invitable += inst.invitable(v);

      const auto hd = high_degree_ranking(inst);
      EXPECT_EQ(hd.size(), invitable);
      auto sorted = hd;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                  sorted.end());

      const auto rnd = random_ranking(inst, rng);
      EXPECT_EQ(rnd.size(), invitable);
      return;
    }
  }
}

TEST(Rankings, PrefixMatchesBudgetApi) {
  const auto fx = test::ParallelPathFixture::make(3, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const auto ranking = high_degree_ranking(inst);
  for (std::size_t k : {1u, 3u, 5u, 100u}) {
    const auto via_prefix = ranking_prefix(inst, ranking, k);
    const auto via_budget = high_degree_invitation(inst, k);
    EXPECT_EQ(via_prefix.members(), via_budget.members()) << "k=" << k;
  }
}

TEST(Rankings, SpRankingUnreachableFillerOmitted) {
  Graph::Builder b(5);
  b.add_edge(0, 1).add_edge(2, 3).add_edge(3, 4);
  const Graph g = b.build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, 3);
  const auto sp = shortest_path_ranking(inst);
  // Only t: no s→t path, and no node is BFS-reachable from N_s.
  EXPECT_EQ(sp, (InvitationRanking{3}));
}

// ------------------------------------------------------------ curve basics

TEST(RankedCurve, MonotoneAndBounded) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(3);
  const auto ranking = high_degree_ranking(inst);
  const RankedCurve curve =
      evaluate_ranked_prefixes(inst, ranking, 50'000, rng);
  double prev = -1.0;
  for (std::size_t k = 0; k <= ranking.size() + 2; ++k) {
    const double f = curve.f_at(k);
    EXPECT_GE(f, prev);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(curve.f_at(ranking.size()), curve.ceiling());
  EXPECT_DOUBLE_EQ(curve.f_at(0), 0.0);
}

TEST(RankedCurve, MatchesDirectMonteCarloAtEveryPrefix) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(4);
  const auto ranking = high_degree_ranking(inst);
  const RankedCurve curve =
      evaluate_ranked_prefixes(inst, ranking, 200'000, rng);
  for (std::size_t k = 1; k <= ranking.size(); ++k) {
    const double exact = test::exact_f(inst, ranking_prefix(inst, ranking, k));
    EXPECT_NEAR(curve.f_at(k), exact, 0.01) << "k=" << k;
  }
}

TEST(RankedCurve, CeilingIsPmaxForFullRanking) {
  // The full invitable ranking covers every coverable realization.
  const auto fx = test::ParallelPathFixture::make(3, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(5);
  const RankedCurve curve = evaluate_ranked_prefixes(
      inst, high_degree_ranking(inst), 100'000, rng);
  EXPECT_NEAR(curve.ceiling(), fx.pmax(), 0.01);
}

TEST(RankedCurve, SizeToReachInvertsFAt) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(6);
  const auto ranking = high_degree_ranking(inst);
  const RankedCurve curve =
      evaluate_ranked_prefixes(inst, ranking, 50'000, rng);
  for (double target : {0.05, 0.1, 0.2, 0.4}) {
    const auto k = curve.size_to_reach(target);
    if (!k) {
      EXPECT_LT(curve.ceiling(), target);
      continue;
    }
    EXPECT_GE(curve.f_at(*k), target);
    if (*k > 0) {
      EXPECT_LT(curve.f_at(*k - 1), target);
    }
  }
}

TEST(RankedCurve, UnreachableTargetGivesZeroCurve) {
  Graph::Builder b(5);
  b.add_edge(0, 1).add_edge(2, 3).add_edge(3, 4);
  const Graph g = b.build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, 3);
  Rng rng(7);
  const RankedCurve curve = evaluate_ranked_prefixes(
      inst, shortest_path_ranking(inst), 5'000, rng);
  EXPECT_DOUBLE_EQ(curve.ceiling(), 0.0);
  EXPECT_FALSE(curve.size_to_reach(0.01).has_value());
  EXPECT_EQ(curve.size_to_reach(0.0), std::size_t{0});
}

TEST(RankedCurve, RejectsMalformedInput) {
  const auto fx = test::ParallelPathFixture::make(1, 1);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(8);
  EXPECT_THROW(evaluate_ranked_prefixes(inst, {}, 100, rng),
               precondition_error);
  InvitationRanking dup{fx.t, fx.t};
  EXPECT_THROW(evaluate_ranked_prefixes(inst, dup, 100, rng),
               precondition_error);
}

TEST(RankedCurve, PartialRankingCapsTheCeiling) {
  // Ranking that omits one path's nodes can never cover those paths.
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(9);
  // Only t and path 0's t-side intermediate (node 3).
  const InvitationRanking partial{fx.t, 3};
  const RankedCurve curve =
      evaluate_ranked_prefixes(inst, partial, 100'000, rng);
  EXPECT_NEAR(curve.ceiling(), fx.pmax() / 2.0, 0.01);
}

}  // namespace
}  // namespace af
