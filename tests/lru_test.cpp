#include "util/lru.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace af {
namespace {

TEST(SizedLru, InsertFindAndCharges) {
  SizedLru<int, std::string> lru(100);
  EXPECT_TRUE(lru.empty());
  EXPECT_EQ(lru.budget(), 100u);

  lru.insert(1, "one", 10);
  lru.insert(2, "two", 20);
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_EQ(lru.charged(), 30u);

  std::string* hit = lru.find(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "one");
  EXPECT_EQ(lru.find(3), nullptr);
  EXPECT_TRUE(lru.contains(2));
  EXPECT_FALSE(lru.contains(3));
}

TEST(SizedLru, InsertingAPresentKeyIsAContractViolation) {
  SizedLru<int, int> lru(10);
  lru.insert(1, 7, 1);
  EXPECT_THROW(lru.insert(1, 8, 1), precondition_error);
}

TEST(SizedLru, EvictsColdestUntilUnderBudget) {
  SizedLru<int, int> lru(100);
  lru.insert(1, 100, 40);
  lru.insert(2, 200, 40);
  lru.insert(3, 300, 40);  // 120 > 100: key 1 is coldest
  std::vector<int> victims;
  lru.evict_over_budget(victims);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 100);
  EXPECT_EQ(lru.charged(), 80u);
  EXPECT_EQ(lru.evictions(), 1u);
  EXPECT_FALSE(lru.contains(1));
  EXPECT_TRUE(lru.contains(2));
  EXPECT_TRUE(lru.contains(3));
}

TEST(SizedLru, FindTouchesAndProtectsFromEviction) {
  SizedLru<int, int> lru(100);
  lru.insert(1, 100, 40);
  lru.insert(2, 200, 40);
  ASSERT_NE(lru.find(1), nullptr);  // 1 is now hottest
  lru.insert(3, 300, 40);
  std::vector<int> victims;
  lru.evict_over_budget(victims);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 200);  // 2, not 1, was coldest
  EXPECT_TRUE(lru.contains(1));
}

TEST(SizedLru, ChargeRestatesCostAndTouches) {
  SizedLru<int, int> lru(100);
  lru.insert(1, 100, 10);
  lru.insert(2, 200, 10);
  EXPECT_TRUE(lru.charge(1, 95));  // grows and becomes hottest
  EXPECT_EQ(lru.charged(), 105u);
  EXPECT_FALSE(lru.charge(42, 5));  // absent keys report false

  std::vector<int> victims;
  lru.evict_over_budget(victims);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 200);  // the cold entry goes first
  EXPECT_EQ(lru.charged(), 95u);
}

TEST(SizedLru, SingleOverBudgetEntryIsEvictedToo) {
  // The accounted total never ends above the budget, even when one entry
  // alone exceeds it.
  SizedLru<int, int> lru(50);
  lru.insert(1, 100, 80);
  std::vector<int> victims;
  lru.evict_over_budget(victims);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_TRUE(lru.empty());
  EXPECT_EQ(lru.charged(), 0u);
}

TEST(SizedLru, ZeroBudgetMeansUnbounded) {
  SizedLru<int, int> lru(0);
  for (int i = 0; i < 64; ++i) lru.insert(i, i, 1'000'000);
  std::vector<int> victims;
  lru.evict_over_budget(victims);
  EXPECT_TRUE(victims.empty());
  EXPECT_EQ(lru.size(), 64u);
  EXPECT_EQ(lru.evictions(), 0u);
}

TEST(SizedLru, TakeRemovesWithoutCountingEviction) {
  SizedLru<int, std::unique_ptr<int>> lru(100);
  lru.insert(1, std::make_unique<int>(5), 10);
  std::unique_ptr<int> out;
  EXPECT_TRUE(lru.take(1, out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 5);
  EXPECT_TRUE(lru.empty());
  EXPECT_EQ(lru.charged(), 0u);
  EXPECT_EQ(lru.evictions(), 0u);
  EXPECT_FALSE(lru.take(1, out));
}

TEST(SizedLru, TakeAllDrainsEverything) {
  SizedLru<int, int> lru(1000);
  lru.insert(1, 10, 5);
  lru.insert(2, 20, 5);
  lru.insert(3, 30, 5);
  std::vector<int> all;
  lru.take_all(all);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_TRUE(lru.empty());
  EXPECT_EQ(lru.charged(), 0u);
  // Move-only values survive the drain; counters are untouched.
  EXPECT_EQ(lru.evictions(), 0u);
}

TEST(SizedLru, MoveOnlyValuesAreSupported) {
  SizedLru<int, std::unique_ptr<int>> lru(10);
  lru.insert(1, std::make_unique<int>(1), 6);
  lru.insert(2, std::make_unique<int>(2), 6);
  std::vector<std::unique_ptr<int>> victims;
  lru.evict_over_budget(victims);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(*victims[0], 1);
}

}  // namespace
}  // namespace af
