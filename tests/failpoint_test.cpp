// Failpoint framework + graceful-degradation tests (DESIGN.md §13).
//
// Two tiers in one suite: the registry semantics (arming grammar, firing
// modes, seeded determinism) are always-compiled and run in every build;
// the injection tests — which need the AF_FAILPOINT_* macros live inside
// production code — GTEST_SKIP unless the build sets -DAF_FAILPOINTS=ON,
// so the default tier-1 run stays green without the instrumentation.
//
// The degradation contracts pinned here:
//   allocation fault  → shed the pair caches, retry once, bit-identical
//                       answer; persistent fault → kResourceExhausted
//   alias-build fault → ScanSelectionSampler fallback, oracle-correct
//   replica fault     → failed NUMA node shares a healthy copy
//   deadline mid-run  → cooperative kDeadlineExceeded between blocks
//   storage faults    → structured Af1Error, never a published torn file
#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define AF_TEST_HAVE_TRUNCATE 1
#endif

#include "core/planner.hpp"
#include "diffusion/index_replicas.hpp"
#include "diffusion/instance.hpp"
#include "diffusion/sampling_index.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/weights.hpp"
#include "storage/convert.hpp"
#include "storage/mapped_dataset.hpp"
#include "testutil.hpp"
#include "util/numa.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

namespace fp = af::failpoint;
using storage::Af1Error;
using storage::MappedDataset;
using storage::write_container;

/// Every test starts and ends with a quiescent registry so suites cannot
/// leak armed sites into each other.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::disarm_all();
    fp::set_seed(0);
  }
  void TearDown() override {
    fp::disarm_all();
    fp::set_seed(0);
  }
};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "af_failpoint_" + name;
}

Graph make_graph() {
  Rng rng(11);
  return barabasi_albert(60, 3, rng).build(WeightScheme::inverse_degree());
}

/// A valid (s,t) query pair on make_graph() (distinct, not friends).
QuerySpec make_query(const Graph& g) {
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    const NodeId t = g.num_nodes() - 1 - s;
    if (s == t || g.has_edge(s, t)) continue;
    return {s, t, MaximizeSpec{.budget = 4, .realizations = 2'000}};
  }
  ADD_FAILURE() << "fixture graph has no valid pair";
  return {0, 1, MaximizeSpec{.budget = 4, .realizations = 2'000}};
}

bool same_plan(const PlanResult& a, const PlanResult& b) {
  return a.status == b.status &&
         a.invitation.members() == b.invitation.members() &&
         a.sample_coverage == b.sample_coverage;
}

// ---------------------------------------------------------------------------
// Registry semantics — run in every build (the registry TU is always
// compiled; only the production-site macros are gated).

TEST_F(FailpointTest, ParseSpecAcceptsTheDocumentedGrammar) {
  fp::Spec s;
  EXPECT_TRUE(fp::parse_spec("on", &s));
  EXPECT_EQ(s.mode, fp::Mode::kAlways);
  EXPECT_TRUE(fp::parse_spec("always", &s));
  EXPECT_EQ(s.mode, fp::Mode::kAlways);
  EXPECT_TRUE(fp::parse_spec("off", &s));
  EXPECT_EQ(s.mode, fp::Mode::kOff);
  EXPECT_TRUE(fp::parse_spec("once", &s));
  EXPECT_EQ(s.mode, fp::Mode::kOnce);
  EXPECT_TRUE(fp::parse_spec("n:7", &s));
  EXPECT_EQ(s.mode, fp::Mode::kNth);
  EXPECT_EQ(s.n, 7u);
  EXPECT_TRUE(fp::parse_spec("p:0.25", &s));
  EXPECT_EQ(s.mode, fp::Mode::kProb);
  EXPECT_DOUBLE_EQ(s.p, 0.25);

  for (const char* bad :
       {"", "maybe", "n:", "n:0", "n:x", "n:3x", "p:", "p:2", "p:-0.5",
        "p:nope", "once extra"}) {
    EXPECT_FALSE(fp::parse_spec(bad, &s)) << "accepted \"" << bad << '"';
  }
}

TEST_F(FailpointTest, ApplyEnvArmsWellFormedEntriesAndSkipsTheRest) {
  const std::size_t armed = fp::apply_env(
      "planner.pair_alloc=once,bogus,storage.map_open=p:0.5,"
      "numa.replica_build=n:nope");
  EXPECT_EQ(armed, 2u);

  bool saw_pair = false;
  bool saw_open = false;
  for (const fp::SiteStats& site : fp::stats()) {
    if (site.name == "planner.pair_alloc") {
      saw_pair = true;
      EXPECT_EQ(site.spec.mode, fp::Mode::kOnce);
    }
    if (site.name == "storage.map_open") {
      saw_open = true;
      EXPECT_EQ(site.spec.mode, fp::Mode::kProb);
      EXPECT_DOUBLE_EQ(site.spec.p, 0.5);
    }
    if (site.name == "numa.replica_build") {
      EXPECT_EQ(site.spec.mode, fp::Mode::kOff);
    }
  }
  EXPECT_TRUE(saw_pair);
  EXPECT_TRUE(saw_open);
}

#if defined(__unix__) || defined(__APPLE__)
// Regression: install_env_once()'s lambda used to call the public
// apply_env/arm, which call install_env_once() — std::call_once
// re-entered on its own flag deadlocks, so any process started with a
// well-formed AF_FAILPOINTS entry hung at its first registry touch
// (malformed-only values never reached arm and worked fine). The
// threadsafe death test re-execs this binary with the env set, so the
// child's very first registry touch walks the env-install path; with
// the bug it hangs instead of exiting 0.
TEST_F(FailpointTest, EnvInstallDoesNotDeadlockOnFirstRegistryTouch) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ::setenv("AF_FAILPOINTS", "planner.pool_grow=once", 1);
  EXPECT_EXIT(
      {
        fp::arm("planner.pool_grow", fp::Spec{});
        std::exit(fp::seed() == 0 ? 0 : 1);
      },
      ::testing::ExitedWithCode(0), "");
  ::unsetenv("AF_FAILPOINTS");
}
#endif

TEST_F(FailpointTest, FiringModesCountHitsFromArming) {
  fp::detail::Site* site = fp::detail::site("planner.pair_alloc");

  fp::arm("planner.pair_alloc", {fp::Mode::kOnce, 0, 0.0});
  EXPECT_TRUE(fp::detail::fired(*site));
  EXPECT_FALSE(fp::detail::fired(*site));
  EXPECT_FALSE(fp::detail::fired(*site));

  fp::arm("planner.pair_alloc", {fp::Mode::kNth, 3, 0.0});
  EXPECT_FALSE(fp::detail::fired(*site));
  EXPECT_FALSE(fp::detail::fired(*site));
  EXPECT_TRUE(fp::detail::fired(*site));
  EXPECT_FALSE(fp::detail::fired(*site));

  fp::arm("planner.pair_alloc", {fp::Mode::kAlways, 0, 0.0});
  EXPECT_TRUE(fp::detail::fired(*site));
  EXPECT_TRUE(fp::detail::fired(*site));
  EXPECT_EQ(fp::fire_count("planner.pair_alloc"), 2u);
  EXPECT_EQ(fp::hit_count("planner.pair_alloc"), 2u);

  fp::disarm("planner.pair_alloc");
  EXPECT_FALSE(fp::detail::fired(*site));
}

TEST_F(FailpointTest, ProbabilisticFiringReplaysUnderTheSameSeed) {
  fp::detail::Site* site = fp::detail::site("server.worker_exec");
  constexpr int kHits = 256;

  const auto pattern = [&] {
    fp::arm("server.worker_exec", {fp::Mode::kProb, 0, 0.5});
    std::vector<bool> fires;
    fires.reserve(kHits);
    for (int i = 0; i < kHits; ++i) fires.push_back(fp::detail::fired(*site));
    return fires;
  };

  fp::set_seed(42);
  const std::vector<bool> first = pattern();
  fp::set_seed(42);
  const std::vector<bool> replay = pattern();
  EXPECT_EQ(first, replay);

  const auto fires =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, static_cast<std::size_t>(kHits));

  fp::set_seed(43);
  EXPECT_NE(pattern(), first) << "seed is not keying the fire decisions";
}

TEST_F(FailpointTest, CatalogIsSortedAndCoversTheKnownSites) {
  const std::vector<std::string_view> names = fp::catalog();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  for (const std::string_view required :
       {"planner.pair_alloc", "index.alias_build", "numa.replica_build",
        "server.worker_exec", "storage.read_validate",
        "storage.writer_finish"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), required) !=
                names.end())
        << "catalog lost " << required;
  }
}

// ---------------------------------------------------------------------------
// Injection through production code — needs -DAF_FAILPOINTS=ON.

#define AF_REQUIRE_FAILPOINTS()                                        \
  if (!fp::compiled_in()) {                                            \
    GTEST_SKIP() << "build has AF_FAILPOINTS=OFF; macros compiled out"; \
  }

TEST_F(FailpointTest, AllocationFaultShedsCachesAndRecoversBitIdentical) {
  AF_REQUIRE_FAILPOINTS();
  const Graph g = make_graph();
  const QuerySpec q = make_query(g);

  Planner clean(g, {});
  const PlanResult expect = clean.plan(q);
  ASSERT_EQ(expect.status, PlanStatus::kOk);

  Planner faulty(g, {});
  fp::arm("planner.pair_alloc", {fp::Mode::kOnce, 0, 0.0});
  const PlanResult healed = faulty.plan(q);
  EXPECT_EQ(healed.status, PlanStatus::kOk);
  EXPECT_TRUE(same_plan(expect, healed))
      << "shed-and-retry changed the answer";
  EXPECT_EQ(faulty.serving_stats().shed_retries, 1u);
  EXPECT_EQ(faulty.serving_stats().resource_exhausted, 0u);
}

TEST_F(FailpointTest, PersistentAllocationFaultIsResourceExhausted) {
  AF_REQUIRE_FAILPOINTS();
  const Graph g = make_graph();
  Planner planner(g, {});
  fp::arm("planner.pair_alloc", {fp::Mode::kAlways, 0, 0.0});
  const PlanResult r = planner.plan(make_query(g));
  EXPECT_EQ(r.status, PlanStatus::kResourceExhausted);
  EXPECT_FALSE(r.message.empty());
  EXPECT_EQ(planner.serving_stats().shed_retries, 1u);
  EXPECT_EQ(planner.serving_stats().resource_exhausted, 1u);

  fp::disarm("planner.pair_alloc");
  EXPECT_EQ(planner.plan(make_query(g)).status, PlanStatus::kOk);
}

TEST_F(FailpointTest, AliasBuildFaultFallsBackToScanWithCorrectAnswers) {
  AF_REQUIRE_FAILPOINTS();
  const test::ParallelPathFixture fx = test::ParallelPathFixture::make(2, 2);

  fp::arm("index.alias_build", {fp::Mode::kAlways, 0, 0.0});
  fp::arm("index.alias_build_compact", {fp::Mode::kAlways, 0, 0.0});
  Planner degraded(fx.graph, {});
  Planner degraded_twin(fx.graph, {});
  fp::disarm_all();

  const PlannerCacheStats stats = degraded.cache_stats();
  EXPECT_TRUE(stats.degraded_scan_index);
  EXPECT_EQ(stats.index_bytes_per_slot, 0.0);

  // Budget 3 affords t plus both t-side intermediates, which achieves
  // the ceiling f = p_max = (1/2)^(len−1) = 0.5 exactly. The scan
  // fallback consumes rng words differently from the alias index, so
  // the oracle is the analytic optimum plus a degraded twin — not the
  // clean run.
  QuerySpec q{fx.s, fx.t,
              MaximizeSpec{.budget = 3, .realizations = 4'000}};
  const PlanResult a = degraded.plan(q);
  const PlanResult b = degraded_twin.plan(q);
  ASSERT_EQ(a.status, PlanStatus::kOk);
  EXPECT_TRUE(same_plan(a, b)) << "degraded planners diverged";

  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  EXPECT_NEAR(test::exact_f(inst, a.invitation), fx.pmax(), 1e-12);
}

TEST_F(FailpointTest, ReplicaBuildFaultDegradesThatNodeToSharing) {
  AF_REQUIRE_FAILPOINTS();
  const Graph g = make_graph();
  const NumaTopology two_nodes{.node_cpus = {{0}, {1}}};
  const IndexReplicas::Factory factory = [&g] {
    return std::unique_ptr<const SelectionSampler>(
        std::make_unique<SamplingIndex>(g, SimdLevel::kScalar));
  };

  // Two builder threads race to the counter; exactly one of the two
  // hits is the second, so exactly one node's build fails.
  fp::arm("numa.replica_build", {fp::Mode::kNth, 2, 0.0});
  const IndexReplicas degraded(factory, two_nodes);
  EXPECT_EQ(degraded.count(), 1u);
  EXPECT_EQ(degraded.build_failures(), 1u);
  EXPECT_EQ(&degraded.local(), &degraded.primary())
      << "failed node must alias the surviving replica";

  // Every node failing IS an out-of-memory condition.
  fp::arm("numa.replica_build", {fp::Mode::kAlways, 0, 0.0});
  EXPECT_THROW(IndexReplicas(factory, two_nodes), std::bad_alloc);
}

TEST_F(FailpointTest, InjectedWorkerFaultIsRetriedTransparently) {
  AF_REQUIRE_FAILPOINTS();
  const Graph g = make_graph();
  PlannerOptions opts;
  opts.threads = 2;
  opts.async_workers = 1;
  Planner planner(g, opts);

  fp::arm("server.worker_exec", {fp::Mode::kOnce, 0, 0.0});
  const PlanResult r = planner.plan_async(make_query(g)).get();
  EXPECT_EQ(r.status, PlanStatus::kOk);
  EXPECT_EQ(planner.serving_stats().transient_retries, 1u);
}

TEST_F(FailpointTest, WriteFaultSurfacesAsIoErrorAndPublishesNothing) {
  AF_REQUIRE_FAILPOINTS();
  const std::string path = temp_path("write_fault.af1");
  fp::arm("storage.writer_write", {fp::Mode::kOnce, 0, 0.0});
  EXPECT_THROW(
      {
        try {
          write_container(make_graph(), path);
        } catch (const Af1Error& e) {
          EXPECT_EQ(e.code(), Af1Error::Code::kIo);
          throw;
        }
      },
      Af1Error);
  EXPECT_FALSE(std::ifstream(path).good()) << "torn container published";
  EXPECT_FALSE(std::ifstream(path + ".tmp").good()) << "tmp file leaked";
}

TEST_F(FailpointTest, FsyncFaultRefusesToPublishTheContainer) {
  AF_REQUIRE_FAILPOINTS();
  const std::string path = temp_path("fsync_fault.af1");
  fp::arm("storage.writer_finish", {fp::Mode::kOnce, 0, 0.0});
  EXPECT_THROW(write_container(make_graph(), path), Af1Error);
  EXPECT_FALSE(std::ifstream(path).good())
      << "published a container of unknown durability";
  EXPECT_FALSE(std::ifstream(path + ".tmp").good()) << "tmp file leaked";
}

TEST_F(FailpointTest, MapOpenFaultIsStructured) {
  AF_REQUIRE_FAILPOINTS();
  const std::string path = temp_path("open_fault.af1");
  write_container(make_graph(), path);

  fp::arm("storage.map_open", {fp::Mode::kOnce, 0, 0.0});
  EXPECT_THROW(
      {
        try {
          MappedDataset ds(path);
        } catch (const Af1Error& e) {
          EXPECT_EQ(e.code(), Af1Error::Code::kIo);
          throw;
        }
      },
      Af1Error);
  EXPECT_NO_THROW(MappedDataset{path});
  std::remove(path.c_str());
}

TEST_F(FailpointTest, InjectedRotFailsValidationAndRevalidation) {
  AF_REQUIRE_FAILPOINTS();
  const std::string path = temp_path("rot_fault.af1");
  write_container(make_graph(), path);

  fp::arm("storage.read_validate", {fp::Mode::kOnce, 0, 0.0});
  EXPECT_THROW(
      {
        try {
          MappedDataset ds(path);
        } catch (const Af1Error& e) {
          EXPECT_EQ(e.code(), Af1Error::Code::kBadChecksum);
          throw;
        }
      },
      Af1Error);

  fp::disarm_all();
  MappedDataset ds(path);
  EXPECT_NO_THROW(ds.revalidate());
  fp::arm("storage.read_validate", {fp::Mode::kOnce, 0, 0.0});
  EXPECT_THROW(
      {
        try {
          ds.revalidate();
        } catch (const Af1Error& e) {
          EXPECT_EQ(e.code(), Af1Error::Code::kBadChecksum);
          throw;
        }
      },
      Af1Error);
  fp::disarm_all();
  EXPECT_NO_THROW(ds.revalidate());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Real-fault counterparts — no failpoints needed, run in every build.

TEST_F(FailpointTest, DeadlinePassingMidFlightCancelsBetweenBlocks) {
  const Graph g = make_graph();
  Planner planner(g, {});
  QuerySpec q = make_query(g);
  // Expensive enough (millions of walks) that the 10ms deadline — which
  // comfortably survives the up-front admission check — always passes
  // between sampling blocks, exercising the cooperative path.
  q.mode = MaximizeSpec{.budget = 4, .realizations = 4'000'000};
  q.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  const PlanResult r = planner.plan(q);
  EXPECT_EQ(r.status, PlanStatus::kDeadlineExceeded);
  EXPECT_EQ(planner.serving_stats().expired_mid_flight, 1u);

  // The abandoned partial pool is a valid stream prefix: the same query
  // without a deadline completes and matches a fresh planner bit for bit.
  q.deadline = std::chrono::steady_clock::time_point::max();
  q.mode = MaximizeSpec{.budget = 4, .realizations = 2'000};
  Planner fresh(g, {});
  const PlanResult resumed = planner.plan(q);
  ASSERT_EQ(resumed.status, PlanStatus::kOk);
  EXPECT_TRUE(same_plan(resumed, fresh.plan(q)));
}

#if defined(AF_TEST_HAVE_TRUNCATE)
TEST_F(FailpointTest, TruncationUnderTheActiveMapIsStructured) {
  const std::string path = temp_path("truncated_live.af1");
  Rng rng(7);
  const Graph big =
      barabasi_albert(2'000, 5, rng).build(WeightScheme::inverse_degree());
  write_container(big, path);

  MappedDataset ds(path);
  ASSERT_GT(ds.file_bytes(), 2u * 4096u) << "fixture too small to truncate";
  EXPECT_NO_THROW(ds.revalidate());

  // Truncate the file under the live mapping: the vanished pages fault
  // on access, and the SIGBUS guard must convert that into a structured
  // error instead of a process kill.
  ASSERT_EQ(::truncate(path.c_str(), 4096), 0);
  EXPECT_THROW(
      {
        try {
          ds.revalidate();
        } catch (const Af1Error& e) {
          EXPECT_EQ(e.code(), Af1Error::Code::kTruncated);
          throw;
        }
      },
      Af1Error);
  std::remove(path.c_str());
}
#endif  // AF_TEST_HAVE_TRUNCATE

}  // namespace
}  // namespace af
