// Corruption matrix over the .af1 container format (storage/): every
// kind of damage — flipped magic, stale version, foreign endianness,
// tampered header, broken section table, truncation, payload bit-rot —
// must surface as a structured Af1Error with the right code, never UB.
// A seeded fuzz pass flips random bytes and demands "opens clean or
// throws Af1Error" across the board.
#include "storage/format.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#else
#include <process.h>
#define getpid _getpid
#endif

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/weights.hpp"
#include "storage/convert.hpp"
#include "storage/mapped_dataset.hpp"
#include "util/rng.hpp"

namespace af::storage {
namespace {

Graph small_graph() {
  Rng rng(7);
  return barabasi_albert(120, 3, rng).build(WeightScheme::inverse_degree(),
                                            &rng);
}

/// Per-process fixture paths: gtest_discover_tests runs every TEST as
/// its own ctest entry (= process), and a parallel ctest runs them
/// concurrently. A shared golden path would make one process's
/// SetUpTestSuite rewrite the container (and its writer temp file)
/// under another process's live mapping — the exact
/// change-under-active-map hazard DESIGN.md §13 defends against,
/// faulting the *test*, not the code under test.
std::string temp_path(const std::string& name) {
  static const std::string tag = std::to_string(::getpid());
  return ::testing::TempDir() + "af1_format_" + tag + "_" + name;
}

std::vector<unsigned char> read_all(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(static_cast<bool>(f));
  std::vector<unsigned char> bytes(static_cast<std::size_t>(f.tellg()));
  f.seekg(0);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void write_all(const std::string& path,
               const std::vector<unsigned char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(f));
}

/// Recomputes the header checksum after deliberate tampering, so the
/// mutation under test is reached instead of masked by kBadHeader.
void bless_header(std::vector<unsigned char>& bytes) {
  FileHeader h{};
  std::memcpy(&h, bytes.data(), sizeof(h));
  SectionRecord table[kMaxSections];
  std::memcpy(table, bytes.data() + sizeof(FileHeader), sizeof(table));
  h.header_checksum = header_checksum(h, table);
  std::memcpy(bytes.data(), &h, sizeof(h));
}

/// The shared fixture: one valid container, written once per suite run.
class Af1CorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    path_ = new std::string(temp_path("golden.af1"));
    write_container(small_graph(), *path_);
    golden_ = new std::vector<unsigned char>(read_all(*path_));
  }
  static void TearDownTestSuite() {
    delete path_;
    delete golden_;
    path_ = nullptr;
    golden_ = nullptr;
  }

  /// Writes a mutated copy and returns the Af1Error code opening it.
  static Af1Error::Code open_code(const std::vector<unsigned char>& bytes,
                                  const std::string& name) {
    const std::string p = temp_path(name);
    write_all(p, bytes);
    try {
      MappedDataset ds(p);
    } catch (const Af1Error& e) {
      return e.code();
    }
    ADD_FAILURE() << name << ": corrupt container opened cleanly";
    return Af1Error::Code::kIo;
  }

  static std::string* path_;
  static std::vector<unsigned char>* golden_;
};

std::string* Af1CorruptionTest::path_ = nullptr;
std::vector<unsigned char>* Af1CorruptionTest::golden_ = nullptr;

TEST_F(Af1CorruptionTest, GoldenOpensClean) {
  MappedDataset ds(*path_);
  EXPECT_EQ(ds.num_nodes(), 120u);
  EXPECT_TRUE(ds.has_index(false));
  EXPECT_TRUE(ds.has_index(true));
  EXPECT_EQ(ds.file_bytes(), golden_->size());
  // Trust-the-file mode opens too (only the header region is touched).
  MappedDataset::Options fast;
  fast.validate_checksums = false;
  MappedDataset ds2(*path_, fast);
  EXPECT_EQ(ds2.num_edges(), ds.num_edges());
}

TEST_F(Af1CorruptionTest, MissingFileIsIo) {
  try {
    MappedDataset ds(temp_path("nonexistent.af1"));
    FAIL() << "opened a nonexistent file";
  } catch (const Af1Error& e) {
    EXPECT_EQ(e.code(), Af1Error::Code::kIo);
  }
}

TEST_F(Af1CorruptionTest, FlippedMagic) {
  auto bytes = *golden_;
  bytes[0] ^= 0xFF;
  EXPECT_EQ(open_code(bytes, "magic.af1"), Af1Error::Code::kBadMagic);
}

TEST_F(Af1CorruptionTest, WrongVersion) {
  auto bytes = *golden_;
  FileHeader h{};
  std::memcpy(&h, bytes.data(), sizeof(h));
  h.version = kFormatVersion + 1;
  std::memcpy(bytes.data(), &h, sizeof(h));
  // Version is checked before the checksum: a future-format file reports
  // "wrong version", not "corrupt".
  EXPECT_EQ(open_code(bytes, "version.af1"), Af1Error::Code::kBadVersion);
}

TEST_F(Af1CorruptionTest, WrongEndianness) {
  auto bytes = *golden_;
  FileHeader h{};
  std::memcpy(&h, bytes.data(), sizeof(h));
  h.endianness = 0x04030201;  // what the other endianness reads back
  std::memcpy(bytes.data(), &h, sizeof(h));
  EXPECT_EQ(open_code(bytes, "endian.af1"), Af1Error::Code::kBadEndianness);
}

TEST_F(Af1CorruptionTest, TamperedHeaderChecksum) {
  auto bytes = *golden_;
  // Flip a bit in num_edges without re-blessing the checksum.
  bytes[offsetof(FileHeader, num_edges)] ^= 0x01;
  EXPECT_EQ(open_code(bytes, "header.af1"), Af1Error::Code::kBadHeader);
}

TEST_F(Af1CorruptionTest, TamperedSectionTable) {
  auto bytes = *golden_;
  // Misalign the first section's offset; bless so the table check runs.
  SectionRecord rec{};
  std::memcpy(&rec, bytes.data() + sizeof(FileHeader), sizeof(rec));
  rec.offset += 1;
  std::memcpy(bytes.data() + sizeof(FileHeader), &rec, sizeof(rec));
  bless_header(bytes);
  EXPECT_EQ(open_code(bytes, "table.af1"),
            Af1Error::Code::kBadSectionTable);
}

TEST_F(Af1CorruptionTest, SectionCountPastCapacity) {
  auto bytes = *golden_;
  FileHeader h{};
  std::memcpy(&h, bytes.data(), sizeof(h));
  h.section_count = kMaxSections + 1;
  std::memcpy(bytes.data(), &h, sizeof(h));
  bless_header(bytes);
  EXPECT_EQ(open_code(bytes, "count.af1"),
            Af1Error::Code::kBadSectionTable);
}

TEST_F(Af1CorruptionTest, SectionPastEndOfFile) {
  auto bytes = *golden_;
  SectionRecord rec{};
  std::memcpy(&rec, bytes.data() + sizeof(FileHeader), sizeof(rec));
  rec.count *= 1000;
  std::memcpy(bytes.data() + sizeof(FileHeader), &rec, sizeof(rec));
  bless_header(bytes);
  EXPECT_EQ(open_code(bytes, "overrun.af1"), Af1Error::Code::kTruncated);
}

TEST_F(Af1CorruptionTest, PayloadBitRot) {
  auto bytes = *golden_;
  bytes[kPayloadStart + 17] ^= 0x80;  // inside the first section
  EXPECT_EQ(open_code(bytes, "bitrot.af1"), Af1Error::Code::kBadChecksum);
}

TEST_F(Af1CorruptionTest, TruncatedMidSection) {
  auto bytes = *golden_;
  bytes.resize(bytes.size() / 2);
  EXPECT_EQ(open_code(bytes, "halved.af1"), Af1Error::Code::kTruncated);
}

TEST_F(Af1CorruptionTest, TruncatedBelowHeader) {
  auto bytes = *golden_;
  bytes.resize(100);
  EXPECT_EQ(open_code(bytes, "stub.af1"), Af1Error::Code::kTruncated);
}

TEST_F(Af1CorruptionTest, TrailingGarbage) {
  auto bytes = *golden_;
  bytes.insert(bytes.end(), 64, 0xAB);
  EXPECT_EQ(open_code(bytes, "trailing.af1"), Af1Error::Code::kBadHeader);
}

TEST_F(Af1CorruptionTest, MissingIndexSectionsAreStructured) {
  const Graph g = small_graph();
  const std::string p = temp_path("noindex.af1");
  ConvertOptions opts;
  opts.index64 = false;
  opts.index32 = false;
  write_container(g, p, opts);
  MappedDataset ds(p);
  EXPECT_FALSE(ds.has_index(false));
  EXPECT_FALSE(ds.has_index(true));
  try {
    (void)ds.make_index(/*compact=*/false);
    FAIL() << "make_index without index sections";
  } catch (const Af1Error& e) {
    EXPECT_EQ(e.code(), Af1Error::Code::kBadShape);
    EXPECT_NE(std::string(e.what()).find("af_index_build"),
              std::string::npos);
  }
}

// Seeded fuzz: random single-byte flips anywhere in the file must either
// open cleanly (flip landed in padding) or throw Af1Error — never crash,
// never trip a sanitizer.
TEST_F(Af1CorruptionTest, RandomByteFlipsNeverEscapeAf1Error) {
  Rng rng(20190707);
  const std::string p = temp_path("fuzz.af1");
  for (int iter = 0; iter < 200; ++iter) {
    auto bytes = *golden_;
    const std::size_t pos =
        static_cast<std::size_t>(rng.next_u64() % bytes.size());
    const auto mask =
        static_cast<unsigned char>(1u << (rng.next_u64() % 8));
    bytes[pos] ^= mask;
    write_all(p, bytes);
    try {
      MappedDataset ds(p);
      // A padding flip: the container still validates. Exercise it a
      // little to prove the views are sound.
      EXPECT_EQ(ds.graph().num_nodes(), 120u);
    } catch (const Af1Error&) {
      // Structured failure: exactly what the contract demands.
    }
  }
}

// Seeded fuzz over truncation lengths: every prefix of a valid container
// must fail structurally.
TEST_F(Af1CorruptionTest, RandomTruncationsNeverEscapeAf1Error) {
  Rng rng(42);
  const std::string p = temp_path("trunc.af1");
  for (int iter = 0; iter < 50; ++iter) {
    auto bytes = *golden_;
    bytes.resize(static_cast<std::size_t>(rng.next_u64() % bytes.size()));
    write_all(p, bytes);
    try {
      MappedDataset ds(p);
      FAIL() << "truncated container (" << bytes.size()
             << " bytes) opened cleanly";
    } catch (const Af1Error& e) {
      EXPECT_EQ(e.code(), Af1Error::Code::kTruncated);
    }
  }
}

TEST(Af1FormatTest, Crc32MatchesKnownVectors) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  // Chaining must equal the one-shot result.
  const std::uint32_t head = crc32("1234", 4);
  EXPECT_EQ(crc32("56789", 5, head), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Af1FormatTest, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(to_string(Af1Error::Code::kBadMagic), "bad-magic");
  EXPECT_STREQ(to_string(Af1Error::Code::kTruncated), "truncated");
  EXPECT_STREQ(to_string(SectionKind::kIndexSlots32), "index-slots32");
}

}  // namespace
}  // namespace af::storage
