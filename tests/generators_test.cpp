#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

Graph build(Graph::Builder b) {
  return b.build(WeightScheme::inverse_degree());
}

// ------------------------------------------------------------------- G(n,m)

TEST(Gnm, ExactEdgeCount) {
  Rng rng(1);
  const Graph g = build(gnm_random(50, 200, rng));
  EXPECT_EQ(g.num_nodes(), 50u);
  EXPECT_EQ(g.num_edges(), 200u);
}

TEST(Gnm, CompleteGraphAsLimit) {
  Rng rng(2);
  const Graph g = build(gnm_random(10, 45, rng));
  EXPECT_EQ(g.num_edges(), 45u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 9u);
}

TEST(Gnm, RejectsTooManyEdges) {
  Rng rng(3);
  EXPECT_THROW(gnm_random(4, 7, rng), precondition_error);
}

TEST(Gnm, DeterministicUnderSeed) {
  Rng a(9), b(9);
  const Graph ga = build(gnm_random(30, 60, a));
  const Graph gb = build(gnm_random(30, 60, b));
  for (NodeId v = 0; v < 30; ++v) {
    ASSERT_EQ(ga.degree(v), gb.degree(v));
    auto na = ga.neighbors(v);
    auto nb = gb.neighbors(v);
    EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin()));
  }
}

// ----------------------------------------------------------------------- BA

TEST(BarabasiAlbert, EdgeCountFormula) {
  Rng rng(4);
  const NodeId n = 500;
  const std::size_t a = 5;
  const Graph g = build(barabasi_albert(n, a, rng));
  EXPECT_EQ(g.num_nodes(), n);
  // Seed clique C(a+1,2) + (n - a - 1)·a.
  const std::uint64_t expected = (a + 1) * a / 2 + (n - a - 1) * a;
  EXPECT_EQ(g.num_edges(), expected);
}

TEST(BarabasiAlbert, MinimumDegreeIsAttachment) {
  Rng rng(5);
  const Graph g = build(barabasi_albert(300, 4, rng));
  for (NodeId v = 0; v < 300; ++v) EXPECT_GE(g.degree(v), 4u);
}

TEST(BarabasiAlbert, HeavyTail) {
  Rng rng(6);
  const Graph g = build(barabasi_albert(2000, 3, rng));
  std::size_t max_deg = 0;
  for (NodeId v = 0; v < 2000; ++v) max_deg = std::max(max_deg, g.degree(v));
  // Preferential attachment produces hubs far above the average (6).
  EXPECT_GT(max_deg, 10 * static_cast<std::size_t>(g.average_degree()));
}

TEST(BarabasiAlbert, RejectsDegenerateParams) {
  Rng rng(7);
  EXPECT_THROW(barabasi_albert(5, 0, rng), precondition_error);
  EXPECT_THROW(barabasi_albert(4, 4, rng), precondition_error);
}

// ----------------------------------------------------------------------- WS

TEST(WattsStrogatz, RingLatticeWhenNoRewiring) {
  Rng rng(8);
  const Graph g = build(watts_strogatz(20, 4, 0.0, rng));
  EXPECT_EQ(g.num_edges(), 40u);  // n·k/2
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 19));
  EXPECT_TRUE(g.has_edge(0, 18));
}

TEST(WattsStrogatz, EdgeCountPreservedUnderRewiring) {
  Rng rng(9);
  const Graph g = build(watts_strogatz(100, 6, 0.3, rng));
  EXPECT_EQ(g.num_edges(), 300u);
}

TEST(WattsStrogatz, FullRewiringChangesStructure) {
  Rng rng(10);
  const Graph g = build(watts_strogatz(200, 4, 1.0, rng));
  // After full rewiring some lattice edge must be gone.
  bool any_missing = false;
  for (NodeId v = 0; v < 200 && !any_missing; ++v) {
    if (!g.has_edge(v, (v + 1) % 200)) any_missing = true;
  }
  EXPECT_TRUE(any_missing);
  EXPECT_EQ(g.num_edges(), 400u);
}

TEST(WattsStrogatz, RejectsOddK) {
  Rng rng(11);
  EXPECT_THROW(watts_strogatz(10, 3, 0.1, rng), precondition_error);
}

// ---------------------------------------------------------------------- SBM

TEST(StochasticBlock, InBlockDenserThanCross) {
  Rng rng(12);
  const Graph g = build(stochastic_block(120, 3, 0.5, 0.02, rng));
  std::uint64_t in = 0, out = 0;
  for (NodeId v = 0; v < 120; ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (u < v) continue;
      (u % 3 == v % 3 ? in : out) += 1;
    }
  }
  // Within-block pairs are fewer but much denser; absolute counts should
  // still favor `in` strongly at these parameters.
  EXPECT_GT(in, out);
}

TEST(StochasticBlock, ZeroProbabilitiesGiveEmptyGraph) {
  Rng rng(13);
  const Graph g = build(stochastic_block(30, 3, 0.0, 0.0, rng));
  EXPECT_EQ(g.num_edges(), 0u);
}

// ------------------------------------------------------- config model

TEST(ConfigurationModel, RealizesRegularSequenceExactly) {
  Rng rng(40);
  // 3-regular request on 20 nodes: collisions are rare but possible, so
  // degrees are ≤ requested and the edge count is close to 30.
  const std::vector<std::size_t> degs(20, 3);
  const Graph g = build(configuration_model(degs, rng));
  std::uint64_t total = 0;
  for (NodeId v = 0; v < 20; ++v) {
    EXPECT_LE(g.degree(v), 3u);
    total += g.degree(v);
  }
  EXPECT_GE(total, 48u);  // at most a few erased pairings
}

TEST(ConfigurationModel, HandlesOddStubCount) {
  Rng rng(41);
  const std::vector<std::size_t> degs{3, 2, 1, 1};  // sum 7, odd
  const Graph g = build(configuration_model(degs, rng));
  EXPECT_LE(g.num_edges(), 3u);  // one stub dropped, no self/multi edges
}

TEST(ConfigurationModel, ZeroDegreeNodesStayIsolated) {
  Rng rng(42);
  const std::vector<std::size_t> degs{2, 2, 0, 2};
  const Graph g = build(configuration_model(degs, rng));
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(ConfigurationModel, RejectsImpossibleDegrees) {
  Rng rng(43);
  EXPECT_THROW(configuration_model({5, 1, 1}, rng), precondition_error);
  EXPECT_THROW(configuration_model({1}, rng), precondition_error);
}

TEST(PowerLawDegrees, RespectsBoundsAndSkew) {
  Rng rng(44);
  const auto degs = power_law_degrees(5000, 2.3, 1, 200, rng);
  ASSERT_EQ(degs.size(), 5000u);
  std::size_t ones = 0, max_deg = 0;
  for (auto d : degs) {
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 200u);
    ones += d == 1;
    max_deg = std::max(max_deg, d);
  }
  // Power law with min 1: the majority of nodes sit at the minimum, and
  // the tail reaches far above the median.
  EXPECT_GT(ones, 2000u);
  EXPECT_GT(max_deg, 50u);
}

TEST(PowerLawDegrees, DefaultCapApplied) {
  Rng rng(45);
  const auto degs = power_law_degrees(400, 2.0, 1, 0, rng);
  const std::size_t cap = static_cast<std::size_t>(std::sqrt(400.0) * 4.0);
  for (auto d : degs) EXPECT_LE(d, cap);
}

TEST(PowerLawDegrees, ValidatesArguments) {
  Rng rng(46);
  EXPECT_THROW(power_law_degrees(10, 1.0, 1, 0, rng), precondition_error);
  EXPECT_THROW(power_law_degrees(10, 2.0, 0, 0, rng), precondition_error);
  EXPECT_THROW(power_law_degrees(10, 2.0, 5, 3, rng), precondition_error);
}

TEST(ConfigurationModel, PowerLawPipelineProducesFringe) {
  Rng rng(47);
  const auto degs = power_law_degrees(2000, 2.2, 1, 0, rng);
  const Graph g = build(configuration_model(degs, rng));
  std::size_t deg1 = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) deg1 += g.degree(v) <= 1;
  // The periphery that BA cannot produce: a large degree-≤1 fraction.
  EXPECT_GT(deg1, g.num_nodes() / 4);
}

// ------------------------------------------------------- deterministic kits

TEST(DeterministicBuilders, PathGraph) {
  const Graph g = build(path_graph(5));
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(0, 4));
}

TEST(DeterministicBuilders, CycleGraph) {
  const Graph g = build(cycle_graph(6));
  EXPECT_EQ(g.num_edges(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(5, 0));
}

TEST(DeterministicBuilders, StarGraph) {
  const Graph g = build(star_graph(7));
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(DeterministicBuilders, CompleteGraph) {
  const Graph g = build(complete_graph(6));
  EXPECT_EQ(g.num_edges(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(DeterministicBuilders, GridGraph) {
  const Graph g = build(grid_graph(3, 4));
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);  // 17
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (1,1)
  EXPECT_TRUE(g.has_edge(0, 4));   // vertical
  EXPECT_TRUE(g.has_edge(0, 1));   // horizontal
  EXPECT_FALSE(g.has_edge(3, 4));  // row wrap must not exist
}

TEST(DeterministicBuilders, ParallelPathsShape) {
  const Graph g = build(parallel_paths(3, 2));
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 9u);  // 3 paths × 3 edges
  EXPECT_EQ(g.degree(0), 3u);    // s touches each path's first node
  EXPECT_EQ(g.degree(1), 3u);    // t touches each path's last node
  // Path 0: 0-2-3-1.
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_TRUE(g.has_edge(3, 1));
}

TEST(DeterministicBuilders, ParallelPathsSingleIntermediate) {
  const Graph g = build(parallel_paths(2, 1));
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(3, 1));
}

TEST(DeterministicBuilders, PreconditionsEnforced) {
  EXPECT_THROW(path_graph(1), precondition_error);
  EXPECT_THROW(cycle_graph(2), precondition_error);
  EXPECT_THROW(star_graph(1), precondition_error);
  EXPECT_THROW(complete_graph(1), precondition_error);
  EXPECT_THROW(parallel_paths(0, 2), precondition_error);
  EXPECT_THROW(parallel_paths(2, 0), precondition_error);
}

}  // namespace
}  // namespace af
