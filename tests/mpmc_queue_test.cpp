#include "util/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/contracts.hpp"

namespace af {
namespace {

TEST(MpmcQueue, PopsInCompareOrderNotInsertionOrder) {
  MpmcQueue<int> q(8);
  for (int v : {5, 1, 4, 2, 3}) EXPECT_TRUE(q.try_push(std::move(v)));
  int out = 0;
  for (int expect = 1; expect <= 5; ++expect) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, expect);
  }
}

/// Orders owned ints by value — the planner's TaskPtr idiom in miniature.
struct PtrLess {
  bool operator()(const std::unique_ptr<int>& a,
                  const std::unique_ptr<int>& b) const {
    return *a < *b;
  }
};

TEST(MpmcQueue, TryPushRefusesAtCapacityAndLeavesItemIntact) {
  MpmcQueue<std::unique_ptr<int>, PtrLess> q(2);
  auto item = std::make_unique<int>(1);
  EXPECT_TRUE(q.try_push(std::move(item)));
  item = std::make_unique<int>(2);
  EXPECT_TRUE(q.try_push(std::move(item)));
  // Full: the push fails and the caller still owns the item, unmoved.
  item = std::make_unique<int>(3);
  EXPECT_FALSE(q.try_push(std::move(item)));
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(*item, 3);
  EXPECT_EQ(q.size(), 2u);

  // A pop frees a slot; admission works again.
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(*out, 1);
  EXPECT_TRUE(q.try_push(std::move(item)));
}

TEST(MpmcQueue, RejectsZeroCapacity) {
  EXPECT_THROW(MpmcQueue<int>(0), precondition_error);
}

TEST(MpmcQueue, CloseRefusesAdmissionButDrainsQueued) {
  MpmcQueue<int> q(4);
  int v = 7;
  EXPECT_TRUE(q.try_push(std::move(v)));
  q.close();
  EXPECT_TRUE(q.closed());
  v = 8;
  EXPECT_FALSE(q.try_push(std::move(v)));
  // Queued elements remain poppable after close; then pop reports end.
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(q.pop(out));
}

TEST(MpmcQueue, DrainClosesAndReturnsUndequeuedElements) {
  MpmcQueue<int> q(8);
  for (int v : {3, 1, 2}) EXPECT_TRUE(q.try_push(std::move(v)));
  std::vector<int> leftover;
  EXPECT_EQ(q.drain(leftover), 3u);
  EXPECT_EQ(leftover, (std::vector<int>{1, 2, 3}));  // dequeue order
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.size(), 0u);
  int out = 0;
  EXPECT_FALSE(q.pop(out));
}

TEST(MpmcQueue, CloseWakesBlockedConsumers) {
  MpmcQueue<int> q(4);
  std::thread consumer([&q] {
    int out = 0;
    EXPECT_FALSE(q.pop(out));  // blocks until close, then reports end
  });
  // Give the consumer time to block; close must wake it either way.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(MpmcQueue, ExtractIfRemovesMatchesInDequeueOrder) {
  MpmcQueue<int> q(16);
  for (int v : {9, 2, 7, 4, 5, 6}) EXPECT_TRUE(q.try_push(std::move(v)));
  std::vector<int> evens;
  EXPECT_EQ(q.extract_if([](int v) { return v % 2 == 0; }, evens), 3u);
  EXPECT_EQ(evens, (std::vector<int>{2, 4, 6}));
  EXPECT_EQ(q.size(), 3u);
  int out = 0;
  for (int expect : {5, 7, 9}) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, expect);
  }
}

TEST(MpmcQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2'000;
  MpmcQueue<std::uint64_t> q(64);

  std::atomic<std::uint64_t> accepted_sum{0};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        std::uint64_t v =
            static_cast<std::uint64_t>(p) * kPerProducer + i + 1;
        if (q.try_push(std::move(v))) {
          accepted_sum.fetch_add(v, std::memory_order_relaxed);
        } else {
          // Bounded queue under open-loop load: rejection is expected,
          // loss is not.
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::uint64_t> popped_count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::uint64_t out = 0;
      while (q.pop(out)) {
        popped_sum.fetch_add(out, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  // Conservation: everything accepted was popped exactly once.
  EXPECT_EQ(popped_sum.load(), accepted_sum.load());
  EXPECT_EQ(popped_count.load() + rejected.load(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

}  // namespace
}  // namespace af
