// Parse-time validation in graph/io: errors carry "file:line" positions,
// and explicit weights are vetted at the boundary — NaN, ±inf,
// non-positive and >1 values are structured errors naming the offending
// line, not downstream contract failures (they feed af_index_build's
// input validation).
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

std::string write_fixture(const std::string& name,
                          const std::string& content) {
  const std::string path = ::testing::TempDir() + "io_valid_" + name;
  std::ofstream f(path);
  f << content;
  EXPECT_TRUE(static_cast<bool>(f));
  return path;
}

/// Loads `content` as a weighted edge list and returns the error message
/// it fails with ("" = loaded cleanly).
std::string weighted_error(const std::string& name,
                           const std::string& content) {
  try {
    load_weighted_edge_list(write_fixture(name, content));
    return "";
  } catch (const std::runtime_error& e) {
    return e.what();
  }
}

TEST(IoValidation, ParseErrorsCarryFileAndLine) {
  const std::string err =
      weighted_error("badint.txt", "# header\n0 1 0.5 0.5\n0 x 0.5 0.5\n");
  EXPECT_NE(err.find("badint.txt:3"), std::string::npos) << err;
  EXPECT_NE(err.find("expected integer"), std::string::npos) << err;
}

TEST(IoValidation, MissingFieldsNameTheLine) {
  const std::string err = weighted_error("short.txt", "0 1 0.5\n");
  EXPECT_NE(err.find("short.txt:1"), std::string::npos) << err;
  EXPECT_NE(err.find("expected 4 fields"), std::string::npos) << err;
}

TEST(IoValidation, RejectsNanWeight) {
  const std::string err =
      weighted_error("nan.txt", "0 1 0.5 0.5\n1 2 nan 0.5\n");
  EXPECT_NE(err.find("nan.txt:2"), std::string::npos) << err;
  EXPECT_NE(err.find("NaN"), std::string::npos) << err;
}

TEST(IoValidation, RejectsInfiniteWeight) {
  const std::string err = weighted_error("inf.txt", "0 1 inf 0.5\n");
  EXPECT_NE(err.find("inf.txt:1"), std::string::npos) << err;
  EXPECT_NE(err.find("not finite"), std::string::npos) << err;
}

TEST(IoValidation, RejectsNegativeAndZeroWeights) {
  std::string err = weighted_error("neg.txt", "0 1 -0.25 0.5\n");
  EXPECT_NE(err.find("neg.txt:1"), std::string::npos) << err;
  EXPECT_NE(err.find("must be positive"), std::string::npos) << err;

  err = weighted_error("zero.txt", "0 1 0.5 0\n");
  EXPECT_NE(err.find("must be positive"), std::string::npos) << err;
}

TEST(IoValidation, RejectsWeightsAboveOne) {
  const std::string err = weighted_error("big.txt", "0 1 0.5 1.5\n");
  EXPECT_NE(err.find("big.txt:1"), std::string::npos) << err;
  EXPECT_NE(err.find("<= 1"), std::string::npos) << err;
}

TEST(IoValidation, ValidWeightedFileLoads) {
  const LoadedGraph lg = load_weighted_edge_list(write_fixture(
      "ok.txt", "# u v w_uv w_vu\n0 1 0.5 0.25\n1 2 0.125 0.5\n"));
  EXPECT_EQ(lg.graph.num_nodes(), 3u);
  EXPECT_EQ(lg.graph.num_edges(), 2u);
  lg.graph.check_invariants();
}

TEST(IoValidation, StreamingLoaderFailsIdentically) {
  const std::string path =
      write_fixture("stream_nan.txt", "0 1 0.5 0.5\n1 2 nan 0.5\n");
  std::string one_shot, streaming;
  try {
    load_weighted_edge_list(path);
  } catch (const std::runtime_error& e) {
    one_shot = e.what();
  }
  try {
    load_weighted_edge_list_streaming(path);
  } catch (const std::runtime_error& e) {
    streaming = e.what();
  }
  EXPECT_FALSE(one_shot.empty());
  EXPECT_EQ(one_shot, streaming);
}

TEST(IoValidation, StreamingPlainLoaderMatchesOneShot) {
  const std::string path = write_fixture(
      "stream_plain.txt", "# c\n5 9\n9 5\n5 5\n9 12\n12 5\n");
  Rng r1(7), r2(7);
  const WeightScheme scheme = WeightScheme::inverse_degree();
  const LoadedGraph a = load_edge_list(path, scheme, &r1);
  const LoadedGraph b = load_edge_list_streaming(path, scheme, &r2);
  EXPECT_EQ(a.id_map, b.id_map);
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (NodeId v = 0; v < a.graph.num_nodes(); ++v) {
    EXPECT_EQ(std::vector<NodeId>(a.graph.neighbors(v).begin(),
                                  a.graph.neighbors(v).end()),
              std::vector<NodeId>(b.graph.neighbors(v).begin(),
                                  b.graph.neighbors(v).end()));
  }
}

}  // namespace
}  // namespace af
