// Stress battery for the serving layer (DESIGN.md §10), labeled `stress`
// in ctest (run by the Release and TSan CI legs, skipped by the
// ASan/UBSan tier1 leg to keep its wall time flat).
//
// The contract under stress: every future plan_async ever returned
// resolves — with a real result, a structured rejection (kOverloaded /
// kDeadlineExceeded), or kShutdown when the planner is destroyed first.
// Never a dangling future, never a hang, under producer concurrency,
// overload, mid-flight destruction, and concurrent cache clearing.
#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

Graph make_graph() {
  Rng rng(11);
  return barabasi_albert(60, 3, rng).build(WeightScheme::inverse_degree());
}

/// The k-th valid (s,t) pair, scanning (s, n−1−s).
std::pair<NodeId, NodeId> valid_pair(const Graph& g, std::size_t k) {
  std::size_t seen = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    const NodeId t = g.num_nodes() - 1 - s;
    if (s == t || g.has_edge(s, t)) continue;
    if (seen++ == k) return {s, t};
  }
  return {0, 2};
}

/// A status every resolved serving future is allowed to carry.
bool allowed_terminal(PlanStatus status) {
  switch (status) {
    case PlanStatus::kOk:
    case PlanStatus::kPmaxBelowDetection:
    case PlanStatus::kOverloaded:
    case PlanStatus::kDeadlineExceeded:
    case PlanStatus::kShutdown:
      return true;
    default:
      return false;
  }
}

TEST(ServingStress, DestructionMidFlightResolvesEveryFuture) {
  const Graph g = make_graph();
  constexpr int kRounds = 5;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;

  std::uint64_t shutdown_total = 0;
  std::uint64_t ok_total = 0;
  for (int round = 0; round < kRounds; ++round) {
    PlannerOptions opts;
    opts.threads = 2;
    opts.async_workers = 2;
    opts.async_queue_depth = 4096;  // admit everything: shutdown, not
                                    // backpressure, is under test here
    auto planner = std::make_unique<Planner>(g, opts);

    // Producers hammer plan_async concurrently; queries are heavy enough
    // (16k walks each) that the queue is still deep when the round's
    // planner dies.
    std::vector<std::vector<std::future<PlanResult>>> futures(kProducers);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        futures[p].reserve(kPerProducer);
        for (int i = 0; i < kPerProducer; ++i) {
          const auto [s, t] =
              valid_pair(g, static_cast<std::size_t>((p + i) % 8));
          QuerySpec q{s, t,
                      MaximizeSpec{.budget = 3, .realizations = 16'000}};
          q.priority = i % 3;
          futures[p].push_back(planner->plan_async(q));
        }
      });
    }
    // Producers only submit (microseconds each); join them, wait until at
    // least one query has actually completed (on an oversubscribed CI
    // machine the workers may not have been scheduled at all yet), then
    // destroy the planner while the bulk of the round's work is still
    // queued or executing. Outstanding futures must resolve with
    // kShutdown, not dangle; in-flight queries finish with real results.
    for (auto& t : producers) t.join();
    const auto one_done = [&] {
      for (auto& per_producer : futures)
        for (auto& f : per_producer)
          if (f.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready)
            return true;
      return false;
    };
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!one_done() && std::chrono::steady_clock::now() < give_up)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    planner.reset();

    for (auto& per_producer : futures) {
      for (auto& f : per_producer) {
        ASSERT_TRUE(f.valid());
        ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "a future dangled across planner destruction";
        const PlanResult r = f.get();
        EXPECT_TRUE(allowed_terminal(r.status))
            << "unexpected status " << to_string(r.status);
        if (r.status == PlanStatus::kShutdown) ++shutdown_total;
        if (r.status == PlanStatus::kOk) ++ok_total;
      }
    }
  }
  // The rounds genuinely exercised both sides of the race: some queries
  // completed, some were cut off by destruction. (2 workers × ms-scale
  // queries vs 200 submissions/round makes both overwhelmingly likely.)
  EXPECT_GT(ok_total, 0u);
  EXPECT_GT(shutdown_total, 0u);
}

TEST(ServingStress, OverloadChurnNeverLosesAFuture) {
  const Graph g = make_graph();
  PlannerOptions opts;
  opts.threads = 2;
  opts.async_workers = 2;
  opts.async_queue_depth = 8;  // tiny: force constant admission churn
  Planner planner(g, opts);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::atomic<std::uint64_t> resolved{0};
  std::atomic<std::uint64_t> overloaded{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto [s, t] =
            valid_pair(g, static_cast<std::size_t>((p * 3 + i) % 8));
        QuerySpec q{s, t, MaximizeSpec{.budget = 3, .realizations = 500}};
        // A slice of traffic carries deadlines, some already hopeless.
        if (i % 5 == 0) {
          q.deadline = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(i % 2 == 0 ? 0 : 500);
        }
        PlanResult r = planner.plan_async(q).get();
        EXPECT_TRUE(allowed_terminal(r.status))
            << "unexpected status " << to_string(r.status);
        resolved.fetch_add(1, std::memory_order_relaxed);
        if (r.status == PlanStatus::kOverloaded) {
          overloaded.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(resolved.load(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  // Closed-loop .get() callers cap in-flight at kProducers, so with a
  // depth-8 queue overload is possible but bounded; the accounting must
  // balance regardless of how often it happened.
  const ServingStats stats = planner.serving_stats();
  EXPECT_EQ(stats.submitted + stats.rejected_overloaded,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.coalesced + stats.expired_deadline);
  EXPECT_EQ(stats.rejected_overloaded, overloaded.load());
  EXPECT_EQ(stats.queued, 0u);
}

TEST(ServingStress, ServingRacingCacheClearsStaysCoherent) {
  // clear_caches() is documented safe against concurrent plan(); the
  // serving workers call plan() — hammer both sides plus the stats
  // readers and require full accounting at the end. (Primarily a TSan
  // target: the assertions are the accounting identity, the sanitizer
  // checks the interleavings.)
  const Graph g = make_graph();
  PlannerOptions opts;
  opts.threads = 2;
  opts.async_workers = 4;
  Planner planner(g, opts);

  std::atomic<bool> stop{false};
  std::thread clearer([&] {
    while (!stop.load()) {
      planner.clear_caches();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread observer([&] {
    while (!stop.load()) {
      (void)planner.cache_stats();
      (void)planner.serving_stats();
      std::this_thread::yield();
    }
  });

  constexpr int kQueries = 300;
  std::vector<std::future<PlanResult>> futures;
  futures.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    const auto [s, t] = valid_pair(g, static_cast<std::size_t>(i % 8));
    futures.push_back(planner.plan_async(
        {s, t, MaximizeSpec{.budget = 3, .realizations = 2'000}}));
  }
  std::uint64_t ok = 0;
  for (auto& f : futures) {
    const PlanResult r = f.get();
    EXPECT_TRUE(allowed_terminal(r.status));
    if (r.status == PlanStatus::kOk) ++ok;
  }
  stop.store(true);
  clearer.join();
  observer.join();

  // Eviction/clearing is a memory policy, never a correctness one: with
  // an unbounded queue and no deadlines, every query must have produced
  // a real answer.
  EXPECT_EQ(ok, static_cast<std::uint64_t>(kQueries));
  const ServingStats stats = planner.serving_stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(stats.completed + stats.coalesced,
            static_cast<std::uint64_t>(kQueries));
}

}  // namespace
}  // namespace af
