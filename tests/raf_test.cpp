#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/raf.hpp"
#include "core/vmax.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

RafConfig fast_config(double alpha = 0.3) {
  RafConfig cfg;
  cfg.alpha = alpha;
  cfg.epsilon = alpha / 10.0;
  cfg.big_n = 1000.0;
  cfg.max_realizations = 20'000;
  cfg.pmax_max_samples = 200'000;
  return cfg;
}

// ------------------------------------------------------------ validation

TEST(RafConfigValidation, RejectsBadParameters) {
  RafConfig cfg;
  cfg.alpha = 0.0;
  EXPECT_THROW(RafAlgorithm{cfg}, precondition_error);
  cfg = RafConfig{};
  cfg.epsilon = cfg.alpha;
  EXPECT_THROW(RafAlgorithm{cfg}, precondition_error);
  cfg = RafConfig{};
  cfg.big_n = 1.0;
  EXPECT_THROW(RafAlgorithm{cfg}, precondition_error);
}

// --------------------------------------------------------------- guarantee

TEST(Raf, MeetsGuaranteeOnParallelPaths) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const RafAlgorithm raf(fast_config(0.3));
  Rng rng(1);
  const RafResult res = raf.run(inst, rng);

  ASSERT_FALSE(res.invitation.empty());
  EXPECT_TRUE(res.invitation.contains(fx.t));

  const double f = test::exact_f(inst, res.invitation);
  const double pmax = fx.pmax();
  EXPECT_GE(f, (raf.config().alpha - raf.config().epsilon) * pmax - 1e-12);
}

TEST(Raf, SmallAlphaPicksOnePathNotAll) {
  // With α = 0.3 on 3 equal paths, covering one path suffices
  // (each path covers 1/3 of type-1 realizations).
  const auto fx = test::ParallelPathFixture::make(3, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const RafAlgorithm raf(fast_config(0.3));
  Rng rng(2);
  const RafResult res = raf.run(inst, rng);
  // One path: t + 2 invitable intermediates = 3 nodes. Allow the solver
  // an extra node of slack but it must not invite everything (7 nodes).
  EXPECT_LE(res.invitation.size(), 5u);
  EXPECT_GE(res.invitation.size(), 3u);
}

TEST(Raf, HighAlphaNeedsAllPaths) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  RafConfig cfg = fast_config(0.95);
  cfg.epsilon = 0.01;
  const RafAlgorithm raf(cfg);
  Rng rng(3);
  const RafResult res = raf.run(inst, rng);
  // Covering ≥ ~94% of realizations requires both paths: 2·1 + t = 3.
  EXPECT_EQ(res.invitation.size(), 3u);
  const double f = test::exact_f(inst, res.invitation);
  EXPECT_GE(f, (0.95 - 0.01) * fx.pmax() - 1e-9);
}

TEST(Raf, InvitationIsSubsetOfVmax) {
  // Every t(g) path lies inside V_max, hence so does the union.
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const auto vmax = compute_vmax(inst);
  const RafAlgorithm raf(fast_config(0.5));
  Rng rng(4);
  const RafResult res = raf.run(inst, rng);
  for (NodeId v : res.invitation.members()) {
    EXPECT_TRUE(std::binary_search(vmax.begin(), vmax.end(), v));
  }
}

TEST(Raf, NeverInvitesSOrNs) {
  Rng rng(5);
  const Graph g =
      barabasi_albert(120, 3, rng).build(WeightScheme::inverse_degree());
  for (NodeId s = 0; s < 120; ++s) {
    for (NodeId t = 0; t < 120; ++t) {
      if (s == t || g.has_edge(s, t)) continue;
      const FriendingInstance inst(g, s, t);
      if (compute_vmax(inst).empty()) continue;
      const RafAlgorithm raf(fast_config(0.2));
      const RafResult res = raf.run(inst, rng);
      EXPECT_FALSE(res.invitation.contains(s));
      for (NodeId v : inst.initial_friends()) {
        EXPECT_FALSE(res.invitation.contains(v));
      }
      return;
    }
  }
}

// -------------------------------------------------------------- diagnostics

TEST(RafDiag, ReportsPipelineState) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const RafAlgorithm raf(fast_config(0.4));
  Rng rng(6);
  const RafResult res = raf.run(inst, rng);

  EXPECT_GT(res.diag.pmax.estimate, 0.0);
  EXPECT_NEAR(res.diag.pmax.estimate, fx.pmax(), 0.15);
  EXPECT_GT(res.diag.l_star, 0.0);
  EXPECT_GT(res.diag.l_used, 0u);
  EXPECT_LE(res.diag.l_used, raf.config().max_realizations);
  EXPECT_GT(res.diag.type1_count, 0u);
  EXPECT_GE(res.diag.covered, res.diag.coverage_target);
  EXPECT_EQ(res.diag.vmax_size, 3u);  // t + 2 t-side intermediates
  EXPECT_NO_THROW(res.diag.params.check());
}

TEST(RafDiag, CoverageTargetIsCeilBetaB1) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const RafAlgorithm raf(fast_config(0.4));
  Rng rng(7);
  const RafResult res = raf.run(inst, rng);
  const auto expected = static_cast<std::uint64_t>(
      std::ceil(res.diag.params.beta *
                static_cast<double>(res.diag.type1_count)));
  EXPECT_EQ(res.diag.coverage_target, std::max<std::uint64_t>(expected, 1));
}

TEST(RafDiag, UnreachableTargetShortCircuits) {
  Graph::Builder b(5);
  b.add_edge(0, 1).add_edge(2, 3).add_edge(3, 4);
  const Graph g = b.build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, 3);
  const RafAlgorithm raf(fast_config());
  Rng rng(8);
  const RafResult res = raf.run(inst, rng);
  EXPECT_TRUE(res.diag.target_unreachable);
  EXPECT_TRUE(res.invitation.empty());
  EXPECT_EQ(res.diag.vmax_size, 0u);
}

TEST(RafDiag, UndetectablySmallPmaxIsNotUnreachable) {
  // A 25-hop chain: p_max = 2^-24 ≈ 6e-8, far below any practical
  // sampling cap — but reachable, which V_max certifies.
  const auto fx = test::ParallelPathFixture::make(1, 25);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  RafConfig cfg = fast_config(0.5);
  cfg.pmax_max_samples = 10'000;
  const RafAlgorithm raf(cfg);
  Rng rng(77);
  const RafResult res = raf.run(inst, rng);
  EXPECT_TRUE(res.invitation.empty());
  EXPECT_TRUE(res.diag.pmax_below_detection);
  EXPECT_FALSE(res.diag.target_unreachable);
  EXPECT_EQ(res.diag.vmax_size, 25u);  // t + 24 invitable intermediates
}

TEST(RafDiag, DeterministicGivenSeed) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const RafAlgorithm raf(fast_config(0.3));
  Rng r1(99), r2(99);
  const auto a = raf.run(inst, r1);
  const auto b = raf.run(inst, r2);
  EXPECT_EQ(a.invitation.members(), b.invitation.members());
  EXPECT_EQ(a.diag.l_used, b.diag.l_used);
}

// ----------------------------------------------------------- run_with_pmax

TEST(RafWithPmax, MatchesFullRunGivenGoodEstimate) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const RafAlgorithm raf(fast_config(0.3));
  Rng rng(21);
  // Supply the exact p_max and |V_max|; the result must meet the same
  // guarantee without spending any DKLR samples.
  const auto vmax = compute_vmax(inst);
  const RafResult res =
      raf.run_with_pmax(inst, fx.pmax(), vmax.size(), rng);
  ASSERT_FALSE(res.invitation.empty());
  const double f = test::exact_f(inst, res.invitation);
  EXPECT_GE(f, (0.3 - 0.03) * fx.pmax() - 1e-12);
  EXPECT_DOUBLE_EQ(res.diag.pmax.estimate, fx.pmax());
  EXPECT_EQ(res.diag.vmax_size, vmax.size());
}

TEST(RafWithPmax, ZeroVmaxFallsBackToN) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const RafAlgorithm raf(fast_config(0.3));
  Rng r1(5), r2(5);
  const auto with_n = raf.run_with_pmax(inst, 0.5, 0, r1);
  const auto with_vmax = raf.run_with_pmax(inst, 0.5, 3, r2);
  // Smaller effective n shrinks l*.
  EXPECT_LT(with_vmax.diag.l_star, with_n.diag.l_star);
}

TEST(RafWithPmax, RejectsBadEstimate) {
  const auto fx = test::ParallelPathFixture::make(1, 1);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const RafAlgorithm raf(fast_config());
  Rng rng(1);
  EXPECT_THROW(raf.run_with_pmax(inst, 0.0, 0, rng), precondition_error);
  EXPECT_THROW(raf.run_with_pmax(inst, 1.5, 0, rng), precondition_error);
}

// ----------------------------------------------------------- run_framework

TEST(RafFramework, MeetsCoverageTarget) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const RafAlgorithm raf(fast_config());
  Rng rng(9);
  const RafResult res = raf.run_framework(inst, 0.7, 5'000, rng);
  EXPECT_GT(res.diag.type1_count, 0u);
  EXPECT_GE(res.diag.covered, res.diag.coverage_target);
  EXPECT_GE(res.diag.coverage_target,
            static_cast<std::uint64_t>(0.7 * res.diag.type1_count));
}

TEST(RafFramework, MoreRealizationsNeverHurtQuality) {
  // Fig. 6's knob: quality (f of the output) should be roughly
  // non-decreasing in l. Compare a tiny and a large budget.
  const auto fx = test::ParallelPathFixture::make(3, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const RafAlgorithm raf(fast_config());
  Rng rng(10);
  const auto small = raf.run_framework(inst, 0.9, 50, rng);
  const auto large = raf.run_framework(inst, 0.9, 20'000, rng);
  const double f_small = test::exact_f(inst, small.invitation);
  const double f_large = test::exact_f(inst, large.invitation);
  EXPECT_GE(f_large + 0.05, f_small);
}

TEST(RafFramework, RejectsBadArguments) {
  const auto fx = test::ParallelPathFixture::make(1, 1);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const RafAlgorithm raf(fast_config());
  Rng rng(11);
  EXPECT_THROW(raf.run_framework(inst, 0.0, 100, rng), precondition_error);
  EXPECT_THROW(raf.run_framework(inst, 1.5, 100, rng), precondition_error);
  EXPECT_THROW(raf.run_framework(inst, 0.5, 0, rng), precondition_error);
}

// -------------------------------------------------------------- solvers

class RafSolverSweep : public testing::TestWithParam<CoverSolverKind> {};

TEST_P(RafSolverSweep, AllBackendsMeetTheTarget) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  RafConfig cfg = fast_config(0.3);
  cfg.solver = GetParam();
  cfg.max_realizations = 3'000;  // keep the exact solver's family small?
  // The exact solver caps at 30 distinct sets: with 3 paths there are
  // exactly 3 distinct t(g) path sets — safe at any sample count.
  const RafAlgorithm raf(cfg);
  Rng rng(12);
  const RafResult res = raf.run(inst, rng);
  EXPECT_GE(res.diag.covered, res.diag.coverage_target);
  const double f = test::exact_f(inst, res.invitation);
  EXPECT_GE(f, (cfg.alpha - cfg.epsilon) * fx.pmax() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Backends, RafSolverSweep,
                         testing::Values(CoverSolverKind::kGreedy,
                                         CoverSolverKind::kDensest,
                                         CoverSolverKind::kSmallestSets,
                                         CoverSolverKind::kExact),
                         [](const auto& info) {
                           switch (info.param) {
                             case CoverSolverKind::kGreedy: return "greedy";
                             case CoverSolverKind::kDensest: return "densest";
                             case CoverSolverKind::kSmallestSets:
                               return "smallest";
                             case CoverSolverKind::kExact: return "exact";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace af
