#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/blockcut.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

Graph build(Graph::Builder b) {
  return b.build(WeightScheme::inverse_degree());
}

/// Reference: all vertices on some simple a–t path by exhaustive DFS.
std::vector<NodeId> brute_simple_path_vertices(const Graph& g, NodeId a,
                                               NodeId t) {
  std::set<NodeId> result;
  std::vector<NodeId> path;
  std::vector<char> on_path(g.num_nodes(), 0);
  auto dfs = [&](auto&& self, NodeId v) -> void {
    path.push_back(v);
    on_path[v] = 1;
    if (v == t) {
      for (NodeId x : path) result.insert(x);
    } else {
      for (NodeId u : g.neighbors(v)) {
        if (!on_path[u]) self(self, u);
      }
    }
    on_path[v] = 0;
    path.pop_back();
  };
  dfs(dfs, a);
  return {result.begin(), result.end()};
}

// ----------------------------------------------------------- decompositions

TEST(BlockCut, PathGraphBlocksAreEdges) {
  const Graph g = build(path_graph(5));
  const BlockCutTree bct(g);
  EXPECT_EQ(bct.num_blocks(), 4u);
  // Interior nodes are articulation points; endpoints are not.
  EXPECT_FALSE(bct.is_cut_vertex(0));
  EXPECT_TRUE(bct.is_cut_vertex(1));
  EXPECT_TRUE(bct.is_cut_vertex(2));
  EXPECT_TRUE(bct.is_cut_vertex(3));
  EXPECT_FALSE(bct.is_cut_vertex(4));
}

TEST(BlockCut, CycleIsOneBlockNoCuts) {
  const Graph g = build(cycle_graph(6));
  const BlockCutTree bct(g);
  EXPECT_EQ(bct.num_blocks(), 1u);
  EXPECT_EQ(bct.block_vertices(0).size(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_FALSE(bct.is_cut_vertex(v));
}

TEST(BlockCut, StarCenterIsTheOnlyCut) {
  const Graph g = build(star_graph(5));
  const BlockCutTree bct(g);
  EXPECT_EQ(bct.num_blocks(), 4u);
  EXPECT_TRUE(bct.is_cut_vertex(0));
  for (NodeId v = 1; v < 5; ++v) EXPECT_FALSE(bct.is_cut_vertex(v));
  EXPECT_EQ(bct.blocks_of(0).size(), 4u);
  EXPECT_EQ(bct.blocks_of(1).size(), 1u);
}

TEST(BlockCut, TwoTrianglesSharingAVertex) {
  Graph::Builder b(5);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);  // triangle A
  b.add_edge(2, 3).add_edge(3, 4).add_edge(4, 2);  // triangle B
  const Graph g = build(std::move(b));
  const BlockCutTree bct(g);
  EXPECT_EQ(bct.num_blocks(), 2u);
  EXPECT_TRUE(bct.is_cut_vertex(2));
  for (NodeId v : {0u, 1u, 3u, 4u}) EXPECT_FALSE(bct.is_cut_vertex(v));
  for (std::size_t blk = 0; blk < 2; ++blk) {
    EXPECT_EQ(bct.block_vertices(blk).size(), 3u);
  }
}

TEST(BlockCut, BridgePlusCycle) {
  // Cycle 0-1-2-3-0 with a pendant path 3-4-5.
  Graph::Builder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).add_edge(3, 0);
  b.add_edge(3, 4).add_edge(4, 5);
  const Graph g = build(std::move(b));
  const BlockCutTree bct(g);
  EXPECT_EQ(bct.num_blocks(), 3u);  // cycle + 2 bridges
  EXPECT_TRUE(bct.is_cut_vertex(3));
  EXPECT_TRUE(bct.is_cut_vertex(4));
  EXPECT_FALSE(bct.is_cut_vertex(0));
  EXPECT_FALSE(bct.is_cut_vertex(5));
}

TEST(BlockCut, DisconnectedGraphHandled) {
  Graph::Builder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
  b.add_edge(3, 4);
  const Graph g = build(std::move(b));
  const BlockCutTree bct(g);
  EXPECT_EQ(bct.num_blocks(), 2u);
  EXPECT_TRUE(bct.blocks_of(5).empty());  // isolated vertex
}

// ------------------------------------------------- simple-path membership

TEST(SimplePaths, OnPathGraphEverythingBetween) {
  const Graph g = build(path_graph(6));
  const BlockCutTree bct(g);
  EXPECT_EQ(bct.vertices_on_simple_paths(1, 4),
            (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(SimplePaths, CycleIncludesBothArcs) {
  const Graph g = build(cycle_graph(5));
  const BlockCutTree bct(g);
  const auto verts = bct.vertices_on_simple_paths(0, 2);
  EXPECT_EQ(verts.size(), 5u);  // both arcs of the cycle qualify
}

TEST(SimplePaths, DeadEndBranchExcluded) {
  // Path 0-1-2 plus a dead-end branch 1-3.
  Graph::Builder b(4);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(1, 3);
  const Graph g = build(std::move(b));
  const BlockCutTree bct(g);
  EXPECT_EQ(bct.vertices_on_simple_paths(0, 2),
            (std::vector<NodeId>{0, 1, 2}));
}

TEST(SimplePaths, DisconnectedGivesEmpty) {
  Graph::Builder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const Graph g = build(std::move(b));
  const BlockCutTree bct(g);
  EXPECT_TRUE(bct.vertices_on_simple_paths(0, 3).empty());
}

TEST(SimplePaths, SameTerminalReturnsSingleton) {
  const Graph g = build(path_graph(3));
  const BlockCutTree bct(g);
  EXPECT_EQ(bct.vertices_on_simple_paths(1, 1), (std::vector<NodeId>{1}));
}

TEST(SimplePaths, CutVertexTerminals) {
  // Star: center 0 to leaf 2 — only those two lie on the path.
  const Graph g = build(star_graph(5));
  const BlockCutTree bct(g);
  EXPECT_EQ(bct.vertices_on_simple_paths(0, 2), (std::vector<NodeId>{0, 2}));
  // Leaf to leaf passes through the center only.
  EXPECT_EQ(bct.vertices_on_simple_paths(1, 3),
            (std::vector<NodeId>{0, 1, 3}));
}

// Property: exact membership matches exhaustive enumeration on random
// small graphs across densities.
class SimplePathProperty : public testing::TestWithParam<int> {};

TEST_P(SimplePathProperty, MatchesBruteForce) {
  Rng rng(1000 + GetParam());
  const NodeId n = 9;
  const std::uint64_t m = 6 + static_cast<std::uint64_t>(GetParam()) % 12;
  const Graph g = build(gnm_random(n, m, rng));
  const BlockCutTree bct(g);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId t = 0; t < n; ++t) {
      if (a == t) continue;
      const auto got = bct.vertices_on_simple_paths(a, t);
      const auto want = brute_simple_path_vertices(g, a, t);
      EXPECT_EQ(got, want) << "a=" << a << " t=" << t << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SimplePathProperty,
                         testing::Range(0, 20));

}  // namespace
}  // namespace af
