#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace af {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel lvl : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                       LogLevel::kError, LogLevel::kOff}) {
    set_log_level(lvl);
    EXPECT_EQ(log_level(), lvl);
  }
}

TEST(Log, EmissionBelowThresholdIsSuppressed) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Nothing observable to assert on stderr portably; the contract is
  // simply that suppressed logging is safe and cheap.
  testing::internal::CaptureStderr();
  log_debug() << "hidden " << 42;
  log_error() << "also hidden";
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Log, EmissionAtThresholdIsWritten) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log_info() << "visible " << 7;
  log_debug() << "filtered";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[info] visible 7"), std::string::npos);
  EXPECT_EQ(err.find("filtered"), std::string::npos);
}

// Regression (static-correctness PR): the level threshold used to be a
// plain global, so flipping it while workers logged was a data race that
// TSan flagged. Now it is a relaxed atomic; this test hammers both sides
// so the TSan CI leg keeps the fix honest.
TEST(Log, ConcurrentLevelFlipsAndLoggingAreRaceFree) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  std::atomic<bool> stop{false};
  std::thread flipper([&stop] {
    for (int i = 0; i < 2000 && !stop.load(); ++i) {
      set_log_level(i % 2 == 0 ? LogLevel::kOff : LogLevel::kError);
    }
    set_log_level(LogLevel::kOff);
  });
  std::vector<std::thread> loggers;
  for (int t = 0; t < 4; ++t) {
    loggers.emplace_back([] {
      for (int i = 0; i < 500; ++i) {
        (void)log_level();
        log_line(LogLevel::kDebug, "below threshold either way");
      }
    });
  }
  for (std::thread& th : loggers) th.join();
  stop.store(true);
  flipper.join();
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, StreamFormatsArbitraryTypes) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  log_warn() << "x=" << 1.5 << " y=" << std::string("abc") << " z=" << true;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[warn] x=1.5 y=abc z=1"), std::string::npos);
}

}  // namespace
}  // namespace af
