#include <gtest/gtest.h>

#include "util/log.hpp"

namespace af {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel lvl : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                       LogLevel::kError, LogLevel::kOff}) {
    set_log_level(lvl);
    EXPECT_EQ(log_level(), lvl);
  }
}

TEST(Log, EmissionBelowThresholdIsSuppressed) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Nothing observable to assert on stderr portably; the contract is
  // simply that suppressed logging is safe and cheap.
  testing::internal::CaptureStderr();
  log_debug() << "hidden " << 42;
  log_error() << "also hidden";
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Log, EmissionAtThresholdIsWritten) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log_info() << "visible " << 7;
  log_debug() << "filtered";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[info] visible 7"), std::string::npos);
  EXPECT_EQ(err.find("filtered"), std::string::npos);
}

TEST(Log, StreamFormatsArbitraryTypes) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  log_warn() << "x=" << 1.5 << " y=" << std::string("abc") << " z=" << true;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[warn] x=1.5 y=abc z=1"), std::string::npos);
}

}  // namespace
}  // namespace af
