#include <gtest/gtest.h>

#include <cmath>

#include "core/eqsystem.hpp"
#include "util/contracts.hpp"

namespace af {
namespace {

struct Case {
  double alpha;
  double epsilon;
  Eps0Policy policy;
  std::uint64_t n;
  std::string name;
};

class EqSystemSweep : public testing::TestWithParam<Case> {};

TEST_P(EqSystemSweep, SatisfiesEquationSystemOne) {
  const auto& c = GetParam();
  const RafParameters p =
      solve_equation_system(c.alpha, c.epsilon, c.policy, c.n);
  // check() enforces Eqs. (12), (13) and the parameter ranges.
  EXPECT_NO_THROW(p.check());
  EXPECT_LE(std::abs(p.residual()), 1e-9);
  EXPECT_GT(p.beta, 0.0);
  EXPECT_LT(p.beta, c.alpha);  // β = (α−τ)/(1+τ) < α for τ > 0
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EqSystemSweep,
    testing::Values(
        Case{0.1, 0.01, Eps0Policy::kBalanced, 1000, "a10e1b"},
        Case{0.1, 0.05, Eps0Policy::kBalanced, 1000, "a10e5b"},
        Case{0.3, 0.01, Eps0Policy::kBalanced, 7000, "a30e1b"},
        Case{0.5, 0.1, Eps0Policy::kBalanced, 100, "a50e10b"},
        Case{0.9, 0.2, Eps0Policy::kBalanced, 10, "a90e20b"},
        Case{1.0, 0.5, Eps0Policy::kBalanced, 5, "a100e50b"},
        Case{0.1, 0.01, Eps0Policy::kPaperProportional, 10, "a10e1p10"},
        Case{0.1, 0.01, Eps0Policy::kPaperProportional, 7000, "a10e1p7k"},
        Case{0.3, 0.05, Eps0Policy::kPaperProportional, 1000000,
             "a30e5p1m"},
        Case{0.99, 0.9, Eps0Policy::kBalanced, 50, "a99e90b"}),
    [](const auto& info) { return info.param.name; });

TEST(EqSystem, BalancedUsesHalfEpsilon) {
  const RafParameters p =
      solve_equation_system(0.2, 0.02, Eps0Policy::kBalanced, 500);
  EXPECT_DOUBLE_EQ(p.eps0, 0.01);
  EXPECT_FALSE(p.clamped);
}

TEST(EqSystem, PaperPolicyClampsForLargeN) {
  const RafParameters p = solve_equation_system(
      0.1, 0.01, Eps0Policy::kPaperProportional, 1'000'000);
  // Literal ε0 = n·ε1 would exceed 1 — the clamp must engage and the
  // system must still hold exactly.
  EXPECT_TRUE(p.clamped);
  EXPECT_DOUBLE_EQ(p.eps0, kEps0Max);
  EXPECT_NO_THROW(p.check());
}

TEST(EqSystem, PaperPolicyUnclampedForTinyN) {
  const RafParameters p =
      solve_equation_system(0.5, 0.4, Eps0Policy::kPaperProportional, 2);
  if (!p.clamped) {
    EXPECT_NEAR(p.eps0, 2.0 * p.eps1, 1e-9);
  }
  EXPECT_NO_THROW(p.check());
}

TEST(EqSystem, SmallerEpsilonGivesSmallerEps1) {
  const auto loose =
      solve_equation_system(0.2, 0.1, Eps0Policy::kBalanced, 100);
  const auto tight =
      solve_equation_system(0.2, 0.01, Eps0Policy::kBalanced, 100);
  EXPECT_LT(tight.eps1, loose.eps1);
  // Tighter slack → β closer to α.
  EXPECT_GT(tight.beta, loose.beta);
}

TEST(EqSystem, RejectsInvalidInputs) {
  EXPECT_THROW(solve_equation_system(0.0, 0.01, Eps0Policy::kBalanced, 10),
               precondition_error);
  EXPECT_THROW(solve_equation_system(1.2, 0.01, Eps0Policy::kBalanced, 10),
               precondition_error);
  EXPECT_THROW(solve_equation_system(0.1, 0.1, Eps0Policy::kBalanced, 10),
               precondition_error);  // ε ≥ α
  EXPECT_THROW(solve_equation_system(0.1, 0.01, Eps0Policy::kBalanced, 0),
               precondition_error);
}

TEST(EqSystem, DescribeMentionsPolicy) {
  const auto p = solve_equation_system(0.1, 0.01, Eps0Policy::kBalanced, 10);
  EXPECT_NE(p.describe().find("balanced"), std::string::npos);
}

// ----------------------------------------------------------------- Eq. (16)

TEST(RequiredRealizations, MonotoneInInputs) {
  const auto p = solve_equation_system(0.1, 0.01, Eps0Policy::kBalanced, 100);
  const double base = required_realizations(p, 100, 1e5, 0.05);
  EXPECT_GT(base, 0.0);
  // More nodes → more realizations (union bound over 2^n sets).
  EXPECT_GT(required_realizations(p, 1000, 1e5, 0.05), base);
  // Larger p_max → fewer realizations.
  EXPECT_LT(required_realizations(p, 100, 1e5, 0.5), base);
  // Higher confidence → more realizations.
  EXPECT_GT(required_realizations(p, 100, 1e8, 0.05), base);
}

TEST(RequiredRealizations, MatchesFormulaDirectly) {
  const auto p = solve_equation_system(0.2, 0.05, Eps0Policy::kBalanced, 50);
  const double n = 50, big_n = 1000, pmax = 0.1;
  const double expected =
      (std::log(2.0) + std::log(big_n) + n * std::log(2.0)) *
      (2.0 + p.eps1 * (1.0 - p.eps0)) /
      (p.eps1 * p.eps1 * (1.0 - p.eps0) * (1.0 - p.eps0) * pmax);
  EXPECT_NEAR(required_realizations(p, 50, big_n, pmax), expected, 1e-6);
}

TEST(RequiredRealizations, RejectsZeroPmax) {
  const auto p = solve_equation_system(0.1, 0.01, Eps0Policy::kBalanced, 10);
  EXPECT_THROW(required_realizations(p, 10, 100, 0.0), precondition_error);
}

TEST(RequiredRealizations, SecIIICVmaxRefinementShrinksBudget) {
  // Using |V_max| < n in Eq. 16 reduces l* — the Sec. III-C observation.
  const auto p = solve_equation_system(0.1, 0.01, Eps0Policy::kBalanced, 30);
  EXPECT_LT(required_realizations(p, 30, 1e5, 0.05),
            required_realizations(p, 10'000, 1e5, 0.05));
}

}  // namespace
}  // namespace af
