// Round-trip determinism over the .af1 container (storage/): a graph
// serialized with write_container and reopened through MappedDataset
// must reproduce the in-RAM build bit for bit — the CSR arrays byte
// equal, and Planner answers identical across (s,t) pairs × both index
// types × SIMD on/off. This is the contract that makes the mapped
// cold-start path a pure latency optimization, never a correctness one.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#else
#include <process.h>
#define getpid _getpid
#endif

#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/weights.hpp"
#include "storage/convert.hpp"
#include "storage/mapped_dataset.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

Graph fixture_graph() {
  // Random-normalized weights: exercises scheme-rng determinism through
  // the serialization boundary, not just the degree-derived defaults.
  Rng rng(20190707);
  return barabasi_albert(400, 3, rng).build(
      WeightScheme::random_normalized(0.9), &rng);
}

/// Per-process container path: every discovered TEST is its own ctest
/// process, and a parallel ctest run lets one process rewrite the
/// container under another's live mapping if they share a path.
std::string container_path() {
  static const std::string tag = std::to_string(::getpid());
  return ::testing::TempDir() + "af1_roundtrip_" + tag + ".af1";
}

template <typename T>
void expect_span_bytes_equal(std::span<const T> a, std::span<const T> b,
                             const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0) << what;
}

/// PlanResult equality at the bit level, for the fields a serving system
/// returns: status, the invitation set (order included), the coverage
/// estimate and the diagnostic counts that derive from sampling.
void expect_same_plan(const PlanResult& a, const PlanResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.invitation.members(), b.invitation.members()) << what;
  EXPECT_EQ(std::memcmp(&a.sample_coverage, &b.sample_coverage,
                        sizeof(double)),
            0)
      << what;
  EXPECT_EQ(a.diag.l_used, b.diag.l_used) << what;
  EXPECT_EQ(a.diag.type1_count, b.diag.type1_count) << what;
}

TEST(StorageRoundtrip, GraphArraysAreByteIdentical) {
  const Graph g = fixture_graph();
  storage::write_container(g, container_path());
  storage::MappedDataset ds(container_path());

  EXPECT_TRUE(ds.graph().is_external());
  EXPECT_FALSE(g.is_external());
  EXPECT_EQ(ds.num_nodes(), g.num_nodes());
  EXPECT_EQ(ds.num_edges(), g.num_edges());

  expect_span_bytes_equal(g.raw_offsets(), ds.graph().raw_offsets(),
                          "offsets");
  expect_span_bytes_equal(g.raw_adjacency(), ds.graph().raw_adjacency(),
                          "adjacency");
  expect_span_bytes_equal(g.raw_in_weights(), ds.graph().raw_in_weights(),
                          "in_weights");
  expect_span_bytes_equal(g.raw_out_weights(), ds.graph().raw_out_weights(),
                          "out_weights");
  expect_span_bytes_equal(g.raw_total_in_weight(),
                          ds.graph().raw_total_in_weight(),
                          "total_in_weight");

  // The mapped graph passes the full invariant sweep — the views behave
  // exactly like owned arrays.
  ds.graph().check_invariants();

  // The materialized leftover-mass section matches the derived values.
  const auto mass = ds.leftover_mass();
  ASSERT_EQ(mass.size(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double expect = g.leftover_mass(v);
    EXPECT_EQ(std::memcmp(&mass[v], &expect, sizeof(double)), 0);
  }
}

TEST(StorageRoundtrip, IndexTablesAreTheInRamBytes) {
  const Graph g = fixture_graph();
  storage::write_container(g, container_path());
  storage::MappedDataset ds(container_path());

  // Rebuild both indices in RAM and compare against samplers
  // reconstructed from the map: identical slot count and, because the
  // sections hold the builder's exact bytes, identical draws from
  // identical rng streams.
  const SamplingIndex ram64(g, SimdLevel::kScalar);
  const CompactSamplingIndex ram32(g, SimdLevel::kScalar);
  const auto map64 = ds.make_index(/*compact=*/false, SimdLevel::kScalar);
  const auto map32 = ds.make_index(/*compact=*/true, SimdLevel::kScalar);
  ASSERT_EQ(ram64.num_slots(), map64->num_slots());
  ASSERT_EQ(ram32.num_slots(), map32->num_slots());

  Rng a(123), b(123);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(ram64.sample_selection(v, a), map64->sample_selection(v, b));
  }
  Rng c(456), d(456);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(ram32.sample_selection(v, c), map32->sample_selection(v, d));
  }

  // Copy mode (the NUMA replication path) materializes the same tables.
  const auto copy64 = ds.make_index(/*compact=*/false, SimdLevel::kScalar,
                                    /*copy=*/true);
  Rng e(789), f(789);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(copy64->sample_selection(v, e), map64->sample_selection(v, f));
  }
}

// The headline contract: identical PlanResults across (s,t) pairs × both
// index types × SIMD on/off, in-RAM vs mapped.
TEST(StorageRoundtrip, PlansAreBitIdenticalAcrossTheMatrix) {
  const Graph g = fixture_graph();
  storage::write_container(g, container_path());
  storage::MappedDataset ds(container_path());

  const NodeId pairs[][2] = {{0, 200}, {5, 333}, {17, 399}};
  for (const bool compact : {false, true}) {
    for (const SimdLevel simd : {SimdLevel::kScalar, SimdLevel::kAuto}) {
      PlannerOptions opt;
      opt.compact_index = compact;
      opt.simd = simd;
      opt.threads = 2;
      opt.pmax_max_samples = 50'000;

      Planner in_ram(g, opt);
      const auto mapped = Planner::from_mapped(ds, opt);
      const std::string ctx = std::string(compact ? "compact" : "full") +
                              (simd == SimdLevel::kAuto ? "/auto" : "/scalar");

      for (const auto& p : pairs) {
        MinimizeSpec mini;
        mini.alpha = 0.3;
        mini.epsilon = 0.03;
        mini.big_n = 1000.0;
        mini.max_realizations = 10'000;
        QuerySpec qmin{p[0], p[1], mini};
        expect_same_plan(in_ram.plan(qmin), mapped->plan(qmin),
                         ctx + " minimize (" + std::to_string(p[0]) + "," +
                             std::to_string(p[1]) + ")");

        QuerySpec qmax{p[0], p[1],
                       MaximizeSpec{.budget = 4, .realizations = 3000}};
        expect_same_plan(in_ram.plan(qmax), mapped->plan(qmax),
                         ctx + " maximize (" + std::to_string(p[0]) + "," +
                             std::to_string(p[1]) + ")");
      }
    }
  }
}

// The acceptance telemetry: a mapped planner reports mapped=true and an
// index-build time of exactly zero — nothing was constructed on the
// serving path; an in-RAM planner reports the opposite.
TEST(StorageRoundtrip, CacheStatsExposeTheMappedPath) {
  const Graph g = fixture_graph();
  storage::write_container(g, container_path());
  storage::MappedDataset ds(container_path());

  PlannerOptions opt;
  opt.threads = 2;
  Planner in_ram(g, opt);
  const auto mapped = Planner::from_mapped(ds, opt);

  const auto ram_stats = in_ram.cache_stats();
  EXPECT_FALSE(ram_stats.mapped);
  EXPECT_GT(ram_stats.index_build_seconds, 0.0);

  const auto map_stats = mapped->cache_stats();
  EXPECT_TRUE(map_stats.mapped);
  EXPECT_EQ(map_stats.index_build_seconds, 0.0);
  EXPECT_EQ(map_stats.index_slots, ram_stats.index_slots);
  EXPECT_GE(map_stats.index_replicas, 1u);
}

// The streaming two-pass loaders must reproduce the one-shot loaders bit
// for bit on a messy file (comments, blanks, duplicate lines, reversed
// repeats, self-loops, sparse original ids) — they are the converter's
// parsing path, so this equality is what extends round-trip determinism
// all the way back to the text input.
TEST(StorageRoundtrip, StreamingLoaderMatchesOneShot) {
  const std::string path = ::testing::TempDir() + "af1_stream_edges.txt";
  {
    std::ofstream f(path);
    f << "# comment\n\n"
         "10 20\n"
         "20 10\n"   // reversed repeat: skipped
         "7 7\n"     // self-loop: skipped, but 7 still gets an id
         "10 20\n"   // duplicate: skipped
         "20 30\n"
         "% also a comment\n"
         "1000000 10\n"
         "30 7\n";
  }
  Rng r1(99), r2(99);
  const WeightScheme scheme = WeightScheme::random_normalized(0.8);
  const LoadedGraph a = load_edge_list(path, scheme, &r1);
  const LoadedGraph b = load_edge_list_streaming(path, scheme, &r2);
  EXPECT_EQ(a.id_map, b.id_map);
  expect_span_bytes_equal(a.graph.raw_offsets(), b.graph.raw_offsets(),
                          "stream offsets");
  expect_span_bytes_equal(a.graph.raw_adjacency(), b.graph.raw_adjacency(),
                          "stream adjacency");
  expect_span_bytes_equal(a.graph.raw_in_weights(),
                          b.graph.raw_in_weights(), "stream in_weights");

  // And through the container: text → streaming load → .af1 → mapped
  // graph still byte-equals the one-shot in-RAM load.
  const std::string cpath = ::testing::TempDir() + "af1_stream.af1";
  storage::write_container(b.graph, cpath);
  storage::MappedDataset ds(cpath);
  expect_span_bytes_equal(a.graph.raw_adjacency(),
                          ds.graph().raw_adjacency(), "text->af1 adjacency");
  expect_span_bytes_equal(a.graph.raw_in_weights(),
                          ds.graph().raw_in_weights(),
                          "text->af1 in_weights");
}

}  // namespace
}  // namespace af
