// Shared test helpers: exact oracles by exhaustive enumeration, brute-force
// reference implementations, and small handcrafted graphs.
//
// The enumeration oracles make the probabilistic components testable
// without statistical slack: on graphs where Π_v (deg(v)+1) is small we
// can integrate over the entire realization space exactly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "diffusion/exact.hpp"
#include "diffusion/instance.hpp"
#include "diffusion/invitation.hpp"
#include "diffusion/realization.hpp"
#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "graph/weights.hpp"

namespace af::test {

/// Exact f(I) via the library's exhaustive enumerator (diffusion/exact.hpp).
/// Kept under the test namespace so existing call sites read as "oracle".
inline double exact_f(const FriendingInstance& inst,
                      const InvitationSet& invited) {
  return ::af::exact_f(inst, invited);
}

/// Exact p_max = f(V).
inline double exact_pmax(const FriendingInstance& inst) {
  return ::af::exact_pmax(inst);
}

/// Brute-force V_max: every node on a simple path (within
/// V ∖ ({s} ∪ N_s)) from an N_s-adjacent node to t, traced by exhaustive
/// DFS from t. Exponential — tiny graphs only.
inline std::vector<NodeId> brute_force_vmax(const FriendingInstance& inst) {
  const Graph& g = inst.graph();
  std::set<NodeId> result;
  std::vector<NodeId> path;
  std::vector<char> on_path(g.num_nodes(), 0);

  auto allowed = [&](NodeId v) {
    return v != inst.initiator() && !inst.is_initial_friend(v);
  };
  auto adjacent_to_ns = [&](NodeId v) {
    for (NodeId u : g.neighbors(v)) {
      if (inst.is_initial_friend(u)) return true;
    }
    return false;
  };

  auto dfs = [&](auto&& self, NodeId v) -> void {
    path.push_back(v);
    on_path[v] = 1;
    if (adjacent_to_ns(v)) {
      for (NodeId x : path) result.insert(x);
    }
    for (NodeId u : g.neighbors(v)) {
      if (!allowed(u) || on_path[u]) continue;
      self(self, u);
    }
    on_path[v] = 0;
    path.pop_back();
  };
  if (allowed(inst.target())) dfs(dfs, inst.target());
  return {result.begin(), result.end()};
}

/// Brute-force minimum p-union: minimum union size over all subfamilies
/// with total multiplicity ≥ p. Returns the optimal union size.
inline std::size_t brute_force_mpu_size(
    const std::vector<std::vector<NodeId>>& sets,
    const std::vector<std::uint64_t>& mult, std::uint64_t p) {
  const std::size_t ns = sets.size();
  std::size_t best = static_cast<std::size_t>(-1);
  for (std::uint64_t mask = 0; mask < (1ULL << ns); ++mask) {
    std::uint64_t covered = 0;
    std::set<NodeId> uni;
    for (std::size_t i = 0; i < ns; ++i) {
      if (!(mask >> i & 1)) continue;
      covered += mult[i];
      uni.insert(sets[i].begin(), sets[i].end());
    }
    if (covered >= p) best = std::min(best, uni.size());
  }
  return best;
}

/// A weighted path graph 0-1-…-(n-1) with explicit uniform directional
/// weight w on every arc (must satisfy per-node normalization: nodes of
/// degree 2 receive 2w ≤ 1).
inline Graph weighted_path(NodeId n, double w) {
  Graph::Builder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1, w, w);
  return b.build_with_explicit_weights();
}

/// The canonical analytic instance: `count` disjoint s–t paths with `len`
/// intermediates each, inverse-degree weights. Node 0 = s, node 1 = t;
/// path p's intermediates are 2+p·len … 2+p·len+len−1 (s-side first).
///
/// Analytics (backward-walk argument): N_s is the set of s-side
/// intermediates. t selects a path end w.p. 1/count each; every interior
/// intermediate steps toward s w.p. 1/2 (its other option walks back into
/// the visited path — a cycle). Hence
///   p_max = (1/2)^(len−1)                        (any count ≥ 1)
///   f(one full path + t invited) = (1/count)·(1/2)^(len−1)  (len ≥ 2)
/// and for len = 1, p_max = 1 (t's neighbors are all in N_s).
struct ParallelPathFixture {
  Graph graph;
  NodeId s = 0;
  NodeId t = 1;
  std::size_t count = 0;
  std::size_t len = 0;

  static ParallelPathFixture make(std::size_t count, std::size_t len);

  double pmax() const {
    double p = 1.0;
    for (std::size_t i = 1; i < len; ++i) p *= 0.5;
    return p;
  }

  /// Invitation covering exactly path p (its intermediates + t).
  InvitationSet invite_path(std::size_t p) const {
    InvitationSet inv(graph.num_nodes());
    inv.add(t);
    for (std::size_t i = 0; i < len; ++i) {
      inv.add(static_cast<NodeId>(2 + p * len + i));
    }
    return inv;
  }
};

inline ParallelPathFixture ParallelPathFixture::make(std::size_t count,
                                                     std::size_t len) {
  ParallelPathFixture fx;
  fx.count = count;
  fx.len = len;
  Graph::Builder b(static_cast<NodeId>(2 + count * len));
  NodeId next = 2;
  for (std::size_t p = 0; p < count; ++p) {
    NodeId prev = 0;
    for (std::size_t i = 0; i < len; ++i) {
      b.add_edge(prev, next);
      prev = next++;
    }
    b.add_edge(prev, 1);
  }
  fx.graph = b.build(WeightScheme::inverse_degree());
  return fx;
}

}  // namespace af::test
