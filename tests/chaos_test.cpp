// Randomized fault-schedule chaos harness (DESIGN.md §13) — label
// `stress`, so it runs on the TSan and failpoint CI legs, not tier-1.
//
// Every catalog failpoint is armed probabilistically and a serving
// battery runs through plan_async while faults fire at arbitrary points
// under the planner: allocation sites, pool growth, worker execution.
// The contract under chaos:
//
//   1. every query resolves (no deadlock, no lost future — a hang trips
//      the ctest timeout);
//   2. failures are STRUCTURED: a status from the PlanStatus enum plus a
//      message, never an escaped exception or a crash;
//   3. every kOk answer is bit-identical to a fault-free sequential
//      oracle — injected faults may degrade or reject, but they may
//      never silently corrupt (the counter-stream contract survives
//      shed-retry, transient retry, and replica sharing).
//
// The schedule replays: firing is a pure function of (seed, site, hit
// ordinal), so AF_CHAOS_SEED=<n> reproduces a failing run exactly (the
// TSan CI leg pins one). Storage chaos runs the writer → open →
// revalidate path under injected I/O faults with the same rules.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/weights.hpp"
#include "storage/convert.hpp"
#include "storage/mapped_dataset.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

namespace fp = af::failpoint;
using storage::Af1Error;
using storage::MappedDataset;
using storage::write_container;

/// AF_CHAOS_SEED pins one schedule (the CI replay knob); otherwise a
/// few fixed seeds keep the run deterministic yet varied.
std::vector<std::uint64_t> chaos_seeds() {
  const char* env = std::getenv("AF_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {1, 2, 3};
}

Graph make_graph() {
  Rng rng(11);
  return barabasi_albert(80, 3, rng).build(WeightScheme::inverse_degree());
}

/// The k-th valid (s,t) pair, cycling. Distinct pairs keep the battery
/// from collapsing into one coalesced execution.
QuerySpec query_k(const Graph& g, std::size_t k) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    const NodeId t = g.num_nodes() - 1 - s;
    if (s == t || g.has_edge(s, t)) continue;
    pairs.emplace_back(s, t);
  }
  const auto [s, t] = pairs[k % pairs.size()];
  return {s, t, MaximizeSpec{.budget = 4, .realizations = 2'000}};
}

bool same_plan(const PlanResult& a, const PlanResult& b) {
  return a.status == b.status &&
         a.invitation.members() == b.invitation.members() &&
         a.sample_coverage == b.sample_coverage;
}

/// Arms every serving-path site at probability `p` (the storage sites
/// stay quiet here; StorageChaos drives them separately).
void arm_serving_sites(double p) {
  for (const char* name :
       {"planner.pair_alloc", "planner.pool_grow", "planner.exec_transient",
        "server.worker_exec", "numa.replica_build"}) {
    fp::arm(name, {fp::Mode::kProb, 0, p});
  }
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fp::compiled_in()) {
      GTEST_SKIP() << "build has AF_FAILPOINTS=OFF; macros compiled out";
    }
    fp::disarm_all();
  }
  void TearDown() override {
    fp::disarm_all();
    fp::set_seed(0);
  }
};

TEST_F(ChaosTest, ServingBatteryUnderRandomFaultsStaysStructuredAndExact) {
  const Graph g = make_graph();
  constexpr std::size_t kQueries = 64;

  for (const std::uint64_t seed : chaos_seeds()) {
    SCOPED_TRACE("AF_CHAOS_SEED=" + std::to_string(seed));
    fp::set_seed(seed);

    // Alias-build faults decide the planner's degradation state at
    // construction; whatever state the schedule lands in, the oracle
    // must be built into the SAME state — a degraded planner is
    // deterministic against a degraded oracle (scan sampling consumes
    // rng words differently from the alias index).
    fp::arm("index.alias_build", {fp::Mode::kProb, 0, 0.25});
    fp::arm("index.alias_build_compact", {fp::Mode::kProb, 0, 0.25});
    arm_serving_sites(0.01);
    PlannerOptions opts;
    opts.threads = 2;
    opts.async_workers = 2;
    opts.async_queue_depth = kQueries + 8;
    Planner chaos(g, opts);
    const bool degraded = chaos.cache_stats().degraded_scan_index;

    std::vector<std::future<PlanResult>> futures;
    futures.reserve(kQueries);
    for (std::size_t i = 0; i < kQueries; ++i) {
      futures.push_back(chaos.plan_async(query_k(g, i)));
    }
    std::vector<PlanResult> results;
    results.reserve(kQueries);
    for (auto& f : futures) results.push_back(f.get());  // #1: no hang

    fp::disarm_all();
    fp::arm("index.alias_build",
            {degraded ? fp::Mode::kAlways : fp::Mode::kOff, 0, 0.0});
    fp::arm("index.alias_build_compact",
            {degraded ? fp::Mode::kAlways : fp::Mode::kOff, 0, 0.0});
    Planner oracle(g, opts);
    fp::disarm_all();
    ASSERT_EQ(oracle.cache_stats().degraded_scan_index, degraded);

    std::size_t ok = 0;
    for (std::size_t i = 0; i < kQueries; ++i) {
      const PlanResult& r = results[i];
      // #2: structured outcomes only.
      ASSERT_TRUE(r.status == PlanStatus::kOk ||
                  r.status == PlanStatus::kResourceExhausted ||
                  r.status == PlanStatus::kOverloaded)
          << "query " << i << " ended " << to_string(r.status) << ": "
          << r.message;
      if (r.status != PlanStatus::kOk) {
        EXPECT_FALSE(r.message.empty()) << "failure without detail";
        continue;
      }
      // #3: bit-identical to the fault-free sequential oracle.
      ++ok;
      EXPECT_TRUE(same_plan(r, oracle.plan(query_k(g, i))))
          << "query " << i << " diverged from the oracle under chaos";
    }
    // p=0.01 across a handful of sites: the vast majority must succeed.
    EXPECT_GT(ok, kQueries / 2) << "chaos schedule starved the battery";
  }
}

TEST_F(ChaosTest, StorageChaosNeverPublishesOrServesATornContainer) {
  const Graph g = make_graph();
  const std::string path =
      ::testing::TempDir() + "af_chaos_storage.af1";
  constexpr int kRounds = 40;

  for (const std::uint64_t seed : chaos_seeds()) {
    SCOPED_TRACE("AF_CHAOS_SEED=" + std::to_string(seed));
    fp::set_seed(seed);
    std::remove(path.c_str());

    for (int round = 0; round < kRounds; ++round) {
      fp::arm("storage.writer_write", {fp::Mode::kProb, 0, 0.02});
      fp::arm("storage.writer_finish", {fp::Mode::kProb, 0, 0.1});
      fp::arm("storage.map_open", {fp::Mode::kProb, 0, 0.1});
      fp::arm("storage.read_validate", {fp::Mode::kProb, 0, 0.05});

      bool written = false;
      try {
        write_container(g, path);
        written = true;
      } catch (const Af1Error&) {
        // Structured, and the temp file must not leak.
        EXPECT_FALSE(std::ifstream(path + ".tmp").good());
      }
      if (written) {
        try {
          const MappedDataset ds(path);
          ds.revalidate();
          EXPECT_EQ(ds.num_nodes(), g.num_nodes());
        } catch (const Af1Error&) {
          // Injected open/validate faults are fine; anything else —
          // a crash, a non-Af1Error — fails the test by escaping.
        }
        std::remove(path.c_str());
      }
    }

    // After the storm: with sites disarmed the same path works, proving
    // chaos left no persistent wreckage behind.
    fp::disarm_all();
    write_container(g, path);
    const MappedDataset ds(path);
    ds.revalidate();
    EXPECT_EQ(ds.num_nodes(), g.num_nodes());
    EXPECT_EQ(ds.num_edges(), g.num_edges());
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace af
