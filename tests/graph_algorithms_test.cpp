#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

Graph build(Graph::Builder b) {
  return b.build(WeightScheme::inverse_degree());
}

// ---------------------------------------------------------------------- BFS

TEST(Bfs, DistancesOnPath) {
  const Graph g = build(path_graph(6));
  const auto d = bfs_distances(g, NodeId{0});
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, DistancesOnGrid) {
  const Graph g = build(grid_graph(4, 4));
  const auto d = bfs_distances(g, NodeId{0});
  // Manhattan distance from corner (0,0).
  for (NodeId r = 0; r < 4; ++r) {
    for (NodeId c = 0; c < 4; ++c) {
      EXPECT_EQ(d[r * 4 + c], r + c);
    }
  }
}

TEST(Bfs, UnreachableMarked) {
  Graph::Builder b(4);
  b.add_edge(0, 1);
  const Graph g = build(std::move(b));
  const auto d = bfs_distances(g, NodeId{0});
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Bfs, MultiSourceTakesMinimum) {
  const Graph g = build(path_graph(7));
  const auto d = bfs_distances(g, std::vector<NodeId>{0, 6});
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[6], 0u);
  EXPECT_EQ(d[3], 3u);
  EXPECT_EQ(d[5], 1u);
}

TEST(Bfs, PairDistanceMatchesFullBfs) {
  Rng rng(3);
  const Graph g = build(gnm_random(60, 120, rng));
  const auto d = bfs_distances(g, NodeId{0});
  for (NodeId v : {NodeId{5}, NodeId{17}, NodeId{42}}) {
    EXPECT_EQ(bfs_distance(g, 0, v), d[v]);
  }
  EXPECT_EQ(bfs_distance(g, 7, 7), 0u);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  const Graph g = build(path_graph(3));
  EXPECT_THROW(bfs_distances(g, NodeId{5}), precondition_error);
}

// --------------------------------------------------------------- components

TEST(Components, LabelsPartitionTheGraph) {
  Graph::Builder b(7);
  b.add_edge(0, 1).add_edge(1, 2);  // component A
  b.add_edge(3, 4);                 // component B
  // 5, 6 isolated.
  const Graph g = build(std::move(b));
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[6]);
  const std::set<std::uint32_t> labels(comp.begin(), comp.end());
  EXPECT_EQ(labels.size(), 4u);
}

TEST(Components, ComponentOfReturnsMembers) {
  Graph::Builder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(4, 5);
  const Graph g = build(std::move(b));
  auto c = component_of(g, 1);
  std::sort(c.begin(), c.end());
  EXPECT_EQ(c, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(component_of(g, 3), (std::vector<NodeId>{3}));
}

// ----------------------------------------------------------------- Dijkstra

TEST(Dijkstra, HopMetricMatchesBfs) {
  Rng rng(5);
  const Graph g = build(gnm_random(80, 200, rng));
  const auto bd = bfs_distances(g, NodeId{0});
  const auto dd = dijkstra(g, 0, /*use_weights=*/false);
  for (NodeId v = 0; v < 80; ++v) {
    if (bd[v] == kUnreachable) {
      EXPECT_TRUE(std::isinf(dd[v]));
    } else {
      EXPECT_NEAR(dd[v], static_cast<double>(bd[v]), 1e-9);
    }
  }
}

TEST(Dijkstra, WeightedCostIsNegLogProduct) {
  // Path 0-1-2 with explicit weights: cost(0→1) = -log w(0,1) etc.
  Graph::Builder b(3);
  b.add_edge(0, 1, 0.5, 0.5).add_edge(1, 2, 0.25, 0.25);
  const Graph g = b.build_with_explicit_weights();
  const auto d = dijkstra(g, 0, /*use_weights=*/true);
  EXPECT_NEAR(d[1], -std::log(0.5), 1e-12);
  EXPECT_NEAR(d[2], -std::log(0.5) - std::log(0.25), 1e-12);
}

// ---------------------------------------------------- shortest path variants

TEST(ShortestPathAvoiding, FindsPathAndRespectsBlocks) {
  const Graph g = build(grid_graph(3, 3));
  std::vector<char> blocked(9, 0);
  auto p = shortest_path_avoiding(g, 0, 8, blocked);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 5u);  // 4 hops
  EXPECT_EQ(p->front(), 0u);
  EXPECT_EQ(p->back(), 8u);

  // Block the center: a shortest path around it still has 4 hops.
  blocked[4] = 1;
  p = shortest_path_avoiding(g, 0, 8, blocked);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 5u);
  for (NodeId v : *p) EXPECT_NE(v, 4u);
}

TEST(ShortestPathAvoiding, NoPathReturnsNullopt) {
  const Graph g = build(path_graph(5));
  std::vector<char> blocked(5, 0);
  blocked[2] = 1;
  EXPECT_FALSE(shortest_path_avoiding(g, 0, 4, blocked).has_value());
}

TEST(ShortestPathAvoiding, TerminalsExemptFromBlocking) {
  const Graph g = build(path_graph(3));
  std::vector<char> blocked(3, 1);  // everything blocked
  blocked[1] = 0;                   // except the middle
  const auto p = shortest_path_avoiding(g, 0, 2, blocked);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 3u);
}

TEST(DisjointPaths, FindsAllParallelPaths) {
  const Graph g = build(parallel_paths(3, 3));
  const auto paths = node_disjoint_shortest_paths(g, 0, 1, 10);
  ASSERT_EQ(paths.size(), 3u);
  std::set<NodeId> used;
  for (const auto& p : paths) {
    EXPECT_EQ(p.size(), 5u);  // s + 3 intermediates + t
    EXPECT_EQ(p.front(), 0u);
    EXPECT_EQ(p.back(), 1u);
    for (NodeId v : p) {
      if (v == 0 || v == 1) continue;
      EXPECT_TRUE(used.insert(v).second) << "intermediate reused";
    }
  }
}

TEST(DisjointPaths, RespectsMaxPaths) {
  const Graph g = build(parallel_paths(4, 2));
  EXPECT_EQ(node_disjoint_shortest_paths(g, 0, 1, 2).size(), 2u);
}

TEST(DisjointPaths, OrderedByLength) {
  // Two paths of different lengths between 0 and 1.
  Graph::Builder b(7);
  b.add_edge(0, 2).add_edge(2, 1);                  // length 2
  b.add_edge(0, 3).add_edge(3, 4).add_edge(4, 5).add_edge(5, 6).add_edge(6, 1);
  const Graph g = build(std::move(b));
  const auto paths = node_disjoint_shortest_paths(g, 0, 1, 10);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_LT(paths[0].size(), paths[1].size());
}

TEST(DisjointPaths, NoPathGivesEmpty) {
  Graph::Builder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const Graph g = build(std::move(b));
  EXPECT_TRUE(node_disjoint_shortest_paths(g, 0, 3, 5).empty());
}

TEST(DisjointPaths, DirectEdgeHandled) {
  Graph::Builder b(3);
  b.add_edge(0, 1).add_edge(0, 2).add_edge(2, 1);
  const Graph g = build(std::move(b));
  const auto paths = node_disjoint_shortest_paths(g, 0, 1, 5);
  ASSERT_GE(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 2u);  // the direct edge
}

}  // namespace
}  // namespace af
