// Degenerate and extreme instances, exercised across every component:
// isolated initiators, targets one hop from N_s, near-complete graphs,
// minimal graphs, and randomized-weight models.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/maximizer.hpp"
#include "core/raf.hpp"
#include "core/vmax.hpp"
#include "diffusion/exact.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

RafConfig tiny_config() {
  RafConfig cfg;
  cfg.alpha = 0.5;
  cfg.epsilon = 0.05;
  cfg.big_n = 100.0;
  cfg.max_realizations = 5'000;
  cfg.pmax_max_samples = 50'000;
  return cfg;
}

// ------------------------------------------------------ isolated initiator

TEST(EdgeCases, IsolatedInitiatorMeansZeroEverywhere) {
  Graph::Builder b(4);
  b.add_edge(1, 2).add_edge(2, 3);
  const Graph g = b.build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, 2);  // s = isolated node 0
  EXPECT_TRUE(inst.initial_friends().empty());

  EXPECT_DOUBLE_EQ(exact_pmax(inst), 0.0);
  EXPECT_TRUE(compute_vmax(inst).empty());

  MonteCarloEvaluator mc(inst);
  Rng rng(1);
  EXPECT_EQ(mc.estimate_pmax(2'000, rng).successes, 0u);
  EXPECT_EQ(mc.estimate_pmax(2'000, rng, McEngine::kForward).successes, 0u);

  const RafAlgorithm raf(tiny_config());
  const RafResult res = raf.run(inst, rng);
  EXPECT_TRUE(res.invitation.empty());
  EXPECT_TRUE(res.diag.target_unreachable);

  MaximizerConfig mcfg;
  mcfg.budget = 3;
  mcfg.realizations = 1'000;
  EXPECT_EQ(maximize_friending(inst, mcfg, rng).type1_count, 0u);
}

// --------------------------------------------------- target one hop away

TEST(EdgeCases, TargetAdjacentToNsIsTrivial) {
  // Star: s = leaf 1, t = leaf 2; the center is their mutual friend with
  // w(center, t) = 1 (t has degree 1) — acceptance is certain once t is
  // invited.
  const Graph g = star_graph(6).build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 1, 2);
  EXPECT_DOUBLE_EQ(exact_pmax(inst), 1.0);
  EXPECT_EQ(compute_vmax(inst), (std::vector<NodeId>{2}));

  InvitationSet just_t(6);
  just_t.add(2);
  EXPECT_DOUBLE_EQ(exact_f(inst, just_t), 1.0);

  Rng rng(2);
  const RafAlgorithm raf(tiny_config());
  const RafResult res = raf.run(inst, rng);
  EXPECT_EQ(res.invitation.members(), (std::vector<NodeId>{2}));
}

TEST(EdgeCases, NearCompleteGraph) {
  // K6 minus the (s,t) edge: every other node is a mutual friend of s
  // and t; t's total incoming weight from N_s is 1 → certain acceptance.
  const NodeId n = 6;
  Graph::Builder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (u == 0 && v == n - 1) continue;  // omit (s,t)
      b.add_edge(u, v);
    }
  }
  const Graph g = b.build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, n - 1);
  EXPECT_NEAR(exact_pmax(inst), 1.0, 1e-9);
  EXPECT_EQ(compute_vmax(inst), (std::vector<NodeId>{n - 1}));

  Rng rng(3);
  const RafAlgorithm raf(tiny_config());
  const RafResult res = raf.run(inst, rng);
  EXPECT_EQ(res.invitation.size(), 1u);
  EXPECT_TRUE(res.invitation.contains(n - 1));
}

// ------------------------------------------------------- minimal instance

TEST(EdgeCases, SmallestPossibleInstance) {
  // Three nodes in a path: the smallest valid (s,t) setup.
  const Graph g = path_graph(3).build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, 2);

  // w(1,2) = 1 (node 2 has degree 1): certain acceptance.
  EXPECT_DOUBLE_EQ(exact_pmax(inst), 1.0);

  Rng rng(4);
  for (std::size_t k : {1u, 2u, 3u}) {
    EXPECT_TRUE(high_degree_invitation(inst, k).contains(2));
    EXPECT_TRUE(shortest_path_invitation(inst, k).contains(2));
  }
  const RafAlgorithm raf(tiny_config());
  EXPECT_EQ(raf.run(inst, rng).invitation.members(),
            (std::vector<NodeId>{2}));
}

// --------------------------------------------------- randomized weights

TEST(EdgeCases, RandomizedWeightModelsStayConsistent) {
  Rng wrng(5);
  for (auto scheme : {WeightScheme::random_normalized(0.85),
                      WeightScheme::trivalency()}) {
    auto builder = gnm_random(9, 14, wrng);
    const Graph g = builder.build(scheme, &wrng);
    for (NodeId s = 0; s < 9; ++s) {
      if (g.degree(s) == 0) continue;
      for (NodeId t = 0; t < 9; ++t) {
        if (t == s || g.has_edge(s, t)) continue;
        const FriendingInstance inst(g, s, t);
        MonteCarloEvaluator mc(inst);
        Rng rng(6);
        const double exact = exact_pmax(inst);
        const double rev = mc.estimate_pmax(40'000, rng).estimate();
        const double fwd =
            mc.estimate_pmax(40'000, rng, McEngine::kForward).estimate();
        EXPECT_NEAR(rev, exact, 0.02);
        EXPECT_NEAR(fwd, exact, 0.02);
        goto next_scheme;  // one instance per scheme keeps this fast
      }
    }
  next_scheme:;
  }
}

// ------------------------------------------------------ low-weight targets

TEST(EdgeCases, HighDegreeTargetIsHardToReach) {
  // The celebrity effect: t with many friends has per-friend weight
  // 1/deg(t), so a single mutual friend rarely suffices.
  Graph::Builder b(12);
  // t = 0 with 10 friends (1..10); s = 11 adjacent to node 1 only.
  for (NodeId v = 1; v <= 10; ++v) b.add_edge(0, v);
  b.add_edge(11, 1);
  const Graph g = b.build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 11, 0);
  // Exactly one backward route: t selects friend 1 (∈ N_s) w.p. 1/10.
  EXPECT_NEAR(exact_pmax(inst), 0.1, 1e-12);

  // Low-degree target for contrast: swap roles so t = a leaf... build a
  // mirrored instance where t has a single friend shared with s.
  Graph::Builder b2(4);
  b2.add_edge(0, 1).add_edge(1, 2).add_edge(1, 3);
  const Graph g2 = b2.build(WeightScheme::inverse_degree());
  const FriendingInstance easy(g2, 0, 2);
  EXPECT_DOUBLE_EQ(exact_pmax(easy), 1.0);  // deg(t)=1 → w = 1
}

TEST(EdgeCases, MutualFriendAccumulationBeatsSingleStrongTie) {
  // Two mutual friends each with weight 1/2 guarantee acceptance
  // (sum = 1 ≥ θ); one alone succeeds only half the time.
  Graph::Builder b(5);
  b.add_edge(0, 1).add_edge(0, 2);          // s's friends
  b.add_edge(1, 3).add_edge(2, 3);          // both friends know a helper? no:
  // 3 = t with exactly neighbors 1 and 2.
  const Graph g = b.build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, 3);
  EXPECT_DOUBLE_EQ(exact_pmax(inst), 1.0);

  Graph::Builder b1(5);
  b1.add_edge(0, 1).add_edge(1, 3).add_edge(3, 4);
  const Graph g1 = b1.build(WeightScheme::inverse_degree());
  const FriendingInstance single(g1, 0, 3);
  // t has neighbors 1 and 4 → w(1,3) = 1/2; only route is via 1.
  EXPECT_DOUBLE_EQ(exact_pmax(single), 0.5);
}

}  // namespace
}  // namespace af
