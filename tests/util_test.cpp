#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/cli.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace af {
namespace {

// ---------------------------------------------------------------- contracts

TEST(Contracts, ExpectsThrowsPreconditionError) {
  EXPECT_THROW(AF_EXPECTS(1 == 2, "nope"), precondition_error);
}

TEST(Contracts, EnsuresThrowsPostconditionError) {
  EXPECT_THROW(AF_ENSURES(false, "broken"), postcondition_error);
}

TEST(Contracts, PassingChecksAreSilent) {
  EXPECT_NO_THROW(AF_EXPECTS(true, ""));
  EXPECT_NO_THROW(AF_ENSURES(2 + 2 == 4, ""));
}

TEST(Contracts, MessageContainsExpressionAndText) {
  try {
    AF_EXPECTS(0 > 1, "custom detail");
    FAIL() << "should have thrown";
  } catch (const precondition_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("0 > 1"), std::string::npos);
    EXPECT_NE(msg.find("custom detail"), std::string::npos);
  }
}

// ---------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(9);
  RunningStats st;
  for (int i = 0; i < 100'000; ++i) st.add(rng.uniform());
  EXPECT_NEAR(st.mean(), 0.5, 0.01);
  EXPECT_NEAR(st.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformRangeRejectsInverted) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), precondition_error);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const auto x = rng.uniform_int(std::uint64_t{7});
    EXPECT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reached
}

TEST(Rng, UniformIntOneIsAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(std::uint64_t{1}), 0u);
}

TEST(Rng, UniformIntZeroBoundThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(std::uint64_t{0}), precondition_error);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(std::int64_t{-5}, std::int64_t{5});
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, UniformIntIsApproximatelyUniform) {
  Rng rng(23);
  const std::uint64_t k = 10;
  std::vector<int> counts(k, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(k)];
  for (std::uint64_t b = 0; b < k; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]) / n, 0.1, 0.01);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(29);
  Rng child = a.fork();
  // Child continues deterministically but differs from parent stream.
  Rng a2(29);
  Rng child2 = a2.fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child.next_u64(), child2.next_u64());
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  for (std::size_t k : {0u, 1u, 5u, 50u, 100u}) {
    const auto s = rng.sample_without_replacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (auto x : s) EXPECT_LT(x, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), precondition_error);
}

TEST(SplitMix, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
}

// -------------------------------------------------------------------- stats

TEST(RunningStats, EmptyIsZero) {
  RunningStats st;
  EXPECT_TRUE(st.empty());
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_EQ(st.variance(), 0.0);
  EXPECT_EQ(st.stderr_mean(), 0.0);
}

TEST(RunningStats, MeanAndVarianceMatchDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats st;
  for (double x : xs) st.add(x);
  EXPECT_EQ(st.count(), xs.size());
  EXPECT_DOUBLE_EQ(st.mean(), 6.2);
  // Sample variance: Σ(x-μ)²/(n-1) = 37.2
  EXPECT_NEAR(st.variance(), 37.2, 1e-12);
  EXPECT_NEAR(st.stddev(), std::sqrt(37.2), 1e-12);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 16.0);
  EXPECT_NEAR(st.sum(), 31.0, 1e-12);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  Rng rng(41);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2, 7);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, b;
  a.add(3.0);
  a.add(5.0);
  const double m = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), m);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), m);
}

TEST(RunningStats, CiHalfwidthShrinksWithSamples) {
  Rng rng(43);
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.uniform());
  for (int i = 0; i < 10'000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
}

TEST(Histogram, BinningAndRanges) {
  Histogram h(0.0, 1.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 0.5);
  h.add(0.1);
  h.add(0.11);
  h.add(0.95);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(Histogram, XyMeansPerBin) {
  Histogram h(0.0, 1.0, 2);
  h.add_xy(0.2, 10.0);
  h.add_xy(0.3, 20.0);
  h.add_xy(0.8, 7.0);
  EXPECT_DOUBLE_EQ(h.bin_mean(0), 15.0);
  EXPECT_DOUBLE_EQ(h.bin_mean(1), 7.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 3), precondition_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), precondition_error);
}

TEST(Proportion, EstimateAndWilson) {
  Proportion p{30, 100};
  EXPECT_DOUBLE_EQ(p.estimate(), 0.3);
  EXPECT_GT(p.wilson_halfwidth(), 0.0);
  EXPECT_LT(p.wilson_halfwidth(), 0.2);
  // Wilson center pulls toward 1/2.
  EXPECT_GT(p.wilson_center(), 0.3);
}

TEST(Proportion, EmptyTrialsAreSafe) {
  Proportion p;
  EXPECT_DOUBLE_EQ(p.estimate(), 0.0);
  EXPECT_DOUBLE_EQ(p.wilson_halfwidth(), 0.0);
}

TEST(Quantiles, MedianAndExtremes) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
}

TEST(Quantiles, EmptyInputsHandled) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_THROW(quantile_of({}, 0.5), precondition_error);
}

// -------------------------------------------------------------------- table

TEST(Table, AlignedPrinting) {
  TableWriter t({"name", "value"});
  t.add_row({"alpha", "0.10"});
  t.add_row({"a-very-long-label", "7"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("a-very-long-label"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowArityEnforced) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(TableWriter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::fmt(std::size_t{42}), "42");
  EXPECT_EQ(TableWriter::fmt(-7ll), "-7");
}

TEST(Table, CsvRoundTrip) {
  TableWriter t({"x", "text"});
  t.add_row({"1", "plain"});
  t.add_row({"2", "with,comma"});
  t.add_row({"3", "with\"quote"});
  const std::string path = testing::TempDir() + "/af_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x,text");
  std::getline(f, line);
  EXPECT_EQ(line, "1,plain");
  std::getline(f, line);
  EXPECT_EQ(line, "2,\"with,comma\"");
  std::getline(f, line);
  EXPECT_EQ(line, "3,\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Table, CsvFailsOnBadPath) {
  TableWriter t({"a"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir-xyz/file.csv"));
}

// ---------------------------------------------------------------------- cli

TEST(Cli, ParsesAllTypes) {
  ArgParser args("prog", "test");
  args.add_int("count", 5, "a count");
  args.add_double("rate", 0.5, "a rate");
  args.add_string("name", "default", "a name");
  args.add_flag("verbose", "a flag");
  const char* argv[] = {"prog", "--count", "9", "--rate=0.25",
                        "--name", "abc", "--verbose"};
  ASSERT_TRUE(args.parse(7, argv));
  EXPECT_EQ(args.get_int("count"), 9);
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 0.25);
  EXPECT_EQ(args.get_string("name"), "abc");
  EXPECT_TRUE(args.get_flag("verbose"));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  ArgParser args("prog", "test");
  args.add_int("count", 5, "");
  args.add_flag("full", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(args.parse(1, argv));
  EXPECT_EQ(args.get_int("count"), 5);
  EXPECT_FALSE(args.get_flag("full"));
}

TEST(Cli, RejectsUnknownOption) {
  ArgParser args("prog", "test");
  const char* argv[] = {"prog", "--mystery", "1"};
  EXPECT_FALSE(args.parse(3, argv));
}

TEST(Cli, RejectsBadInteger) {
  ArgParser args("prog", "test");
  args.add_int("count", 5, "");
  const char* argv[] = {"prog", "--count", "abc"};
  EXPECT_FALSE(args.parse(3, argv));
}

TEST(Cli, RejectsMissingValue) {
  ArgParser args("prog", "test");
  args.add_int("count", 5, "");
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(args.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  ArgParser args("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(args.parse(2, argv));
}

TEST(Cli, UndeclaredLookupThrows) {
  ArgParser args("prog", "test");
  EXPECT_THROW(args.get_int("nope"), precondition_error);
}

TEST(Cli, TypeMismatchThrows) {
  ArgParser args("prog", "test");
  args.add_int("count", 5, "");
  EXPECT_THROW(args.get_flag("count"), precondition_error);
}

// -------------------------------------------------------------------- timer

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100'000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GE(t.elapsed_seconds(), 0.0);
  EXPECT_GE(t.elapsed_ms(), t.elapsed_seconds());  // ms numerically larger
  const double before = t.elapsed_seconds();
  t.reset();
  EXPECT_LE(t.elapsed_seconds(), before + 1.0);
}

}  // namespace
}  // namespace af
